"""Social-network analysis — the paper's motivating workload (Section 2).

Runs the Figure 2 algorithm (average teenage followers) and PageRank on a
Twitter-like synthetic follower graph, comparing the compiler-generated
Pregel programs against the hand-written baselines on the same simulated
cluster: same results, same messages, same network I/O.

Run:  python examples/social_network_analysis.py
"""

from repro.algorithms.manual import MANUAL_PROGRAMS
from repro.compiler import compile_algorithm
from repro.graphgen import attach_standard_props, twitter_like


def banner(text: str) -> None:
    print()
    print(f"=== {text} ===")


def main() -> None:
    graph = twitter_like(3000, avg_degree=12, seed=3)
    attach_standard_props(graph)
    print(f"Follower graph: {graph}")
    degrees = sorted((graph.in_degree(v) for v in graph.nodes()), reverse=True)
    print(f"Most-followed account has {degrees[0]} followers "
          f"(average {graph.num_edges / graph.num_nodes:.1f}) — the RMAT skew.")

    banner("Average teenage followers (Figure 2)")
    compiled = compile_algorithm("avg_teen_cnt")
    args = {"K": 30}
    generated = compiled.program.run(graph, args, num_workers=8)
    manual = MANUAL_PROGRAMS["avg_teen_cnt"].run(graph, args, num_workers=8)
    print(f"generated: avg = {generated.result:.4f}   {generated.metrics.summary()}")
    print(f"manual:    avg = {manual.result:.4f}   {manual.metrics.summary()}")
    assert abs(generated.result - manual.result) < 1e-12
    assert generated.metrics.messages == manual.metrics.messages
    print("-> identical result, identical message count (§5.2 parity).")

    banner("PageRank (10 iterations)")
    compiled = compile_algorithm("pagerank")
    args = {"e": 1e-9, "d": 0.85, "max_iter": 10}
    generated = compiled.program.run(graph, args, num_workers=8)
    manual = MANUAL_PROGRAMS["pagerank"].run(graph, args, num_workers=8)
    top = sorted(range(graph.num_nodes), key=lambda v: -generated.outputs["pg_rank"][v])[:5]
    print("top-5 accounts by PageRank:", top)
    print(f"generated: {generated.metrics.summary()}")
    print(f"manual:    {manual.metrics.summary()}")
    assert generated.metrics.message_bytes == manual.metrics.message_bytes
    ratio = generated.metrics.wall_seconds / manual.metrics.wall_seconds
    print(f"-> normalized run time {ratio:.2f}x "
          f"(the paper's Figure 6 band: 0.92x - 1.35x).")

    banner("What the programmer wrote vs what runs")
    from repro.algorithms.sources import load_source
    from repro.bench import count_loc

    gm = load_source("pagerank")
    print(f"Green-Marl source: {count_loc(gm)} lines")
    print(f"Generated GPS Java: {count_loc(compiled.java_source) if compiled.java_source else 'n/a'} lines"
          if compiled.java_source else "")
    full = compile_algorithm("pagerank")  # with Java emission
    print(f"Generated GPS Java: {count_loc(full.java_source)} lines (Table 2).")


if __name__ == "__main__":
    main()
