"""Quickstart: write a Green-Marl procedure, compile it to Pregel, run it.

This is the paper's pitch in 40 lines: you write the algorithm the intuitive
shared-memory way (here: count each vertex's in-neighbors that carry a larger
value — a *pull* over incoming neighbors), and the compiler turns it into a
message-passing, bulk-synchronous Pregel program for you — flipping the edge
direction, inferring the message payload, and building the state machine.

Run:  python examples/quickstart.py
"""

from repro import compile_source
from repro.graphgen import attach_standard_props, twitter_like

SOURCE = """
// For every vertex, count incoming neighbors whose 'score' beats ours,
// then report how many vertices are beaten by nobody.
Procedure count_dominators(G: Graph, score: N_P<Int>; dom: N_P<Int>): Int {
  Foreach (n: G.Nodes) {
    n.dom = Count(t: n.InNbrs)[t.score > n.score];
  }
  Int undominated = Count(n: G.Nodes)[n.dom == 0];
  Return undominated;
}
"""


def main() -> None:
    # 1. A synthetic social graph with a 'score' property.
    graph = twitter_like(2000, avg_degree=10, seed=7)
    attach_standard_props(graph)
    graph.add_node_prop("score", [(v * 37) % 100 for v in range(graph.num_nodes)])

    # 2. Compile: parse -> canonical form -> Pregel IR -> executable program.
    compiled = compile_source(SOURCE)
    print("Applied compiler rules:", ", ".join(sorted(compiled.rules.applied)))
    print()
    print("Pregel-canonical form the compiler produced:")
    print(compiled.canonical_source)
    print("Generated state machine:")
    print(compiled.ir.describe())

    # 3. Run on the simulated Pregel cluster.
    result = compiled.program.run(graph, num_workers=8)
    print()
    print(f"Result: {result.result} undominated vertices out of {graph.num_nodes}")
    print(f"Cost:   {result.metrics.summary()}")

    # 4. Cross-check against a direct shared-memory computation.
    score = graph.node_props["score"]
    expected = sum(
        1
        for n in graph.nodes()
        if not any(score[t] > score[n] for t in graph.in_nbrs(n))
    )
    assert result.result == expected, (result.result, expected)
    print(f"Check:  matches the direct computation ({expected}).")


if __name__ == "__main__":
    main()
