"""Approximate Betweenness Centrality — the paper's headline result (§5.1).

The Figure 4 program is 19 lines of Green-Marl; its manual Pregel
implementation was "prohibitively difficult" (Table 2 lists it as N/A).  The
compiler turns it into a multi-kernel Pregel program — BFS lowering, edge
flipping in both directions, the incoming-neighbors prologue, random access
conversion, four message types — and it simply runs.

This example compiles BC, shows the machinery that fired, runs it on a web
graph, and validates the scores against a direct Brandes-style computation.

Run:  python examples/betweenness_centrality.py
"""

from repro.algorithms import reference
from repro.compiler import compile_algorithm
from repro.graphgen import web_like


def main() -> None:
    graph = web_like(1500, avg_degree=8, seed=13)
    print(f"Web graph: {graph}")

    compiled = compile_algorithm("bc_approx")
    print()
    print("Compiler rules applied for BC:")
    for rule, fired in compiled.rule_row().items():
        print(f"  [{'x' if fired else ' '}] {rule}")
    print()
    print(f"Generated program: {len(compiled.ir.phases)} vertex kernels, "
          f"{len(compiled.ir.messages)} message types "
          f"(the paper reports nine kernels and four message types).")

    k, seed = 6, 99
    result = compiled.program.run(graph, {"K": k}, seed=seed, num_workers=8)
    bc = result.outputs["bc"]
    print()
    print(f"Ran {k} random-root traversals: {result.metrics.summary()}")

    top = sorted(range(graph.num_nodes), key=lambda v: -bc[v])[:10]
    print("top-10 central pages:", top)

    # Validate against the textbook computation over the same roots.
    roots = reference.bc_roots_for_seed(graph.num_nodes, k, seed)
    expected = reference.bc_approx(graph, roots)
    worst = max(abs(bc[v] - expected[v]) for v in graph.nodes())
    assert worst < 1e-9, worst
    print(f"Check: matches Brandes dependency accumulation exactly "
          f"(max abs error {worst:.1e}).")

    # The approximation quality story from the paper: K random roots rank the
    # highly-central vertices correctly long before the exact computation.
    exact = reference.bc_approx(graph, list(range(graph.num_nodes)))
    exact_top = set(sorted(graph.nodes(), key=lambda v: -exact[v])[:10])
    overlap = len(exact_top & set(top))
    print(f"Approximation: {overlap}/10 of the exact top-10 recovered with "
          f"K={k} roots (exact needs {graph.num_nodes} traversals).")


if __name__ == "__main__":
    main()
