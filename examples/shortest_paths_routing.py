"""Weighted shortest paths on a road-like network, plus the vote-to-halt
story from §5.2.

The Green-Marl SSSP compiles to a Pregel program whose message traffic is
*identical* to the hand-written one, but that keeps invoking ``compute()`` on
converged vertices (the compiler does not emit vote-to-halt — the paper names
this as the source of its 35% SSSP slowdown on Twitter).  This example makes
that visible: the message tail goes quiet while the generated program still
pays full per-superstep cost.

Run:  python examples/shortest_paths_routing.py
"""

import random

from repro.algorithms.manual import MANUAL_PROGRAMS
from repro.algorithms.reference import sssp as dijkstra
from repro.compiler import compile_algorithm
from repro.pregel import Graph


def road_network(side: int, seed: int = 5) -> Graph:
    """A jittered grid: the classic road-network stand-in.  Long diameter,
    low degree — the opposite regime from the social graphs."""
    rng = random.Random(seed)
    n = side * side
    edges = []
    weights = []

    def node(r, c):
        return r * side + c

    for r in range(side):
        for c in range(side):
            for dr, dc in ((0, 1), (1, 0)):
                r2, c2 = r + dr, c + dc
                if r2 < side and c2 < side:
                    w = rng.randrange(1, 10)
                    edges.append((node(r, c), node(r2, c2)))
                    weights.append(w)
                    edges.append((node(r2, c2), node(r, c)))
                    weights.append(w)
    return Graph.from_edges(n, edges, edge_props={"len": weights})


def main() -> None:
    graph = road_network(side=40)
    root = 0
    print(f"Road network: {graph} (grid diameter ~{2 * 39} hops)")

    compiled = compile_algorithm("sssp")
    generated = compiled.program.run(
        graph, {"root": root}, record_per_superstep=True, num_workers=8
    )
    manual = MANUAL_PROGRAMS["sssp"].run(
        graph, {"root": root}, record_per_superstep=True, num_workers=8
    )

    expected = dijkstra(graph, root)
    assert generated.outputs["dist"] == expected
    assert manual.outputs["dist"] == expected
    print("Both implementations match Dijkstra exactly.")
    print()
    print(f"generated: {generated.metrics.summary()}")
    print(f"manual:    {manual.metrics.summary()}   (uses vote-to-halt)")
    assert generated.metrics.messages == manual.metrics.messages
    print()

    per_step = generated.metrics.per_superstep_messages
    peak = max(per_step)
    quiet = sum(1 for m in per_step if m < 0.02 * peak)
    print(f"Message wave: peak {peak} msgs/superstep; "
          f"{quiet} of {len(per_step)} supersteps carry <2% of the peak —")
    print("the generated program still runs compute() on every vertex in "
          "those supersteps, the manual one sleeps them (§5.2).")
    ratio = generated.metrics.wall_seconds / manual.metrics.wall_seconds
    print(f"Resulting slowdown on this long-diameter graph: {ratio:.2f}x.")


if __name__ == "__main__":
    main()
