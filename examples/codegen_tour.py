"""A tour of the compiler's artifacts, stage by stage (Figure 1).

For SSSP, prints: the Green-Marl source, the Pregel-canonical form after the
§4.1 transformations, the state machine, the inferred message layout, the
generated GPS-style Java, and the executable Python vertex program.

Run:  python examples/codegen_tour.py
"""

from repro.algorithms.sources import load_source
from repro.compiler import compile_algorithm
from repro.pregelir.ir import MVPhase


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    banner("1. What the programmer writes (sssp.gm)")
    print(load_source("sssp"))

    compiled = compile_algorithm("sssp")

    banner("2. Pregel-canonical Green-Marl (after the §4.1 transformations)")
    print(compiled.canonical_source)

    banner("3. The state machine (§3.1, State Machine Construction)")
    print(compiled.ir.describe())
    print()
    print("Master instruction stream:")
    for idx, instr in enumerate(compiled.ir.master_code):
        marker = "  -> yields superstep" if isinstance(instr, MVPhase) else ""
        print(f"  {idx:3d}: {type(instr).__name__:10s} "
              f"{getattr(instr, 'name', getattr(instr, 'label', getattr(instr, 'phase', '')))}{marker}")

    banner("4. Inferred message layout (§3.1, payload dataflow analysis)")
    for tag, layout in compiled.ir.messages.items():
        fields = ", ".join(f"{n}: {t}" for n, t in layout.fields) or "(empty)"
        print(f"  tag {tag} [{layout.label}]  payload: {fields}  "
              f"({compiled.ir.message_size(tag)} bytes/message)")

    banner("5. Generated GPS Java (§4.3 boilerplate included)")
    print(compiled.java_source)

    banner("6. Executable Python vertex program (what the simulator runs)")
    print(compiled.program.vertex_source)


if __name__ == "__main__":
    main()
