"""Web-graph study using the beyond-paper algorithms.

Demonstrates that the compiler generalizes past the paper's six benchmarks:
weakly-connected components (simultaneous pushes in both edge directions),
HITS hubs/authorities (two opposite edge flips per iteration), and degree
statistics — all written as plain Green-Marl and compiled to Pregel, with
message combining enabled for the components run.

Run:  python examples/web_graph_study.py
"""

from collections import Counter

from repro.algorithms import reference
from repro.compiler import compile_algorithm
from repro.graphgen import web_like


def main() -> None:
    graph = web_like(2500, avg_degree=7, seed=31)
    print(f"Web crawl analogue: {graph}")

    # --- connected components, with and without message combining ---------
    cc = compile_algorithm("connected_components")
    print()
    print("Connected components — compiler rules:",
          ", ".join(sorted(cc.rules.applied)))
    plain = cc.program.run(graph, num_workers=8)
    combined = cc.program.run(graph, num_workers=8, use_combiners=True)
    comp = plain.outputs["comp"]
    assert comp == combined.outputs["comp"] == reference.connected_components(graph)
    sizes = Counter(comp)
    largest = sizes.most_common(1)[0]
    print(f"{len(sizes)} components; largest has {largest[1]} pages "
          f"({largest[1] / graph.num_nodes:.0%} of the crawl).")
    print(f"min-label waves: {plain.metrics.messages} messages plain, "
          f"{combined.metrics.messages} with combiners "
          f"({plain.metrics.messages / combined.metrics.messages:.1f}x saved).")

    # --- HITS ---------------------------------------------------------------
    hits = compile_algorithm("hits")
    run = hits.program.run(graph, {"max_iter": 8}, num_workers=8)
    auth, hub = run.outputs["auth"], run.outputs["hub"]
    ref_auth, ref_hub = reference.hits_l1(graph, 8)
    assert max(abs(a - b) for a, b in zip(auth, ref_auth)) < 1e-9
    top_auth = sorted(graph.nodes(), key=lambda v: -auth[v])[:5]
    top_hub = sorted(graph.nodes(), key=lambda v: -hub[v])[:5]
    print()
    print(f"HITS (8 iterations, {run.metrics.supersteps} supersteps):")
    print(f"  top authorities: {top_auth}")
    print(f"  top hubs:        {top_hub}")
    print(f"  authorities are heavily-linked old pages, hubs are link-rich "
          f"newer ones — the copying model's structure.")

    # --- degree statistics (a message-free Pregel program) -------------------
    stats = compile_algorithm("degree_stats")
    run = stats.program.run(graph)
    print()
    print(f"Degree stats: avg out-degree {run.result:.2f}, "
          f"{sum(run.outputs['is_max'])} page(s) at the maximum; "
          f"{run.metrics.messages} messages sent (pure aggregation).")


if __name__ == "__main__":
    main()
