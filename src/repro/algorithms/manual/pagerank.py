"""Hand-written Pregel PageRank (as in the original Pregel paper / GPS
samples), with the same convergence rule as the Green-Marl program: stop when
the L1 change drops to ``e`` or after ``max_iter`` iterations."""

from __future__ import annotations

from ...pregel.globalmap import GlobalOp
from ...pregel.graph import Graph
from ...pregel.runtime import PregelEngine
from .base import ManualProgram, finish, fixed_size


class ManualPageRank(ManualProgram):
    def __init__(self):
        super().__init__("pagerank")

    def run(self, graph: Graph, args: dict | None = None, **engine_opts):
        args = dict(args or {})
        eps = args["e"]
        d = args["d"]
        max_iter = args["max_iter"]
        n = graph.num_nodes
        inv_n = 1.0 / n
        pr = [inv_n] * n
        out_off = graph.out_offsets
        out_tgt = graph.out_targets

        def vertex(ctx: PregelEngine, vid: int, messages) -> None:
            superstep = ctx.superstep
            if superstep == 0:
                pr[vid] = inv_n
            else:
                total = 0.0
                for m in messages:
                    total += m[1]
                val = (1.0 - d) * inv_n + d * total
                ctx.put_global("diff", GlobalOp.SUM, abs(val - pr[vid]))
                pr[vid] = val
            # Keep sending; the master halts the computation once converged
            # (the final round's messages dangle, exactly like the compiler's
            # intra-loop-merged code).
            start, end = out_off[vid], out_off[vid + 1]
            if start != end:
                msg = (0, pr[vid] / (end - start))
                for i in range(start, end):
                    ctx.send(out_tgt[i], msg)

        def master(ctx: PregelEngine) -> None:
            superstep = ctx.superstep
            if superstep >= 2:
                diff = ctx.get_agg("diff", 0.0)
                cnt = superstep - 1  # completed update rounds
                if not (diff > eps and cnt < max_iter):
                    ctx.halt()

        engine = PregelEngine(
            graph, vertex, master, message_size=fixed_size(8), **engine_opts
        )
        return finish(engine, {"pg_rank": pr}, {"pg_rank": pr})
