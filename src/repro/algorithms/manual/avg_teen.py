"""Hand-written Pregel Average-Teenage-Followers (the paper's Figure 3)."""

from __future__ import annotations

from ...pregel.globalmap import GlobalOp
from ...pregel.graph import Graph
from ...pregel.runtime import PregelEngine
from .base import ManualProgram, finish, fixed_size


class ManualAvgTeen(ManualProgram):
    def __init__(self):
        super().__init__("avg_teen_cnt")

    def run(self, graph: Graph, args: dict | None = None, **engine_opts):
        args = dict(args or {})
        k = args["K"]
        age = args.get("age", graph.node_props.get("age"))
        if age is None:
            raise ValueError("avg_teen_cnt needs an 'age' node property")
        n = graph.num_nodes
        teen_cnt = [0] * n

        def vertex(ctx: PregelEngine, vid: int, messages) -> None:
            superstep = ctx.superstep
            if superstep == 0:
                # check my age, notify followees (Figure 3 lines 15-26);
                # the message body carries no payload — its arrival means "1".
                if 13 <= age[vid] <= 19:
                    ctx.send_to_out_nbrs(vid, (0,))
            elif superstep == 1:
                teen_cnt[vid] = len(messages)
                if age[vid] > k:
                    ctx.put_global("S", GlobalOp.SUM, teen_cnt[vid])
                    ctx.put_global("C", GlobalOp.SUM, 1)

        def master(ctx: PregelEngine) -> None:
            if ctx.superstep == 2:
                s = ctx.get_agg("S", 0)
                c = ctx.get_agg("C", 0)
                ctx.halt(0.0 if c == 0 else s / float(c))

        engine = PregelEngine(
            graph, vertex, master, message_size=fixed_size(0), **engine_opts
        )
        return finish(engine, {"teen_cnt": teen_cnt}, {"teen_cnt": teen_cnt})
