"""Hand-written Pregel conductance.

A Pregel programmer avoids the compiler's incoming-neighbor machinery: every
vertex pushes its membership to its out-neighbors, receivers count crossing
edges, and the degree sums travel through aggregators — three supersteps."""

from __future__ import annotations

from ...pregel.globalmap import GlobalOp
from ...pregel.graph import Graph
from ...pregel.runtime import PregelEngine
from .base import ManualProgram, finish, fixed_size

INF = float("inf")


class ManualConductance(ManualProgram):
    def __init__(self):
        super().__init__("conductance")

    def run(self, graph: Graph, args: dict | None = None, **engine_opts):
        args = dict(args or {})
        num = args["num"]
        member = args.get("member", graph.node_props.get("member"))
        if member is None:
            raise ValueError("conductance needs a 'member' node property")

        def vertex(ctx: PregelEngine, vid: int, messages) -> None:
            superstep = ctx.superstep
            if superstep == 0:
                deg = ctx.graph.out_degree(vid)
                if member[vid] == num:
                    ctx.put_global("Din", GlobalOp.SUM, deg)
                else:
                    ctx.put_global("Dout", GlobalOp.SUM, deg)
                # tell my out-neighbors whether I am inside the subset
                ctx.send_to_out_nbrs(vid, (0, member[vid] == num))
            elif superstep == 1:
                if member[vid] != num:
                    crossing = 0
                    for m in messages:
                        if m[1]:
                            crossing += 1
                    if crossing:
                        ctx.put_global("Cross", GlobalOp.SUM, crossing)

        def master(ctx: PregelEngine) -> None:
            if ctx.superstep == 1:
                ctx.put_broadcast("Din", ctx.get_agg("Din", 0))
                ctx.put_broadcast("Dout", ctx.get_agg("Dout", 0))
            elif ctx.superstep == 2:
                d_in = ctx.globals.broadcast["Din"]
                d_out = ctx.globals.broadcast["Dout"]
                cross = ctx.get_agg("Cross", 0)
                m = float(min(d_in, d_out))
                if m == 0.0:
                    ctx.halt(0.0 if cross == 0 else INF)
                else:
                    ctx.halt(cross / m)

        engine = PregelEngine(
            graph, vertex, master, message_size=fixed_size(1), **engine_opts
        )
        return finish(engine, {}, {})
