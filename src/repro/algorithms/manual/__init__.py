"""Hand-written Pregel baselines — the "native GPS implementations" side of
the paper's evaluation (Figure 6).

There is deliberately no manual Betweenness Centrality: the paper reports
that a manual Pregel implementation of BC was prohibitively difficult
(Table 2 lists it as N/A) — the compiler-generated one is the only
implementation, which is the paper's headline result.
"""

from .avg_teen import ManualAvgTeen
from .base import ManualProgram
from .bfs import ManualBFS
from .bipartite import ManualBipartiteMatching
from .conductance import ManualConductance
from .pagerank import ManualPageRank
from .sssp import ManualSSSP

#: algorithm key -> manual implementation (no entry for bc_approx, see above).
#: ManualBFS is deliberately not listed: it is a scheduler-benchmark workload,
#: not one of the paper's five Figure 6 baselines.
MANUAL_PROGRAMS: dict[str, ManualProgram] = {
    p.name: p
    for p in (
        ManualAvgTeen(),
        ManualPageRank(),
        ManualConductance(),
        ManualSSSP(),
        ManualBipartiteMatching(),
    )
}

__all__ = [
    "MANUAL_PROGRAMS",
    "ManualAvgTeen",
    "ManualBFS",
    "ManualBipartiteMatching",
    "ManualConductance",
    "ManualPageRank",
    "ManualProgram",
    "ManualSSSP",
]
