"""Hand-written Pregel BFS (level-synchronous, vote-to-halt).

The canonical frontier workload: a vertex computes only in the superstep it
is first reached, then goes inactive forever.  On high-diameter graphs the
frontier is a sliver of the graph for most supersteps, which makes BFS the
reference benchmark for the engine's sparse scheduler
(``scheduling="frontier"``) — the scheduler ablation in
``benchmarks/bench_scheduler.py`` is built on this program.

Not part of :data:`MANUAL_PROGRAMS`: the paper's Figure 6 evaluates five
manual baselines and BFS is not one of them.  This baseline exists for the
scheduler experiments, not the paper tables.
"""

from __future__ import annotations

from ...pregel.graph import Graph
from ...pregel.runtime import PregelEngine
from .base import ManualProgram, finish, fixed_size


class ManualBFS(ManualProgram):
    def __init__(self):
        super().__init__("bfs")

    def run(self, graph: Graph, args: dict | None = None, **engine_opts):
        args = dict(args or {})
        root = args["root"]
        n = graph.num_nodes
        level = [-1] * n

        def vertex(ctx: PregelEngine, vid: int, messages) -> None:
            if ctx.superstep == 0:
                if vid == root:
                    level[vid] = 0
                    ctx.send_to_out_nbrs(vid, (0,))
            elif messages and level[vid] < 0:
                level[vid] = ctx.superstep
                ctx.send_to_out_nbrs(vid, (0,))
            ctx.vote_to_halt(vid)

        engine = PregelEngine(
            graph,
            vertex,
            master_compute=None,
            # the message is a pure wake-up signal; payload-free on the wire
            message_size=fixed_size(0),
            use_voting=True,
            **engine_opts,
        )
        return finish(engine, {"level": level}, {"level": level})
