"""Hand-written Pregel random bipartite matching.

The classic three-superstep handshake, phase selected by ``superstep % 3``:

* phase 0 — right vertices apply last round's match notifications; unmatched
  left vertices propose to *all* neighbors (a vertex cannot read its
  neighbor's state in Pregel, so matched receivers simply ignore proposals);
* phase 1 — each unmatched right vertex picks one suitor (last proposal wins,
  mirroring Green-Marl's racy parallel write) and answers it; an aggregator
  records that the round still had activity;
* phase 2 — left vertices finalize the match and notify the right vertex.

The master halts when a round's phase 1 saw no proposal land on an unmatched
right vertex — the same condition the Green-Marl program's
``finished &= False`` computes."""

from __future__ import annotations

from ...pregel.globalmap import GlobalOp
from ...pregel.graph import Graph
from ...pregel.runtime import PregelEngine
from .base import ManualProgram, finish, fixed_size

NIL = -1


class ManualBipartiteMatching(ManualProgram):
    def __init__(self):
        super().__init__("bipartite_matching")

    def run(self, graph: Graph, args: dict | None = None, **engine_opts):
        args = dict(args or {})
        is_left = args.get("is_left", graph.node_props.get("is_left"))
        if is_left is None:
            raise ValueError("bipartite_matching needs an 'is_left' node property")
        n = graph.num_nodes
        match = [NIL] * n

        def vertex(ctx: PregelEngine, vid: int, messages) -> None:
            phase = ctx.superstep % 3
            if phase == 0:
                for m in messages:  # match notifications from phase 2
                    match[vid] = m[1]
                if is_left[vid] and match[vid] == NIL:
                    ctx.send_to_out_nbrs(vid, (0, vid))
            elif phase == 1:
                if not is_left[vid] and match[vid] == NIL and messages:
                    suitor = NIL
                    for m in messages:
                        suitor = m[1]  # last proposal wins
                    ctx.send(suitor, (1, vid))
                    ctx.put_global("active", GlobalOp.OR, True)
            else:
                if is_left[vid] and match[vid] == NIL and messages:
                    girl = NIL
                    for m in messages:
                        girl = m[1]  # last answer wins
                    match[vid] = girl
                    ctx.send(girl, (2, vid))
                    ctx.put_global("matched", GlobalOp.SUM, 1)

        def master(ctx: PregelEngine) -> None:
            superstep = ctx.superstep
            if superstep == 0:
                ctx.put_broadcast("count", 0)
                return
            if superstep % 3 == 0:
                ctx.put_broadcast(
                    "count", ctx.globals.broadcast["count"] + ctx.get_agg("matched", 0)
                )
            elif superstep % 3 == 2:
                if not ctx.get_agg("active", False):
                    ctx.halt(ctx.globals.broadcast["count"])

        engine = PregelEngine(
            graph, vertex, master, message_size=fixed_size(4), **engine_opts
        )
        return finish(engine, {"match": match}, {"match": match})
