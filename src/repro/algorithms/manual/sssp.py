"""Hand-written Pregel SSSP (the original Pregel paper's example).

Uses vote-to-halt: vertices go inactive once their distance stops improving
and are only woken by new candidate distances.  The paper's compiler does not
use vote-to-halt (§5.2), which is exactly why its generated SSSP was ~35%
slower on Twitter — this baseline preserves that asymmetry so the experiment
can reproduce the effect."""

from __future__ import annotations

from ...pregel.graph import Graph
from ...pregel.runtime import PregelEngine
from .base import ManualProgram, finish, fixed_size

INF = float("inf")


class ManualSSSP(ManualProgram):
    def __init__(self):
        super().__init__("sssp")

    def run(self, graph: Graph, args: dict | None = None, **engine_opts):
        args = dict(args or {})
        root = args["root"]
        length = graph.edge_props["len"]
        n = graph.num_nodes
        dist = [INF] * n
        out_off = graph.out_offsets
        out_tgt = graph.out_targets

        def vertex(ctx: PregelEngine, vid: int, messages) -> None:
            if ctx.superstep == 0:
                changed = vid == root
                if changed:
                    dist[vid] = 0
            else:
                best = dist[vid]
                for m in messages:
                    if m[1] < best:
                        best = m[1]
                changed = best < dist[vid]
                dist[vid] = best
            if changed:
                base = dist[vid]
                for ei in range(out_off[vid], out_off[vid + 1]):
                    ctx.send(out_tgt[ei], (0, base + length[ei]))
            ctx.vote_to_halt(vid)

        engine = PregelEngine(
            graph,
            vertex,
            master_compute=None,
            message_size=fixed_size(4),
            use_voting=True,
            **engine_opts,
        )
        return finish(engine, {"dist": dist}, {"dist": dist})
