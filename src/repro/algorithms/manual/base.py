"""Common scaffolding for the hand-written Pregel baselines.

These are the "native GPS implementations" of the paper's evaluation: each
algorithm written the way a Pregel programmer writes it — explicit
timestep-based state management inside a single ``compute()`` function,
hand-chosen message payloads, vote-to-halt where it helps (the paper calls
out that its generated code does *not* use vote-to-halt; keeping it in the
manual SSSP reproduces the §5.2 slowdown the authors observed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ...codegen.executable import RunResult
from ...pregel.ft import ColumnState
from ...pregel.graph import Graph
from ...pregel.runtime import PregelEngine


@dataclass
class ManualProgram:
    """A hand-written Pregel program: a factory producing per-run state."""

    name: str

    def run(self, graph: Graph, args: dict | None = None, **engine_opts) -> RunResult:
        raise NotImplementedError


def finish(engine: PregelEngine, outputs: dict[str, list], fields: dict[str, list]) -> RunResult:
    if engine.ft is not None and fields:
        # The closure-captured per-vertex columns are exactly what a worker
        # crash destroys; register them so checkpoints cover them.  Master
        # state of the manual programs lives in the engine's broadcast map,
        # which the engine's own checkpoint already carries.
        engine.ft.register(ColumnState(fields))
    metrics = engine.run()
    return RunResult(metrics, outputs, metrics.result, fields)


def fixed_size(n: int) -> Callable[[tuple], int]:
    return lambda msg: n
