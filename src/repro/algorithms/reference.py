"""Textbook reference implementations of the paper's six algorithms.

Plain shared-memory Python, written independently of both the interpreter and
the compiler, with the *same mathematical semantics* as the Green-Marl
programs (e.g. PageRank drops dangling mass like the Green-Marl formulation,
rather than redistributing it like networkx).  These close the three-way
equivalence loop the test suite asserts:

    reference == interpret(gm) == run(compile(gm))
"""

from __future__ import annotations

import heapq

from ..pregel.graph import Graph

INF = float("inf")
NIL = -1


def avg_teen_cnt(graph: Graph, age: list[int], k: int) -> tuple[list[int], float]:
    """Per-node teenage-follower counts and their average over nodes with
    ``age > k`` (Figure 2)."""
    teen_cnt = [
        sum(1 for t in graph.in_nbrs(n) if 13 <= age[t] <= 19) for n in graph.nodes()
    ]
    older = [n for n in graph.nodes() if age[n] > k]
    avg = sum(teen_cnt[n] for n in older) / len(older) if older else 0.0
    return teen_cnt, avg


def pagerank(
    graph: Graph, eps: float, d: float, max_iter: int
) -> tuple[list[float], int]:
    """Jacobi PageRank with the Green-Marl convergence rule (L1 diff)."""
    n = graph.num_nodes
    pr = [1.0 / n] * n
    iterations = 0
    while True:
        contrib = [
            pr[w] / graph.out_degree(w) if graph.out_degree(w) else 0.0
            for w in graph.nodes()
        ]
        new = [
            (1.0 - d) / n + d * sum(contrib[w] for w in graph.in_nbrs(t))
            for t in graph.nodes()
        ]
        diff = sum(abs(new[t] - pr[t]) for t in graph.nodes())
        pr = new
        iterations += 1
        if not (diff > eps and iterations < max_iter):
            return pr, iterations


def conductance(graph: Graph, member: list[int], num: int) -> float:
    d_in = sum(graph.out_degree(u) for u in graph.nodes() if member[u] == num)
    d_out = sum(graph.out_degree(u) for u in graph.nodes() if member[u] != num)
    cross = sum(
        1
        for u in graph.nodes()
        if member[u] == num
        for j in graph.out_nbrs(u)
        if member[j] != num
    )
    m = min(d_in, d_out)
    if m == 0:
        return 0.0 if cross == 0 else INF
    return cross / m


def sssp(graph: Graph, root: int, length: list | None = None) -> list[float]:
    """Dijkstra over the out-edges; ``length`` defaults to the graph's
    ``len`` edge property (CSR order)."""
    if length is None:
        length = graph.edge_props["len"]
    dist = [INF] * graph.num_nodes
    dist[root] = 0
    heap = [(0, root)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for pos in graph.out_edge_range(v):
            w = graph.out_targets[pos]
            nd = d + length[pos]
            if nd < dist[w]:
                dist[w] = nd
                heapq.heappush(heap, (nd, w))
    return dist


def is_valid_maximal_matching(graph: Graph, is_left: list[bool], match: list[int]) -> bool:
    """Check the two invariants of the three-phase handshake's output: the
    matching is consistent along existing edges, and no unmatched left vertex
    still has an unmatched right neighbor (maximality)."""
    edges = set(graph.edges())
    for b in graph.nodes():
        if not is_left[b]:
            continue
        g = match[b]
        if g != NIL:
            if match[g] != b or (b, g) not in edges:
                return False
        else:
            for g2 in graph.out_nbrs(b):
                if match[g2] == NIL:
                    return False
    return True


def matching_size(match: list[int], is_left: list[bool]) -> int:
    return sum(1 for v, m in enumerate(match) if is_left[v] and m != NIL)


def bc_approx(graph: Graph, roots: list[int]) -> list[float]:
    """Brandes-style dependency accumulation over the BFS DAG of each root,
    exactly the computation of Figure 4 (level-synchronous, out-edge BFS)."""
    bc = [0.0] * graph.num_nodes
    for s in roots:
        levels = [INF] * graph.num_nodes
        levels[s] = 0
        frontier = [s]
        order: list[list[int]] = [[s]]
        while frontier:
            nxt = []
            for v in frontier:
                for w in graph.out_nbrs(v):
                    if levels[w] == INF:
                        levels[w] = levels[v] + 1
                        nxt.append(w)
            if nxt:
                order.append(nxt)
            frontier = nxt
        sigma = [0.0] * graph.num_nodes
        sigma[s] = 1.0
        for level_nodes in order[1:]:
            for v in level_nodes:
                sigma[v] = sum(
                    sigma[w] for w in graph.in_nbrs(v) if levels[w] == levels[v] - 1
                )
        delta = [0.0] * graph.num_nodes
        for level_nodes in reversed(order):
            for v in level_nodes:
                if v == s:
                    continue
                delta[v] = sum(
                    (sigma[v] / sigma[w]) * (1.0 + delta[w])
                    for w in graph.out_nbrs(v)
                    if levels[w] == levels[v] + 1
                )
                bc[v] += delta[v]
    return bc


def connected_components(graph: Graph) -> list[int]:
    """Weakly-connected components: every vertex labeled with the minimum
    vertex id of its undirected component (union-find)."""
    parent = list(range(graph.num_nodes))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in graph.edges():
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)
    return [find(v) for v in graph.nodes()]


def hits_l1(graph: Graph, max_iter: int) -> tuple[list[float], list[float]]:
    """HITS with L1 normalization, matching the bundled ``hits.gm`` exactly
    (authority update, normalize, hub update, normalize, per iteration)."""
    n = graph.num_nodes
    auth = [1.0] * n
    hub = [1.0] * n
    for _ in range(max_iter):
        auth = [sum(hub[w] for w in graph.in_nbrs(v)) for v in graph.nodes()]
        na = sum(auth)
        if na > 0.0:
            auth = [a / na for a in auth]
        hub = [sum(auth[w] for w in graph.out_nbrs(v)) for v in graph.nodes()]
        nh = sum(hub)
        if nh > 0.0:
            hub = [h / nh for h in hub]
    return auth, hub


def bc_roots_for_seed(num_nodes: int, k: int, seed: int) -> list[int]:
    """The exact root sequence ``G.PickRandom()`` yields for a given engine
    seed — both the Pregel master and the interpreter draw from
    ``random.Random(seed).randrange(num_nodes)``."""
    import random

    rng = random.Random(seed)
    return [rng.randrange(num_nodes) for _ in range(k)]
