"""Access to the bundled Green-Marl algorithm sources (the paper's six
benchmark programs, Table 2)."""

from __future__ import annotations

from pathlib import Path

from ..lang.ast import Procedure
from ..lang.parser import parse_procedure

_GM_DIR = Path(__file__).parent / "gm"

#: Algorithm keys, in the paper's Table 2 order.
ALGORITHMS = (
    "avg_teen_cnt",
    "pagerank",
    "conductance",
    "sssp",
    "bipartite_matching",
    "bc_approx",
)

#: Algorithms beyond the paper's benchmark set, demonstrating that the
#: compiler generalizes (weakly-connected components needs simultaneous
#: pushes in both edge directions; HITS needs two opposite flips per
#: iteration; degree_stats exercises the Max/Min/Avg reduction paths).
EXTRA_ALGORITHMS = (
    "connected_components",
    "hits",
    "degree_stats",
)

#: Display names used in the paper's tables.
DISPLAY_NAMES = {
    "avg_teen_cnt": "Average Teenage Follower (AvgTeen)",
    "pagerank": "PageRank",
    "conductance": "Conductance (Conduct)",
    "sssp": "Single-Source Shortest Paths (SSSP)",
    "bipartite_matching": "Random Bipartite Matching (Bipartite)",
    "bc_approx": "Approximate Betweenness Centrality (BC)",
}


def source_path(name: str) -> Path:
    path = _GM_DIR / f"{name}.gm"
    if not path.exists():
        raise KeyError(f"unknown algorithm '{name}' (have: {', '.join(ALGORITHMS)})")
    return path


def load_source(name: str) -> str:
    """The Green-Marl source text of a bundled algorithm."""
    return source_path(name).read_text()


def load_procedure(name: str) -> Procedure:
    """Parse a bundled algorithm into a fresh AST."""
    return parse_procedure(load_source(name))
