"""Pregel intermediate representation."""

from . import ir
from .ir import PregelIR

__all__ = ["ir", "PregelIR"]
