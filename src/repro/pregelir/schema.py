"""Typed program schema for the columnar data plane (§4.3 message classes).

The paper's compiler derives one message class per program — a fixed-layout
struct whose fields are the union of every communication's payload (§4.3,
Message Class Gen.).  The simulator only used the *sizes* of those layouts
(for byte metering); the columnar and multiprocessing backends need the full
layout: per-vertex-property storage types and per-tag wire formats, so vertex
state can live in typed columns and messages can travel as packed structs
instead of pickled tuples.

``derive_schema`` computes that schema from a (post-optimization) PregelIR:

* **columns** — an ``array.array`` typecode per vertex field.  ``array``
  columns index to native Python scalars, so generated code is semantically
  identical on lists and columns (``gm_div``'s ``type(x) is int`` dispatch,
  ``repr``, hashing).  Green-Marl Int/Long columns escalate to ``'d'`` when
  the program mentions INF (e.g. SSSP's ``dist``): CPython models INF as a
  float, which a ``'q'`` column cannot hold;
* **tags** — a ``struct`` format per message tag.  Integral payload slots
  stay 4/8 bytes with INF carried as a reserved sentinel (``INT32_MAX`` /
  ``INT32_MIN``); Float slots travel as 8-byte doubles, because CPython
  floats *are* doubles and truncating to float32 on the wire would change
  results versus the tuple-passing simulator.  The wire sizes are the byte
  counts all backends meter, so ``message_bytes`` is the actual slab size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields as dc_fields

from ..lang import types as ty
from .ir import Inf, Lit, MInstr, PregelIR, VExpr, VStmt, VertexPhase

INT32_MAX = 2**31 - 1
INT32_MIN = -(2**31)
INT64_MAX = 2**63 - 1
INT64_MIN = -(2**63)

_WIRE_SIZE = {"?": 1, "i": 4, "q": 8, "d": 8}


@dataclass(frozen=True)
class SlotSchema:
    """One payload field on the wire."""

    name: str
    code: str            # struct code: '?', 'i', 'q', or 'd'
    size: int            # standard (unaligned) struct size
    inf_sentinel: bool   # integral slot that may carry ±INF as a sentinel


@dataclass(frozen=True)
class TagSchema:
    """Fixed wire layout of one message tag."""

    tag: int
    label: str
    slots: tuple[SlotSchema, ...]
    fmt: str             # complete struct format ('<', tag byte when tagged)
    size: int            # bytes per record on the wire


@dataclass
class ProgramSchema:
    """Everything a typed backend needs to lay out one program's data."""

    name: str
    tagged: bool
    has_inf: bool
    #: vertex field -> array.array typecode ('b', 'q', or 'd')
    columns: dict[str, str]
    tags: dict[int, TagSchema]

    def message_size(self, tag: int) -> int:
        return self.tags[tag].size

    def max_message_size(self) -> int:
        return max((t.size for t in self.tags.values()), default=0)


def _column_code(t: ty.Type, has_inf: bool) -> str:
    if isinstance(t, ty.PrimType):
        if t.prim is ty.Prim.BOOL:
            return "b"
        if t.prim in (ty.Prim.FLOAT, ty.Prim.DOUBLE):
            return "d"
        # INT / LONG: a program that mentions INF may store it in any of its
        # integral fields (SSSP's dist); Python's INF is a float, so those
        # columns escalate to doubles.  Exact int arithmetic survives: the
        # wire re-integerizes (see _encoder) and == compares 5.0 to 5.
        return "d" if has_inf else "q"
    if t.is_node() or t.is_edge():
        return "q"  # ids are small ints; NIL is -1, never INF
    raise ValueError(f"vertex field type {t} has no columnar representation")


def _wire_slot(name: str, t: ty.Type, has_inf: bool) -> SlotSchema:
    if isinstance(t, ty.PrimType):
        if t.prim is ty.Prim.BOOL:
            return SlotSchema(name, "?", 1, False)
        if t.prim in (ty.Prim.FLOAT, ty.Prim.DOUBLE):
            # CPython floats are doubles; a 4-byte Float slot would truncate
            # and break bit-parity with the tuple-passing simulator.
            return SlotSchema(name, "d", 8, False)
        if t.prim is ty.Prim.LONG:
            return SlotSchema(name, "q", 8, has_inf)
        return SlotSchema(name, "i", 4, has_inf)
    if t.is_node() or t.is_edge():
        return SlotSchema(name, "i", 4, False)
    raise ValueError(f"message payload type {t} has no wire representation")


def _node_has_inf(node) -> bool:
    if isinstance(node, Inf):
        return True
    if isinstance(node, Lit):
        return isinstance(node.value, float) and math.isinf(node.value)
    if isinstance(node, (list, tuple)):
        return any(_node_has_inf(item) for item in node)
    if isinstance(node, (VExpr, VStmt, MInstr)):
        return any(_node_has_inf(getattr(node, f.name)) for f in dc_fields(node))
    return False


def _program_has_inf(ir: PregelIR) -> bool:
    for phase in ir.phases.values():
        assert isinstance(phase, VertexPhase)
        if _node_has_inf(phase.receive) or _node_has_inf(phase.compute):
            return True
        if phase.filter is not None and _node_has_inf(phase.filter):
            return True
    return _node_has_inf(ir.master_code)


def derive_schema(ir: PregelIR) -> ProgramSchema:
    """Compute the typed storage/wire schema of a compiled program."""
    has_inf = _program_has_inf(ir)
    columns = {
        name: _column_code(t, has_inf) for name, t in ir.vertex_fields.items()
    }
    tagged = ir.tagged
    tags: dict[int, TagSchema] = {}
    for tag in sorted(ir.messages):
        layout = ir.messages[tag]
        slots = tuple(
            _wire_slot(fname, t, has_inf) for fname, t in layout.fields
        )
        fmt = "<" + ("B" if tagged else "") + "".join(s.code for s in slots)
        size = (1 if tagged else 0) + sum(s.size for s in slots)
        tags[tag] = TagSchema(tag, layout.label, slots, fmt, size)
    return ProgramSchema(
        name=ir.name,
        tagged=tagged,
        has_inf=has_inf,
        columns=columns,
        tags=tags,
    )
