"""The Pregel intermediate representation the translator targets.

The IR mirrors the structure of the code the paper's compiler generates
(§3.1, §4.3):

* a **master instruction stream** — the state machine.  The master executes
  instructions each superstep until it reaches a :class:`MVPhase` (which names
  the vertex phase that runs in the *same* superstep — GPS runs
  ``master.compute()`` first and broadcasts the state number) or an
  :class:`MHalt`.  ``While``/``If`` over scalars become branches in this
  stream, so condition checks cost no extra superstep, exactly like the
  ``_next_state`` logic in the paper's generated code;
* a set of **vertex phases** — the bodies of the generated
  ``vertex.compute()`` switch: an unguarded *receive* part (message loops)
  followed by a filtered *compute* part (local statements, message sends,
  global-object puts);
* **message layouts** (tag → typed payload fields) and the master/vertex
  field tables, from which both the executable backend and the Java emitter
  derive the message class and the boilerplate (§4.3, Message Class Gen.).

Expressions reuse the Green-Marl operator enums but have their own leaf
nodes, distinguishing vertex fields, master/global scalars, message payload
fields, and builtin calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..lang.ast import BinOp, UnOp
from ..lang import types as ty
from ..pregel.globalmap import GlobalOp

#: Runtime representation of Green-Marl's INF / NIL.
INF_VALUE = float("inf")
NIL_NODE = -1


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class VExpr:
    """Base class of IR expressions (used in both vertex and master code)."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Lit(VExpr):
    value: Any


@dataclass(frozen=True, slots=True)
class Inf(VExpr):
    negative: bool = False


@dataclass(frozen=True, slots=True)
class Nil(VExpr):
    pass


@dataclass(frozen=True, slots=True)
class Local(VExpr):
    """A local variable of the current compute function."""

    name: str


@dataclass(frozen=True, slots=True)
class Field(VExpr):
    """A vertex field (vertex context) or a master field (master context)."""

    name: str


@dataclass(frozen=True, slots=True)
class GlobalGet(VExpr):
    """A vertex-side read of a broadcast global object."""

    name: str


@dataclass(frozen=True, slots=True)
class MsgField(VExpr):
    """Payload field ``index`` of the message being processed (receive code)."""

    index: int


@dataclass(frozen=True, slots=True)
class MyId(VExpr):
    """The executing vertex's id (a Node value)."""


@dataclass(frozen=True, slots=True)
class Bin(VExpr):
    op: BinOp
    lhs: VExpr
    rhs: VExpr


@dataclass(frozen=True, slots=True)
class Un(VExpr):
    op: UnOp
    operand: VExpr


@dataclass(frozen=True, slots=True)
class Cond(VExpr):
    cond: VExpr
    then: VExpr
    other: VExpr


@dataclass(frozen=True, slots=True)
class CastTo(VExpr):
    to_type: ty.Type
    operand: VExpr


@dataclass(frozen=True, slots=True)
class Call(VExpr):
    """Builtin calls.

    Vertex context: ``out_degree`` / ``in_degree`` (of this vertex),
    ``edge_prop`` (the property of the out-edge being iterated by the
    enclosing send — args: (prop_name,)).
    Master context: ``num_nodes`` / ``num_edges`` / ``pick_random``.
    """

    name: str
    args: tuple = ()


# ---------------------------------------------------------------------------
# Vertex statements
# ---------------------------------------------------------------------------


class VStmt:
    __slots__ = ()


@dataclass(slots=True)
class VLocal(VStmt):
    """Declare-and-assign a compute-function local."""

    name: str
    expr: VExpr


@dataclass(slots=True)
class VAssignLocal(VStmt):
    name: str
    expr: VExpr


@dataclass(slots=True)
class VFieldAssign(VStmt):
    name: str
    expr: VExpr


@dataclass(slots=True)
class VFieldReduce(VStmt):
    name: str
    op: GlobalOp
    expr: VExpr


@dataclass(slots=True)
class VIf(VStmt):
    cond: VExpr
    then: list[VStmt]
    other: list[VStmt] = field(default_factory=list)


@dataclass(slots=True)
class VSendNbrs(VStmt):
    """Send a message to every out- ('out') or in- ('in') neighbor.

    In-direction sends iterate the ``_in_nbrs`` vertex field built by the
    Incoming-Neighbors prologue (§4.3).  Payload expressions may contain
    ``Call('edge_prop', …)`` only for out-direction sends.
    """

    tag: int
    payload: list[VExpr]
    direction: str = "out"


@dataclass(slots=True)
class VSendTo(VStmt):
    """Random write: send to an arbitrary vertex id (§3.1, Random Writing)."""

    target: VExpr
    tag: int
    payload: list[VExpr]


@dataclass(slots=True)
class VGlobalPut(VStmt):
    name: str
    op: GlobalOp
    expr: VExpr


@dataclass(slots=True)
class VAppendInNbr(VStmt):
    """Prologue-only: append the message's sender id to ``_in_nbrs``."""

    source: VExpr


@dataclass(slots=True)
class VMsgLoop(VStmt):
    """``for (Message m : rcvdMsgs()) if (m.tag == tag) { body }``."""

    tag: int
    body: list[VStmt]


# ---------------------------------------------------------------------------
# Master instructions
# ---------------------------------------------------------------------------


class MInstr:
    __slots__ = ()


@dataclass(slots=True)
class MAssign(MInstr):
    name: str
    expr: VExpr  # master context: Field = master field


@dataclass(slots=True)
class MFinalize(MInstr):
    """Fold the aggregated vertex puts of global ``name`` into the master
    field: ``field = combine(field, agg)`` — the paper's
    ``S = S + Global.get("S").IntVal()``.  No-op when no vertex put occurred.
    """

    name: str
    op: GlobalOp


@dataclass(slots=True)
class MLabel(MInstr):
    label: str


@dataclass(slots=True)
class MJump(MInstr):
    label: str


@dataclass(slots=True)
class MBranch(MInstr):
    cond: VExpr
    on_true: str
    on_false: str


@dataclass(slots=True)
class MVPhase(MInstr):
    """Yield the superstep: broadcast ``_state = phase`` and run that vertex
    phase now; master execution resumes after this instruction next superstep."""

    phase: int


@dataclass(slots=True)
class MHalt(MInstr):
    result: VExpr | None = None


# ---------------------------------------------------------------------------
# Program containers
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class VertexPhase:
    """One case of the generated ``vertex.compute()`` switch."""

    phase_id: int
    label: str
    receive: list[VStmt] = field(default_factory=list)
    filter: VExpr | None = None
    compute: list[VStmt] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not self.receive and not self.compute

    def sent_tags(self) -> set[int]:
        tags: set[int] = set()
        _collect_tags(self.compute, tags)
        _collect_tags(self.receive, tags)
        return tags

    def received_tags(self) -> set[int]:
        return {s.tag for s in self.receive if isinstance(s, VMsgLoop)}


def _collect_tags(stmts: list[VStmt], tags: set[int]) -> None:
    for stmt in stmts:
        if isinstance(stmt, (VSendNbrs, VSendTo)):
            tags.add(stmt.tag)
        elif isinstance(stmt, VIf):
            _collect_tags(stmt.then, tags)
            _collect_tags(stmt.other, tags)
        elif isinstance(stmt, VMsgLoop):
            _collect_tags(stmt.body, tags)


_TYPE_BYTES = {
    ty.Prim.INT: 4,
    ty.Prim.LONG: 8,
    ty.Prim.FLOAT: 4,
    ty.Prim.DOUBLE: 8,
    ty.Prim.BOOL: 1,
}


def type_bytes(t: ty.Type) -> int:
    """Serialized size of one payload field (node ids travel as 4-byte ints)."""
    if isinstance(t, ty.PrimType):
        return _TYPE_BYTES[t.prim]
    if t.is_node() or t.is_edge():
        return 4
    raise ValueError(f"type {t} cannot be a message payload")


@dataclass(slots=True)
class MessageLayout:
    tag: int
    label: str
    fields: list[tuple[str, ty.Type]] = field(default_factory=list)

    def payload_bytes(self, *, tagged: bool) -> int:
        return (1 if tagged else 0) + sum(type_bytes(t) for _, t in self.fields)


@dataclass(slots=True)
class ParamSpec:
    name: str
    gm_type: ty.Type
    is_output: bool


@dataclass(slots=True)
class PregelIR:
    """A complete generated Pregel program."""

    name: str
    master_code: list[MInstr]
    phases: dict[int, VertexPhase]
    vertex_fields: dict[str, ty.Type]
    master_fields: dict[str, ty.Type]
    messages: dict[int, MessageLayout]
    params: list[ParamSpec]
    return_type: ty.Type | None
    needs_in_nbrs: bool = False
    #: Typed storage/wire schema (repro.pregelir.schema.ProgramSchema),
    #: attached at codegen time — after the optimizer has finished mutating
    #: phases and message layouts, so it can never go stale.
    schema: Any = None

    @property
    def tagged(self) -> bool:
        """Whether messages need an explicit type tag (Multiple Communication,
        §3.1): only when more than one message type exists."""
        return len(self.messages) > 1

    def message_size(self, tag: int) -> int:
        return self.messages[tag].payload_bytes(tagged=self.tagged)

    def vertex_phase_count(self) -> int:
        return len(self.phases)

    def describe(self) -> str:
        lines = [f"PregelIR {self.name}:"]
        lines.append(
            f"  {len(self.phases)} vertex phases, {len(self.messages)} message "
            f"type(s), {len(self.master_fields)} master fields, "
            f"{len(self.vertex_fields)} vertex fields"
        )
        for phase in self.phases.values():
            parts = []
            if phase.receive:
                parts.append(f"recv{sorted(phase.received_tags())}")
            if phase.compute:
                parts.append("compute")
            sent = phase.sent_tags() - set()
            if sent:
                parts.append(f"send{sorted(sent)}")
            lines.append(f"    phase {phase.phase_id} ({phase.label}): {', '.join(parts) or 'empty'}")
        return "\n".join(lines)
