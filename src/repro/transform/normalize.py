"""Desugaring pass: rewrite syntactic conveniences into the loop forms the
§3.1/§4.1 rules operate on.

Three rewrites happen here:

1. **Group assignments** ``G.prop = e;`` become parallel loops
   ``Foreach (it: G.Nodes) { it.prop = e[G.q → it.q]; }``.
2. **Inline reduction expressions** (``Sum``, ``Count``, ``Exist`` …) are
   hoisted into explicit accumulation loops over fresh temporaries.  This is
   the step that turns e.g. Figure 2's ``Count(t: n.InNbrs)(…)`` into the
   nested-loop form the Dissection/Edge-Flipping rules recognise (§4.1).
3. **Property declarations are hoisted** to the top of the procedure (their
   storage is per-graph; scoping only restricts visibility).

The pass must be followed by a re-typecheck; it generates untyped nodes.
"""

from __future__ import annotations

from ..lang import ast
from ..lang.ast import (
    Assign,
    Bfs,
    Binary,
    BinOp,
    Block,
    BoolLit,
    Cast,
    Expr,
    FloatLit,
    Foreach,
    Ident,
    If,
    InfLit,
    IntLit,
    IterSource,
    MethodCall,
    Procedure,
    PropAccess,
    ReduceAssign,
    ReduceExpr,
    ReduceOp,
    Return,
    Stmt,
    Ternary,
    Unary,
    VarDecl,
    While,
    map_expr,
)
from ..lang import types as ty
from ..lang.errors import TransformError
from .rewriter import NameGenerator, clone_expr


def _contains_reduce(expr: Expr) -> bool:
    found = False

    def visit(e: Expr) -> Expr:
        nonlocal found
        if isinstance(e, ReduceExpr):
            found = True
        return e

    map_expr(expr, visit)
    return found


def _outermost_reduces(expr: Expr) -> list[ReduceExpr]:
    """Reduction expressions not nested inside another reduction (top-down)."""
    out: list[ReduceExpr] = []

    def visit(e: Expr) -> None:
        if isinstance(e, ReduceExpr):
            out.append(e)
            return  # nested ones are handled when their loop body is revisited
        for child in e.children():
            if isinstance(child, Expr):
                visit(child)
            elif isinstance(child, IterSource):
                visit(child.driver)

    visit(expr)
    return out


def _reduce_init(op: ReduceOp, elem: ty.Type) -> Expr:
    is_float = isinstance(elem, ty.PrimType) and elem.is_floating()
    if op is ReduceOp.SUM or op is ReduceOp.COUNT:
        return FloatLit(0.0) if is_float else IntLit(0)
    if op is ReduceOp.PRODUCT:
        return FloatLit(1.0) if is_float else IntLit(1)
    if op is ReduceOp.MIN:
        return InfLit(negative=False)
    if op is ReduceOp.MAX:
        return InfLit(negative=True)
    if op is ReduceOp.ANY:
        return BoolLit(False)
    if op is ReduceOp.ALL:
        return BoolLit(True)
    raise TransformError(f"no initializer for reduction {op.name}")


class Normalizer:
    def __init__(self, proc: Procedure):
        self._proc = proc
        self._names = NameGenerator.for_procedure(proc)
        self._hoisted_props: list[VarDecl] = []
        self.applied: set[str] = set()

    # -- entry -----------------------------------------------------------------

    def run(self) -> None:
        body = self._rewrite_block(self._proc.body)
        seen: set[str] = set()
        for decl in self._hoisted_props:
            for name in decl.names:
                if name in seen:
                    raise TransformError(
                        f"duplicate property declaration '{name}'", decl.span
                    )
                seen.add(name)
        body.stmts[:0] = self._hoisted_props
        self._proc.body = body

    # -- statements --------------------------------------------------------------

    def _rewrite_block(self, block: Block) -> Block:
        out: list[Stmt] = []
        for stmt in block.stmts:
            out.extend(self._rewrite_stmt(stmt))
        return Block(out, span=block.span)

    def _rewrite_stmt(self, stmt: Stmt) -> list[Stmt]:
        prelude: list[Stmt] = []
        if isinstance(stmt, VarDecl):
            if stmt.decl_type.is_property():
                self._hoisted_props.append(stmt)
                return []
            if stmt.init is not None:
                stmt.init = self._extract_reduces(stmt.init, prelude)
            return prelude + [stmt]
        if isinstance(stmt, Assign):
            stmt.expr = self._extract_reduces(stmt.expr, prelude)
            if self._is_group_target(stmt.target):
                return prelude + [self._desugar_group_assign(stmt)]
            return prelude + [stmt]
        if isinstance(stmt, (ast.ReduceAssign, ast.DeferredAssign)):
            stmt.expr = self._extract_reduces(stmt.expr, prelude)
            return prelude + [stmt]
        if isinstance(stmt, Return):
            if stmt.expr is not None:
                stmt.expr = self._extract_reduces(stmt.expr, prelude)
            return prelude + [stmt]
        if isinstance(stmt, If):
            stmt.cond = self._extract_reduces(stmt.cond, prelude)
            stmt.then = self._rewrite_block(stmt.then)
            if stmt.other is not None:
                stmt.other = self._rewrite_block(stmt.other)
            return prelude + [stmt]
        if isinstance(stmt, While):
            if _contains_reduce(stmt.cond):
                raise TransformError(
                    "reduction expressions in While conditions are not supported; "
                    "assign the reduction to a Bool variable inside the loop",
                    stmt.cond.span,
                )
            stmt.body = self._rewrite_block(stmt.body)
            return [stmt]
        if isinstance(stmt, Foreach):
            if stmt.filter is not None and _contains_reduce(stmt.filter):
                raise TransformError(
                    "reduction expressions in iteration filters are not supported",
                    stmt.filter.span,
                )
            stmt.body = self._rewrite_block(stmt.body)
            return [stmt]
        if isinstance(stmt, Bfs):
            stmt.body = self._rewrite_block(stmt.body)
            if stmt.reverse_body is not None:
                stmt.reverse_body = self._rewrite_block(stmt.reverse_body)
            return [stmt]
        if isinstance(stmt, Block):
            return [self._rewrite_block(stmt)]
        return [stmt]

    # -- group assignment ---------------------------------------------------------

    @staticmethod
    def _is_group_target(target: Expr) -> bool:
        return (
            isinstance(target, PropAccess)
            and isinstance(target.target, Ident)
            and target.target.type is not None
            and target.target.type.is_graph()
        )

    def _desugar_group_assign(self, stmt: Assign) -> Foreach:
        self.applied.add("group-assignment")
        assert isinstance(stmt.target, PropAccess)
        graph = stmt.target.target
        assert isinstance(graph, Ident)
        it = self._names.fresh("n")

        def replace_group_reads(e: Expr) -> Expr:
            if (
                isinstance(e, PropAccess)
                and isinstance(e.target, Ident)
                and e.target.name == graph.name
            ):
                return PropAccess(Ident(it, span=e.span), e.prop, span=e.span)
            return e

        value = map_expr(clone_expr(stmt.expr), replace_group_reads)
        body = Block(
            [Assign(PropAccess(Ident(it), stmt.target.prop, span=stmt.span), value, span=stmt.span)],
            span=stmt.span,
        )
        source = IterSource(Ident(graph.name, span=stmt.span), ast.IterKind.NODES, span=stmt.span)
        return Foreach(it, source, None, body, True, span=stmt.span)

    # -- reduction extraction --------------------------------------------------------

    def _extract_reduces(self, expr: Expr, prelude: list[Stmt]) -> Expr:
        reduces = _outermost_reduces(expr)
        if not reduces:
            return expr
        self.applied.add("reduction-extraction")
        replacements: dict[ReduceExpr, Expr] = {}
        for reduce in reduces:
            replacements[reduce] = self._hoist_one_reduce(reduce, prelude)

        def substitute(e: Expr) -> Expr:
            return replacements.get(e, e) if isinstance(e, ReduceExpr) else e

        return map_expr(expr, substitute)

    def _hoist_one_reduce(self, reduce: ReduceExpr, prelude: list[Stmt]) -> Expr:
        if reduce.op is ReduceOp.AVG:
            return self._hoist_avg(reduce, prelude)
        elem = self._result_type(reduce)
        temp = self._names.fresh("r")
        prelude.append(VarDecl(elem, [temp], _reduce_init(reduce.op, elem), span=reduce.span))
        if reduce.op in (ReduceOp.ANY, ReduceOp.ALL):
            assert reduce.filter is not None
            op = reduce.op
            loop_filter = None
            value: Expr = clone_expr(reduce.filter)
        elif reduce.op is ReduceOp.COUNT:
            op = ReduceOp.SUM
            loop_filter = reduce.filter
            value = IntLit(1, span=reduce.span)
        else:
            op = reduce.op
            loop_filter = reduce.filter
            assert reduce.body is not None
            value = reduce.body
        accum = ReduceAssign(
            Ident(temp, span=reduce.span), op, value, reduce.iterator, span=reduce.span
        )
        loop = Foreach(
            reduce.iterator,
            reduce.source,
            loop_filter,
            Block([accum], span=reduce.span),
            True,
            span=reduce.span,
        )
        # The fresh loop body may itself contain nested reductions.
        for rewritten in self._rewrite_stmt(loop):
            prelude.append(rewritten)
        return Ident(temp, span=reduce.span)

    def _hoist_avg(self, reduce: ReduceExpr, prelude: list[Stmt]) -> Expr:
        """``Avg(...)`` = ``Sum(...) / (Double) Count(...)`` (0 when empty)."""
        assert reduce.body is not None
        total = ReduceExpr(
            ReduceOp.SUM, reduce.iterator, reduce.source, reduce.filter,
            reduce.body, span=reduce.span,
        )
        count = ReduceExpr(
            ReduceOp.COUNT,
            reduce.iterator,
            IterSource(clone_expr(reduce.source.driver), reduce.source.kind, span=reduce.span),
            clone_expr(reduce.filter) if reduce.filter is not None else None,
            None,
            span=reduce.span,
        )
        total_ref = self._hoist_one_reduce(total, prelude)
        count_ref = self._hoist_one_reduce(count, prelude)
        zero = Binary(BinOp.EQ, count_ref, IntLit(0), span=reduce.span)
        ratio = Binary(
            BinOp.DIV,
            Cast(ty.DOUBLE, clone_expr(total_ref), span=reduce.span),
            Cast(ty.DOUBLE, clone_expr(count_ref), span=reduce.span),
            span=reduce.span,
        )
        return Ternary(zero, FloatLit(0.0), ratio, span=reduce.span)

    @staticmethod
    def _result_type(reduce: ReduceExpr) -> ty.Type:
        if reduce.op in (ReduceOp.ANY, ReduceOp.ALL):
            return ty.BOOL
        if reduce.op is ReduceOp.COUNT:
            return ty.INT
        result = reduce.type if reduce.type is not None else reduce.body.type  # type: ignore[union-attr]
        if result is None:
            raise TransformError("normalize requires a type-checked AST", reduce.span)
        return result


def normalize(proc: Procedure) -> set[str]:
    """Run the desugaring pass in place; returns the set of applied rules."""
    normalizer = Normalizer(proc)
    normalizer.run()
    return normalizer.applied
