"""Flipping Edges (§4.1): converting message pulling into message pushing.

A nest

    Foreach (n: G.Nodes)[F_n]
      Foreach (t: n.InNbrs)[F_t]
        n.foo max= t.bar;

reads neighbor data (``t.bar``) to update the outer vertex — a *pull*, which
Pregel cannot express.  The pass swaps the two iterators and flips the edge
direction of the inner iteration, producing the equivalent *push*:

    Foreach (t: G.Nodes)[F_t  (t-only conjuncts)]
      Foreach (n: t.Nbrs)[F_n && (n-referencing conjuncts of F_t)]
        n.foo max= t.bar;

Filter conjuncts that mention only the (new) outer iterator are evaluated at
the sender; conjuncts mentioning the receiving vertex move onto the inner
loop, where the §3.1 translation evaluates them at the receiver (any sender
values they mention travel in the message payload).

Preconditions (established by the Dissection pass): the outer loop's body is
exactly the inner loop, and the inner loop only updates outer-scoped
properties.
"""

from __future__ import annotations

from ..lang.ast import (
    Binary,
    BinOp,
    Block,
    Expr,
    Foreach,
    Ident,
    If,
    IterKind,
    IterSource,
    MethodCall,
    Procedure,
    Stmt,
    While,
    flip_iter_kind,
    land,
    walk,
)
from ..lang.errors import TransformError
from ..analysis.access import AccessKind, expr_reads
from ..analysis.loops import classify_inner_loop


def _conjuncts(expr: Expr | None) -> list[Expr]:
    if expr is None:
        return []
    if isinstance(expr, Binary) and expr.op is BinOp.AND:
        return _conjuncts(expr.lhs) + _conjuncts(expr.rhs)
    return [expr]


def _mentions(expr: Expr, name: str) -> bool:
    return any(a.var == name for a in expr_reads(expr))


def _uses_to_edge(block: Block) -> bool:
    return any(
        isinstance(node, MethodCall) and node.name == "ToEdge" for node in walk(block)
    )


class EdgeFlipper:
    def __init__(self, proc: Procedure):
        self._proc = proc
        self.applied = False

    def run(self) -> None:
        self._rewrite_block(self._proc.body)

    def _rewrite_block(self, block: Block) -> None:
        for idx, stmt in enumerate(block.stmts):
            if isinstance(stmt, Foreach) and stmt.source.kind is IterKind.NODES:
                flipped = self._maybe_flip(stmt)
                if flipped is not None:
                    block.stmts[idx] = flipped
            elif isinstance(stmt, If):
                self._rewrite_block(stmt.then)
                if stmt.other is not None:
                    self._rewrite_block(stmt.other)
            elif isinstance(stmt, While):
                self._rewrite_block(stmt.body)
            elif isinstance(stmt, Block):
                self._rewrite_block(stmt)

    def _maybe_flip(self, outer: Foreach) -> Foreach | None:
        if len(outer.body.stmts) != 1:
            return None
        inner = outer.body.stmts[0]
        if not isinstance(inner, Foreach) or not inner.source.kind.is_neighborhood():
            return None
        report = classify_inner_loop(outer, inner)
        if not report.is_pull:
            return None
        if report.is_mixed:
            raise TransformError(
                "inner loop both pushes and pulls; no transformation rule applies",
                inner.span,
            )
        if report.outer_scalar_writes:
            raise TransformError(
                "internal: outer-scoped scalars must be promoted by the "
                "Dissection pass before edge flipping",
                inner.span,
            )
        driver = inner.source.driver
        if not (isinstance(driver, Ident) and driver.name == outer.iterator):
            raise TransformError(
                "inner loop must iterate over the outer iterator's neighborhood",
                inner.span,
            )
        if _uses_to_edge(inner.body):
            raise TransformError(
                "cannot flip a loop that reads edge properties: after flipping, "
                "the edge would be accessed from its target vertex (§3.1, Edge "
                "Properties)",
                inner.span,
            )
        self.applied = True

        receiver = outer.iterator  # old outer becomes the message receiver
        sender = inner.iterator    # old inner becomes the message sender

        sender_conjuncts: list[Expr] = []
        receiver_conjuncts: list[Expr] = list(_conjuncts(outer.filter))
        for conjunct in _conjuncts(inner.filter):
            if _mentions(conjunct, receiver):
                receiver_conjuncts.append(conjunct)
            else:
                sender_conjuncts.append(conjunct)

        new_inner = Foreach(
            receiver,
            IterSource(
                Ident(sender, span=inner.span),
                flip_iter_kind(inner.source.kind),
                span=inner.source.span,
            ),
            land(*receiver_conjuncts) if receiver_conjuncts else None,
            inner.body,
            True,
            span=inner.span,
        )
        return Foreach(
            sender,
            IterSource(outer.source.driver, IterKind.NODES, span=outer.source.span),
            land(*sender_conjuncts) if sender_conjuncts else None,
            Block([new_inner], span=outer.body.span),
            True,
            span=outer.span,
        )


def flip_edges(proc: Procedure) -> bool:
    """Apply the Edge-Flipping rule everywhere it is needed; True if fired."""
    flipper = EdgeFlipper(proc)
    flipper.run()
    return flipper.applied
