"""The Green-Marl→Green-Marl half of the compilation pipeline (Fig. 1).

Runs the §4.1 transformation passes in dependency order, re-type-checking
after each rewrite, and verifies the result is Pregel-canonical.  Applied
rules are recorded under the paper's Table 3 row names so the benchmark can
regenerate that table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.ast import Procedure
from ..lang.errors import NotPregelCanonicalError
from ..lang.typecheck import CheckResult, typecheck
from ..analysis.canonical import check_canonical
from .bfs_lowering import lower_bfs
from .dissect import dissect
from .edge_flip import flip_edges
from .normalize import normalize
from .random_access import rewrite_random_access
from .rewriter import NameGenerator

#: Table 3 row names, in the paper's order.
TABLE3_ROWS = (
    "State Machine Const.",
    "Global Object",
    "Multiple Comm.",
    "Random Writing",
    "Edge Property",
    "Flipping Edge",
    "Dissecting Loops",
    "Random Access (Seq.)",
    "BFS Traversal",
    "State Merging",
    "Intra-Loop Merge",
    "Incoming Neighbors",
    "Message Class Gen.",
)


@dataclass
class RuleLog:
    """Which named compiler rules fired during a compilation."""

    applied: set[str] = field(default_factory=set)

    def mark(self, rule: str) -> None:
        self.applied.add(rule)

    def row(self) -> dict[str, bool]:
        return {name: name in self.applied for name in TABLE3_ROWS}


@dataclass
class CanonicalProgram:
    """A type-checked, Pregel-canonical Green-Marl procedure plus the rule log
    accumulated while producing it."""

    procedure: Procedure
    check: CheckResult
    rules: RuleLog


def to_canonical(
    proc: Procedure, *, rules: RuleLog | None = None, tracer=None
) -> CanonicalProgram:
    """Transform ``proc`` (in place) into Pregel-canonical form.

    Raises :class:`NotPregelCanonicalError` if violations remain after all
    transformation rules have been applied — mirroring the paper's
    "otherwise, the compiler reports an error".

    ``tracer`` (a ``repro.obs`` tracer) records one ``compile.pass`` event
    per transformation — which §4.1 rules fired and how long each took, the
    raw material Table 3 is regenerated from.
    """
    log = rules if rules is not None else RuleLog()
    if tracer is None or not tracer.enabled:
        from ..obs.tracer import NULL_TRACER

        tracer = NULL_TRACER

    def _pass(rule: str, fn) -> None:
        t0 = tracer.now()
        applied = bool(fn())
        if applied and rule in TABLE3_ROWS:
            log.mark(rule)
        tracer.event(
            "compile.pass",
            cat="compile",
            det={"pass": rule, "applied": applied},
            ts=t0,
            dur=tracer.now() - t0,
        )
        typecheck(proc)

    result = typecheck(proc)
    graph_name = result.graph_name
    names = NameGenerator.for_procedure(proc)

    _pass("Normalize", lambda: normalize(proc) or True)
    _pass("BFS Traversal", lambda: lower_bfs(proc, graph_name, names))
    _pass("Random Access (Seq.)", lambda: rewrite_random_access(proc, graph_name, names))
    _pass("Dissecting Loops", lambda: dissect(proc, graph_name, names).applied)
    _pass("Flipping Edge", lambda: flip_edges(proc))
    result = typecheck(proc)

    violations = check_canonical(proc)
    if violations:
        detail = "\n".join(f"  - {v}" for v in violations)
        raise NotPregelCanonicalError(
            "the program is not Pregel-canonical and no transformation rule "
            f"applies:\n{detail}",
            violations[0].span,
        )
    return CanonicalProgram(proc, result, log)
