"""Green-Marl to Green-Marl transformation passes (paper §4.1)."""

from .pipeline import CanonicalProgram, RuleLog, TABLE3_ROWS, to_canonical

__all__ = ["CanonicalProgram", "RuleLog", "TABLE3_ROWS", "to_canonical"]
