"""Dissecting Nested Loops (§4.1) — preprocessing for Edge Flipping.

Two rewrites, exactly as in the paper:

1. **Scalar promotion.**  An outer-loop-scoped scalar modified inside an inner
   neighborhood loop (e.g. the ``_C`` temporary produced by desugaring
   ``Count``) is replaced by a compiler temporary *node property* of the outer
   iterator, so the accumulation becomes a property update that Edge Flipping
   can handle.

2. **Loop fission.**  If, after promotion, an inner loop that must be flipped
   is not the sole statement of its outer loop, the outer loop is split into
   multiple loops so that each flippable inner loop becomes the only statement
   of its own outer loop.  Scalars that would cross the new loop boundaries
   are promoted to temporary properties as well.

Fission preserves semantics because Green-Marl parallel-loop iterations are
independent up to reductions; the pass additionally verifies that the loop
filter does not read properties written by earlier fission segments (which
would change the filtered set).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.ast import (
    Assign,
    Block,
    DeferredAssign,
    Expr,
    Foreach,
    Ident,
    If,
    IterKind,
    Procedure,
    PropAccess,
    ReduceAssign,
    Stmt,
    VarDecl,
    While,
)
from ..lang import types as ty
from ..lang.errors import TransformError
from ..analysis.access import Access, AccessKind, stmt_reads, stmt_writes
from ..analysis.loops import classify_inner_loop, find_inner_loops
from .rewriter import NameGenerator, clone_expr, rewrite_exprs_in_block


@dataclass
class DissectResult:
    promoted: bool = False
    fissioned: bool = False

    @property
    def applied(self) -> bool:
        return self.promoted or self.fissioned


class Dissector:
    def __init__(self, proc: Procedure, graph_name: str, names: NameGenerator):
        self._proc = proc
        self._graph = graph_name
        self._names = names
        self._new_props: list[VarDecl] = []
        self.result = DissectResult()

    def run(self) -> None:
        self._proc.body = self._rewrite_block(self._proc.body)
        self._proc.body.stmts[:0] = self._new_props

    # -- sequential-level walk ------------------------------------------------

    def _rewrite_block(self, block: Block) -> Block:
        out: list[Stmt] = []
        for stmt in block.stmts:
            if isinstance(stmt, Foreach) and stmt.source.kind is IterKind.NODES:
                out.extend(self._dissect_outer(stmt))
            elif isinstance(stmt, If):
                stmt.then = self._rewrite_block(stmt.then)
                if stmt.other is not None:
                    stmt.other = self._rewrite_block(stmt.other)
                out.append(stmt)
            elif isinstance(stmt, While):
                stmt.body = self._rewrite_block(stmt.body)
                out.append(stmt)
            elif isinstance(stmt, Block):
                out.append(self._rewrite_block(stmt))
            else:
                out.append(stmt)
        return Block(out, span=block.span)

    # -- per-outer-loop logic ---------------------------------------------------

    def _dissect_outer(self, outer: Foreach) -> list[Stmt]:
        inner_loops = find_inner_loops(outer)
        if not inner_loops:
            return [outer]
        reports = [classify_inner_loop(outer, inner) for inner in inner_loops]
        for report in reports:
            if report.is_mixed:
                raise TransformError(
                    "inner loop writes both its own iterator's properties and "
                    "outer-scoped state; no transformation rule applies",
                    report.loop.span,
                )
        # Step 1: promote outer-body scalars written inside inner loops.
        to_promote: list[str] = []
        for report in reports:
            for name in report.outer_scalar_writes:
                if name not in to_promote:
                    to_promote.append(name)
        if to_promote:
            self._promote(outer, to_promote)
            self.result.promoted = True

        # Which inner loops must be flipped (write outer-iterator properties)?
        pull_loops = [
            report.loop
            for report in (classify_inner_loop(outer, inner) for inner in inner_loops)
            if report.is_pull
        ]
        if not pull_loops:
            return [outer]
        self._check_pull_loops_at_top_level(outer, pull_loops)
        if len(outer.body.stmts) == 1:
            return [outer]  # already the sole statement; flip pass takes over

        # Step 2: fission.
        segments = self._segment(outer, set(pull_loops))
        cross = self._cross_segment_scalars(outer, segments)
        if cross:
            self._promote(outer, sorted(cross))
            self.result.promoted = True
            segments = self._segment(outer, set(pull_loops))
        self._check_filter_safety(outer, segments)
        self.result.fissioned = True
        loops: list[Stmt] = []
        for segment in segments:
            loops.append(
                Foreach(
                    outer.iterator,
                    # each split keeps iterating all nodes of the same graph
                    type(outer.source)(
                        clone_expr(outer.source.driver), outer.source.kind, span=outer.source.span
                    ),
                    clone_expr(outer.filter) if outer.filter is not None else None,
                    Block(list(segment), span=outer.span),
                    True,
                    span=outer.span,
                )
            )
        return loops

    @staticmethod
    def _check_pull_loops_at_top_level(outer: Foreach, pull_loops: list[Foreach]) -> None:
        top = set(id(s) for s in outer.body.stmts)
        for loop in pull_loops:
            if id(loop) not in top:
                raise TransformError(
                    "a neighborhood loop that requires edge flipping may not be "
                    "nested under a conditional; no transformation rule applies",
                    loop.span,
                )

    # -- promotion ---------------------------------------------------------------

    def _promote(self, outer: Foreach, names: list[str]) -> None:
        for name in names:
            decl_type = self._remove_decl(outer.body, name)
            prop_name = self._names.fresh(f"p_{name.lstrip('_')}")
            self._new_props.append(
                VarDecl(ty.NodePropType(decl_type), [prop_name], None, span=outer.span)
            )
            iterator = outer.iterator

            def replace(e: Expr, _name=name, _prop=prop_name, _it=iterator) -> Expr:
                if isinstance(e, Ident) and e.name == _name:
                    return PropAccess(Ident(_it, span=e.span), _prop, span=e.span)
                return e

            rewrite_exprs_in_block(outer.body, replace)

    def _remove_decl(self, body: Block, name: str) -> ty.Type:
        """Remove ``name``'s declaration from the outer body (top level only);
        an initializer becomes a plain assignment so promotion keeps it."""
        for idx, stmt in enumerate(body.stmts):
            if isinstance(stmt, VarDecl) and name in stmt.names:
                decl_type = stmt.decl_type
                replacement: list[Stmt] = []
                remaining = [n for n in stmt.names if n != name]
                if remaining:
                    replacement.append(
                        VarDecl(stmt.decl_type, remaining, stmt.init, span=stmt.span)
                    )
                    if stmt.init is not None and len(stmt.names) > 1:
                        raise TransformError(
                            "cannot promote one name of a multi-name initialized "
                            "declaration",
                            stmt.span,
                        )
                elif stmt.init is not None:
                    replacement.append(
                        Assign(Ident(name, span=stmt.span), stmt.init, span=stmt.span)
                    )
                body.stmts[idx : idx + 1] = replacement
                return decl_type
        raise TransformError(
            f"scalar '{name}' written in an inner loop must be declared in the "
            "outer loop body",
            body.span,
        )

    # -- fission helpers -----------------------------------------------------------

    @staticmethod
    def _segment(outer: Foreach, pull_loops: set) -> list[list[Stmt]]:
        """Split the outer body's top-level statements into segments: each
        pull loop alone, other statements grouped contiguously."""
        pull_ids = {id(s) for s in pull_loops}
        segments: list[list[Stmt]] = []
        current: list[Stmt] = []
        for stmt in outer.body.stmts:
            if id(stmt) in pull_ids:
                if current:
                    segments.append(current)
                    current = []
                segments.append([stmt])
            else:
                current.append(stmt)
        if current:
            segments.append(current)
        return segments

    @staticmethod
    def _cross_segment_scalars(outer: Foreach, segments: list[list[Stmt]]) -> set[str]:
        """Scalars declared in one segment but referenced in another — they
        must become temporary properties before fission."""

        def scalar_names(accesses: list[Access]) -> set[str]:
            return {a.var for a in accesses if a.kind is AccessKind.SCALAR}

        declared_in: list[set[str]] = []
        used_in: list[set[str]] = []
        for segment in segments:
            declared: set[str] = set()
            used: set[str] = set()
            for stmt in segment:
                if isinstance(stmt, VarDecl):
                    declared.update(stmt.names)
                used |= scalar_names(stmt_reads(stmt))
                used |= scalar_names(stmt_writes(stmt))
            declared_in.append(declared)
            used_in.append(used)
        cross: set[str] = set()
        for i, declared in enumerate(declared_in):
            for j, used in enumerate(used_in):
                if i != j:
                    cross |= declared & used
        return cross

    @staticmethod
    def _check_filter_safety(outer: Foreach, segments: list[list[Stmt]]) -> None:
        if outer.filter is None or len(segments) < 2:
            return
        from ..analysis.access import expr_reads

        filter_props = {
            a.member
            for a in expr_reads(outer.filter)
            if a.kind is AccessKind.PROP and a.var == outer.iterator
        }
        written: set[str] = set()
        for segment in segments[:-1]:
            for stmt in segment:
                for w in stmt_writes(stmt):
                    if w.kind is AccessKind.PROP:
                        written.add(w.member)
        overlap = filter_props & written
        if overlap:
            raise TransformError(
                f"cannot fission loop: filter reads propert{'ies' if len(overlap) > 1 else 'y'} "
                f"{sorted(overlap)} written by an earlier fission segment",
                outer.span,
            )


def dissect(proc: Procedure, graph_name: str, names: NameGenerator) -> DissectResult:
    """Run the dissection pass in place."""
    dissector = Dissector(proc, graph_name, names)
    dissector.run()
    return dissector.result
