"""BFS-order traversal lowering (§4.1, "BFS-order Graph Traversal").

``InBFS (v: G.Nodes From s)[F] { B } InReverse[RF] { RB }`` is rewritten into
level-synchronous frontier expansion:

* a compiler-inserted node property ``_lev`` holds each vertex's hop distance
  from the root (``+INF`` = unvisited);
* a forward ``While`` loop executes the user body ``B`` for the frontier
  (``v._lev == _curr``), then expands the frontier by marking unvisited
  out-neighbors;
* the reverse body runs in a second ``While`` loop sweeping ``_curr`` back
  down to zero;
* ``UpNbrs`` / ``DownNbrs`` iterations inside the bodies become ``InNbrs`` /
  ``Nbrs`` iterations with level filters (``w._lev == _curr ∓ 1``).

The output uses only plain loops, so the later Dissection / Edge-Flipping /
translation rules apply uniformly (the paper calls this "fusing" the user
code with the expanded BFS code).
"""

from __future__ import annotations

from ..lang import ast
from ..lang.ast import (
    Assign,
    Bfs,
    Binary,
    BinOp,
    Block,
    BoolLit,
    Expr,
    Foreach,
    Ident,
    If,
    InfLit,
    IntLit,
    IterKind,
    IterSource,
    Procedure,
    PropAccess,
    ReduceAssign,
    ReduceOp,
    Stmt,
    Ternary,
    Unary,
    UnOp,
    VarDecl,
    While,
    land,
)
from ..lang import types as ty
from ..lang.errors import TransformError
from .rewriter import NameGenerator, clone_expr


class BfsLowering:
    def __init__(self, proc: Procedure, graph_name: str, names: NameGenerator):
        self._proc = proc
        self._graph = graph_name
        self._names = names
        self.applied = False

    def run(self) -> None:
        self._proc.body = self._rewrite_block(self._proc.body)

    def _rewrite_block(self, block: Block) -> Block:
        out: list[Stmt] = []
        for stmt in block.stmts:
            if isinstance(stmt, Bfs):
                out.extend(self._lower_bfs(stmt))
            elif isinstance(stmt, If):
                stmt.then = self._rewrite_block(stmt.then)
                if stmt.other is not None:
                    stmt.other = self._rewrite_block(stmt.other)
                out.append(stmt)
            elif isinstance(stmt, While):
                stmt.body = self._rewrite_block(stmt.body)
                out.append(stmt)
            elif isinstance(stmt, Foreach):
                self._forbid_nested_bfs(stmt.body)
                out.append(stmt)
            elif isinstance(stmt, Block):
                out.append(self._rewrite_block(stmt))
            else:
                out.append(stmt)
        return Block(out, span=block.span)

    @staticmethod
    def _forbid_nested_bfs(block: Block) -> None:
        for node in ast.walk(block):
            if isinstance(node, Bfs):
                raise TransformError(
                    "InBFS inside a parallel loop is not supported", node.span
                )

    # -- the lowering itself -------------------------------------------------

    def _lower_bfs(self, bfs: Bfs) -> list[Stmt]:
        self.applied = True
        span = bfs.span
        lev = self._names.fresh("lev")
        curr = self._names.fresh("curr")
        fin = self._names.fresh("fin")
        root = bfs.root
        graph = Ident(self._graph, span=span)

        stmts: list[Stmt] = []
        # N_P<Int> _lev;  Int _curr = 0;  Bool _fin = False;
        stmts.append(VarDecl(ty.NodePropType(ty.INT), [lev], None, span=span))
        stmts.append(VarDecl(ty.INT, [curr], IntLit(0, span=span), span=span))
        stmts.append(VarDecl(ty.BOOL, [fin], BoolLit(False, span=span), span=span))

        # Foreach (i: G.Nodes) { i._lev = (i == root) ? 0 : +INF; }
        init_it = self._names.fresh("n")
        init_value = Ternary(
            Binary(BinOp.EQ, Ident(init_it, span=span), clone_expr(root), span=span),
            IntLit(0, span=span),
            InfLit(span=span),
            span=span,
        )
        stmts.append(
            Foreach(
                init_it,
                IterSource(clone_expr(graph), IterKind.NODES, span=span),
                None,
                Block(
                    [Assign(PropAccess(Ident(init_it, span=span), lev, span=span), init_value, span=span)],
                    span=span,
                ),
                True,
                span=span,
            )
        )

        # Forward sweep.
        frontier_filter: Expr = Binary(
            BinOp.EQ,
            PropAccess(Ident(bfs.iterator, span=span), lev, span=span),
            Ident(curr, span=span),
            span=span,
        )
        body = self._rewrite_bfs_neighborhoods(bfs.body, bfs.iterator, lev, curr)
        user_filter = frontier_filter if bfs.filter is None else land(frontier_filter, bfs.filter)
        user_loop = Foreach(
            bfs.iterator,
            IterSource(clone_expr(graph), IterKind.NODES, span=span),
            user_filter,
            body,
            True,
            span=span,
        )

        expand_inner_it = self._names.fresh("t")
        expand_inner = Foreach(
            expand_inner_it,
            IterSource(Ident(bfs.iterator, span=span), IterKind.NBRS, span=span),
            Binary(
                BinOp.EQ,
                PropAccess(Ident(expand_inner_it, span=span), lev, span=span),
                InfLit(span=span),
                span=span,
            ),
            Block(
                [
                    Assign(
                        PropAccess(Ident(expand_inner_it, span=span), lev, span=span),
                        Binary(BinOp.ADD, Ident(curr, span=span), IntLit(1, span=span), span=span),
                        span=span,
                    ),
                    ReduceAssign(
                        Ident(fin, span=span), ReduceOp.ALL, BoolLit(False, span=span), None, span=span
                    ),
                ],
                span=span,
            ),
            True,
            span=span,
        )
        expand_loop = Foreach(
            bfs.iterator,
            IterSource(clone_expr(graph), IterKind.NODES, span=span),
            clone_expr(frontier_filter),
            Block([expand_inner], span=span),
            True,
            span=span,
        )

        forward_body = Block(
            [
                Assign(Ident(fin, span=span), BoolLit(True, span=span), span=span),
                user_loop,
                expand_loop,
                Assign(
                    Ident(curr, span=span),
                    Binary(BinOp.ADD, Ident(curr, span=span), IntLit(1, span=span), span=span),
                    span=span,
                ),
            ],
            span=span,
        )
        stmts.append(
            While(Unary(UnOp.NOT, Ident(fin, span=span), span=span), forward_body, span=span)
        )

        # Reverse sweep (optional).
        if bfs.reverse_body is not None:
            stmts.append(
                Assign(
                    Ident(curr, span=span),
                    Binary(BinOp.SUB, Ident(curr, span=span), IntLit(1, span=span), span=span),
                    span=span,
                )
            )
            rev_frontier: Expr = Binary(
                BinOp.EQ,
                PropAccess(Ident(bfs.iterator, span=span), lev, span=span),
                Ident(curr, span=span),
                span=span,
            )
            rbody = self._rewrite_bfs_neighborhoods(bfs.reverse_body, bfs.iterator, lev, curr)
            rfilter = (
                rev_frontier
                if bfs.reverse_filter is None
                else land(rev_frontier, bfs.reverse_filter)
            )
            rev_loop = Foreach(
                bfs.iterator,
                IterSource(clone_expr(graph), IterKind.NODES, span=span),
                rfilter,
                rbody,
                True,
                span=span,
            )
            reverse_body = Block(
                [
                    rev_loop,
                    Assign(
                        Ident(curr, span=span),
                        Binary(BinOp.SUB, Ident(curr, span=span), IntLit(1, span=span), span=span),
                        span=span,
                    ),
                ],
                span=span,
            )
            stmts.append(
                While(
                    Binary(BinOp.GE, Ident(curr, span=span), IntLit(0, span=span), span=span),
                    reverse_body,
                    span=span,
                )
            )
        return stmts

    def _rewrite_bfs_neighborhoods(self, block: Block, bfs_iter: str, lev: str, curr: str) -> Block:
        """Rewrite UpNbrs/DownNbrs loops inside a BFS body into level-filtered
        InNbrs/Nbrs loops."""
        for node in ast.walk(block):
            if isinstance(node, Foreach) and node.source.kind in (
                IterKind.UP_NBRS,
                IterKind.DOWN_NBRS,
            ):
                self._check_bfs_relative_driver(node.source.driver, bfs_iter, node)
                span = node.span
                if node.source.kind is IterKind.UP_NBRS:
                    node.source.kind = IterKind.IN_NBRS
                    level = Binary(
                        BinOp.SUB, Ident(curr, span=span), IntLit(1, span=span), span=span
                    )
                else:
                    node.source.kind = IterKind.NBRS
                    level = Binary(
                        BinOp.ADD, Ident(curr, span=span), IntLit(1, span=span), span=span
                    )
                level_filter = Binary(
                    BinOp.EQ,
                    PropAccess(Ident(node.iterator, span=span), lev, span=span),
                    level,
                    span=span,
                )
                node.filter = (
                    level_filter if node.filter is None else land(level_filter, node.filter)
                )
            elif isinstance(node, ast.ReduceExpr) and node.source.kind in (
                IterKind.UP_NBRS,
                IterKind.DOWN_NBRS,
            ):
                raise TransformError(
                    "internal: reduction over UpNbrs/DownNbrs must be extracted "
                    "by the normalizer before BFS lowering",
                    node.span,
                )
        return block

    @staticmethod
    def _check_bfs_relative_driver(driver: Expr, bfs_iter: str, loop: Foreach) -> None:
        if not (isinstance(driver, Ident) and driver.name == bfs_iter):
            raise TransformError(
                "UpNbrs/DownNbrs may only be iterated from the BFS iterator",
                loop.span,
            )


def lower_bfs(proc: Procedure, graph_name: str, names: NameGenerator) -> bool:
    """Lower every InBFS/InReverse in ``proc``; returns True if any was found."""
    lowering = BfsLowering(proc, graph_name, names)
    lowering.run()
    return lowering.applied
