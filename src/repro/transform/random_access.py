"""Random access in the sequential phase (§4.1).

Pregel has no native support for reading or writing an arbitrary node's
properties from the master.  Writes like ``s.dist = 0;`` occurring in a
sequential phase are transformed into an extra vertex-parallel loop:

    Foreach (n: G.Nodes)[n == s] { n.dist = 0; }

Random *reads* in the sequential phase have no push-based equivalent (the
paper's appendix discusses simulating them; its compiler — and ours —
rejects them instead).
"""

from __future__ import annotations

from ..lang.ast import (
    Assign,
    Binary,
    BinOp,
    Block,
    DeferredAssign,
    Expr,
    Foreach,
    Ident,
    If,
    IterKind,
    IterSource,
    Procedure,
    PropAccess,
    ReduceAssign,
    Stmt,
    While,
)
from ..lang.errors import TransformError
from ..analysis.access import AccessKind, expr_reads
from .rewriter import NameGenerator, clone_expr


class RandomAccessRewriter:
    def __init__(self, proc: Procedure, graph_name: str, names: NameGenerator):
        self._proc = proc
        self._graph = graph_name
        self._names = names
        self.applied = False

    def run(self) -> None:
        self._proc.body = self._rewrite_block(self._proc.body)

    def _rewrite_block(self, block: Block) -> Block:
        out: list[Stmt] = []
        for stmt in block.stmts:
            out.extend(self._rewrite_stmt(stmt))
        return Block(out, span=block.span)

    def _rewrite_stmt(self, stmt: Stmt) -> list[Stmt]:
        from ..lang.ast import Return, VarDecl

        if isinstance(stmt, VarDecl):
            self._check_sequential_expr(stmt.init)
            return [stmt]
        if isinstance(stmt, Return):
            self._check_sequential_expr(stmt.expr)
            return [stmt]
        if isinstance(stmt, (Assign, ReduceAssign, DeferredAssign)):
            target = stmt.target
            if self._is_node_var_prop(target):
                self._check_sequential_expr(stmt.expr)
                return [self._to_guarded_loop(stmt)]
            self._check_sequential_expr(stmt.expr)
            return [stmt]
        if isinstance(stmt, If):
            self._check_sequential_expr(stmt.cond)
            stmt.then = self._rewrite_block(stmt.then)
            if stmt.other is not None:
                stmt.other = self._rewrite_block(stmt.other)
            return [stmt]
        if isinstance(stmt, While):
            self._check_sequential_expr(stmt.cond)
            stmt.body = self._rewrite_block(stmt.body)
            return [stmt]
        if isinstance(stmt, Block):
            return [self._rewrite_block(stmt)]
        # Foreach bodies are vertex-parallel phases — random access there is
        # legal (Random Writing, §3.1) and handled by the translator.
        return [stmt]

    @staticmethod
    def _is_node_var_prop(target: Expr) -> bool:
        return (
            isinstance(target, PropAccess)
            and isinstance(target.target, Ident)
            and target.target.type is not None
            and target.target.type.is_node()
        )

    def _check_sequential_expr(self, expr: Expr | None) -> None:
        """Random property reads are not allowed in sequential phases."""
        if expr is None:
            return
        for access in expr_reads(expr):
            if access.kind in (AccessKind.PROP, AccessKind.EDGE_PROP):
                raise TransformError(
                    f"random read of '{access}' in a sequential phase cannot be "
                    "translated to Pregel (§3.2: random reading is not allowed)",
                    expr.span,
                    hint="restructure the algorithm to compute this value in a "
                    "vertex-parallel loop and reduce it into a scalar",
                )

    def _to_guarded_loop(self, stmt: Stmt) -> Foreach:
        assert isinstance(stmt, (Assign, ReduceAssign, DeferredAssign))
        self.applied = True
        target = stmt.target
        assert isinstance(target, PropAccess) and isinstance(target.target, Ident)
        node_var = target.target
        span = stmt.span
        it = self._names.fresh("n")
        guard = Binary(
            BinOp.EQ, Ident(it, span=span), Ident(node_var.name, span=span), span=span
        )
        new_target = PropAccess(Ident(it, span=span), target.prop, span=span)
        if isinstance(stmt, Assign):
            body_stmt: Stmt = Assign(new_target, clone_expr(stmt.expr), span=span)
        elif isinstance(stmt, ReduceAssign):
            body_stmt = ReduceAssign(new_target, stmt.op, clone_expr(stmt.expr), None, span=span)
        else:
            body_stmt = Assign(new_target, clone_expr(stmt.expr), span=span)
        return Foreach(
            it,
            IterSource(Ident(self._graph, span=span), IterKind.NODES, span=span),
            guard,
            Block([body_stmt], span=span),
            True,
            span=span,
        )


def rewrite_random_access(proc: Procedure, graph_name: str, names: NameGenerator) -> bool:
    """Apply the Random-Access-in-Sequential-Phase rule; True if it fired."""
    rewriter = RandomAccessRewriter(proc, graph_name, names)
    rewriter.run()
    return rewriter.applied
