"""Shared utilities for Green-Marl→Green-Marl rewrites.

Provides fresh-name generation, deep cloning, and targeted substitution of
identifiers / property accesses — the moves every transformation pass in the
paper (§4.1) is built from.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..lang.ast import (
    AstNode,
    Expr,
    Ident,
    Procedure,
    PropAccess,
    map_expr,
    walk,
)


@dataclass
class NameGenerator:
    """Generates compiler-temporary names that cannot collide with user names
    (user identifiers never contain ``$``-free double underscores prefixed by
    ``_gm``)."""

    counter: int = 0
    used: set[str] = field(default_factory=set)

    @staticmethod
    def for_procedure(proc: Procedure) -> "NameGenerator":
        gen = NameGenerator()
        for node in walk(proc):
            if isinstance(node, Ident):
                gen.used.add(node.name)
            if isinstance(node, PropAccess):
                gen.used.add(node.prop)
        for param in proc.params:
            gen.used.add(param.name)
        return gen

    def fresh(self, hint: str = "t") -> str:
        while True:
            name = f"_gm_{hint}{self.counter}"
            self.counter += 1
            if name not in self.used:
                self.used.add(name)
                return name


def clone(node: AstNode) -> AstNode:
    """Deep-copy an AST subtree (spans and types are preserved)."""
    return copy.deepcopy(node)


def clone_expr(expr: Expr) -> Expr:
    out = copy.deepcopy(expr)
    assert isinstance(out, Expr)
    return out


def substitute_ident(expr: Expr, name: str, replacement: Expr) -> Expr:
    """Replace every free occurrence of identifier ``name`` in ``expr`` with a
    clone of ``replacement``.  (The Green-Marl subset has no shadowing inside a
    single expression, so plain textual substitution is sound here.)"""

    def rewrite(e: Expr) -> Expr:
        if isinstance(e, Ident) and e.name == name:
            return clone_expr(replacement)
        return e

    return map_expr(expr, rewrite)


def rename_ident(expr: Expr, old: str, new: str) -> Expr:
    """Rename identifier ``old`` to ``new`` throughout ``expr``."""
    return substitute_ident(expr, old, Ident(new))


def rewrite_exprs_in_block(block: "ast_mod.Block", fn) -> None:
    """Apply ``fn`` (a :func:`map_expr` callback) to every expression in every
    statement of ``block``, recursively — including assignment targets,
    conditions, filters and iteration drivers."""
    from ..lang import ast as ast_mod

    for stmt in block.stmts:
        if isinstance(stmt, ast_mod.VarDecl):
            if stmt.init is not None:
                stmt.init = map_expr(stmt.init, fn)
        elif isinstance(stmt, (ast_mod.Assign, ast_mod.ReduceAssign, ast_mod.DeferredAssign)):
            stmt.target = map_expr(stmt.target, fn)
            stmt.expr = map_expr(stmt.expr, fn)
        elif isinstance(stmt, ast_mod.If):
            stmt.cond = map_expr(stmt.cond, fn)
            rewrite_exprs_in_block(stmt.then, fn)
            if stmt.other is not None:
                rewrite_exprs_in_block(stmt.other, fn)
        elif isinstance(stmt, ast_mod.While):
            stmt.cond = map_expr(stmt.cond, fn)
            rewrite_exprs_in_block(stmt.body, fn)
        elif isinstance(stmt, ast_mod.Foreach):
            stmt.source.driver = map_expr(stmt.source.driver, fn)
            if stmt.filter is not None:
                stmt.filter = map_expr(stmt.filter, fn)
            rewrite_exprs_in_block(stmt.body, fn)
        elif isinstance(stmt, ast_mod.Bfs):
            stmt.source.driver = map_expr(stmt.source.driver, fn)
            stmt.root = map_expr(stmt.root, fn)
            if stmt.filter is not None:
                stmt.filter = map_expr(stmt.filter, fn)
            rewrite_exprs_in_block(stmt.body, fn)
            if stmt.reverse_filter is not None:
                stmt.reverse_filter = map_expr(stmt.reverse_filter, fn)
            if stmt.reverse_body is not None:
                rewrite_exprs_in_block(stmt.reverse_body, fn)
        elif isinstance(stmt, ast_mod.Return):
            if stmt.expr is not None:
                stmt.expr = map_expr(stmt.expr, fn)
        elif isinstance(stmt, ast_mod.Block):
            rewrite_exprs_in_block(stmt, fn)


def substitute_prop_read(expr: Expr, var_name: str, prop_name: str, replacement: Expr) -> Expr:
    """Replace reads of ``var_name.prop_name`` in ``expr`` with a clone of
    ``replacement``."""

    def rewrite(e: Expr) -> Expr:
        if (
            isinstance(e, PropAccess)
            and e.prop == prop_name
            and isinstance(e.target, Ident)
            and e.target.name == var_name
        ):
            return clone_expr(replacement)
        return e

    return map_expr(expr, rewrite)
