"""Shared-memory reference interpreter for Green-Marl.

Executes the *original* AST directly — group assignments, inline reductions,
``InBFS``/``InReverse``, deferred writes — without any of the compiler's
transformations.  It is the semantic oracle for the whole pipeline: for every
algorithm, ``interpret(source) == run(compile(source))`` is asserted by the
test suite (the paper's implicit correctness claim).

Value representation matches the Pregel backend exactly: nodes are integer
ids, ``NIL`` is -1, ``INF`` is ``float('inf')``, and edges are CSR positions
into the graph's out-edge arrays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..lang.ast import (
    Assign,
    Bfs,
    Binary,
    BinOp,
    Block,
    BoolLit,
    Cast,
    DeferredAssign,
    Expr,
    FloatLit,
    Foreach,
    Ident,
    If,
    InfLit,
    IntLit,
    IterKind,
    MethodCall,
    NilLit,
    Procedure,
    PropAccess,
    ReduceAssign,
    ReduceExpr,
    ReduceOp,
    Return,
    Stmt,
    Ternary,
    Unary,
    UnOp,
    VarDecl,
    While,
)
from ..lang import types as ty
from ..lang.parser import parse_procedure
from ..pregel.graph import Graph

INF = float("inf")
NIL = -1


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value


@dataclass
class InterpResult:
    outputs: dict[str, list]
    result: object
    props: dict[str, list] = field(repr=False, default_factory=dict)


@dataclass
class _BfsContext:
    """Active InBFS scope: the level array and the traversal iterator."""

    iterator: str
    levels: list
    current_level: int


class Interpreter:
    def __init__(self, proc: Procedure, graph: Graph, args: dict, *, seed: int = 17):
        self.proc = proc
        self.graph = graph
        self.rng = random.Random(seed)
        self.scalars: dict[str, object] = {}
        self.node_props: dict[str, list] = {}
        self.edge_props: dict[str, list] = dict(graph.edge_props)
        self.graph_name = ""
        #: iterator name -> (node id, edge position or None)
        self.iters: dict[str, tuple[int, int | None]] = {}
        self.bfs: _BfsContext | None = None
        self._deferred: list[tuple[list, int, object]] | None = None
        self._bind_params(args)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _bind_params(self, args: dict) -> None:
        for param in self.proc.params:
            ptype = param.param_type
            if ptype.is_graph():
                self.graph_name = param.name
            elif isinstance(ptype, ty.NodePropType):
                if param.name in args:
                    self.node_props[param.name] = list(args[param.name])
                elif param.name in self.graph.node_props:
                    self.node_props[param.name] = list(self.graph.node_props[param.name])
                else:
                    self.node_props[param.name] = [
                        ty.default_value(ptype.elem)
                    ] * self.graph.num_nodes
            elif isinstance(ptype, ty.EdgePropType):
                if param.name not in self.edge_props:
                    raise ValueError(f"graph is missing edge property '{param.name}'")
            else:
                if param.name in args:
                    self.scalars[param.name] = args[param.name]
                elif not param.is_output:
                    raise ValueError(f"missing scalar argument '{param.name}'")
                else:
                    self.scalars[param.name] = ty.default_value(ptype)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self) -> InterpResult:
        result = None
        try:
            self.exec_block(self.proc.body)
        except _ReturnSignal as signal:
            result = signal.value
        outputs = {
            p.name: self.node_props[p.name]
            for p in self.proc.params
            if p.is_output and p.name in self.node_props
        }
        return InterpResult(outputs, result, dict(self.node_props))

    def exec_block(self, block: Block) -> None:
        for stmt in block.stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, VarDecl):
            self._exec_var_decl(stmt)
        elif isinstance(stmt, Assign):
            self._exec_assign(stmt)
        elif isinstance(stmt, ReduceAssign):
            self._exec_reduce_assign(stmt)
        elif isinstance(stmt, DeferredAssign):
            self._exec_deferred_assign(stmt)
        elif isinstance(stmt, If):
            if self.eval(stmt.cond):
                self.exec_block(stmt.then)
            elif stmt.other is not None:
                self.exec_block(stmt.other)
        elif isinstance(stmt, While):
            if stmt.do_while:
                while True:
                    self.exec_block(stmt.body)
                    if not self.eval(stmt.cond):
                        break
            else:
                while self.eval(stmt.cond):
                    self.exec_block(stmt.body)
        elif isinstance(stmt, Foreach):
            self._exec_foreach(stmt)
        elif isinstance(stmt, Bfs):
            self._exec_bfs(stmt)
        elif isinstance(stmt, Return):
            raise _ReturnSignal(self.eval(stmt.expr) if stmt.expr is not None else None)
        elif isinstance(stmt, Block):
            self.exec_block(stmt)
        else:
            raise TypeError(f"cannot interpret {type(stmt).__name__}")

    def _exec_var_decl(self, stmt: VarDecl) -> None:
        if isinstance(stmt.decl_type, ty.NodePropType):
            for name in stmt.names:
                self.node_props[name] = [
                    ty.default_value(stmt.decl_type.elem)
                ] * self.graph.num_nodes
        elif isinstance(stmt.decl_type, ty.EdgePropType):
            for name in stmt.names:
                self.edge_props[name] = [
                    ty.default_value(stmt.decl_type.elem)
                ] * self.graph.num_edges
        else:
            value = (
                self.eval(stmt.init)
                if stmt.init is not None
                else ty.default_value(stmt.decl_type)
            )
            for name in stmt.names:
                self.scalars[name] = value

    def _exec_assign(self, stmt: Assign) -> None:
        target = stmt.target
        if isinstance(target, Ident):
            self.scalars[target.name] = self.eval(stmt.expr)
            return
        assert isinstance(target, PropAccess) and isinstance(target.target, Ident)
        owner_name = target.target.name
        if owner_name == self.graph_name:
            # Group assignment: evaluate per node, with graph-prop reads
            # resolving to that node's values.
            column = self.node_props[target.prop]
            for v in range(self.graph.num_nodes):
                column[v] = self._eval_group(stmt.expr, v)
            return
        column, idx = self._prop_slot(target)
        column[idx] = self.eval(stmt.expr)

    def _exec_reduce_assign(self, stmt: ReduceAssign) -> None:
        target = stmt.target
        value = self.eval(stmt.expr)
        if isinstance(target, Ident):
            self.scalars[target.name] = _reduce(
                stmt.op, self.scalars[target.name], value
            )
            return
        column, idx = self._prop_slot(target)
        column[idx] = _reduce(stmt.op, column[idx], value)

    def _exec_deferred_assign(self, stmt: DeferredAssign) -> None:
        target = stmt.target
        assert isinstance(target, PropAccess)
        column, idx = self._prop_slot(target)
        value = self.eval(stmt.expr)
        if self._deferred is None:
            column[idx] = value
        else:
            self._deferred.append((column, idx, value))

    def _prop_slot(self, target: PropAccess) -> tuple[list, int]:
        assert isinstance(target.target, Ident)
        owner = self.lookup(target.target.name)
        if target.prop in self.node_props and not self._is_edge_value(target.target):
            return self.node_props[target.prop], owner
        return self.edge_props[target.prop], owner

    def _is_edge_value(self, ident: Ident) -> bool:
        return ident.type is not None and ident.type.is_edge()

    # -- loops --------------------------------------------------------------

    def _exec_foreach(self, stmt: Foreach) -> None:
        own_deferred = self._deferred is None
        if own_deferred and stmt.parallel:
            self._deferred = []
        try:
            for node, edge in self._iterate(stmt.source):
                self.iters[stmt.iterator] = (node, edge)
                if stmt.filter is not None and not self.eval(stmt.filter):
                    continue
                self.exec_block(stmt.body)
        finally:
            self.iters.pop(stmt.iterator, None)
            if own_deferred and stmt.parallel:
                for column, idx, value in self._deferred or []:
                    column[idx] = value
                self._deferred = None

    def _iterate(self, source):
        graph = self.graph
        if source.kind is IterKind.NODES:
            for v in range(graph.num_nodes):
                yield v, None
            return
        driver = source.driver
        assert isinstance(driver, Ident)
        v = self.lookup(driver.name)
        if source.kind is IterKind.NBRS:
            for pos in graph.out_edge_range(v):
                yield graph.out_targets[pos], pos
        elif source.kind is IterKind.IN_NBRS:
            start, end = graph.in_offsets[v], graph.in_offsets[v + 1]
            for i in range(start, end):
                yield graph.in_sources[i], graph.in_edge_ids[i]
        elif source.kind is IterKind.UP_NBRS:
            bfs = self._require_bfs(driver.name)
            for i in range(graph.in_offsets[v], graph.in_offsets[v + 1]):
                w = graph.in_sources[i]
                if bfs.levels[w] == bfs.levels[v] - 1:
                    yield w, graph.in_edge_ids[i]
        elif source.kind is IterKind.DOWN_NBRS:
            bfs = self._require_bfs(driver.name)
            for pos in graph.out_edge_range(v):
                w = graph.out_targets[pos]
                if bfs.levels[w] == bfs.levels[v] + 1:
                    yield w, pos
        else:
            raise ValueError(f"cannot iterate {source.kind}")

    def _require_bfs(self, name: str) -> _BfsContext:
        if self.bfs is None:
            raise ValueError("UpNbrs/DownNbrs outside an InBFS context")
        return self.bfs

    def _exec_bfs(self, stmt: Bfs) -> None:
        graph = self.graph
        root = self.eval(stmt.root)
        levels: list = [INF] * graph.num_nodes
        levels[root] = 0
        frontier = [root]
        order: list[list[int]] = [[root]]
        while frontier:
            nxt: list[int] = []
            for v in frontier:
                for w in graph.out_nbrs(v):
                    if levels[w] == INF:
                        levels[w] = levels[v] + 1
                        nxt.append(w)
            if nxt:
                order.append(nxt)
            frontier = nxt

        previous = self.bfs
        self.bfs = _BfsContext(stmt.iterator, levels, 0)
        try:
            for level, nodes in enumerate(order):
                self.bfs.current_level = level
                self._run_bfs_body(stmt.iterator, nodes, stmt.filter, stmt.body)
            if stmt.reverse_body is not None:
                for level in range(len(order) - 1, -1, -1):
                    self.bfs.current_level = level
                    self._run_bfs_body(
                        stmt.iterator, order[level], stmt.reverse_filter, stmt.reverse_body
                    )
        finally:
            self.bfs = previous

    def _run_bfs_body(self, iterator: str, nodes: list[int], filt, body: Block) -> None:
        own_deferred = self._deferred is None
        if own_deferred:
            self._deferred = []
        try:
            for v in nodes:
                self.iters[iterator] = (v, None)
                if filt is not None and not self.eval(filt):
                    continue
                self.exec_block(body)
        finally:
            self.iters.pop(iterator, None)
            if own_deferred:
                for column, idx, value in self._deferred or []:
                    column[idx] = value
                self._deferred = None

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def lookup(self, name: str):
        if name in self.iters:
            return self.iters[name][0]
        if name in self.scalars:
            return self.scalars[name]
        raise KeyError(f"undefined name '{name}'")

    def eval(self, expr: Expr):
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, FloatLit):
            return expr.value
        if isinstance(expr, BoolLit):
            return expr.value
        if isinstance(expr, NilLit):
            return NIL
        if isinstance(expr, InfLit):
            return -INF if expr.negative else INF
        if isinstance(expr, Ident):
            return self.lookup(expr.name)
        if isinstance(expr, PropAccess):
            return self._eval_prop(expr)
        if isinstance(expr, MethodCall):
            return self._eval_method(expr)
        if isinstance(expr, Unary):
            value = self.eval(expr.operand)
            if expr.op is UnOp.NEG:
                return -value
            if expr.op is UnOp.NOT:
                return not value
            return abs(value)
        if isinstance(expr, Binary):
            return self._eval_binary(expr)
        if isinstance(expr, Ternary):
            return self.eval(expr.then) if self.eval(expr.cond) else self.eval(expr.other)
        if isinstance(expr, Cast):
            value = self.eval(expr.operand)
            if isinstance(expr.to_type, ty.PrimType) and expr.to_type.is_integral():
                return int(value)
            if isinstance(expr.to_type, ty.PrimType) and expr.to_type.prim is ty.Prim.BOOL:
                return bool(value)
            return float(value)
        if isinstance(expr, ReduceExpr):
            return self._eval_reduce(expr)
        raise TypeError(f"cannot evaluate {type(expr).__name__}")

    def _eval_prop(self, expr: PropAccess):
        target = expr.target
        if isinstance(target, MethodCall) and target.name == "ToEdge":
            edge = self._eval_method(target)
            return self.edge_props[expr.prop][edge]
        assert isinstance(target, Ident)
        if target.type is not None and target.type.is_edge():
            return self.edge_props[expr.prop][self.lookup(target.name)]
        return self.node_props[expr.prop][self.lookup(target.name)]

    def _eval_method(self, expr: MethodCall):
        target = expr.target
        assert isinstance(target, Ident)
        if target.name == self.graph_name:
            if expr.name == "NumNodes":
                return self.graph.num_nodes
            if expr.name == "NumEdges":
                return self.graph.num_edges
            if expr.name == "PickRandom":
                return self.rng.randrange(self.graph.num_nodes)
            raise ValueError(f"unknown graph method '{expr.name}'")
        v = self.lookup(target.name)
        if expr.name in ("Degree", "OutDegree", "NumNbrs"):
            return self.graph.out_degree(v)
        if expr.name == "InDegree":
            return self.graph.in_degree(v)
        if expr.name == "Id":
            return v
        if expr.name == "ToEdge":
            entry = self.iters.get(target.name)
            if entry is None or entry[1] is None:
                raise ValueError("ToEdge() requires a neighborhood iterator")
            return entry[1]
        raise ValueError(f"unknown node method '{expr.name}'")

    def _eval_binary(self, expr: Binary):
        op = expr.op
        if op is BinOp.AND:
            return self.eval(expr.lhs) and self.eval(expr.rhs)
        if op is BinOp.OR:
            return self.eval(expr.lhs) or self.eval(expr.rhs)
        a = self.eval(expr.lhs)
        b = self.eval(expr.rhs)
        if op is BinOp.ADD:
            return a + b
        if op is BinOp.SUB:
            return a - b
        if op is BinOp.MUL:
            return a * b
        if op is BinOp.DIV:
            from ..codegen.executable import gm_div

            return gm_div(a, b)
        if op is BinOp.MOD:
            return a % b
        if op is BinOp.EQ:
            return a == b
        if op is BinOp.NEQ:
            return a != b
        if op is BinOp.LT:
            return a < b
        if op is BinOp.GT:
            return a > b
        if op is BinOp.LE:
            return a <= b
        return a >= b

    def _eval_reduce(self, expr: ReduceExpr):
        op = expr.op
        if op is ReduceOp.SUM:
            acc: object = 0
        elif op is ReduceOp.COUNT:
            acc = 0
        elif op is ReduceOp.PRODUCT:
            acc = 1
        elif op is ReduceOp.MIN:
            acc = INF
        elif op is ReduceOp.MAX:
            acc = -INF
        elif op is ReduceOp.ANY:
            acc = False
        elif op is ReduceOp.ALL:
            acc = True
        elif op is ReduceOp.AVG:
            acc = 0.0
        total, count = acc, 0
        for node, edge in self._iterate(expr.source):
            self.iters[expr.iterator] = (node, edge)
            try:
                if op in (ReduceOp.ANY, ReduceOp.ALL):
                    value = self.eval(expr.filter)  # predicate form
                    if op is ReduceOp.ANY:
                        total = total or value
                        if total:
                            break
                    else:
                        total = total and value
                        if not total:
                            break
                    continue
                if expr.filter is not None and not self.eval(expr.filter):
                    continue
                if op is ReduceOp.COUNT:
                    total += 1
                    continue
                value = self.eval(expr.body)
                count += 1
                if op is ReduceOp.SUM or op is ReduceOp.AVG:
                    total += value
                elif op is ReduceOp.PRODUCT:
                    total *= value
                elif op is ReduceOp.MIN:
                    total = min(total, value)
                elif op is ReduceOp.MAX:
                    total = max(total, value)
            finally:
                self.iters.pop(expr.iterator, None)
        if op is ReduceOp.AVG:
            return 0.0 if count == 0 else total / count
        return total

    def _eval_group(self, expr: Expr, node: int):
        """Evaluate a group-assignment RHS for one node: graph-prop reads
        (``G.q``) resolve to that node's value."""
        if (
            isinstance(expr, PropAccess)
            and isinstance(expr.target, Ident)
            and expr.target.name == self.graph_name
        ):
            return self.node_props[expr.prop][node]
        if isinstance(expr, Binary):
            if expr.op is BinOp.AND:
                return self._eval_group(expr.lhs, node) and self._eval_group(
                    expr.rhs, node
                )
            if expr.op is BinOp.OR:
                return self._eval_group(expr.lhs, node) or self._eval_group(
                    expr.rhs, node
                )
            return self._apply_bin(
                expr.op, self._eval_group(expr.lhs, node), self._eval_group(expr.rhs, node)
            )
        if isinstance(expr, Unary):
            value = self._eval_group(expr.operand, node)
            if expr.op is UnOp.NEG:
                return -value
            if expr.op is UnOp.NOT:
                return not value
            return abs(value)
        if isinstance(expr, Ternary):
            return (
                self._eval_group(expr.then, node)
                if self._eval_group(expr.cond, node)
                else self._eval_group(expr.other, node)
            )
        if isinstance(expr, Cast):
            value = self._eval_group(expr.operand, node)
            if isinstance(expr.to_type, ty.PrimType) and expr.to_type.is_integral():
                return int(value)
            return float(value)
        return self.eval(expr)

    @staticmethod
    def _apply_bin(op: BinOp, a, b):
        from ..codegen.executable import gm_div

        table = {
            BinOp.ADD: lambda: a + b,
            BinOp.SUB: lambda: a - b,
            BinOp.MUL: lambda: a * b,
            BinOp.DIV: lambda: gm_div(a, b),
            BinOp.MOD: lambda: a % b,
            BinOp.EQ: lambda: a == b,
            BinOp.NEQ: lambda: a != b,
            BinOp.LT: lambda: a < b,
            BinOp.GT: lambda: a > b,
            BinOp.LE: lambda: a <= b,
            BinOp.GE: lambda: a >= b,
        }
        return table[op]()


def _reduce(op: ReduceOp, current, value):
    if op is ReduceOp.SUM:
        return current + value
    if op is ReduceOp.PRODUCT:
        return current * value
    if op is ReduceOp.MIN:
        return value if value < current else current
    if op is ReduceOp.MAX:
        return value if value > current else current
    if op is ReduceOp.ALL:
        return current and value
    if op is ReduceOp.ANY:
        return current or value
    raise ValueError(f"cannot reduce with {op}")


def interpret(
    source_or_proc: str | Procedure,
    graph: Graph,
    args: dict | None = None,
    *,
    seed: int = 17,
) -> InterpResult:
    """Run a Green-Marl procedure under shared-memory semantics."""
    if isinstance(source_or_proc, str):
        proc = parse_procedure(source_or_proc)
    else:
        proc = source_or_proc
    from ..lang.typecheck import typecheck

    typecheck(proc)
    return Interpreter(proc, graph, dict(args or {}), seed=seed).run()
