"""Shared-memory reference interpreter for Green-Marl."""

from .evaluator import InterpResult, Interpreter, interpret

__all__ = ["InterpResult", "Interpreter", "interpret"]
