"""Canonical Green-Marl -> Pregel IR translation and IR optimizations."""

from .translate import translate

__all__ = ["translate"]
