"""Performance optimizations on the Pregel IR (§4.2).

**State Merging** — two vertex phases scheduled in consecutive supersteps are
fused into one when no BSP barrier is required between them:

* the second phase must not *receive* messages (they could only have been
  sent by the first phase, and message delivery needs a superstep boundary);
* master instructions between the two phases must be safe to postpone: only
  global finalizations whose value the second phase neither reads (via the
  broadcast map) nor contributes to (via puts).

Each fused phase simply executes both bodies in order inside one
``compute()`` call, with the original loop filters pushed down as guards —
exactly the paper's merged ``do_state_4``.

**Intra-Loop State Merging** — inside a While loop whose body (after state
merging) is ``LEAD-seq, P₁, MID, P_k, TAIL-seq``, the last phase of iteration
*i* is fused with the first phase of iteration *i + 1*, guarded by a
compiler-inserted ``_is_first`` flag (Figure 5).  The merged loop executes
``P₁`` one extra time whose messages dangle and are dropped — the paper's
"safely dropped by the system as they have no side effect".  The pass
verifies the dataflow conditions that make the reordering and the extra
execution unobservable before applying it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.ast import BinOp, UnOp
from ..lang import types as ty
from ..transform.pipeline import RuleLog
from ..pregelir.ir import (
    Bin,
    Call,
    CastTo,
    Cond,
    Field,
    GlobalGet,
    Lit,
    MAssign,
    MBranch,
    MFinalize,
    MHalt,
    MInstr,
    MJump,
    MLabel,
    MVPhase,
    PregelIR,
    Un,
    VAppendInNbr,
    VAssignLocal,
    VExpr,
    VFieldAssign,
    VFieldReduce,
    VGlobalPut,
    VIf,
    VLocal,
    VMsgLoop,
    VSendNbrs,
    VSendTo,
    VStmt,
    VertexPhase,
)


# ---------------------------------------------------------------------------
# IR walkers
# ---------------------------------------------------------------------------


def _walk_exprs(stmts: list[VStmt]):
    for stmt in stmts:
        if isinstance(stmt, (VLocal, VAssignLocal, VFieldAssign, VFieldReduce, VGlobalPut)):
            yield stmt.expr
        elif isinstance(stmt, VIf):
            yield stmt.cond
            yield from _walk_exprs(stmt.then)
            yield from _walk_exprs(stmt.other)
        elif isinstance(stmt, VSendNbrs):
            yield from stmt.payload
        elif isinstance(stmt, VSendTo):
            yield stmt.target
            yield from stmt.payload
        elif isinstance(stmt, VAppendInNbr):
            yield stmt.source
        elif isinstance(stmt, VMsgLoop):
            yield from _walk_exprs(stmt.body)


def _expr_globals(expr: VExpr, out: set[str]) -> None:
    if isinstance(expr, GlobalGet):
        out.add(expr.name)
    for attr in ("lhs", "rhs", "operand", "cond", "then", "other"):
        child = getattr(expr, attr, None)
        if isinstance(child, VExpr):
            _expr_globals(child, out)


def phase_global_reads(phase: VertexPhase) -> set[str]:
    out: set[str] = set()
    for expr in _walk_exprs(phase.receive + phase.compute):
        _expr_globals(expr, out)
    if phase.filter is not None:
        _expr_globals(phase.filter, out)
    return out


def _collect_puts(stmts: list[VStmt], out: set[str]) -> None:
    for stmt in stmts:
        if isinstance(stmt, VGlobalPut):
            out.add(stmt.name)
        elif isinstance(stmt, VIf):
            _collect_puts(stmt.then, out)
            _collect_puts(stmt.other, out)
        elif isinstance(stmt, VMsgLoop):
            _collect_puts(stmt.body, out)


def phase_global_puts(phase: VertexPhase) -> set[str]:
    out: set[str] = set()
    _collect_puts(phase.receive, out)
    _collect_puts(phase.compute, out)
    return out


def _collect_field_writes(stmts: list[VStmt], out: set[str]) -> None:
    for stmt in stmts:
        if isinstance(stmt, (VFieldAssign, VFieldReduce)):
            out.add(stmt.name)
        elif isinstance(stmt, VAppendInNbr):
            out.add("_in_nbrs")
        elif isinstance(stmt, VIf):
            _collect_field_writes(stmt.then, out)
            _collect_field_writes(stmt.other, out)
        elif isinstance(stmt, VMsgLoop):
            _collect_field_writes(stmt.body, out)


def phase_field_writes(phase: VertexPhase, *, compute_only: bool = False) -> set[str]:
    out: set[str] = set()
    if not compute_only:
        _collect_field_writes(phase.receive, out)
    _collect_field_writes(phase.compute, out)
    return out


def _expr_fields(expr: VExpr, out: set[str]) -> None:
    if isinstance(expr, Field):
        out.add(expr.name)
    for attr in ("lhs", "rhs", "operand", "cond", "then", "other"):
        child = getattr(expr, attr, None)
        if isinstance(child, VExpr):
            _expr_fields(child, out)


def phase_field_reads(phase: VertexPhase) -> set[str]:
    out: set[str] = set()
    for expr in _walk_exprs(phase.receive + phase.compute):
        _expr_fields(expr, out)
    if phase.filter is not None:
        _expr_fields(phase.filter, out)
    return out


def guarded_compute(phase: VertexPhase) -> list[VStmt]:
    """A phase's compute body with its iteration filter pushed down."""
    if phase.filter is None or not phase.compute:
        return list(phase.compute)
    return [VIf(phase.filter, list(phase.compute), [])]


# ---------------------------------------------------------------------------
# State Merging
# ---------------------------------------------------------------------------


def merge_states(ir: PregelIR, rules: RuleLog | None = None) -> int:
    """Fuse consecutive vertex phases wherever no barrier is needed.

    Returns the number of merges performed.
    """
    merged = 0
    code = ir.master_code
    changed = True
    while changed:
        changed = False
        i = 0
        while i < len(code):
            if not isinstance(code[i], MVPhase):
                i += 1
                continue
            j = i + 1
            hoisted: list[MInstr] = []
            while j < len(code) and isinstance(code[j], (MFinalize, MAssign)):
                hoisted.append(code[j])
                j += 1
            if j >= len(code) or not isinstance(code[j], MVPhase):
                i += 1
                continue
            pa = ir.phases[code[i].phase]  # type: ignore[union-attr]
            pb = ir.phases[code[j].phase]  # type: ignore[union-attr]
            if not _can_merge(pa, pb, hoisted):
                i = j
                continue
            # Fuse pb into pa: run both bodies in one superstep.
            pa.compute = guarded_compute(pa) + guarded_compute(pb)
            pa.filter = None
            pa.receive = pa.receive + pb.receive  # pb.receive is empty (checked)
            pa.label = f"{pa.label}+{pb.label}"
            del ir.phases[pb.phase_id]
            # Postpone the hoisted finalizations to after the fused phase.
            code[i + 1 : j + 1] = hoisted
            merged += 1
            changed = True
    if merged and rules is not None:
        rules.mark("State Merging")
    return merged


def _can_merge(pa: VertexPhase, pb: VertexPhase, between: list[MInstr]) -> bool:
    if pb.receive:
        # pb's messages could only come from pa; delivery needs a barrier.
        return False
    if between:
        hoisted_names = {instr.name for instr in between}  # type: ignore[union-attr]
        if hoisted_names & phase_global_reads(pb):
            return False  # pb would observe the pre-update broadcast value
        finalize_names = {
            instr.name for instr in between if isinstance(instr, MFinalize)
        }
        if finalize_names & phase_global_puts(pb):
            return False  # the postponed finalize would double-count pb's puts
    return True


# ---------------------------------------------------------------------------
# Intra-Loop State Merging
# ---------------------------------------------------------------------------


@dataclass
class _LoopShape:
    """A While loop recognised in the master instruction stream."""

    head_branch: int | None  # index of the entry MBranch (while-form), else None
    body_start: int          # index just after the body label
    body_end: int            # index of the backedge instruction
    backedge: int            # index of MJump(head) or MBranch(cond, body, exit)
    body_label: str
    exit_label: str
    cond: VExpr | None       # loop condition (for while-form re-check)


def _find_innermost_loops(code: list[MInstr]) -> list[_LoopShape]:
    """Recognise straight-line loop bodies (no inner control flow) in the
    instruction stream, in both While and Do-While shapes."""
    labels = {
        instr.label: idx for idx, instr in enumerate(code) if isinstance(instr, MLabel)
    }

    def straight_line(span: list[MInstr]) -> bool:
        return not any(
            isinstance(s, (MLabel, MJump, MBranch, MHalt)) for s in span
        )

    loops: list[_LoopShape] = []
    for idx, instr in enumerate(code):
        if isinstance(instr, MJump) and labels.get(instr.label, len(code)) < idx:
            # while-form: [head:][MBranch(c, body, exit)][body:][B*][MJump(head)]
            head = labels[instr.label]
            if head + 2 >= idx:
                continue
            branch = code[head + 1]
            body_lbl = code[head + 2]
            if not (isinstance(branch, MBranch) and isinstance(body_lbl, MLabel)):
                continue
            if branch.on_true != body_lbl.label:
                continue
            if not straight_line(code[head + 3 : idx]):
                continue
            loops.append(
                _LoopShape(
                    head_branch=head + 1,
                    body_start=head + 3,
                    body_end=idx,
                    backedge=idx,
                    body_label=body_lbl.label,
                    exit_label=branch.on_false,
                    cond=branch.cond,
                )
            )
        elif isinstance(instr, MBranch) and labels.get(instr.on_true, len(code)) < idx:
            # do-while-form: [body:][B*][MBranch(c, body, exit)]
            start = labels[instr.on_true]
            if not straight_line(code[start + 1 : idx]):
                continue
            loops.append(
                _LoopShape(
                    head_branch=None,
                    body_start=start + 1,
                    body_end=idx,
                    backedge=idx,
                    body_label=instr.on_true,
                    exit_label=instr.on_false,
                    cond=instr.cond,
                )
            )
    return loops


def merge_intra_loop(ir: PregelIR, rules: RuleLog | None = None) -> int:
    """Apply Intra-Loop State Merging to every eligible While loop."""
    applied = 0
    while True:
        loop = _next_candidate(ir)
        if loop is None:
            break
        _apply_intra_loop(ir, loop)
        applied += 1
    if applied and rules is not None:
        rules.mark("Intra-Loop Merge")
    return applied


def _next_candidate(ir: PregelIR) -> _LoopShape | None:
    for loop in _find_innermost_loops(ir.master_code):
        if _eligible(ir, loop):
            return loop
    return None


def _eligible(ir: PregelIR, loop: _LoopShape) -> bool:
    code = ir.master_code
    body = code[loop.body_start : loop.body_end]
    phases = [instr.phase for instr in body if isinstance(instr, MVPhase)]
    if len(phases) < 2:
        return False
    first = ir.phases[phases[0]]
    last = ir.phases[phases[-1]]
    if first.phase_id == last.phase_id:
        return False
    if first.receive:
        return False
    if phase_global_puts(first):
        # The extra execution would leave stray puts for later finalizes.
        return False
    if not last.receive and not last.compute:
        return False
    # Master instructions around the boundary (TAIL after last, LEAD before
    # first): the first phase now runs *before* them each iteration, so it may
    # not read any global they write.
    first_idx = next(i for i, s in enumerate(body) if isinstance(s, MVPhase))
    last_idx = max(i for i, s in enumerate(body) if isinstance(s, MVPhase))
    lead = body[:first_idx]
    tail = body[last_idx + 1 :]
    boundary_writes: set[str] = set()
    for instr in lead + tail:
        if isinstance(instr, (MAssign, MFinalize)):
            boundary_writes.add(instr.name)
    if boundary_writes & phase_global_reads(first):
        return False
    # The extra execution of `first` must be unobservable: the fields it
    # writes may only be consumed by phases of this loop body.
    extra_writes = phase_field_writes(first, compute_only=True)
    if extra_writes:
        loop_phase_ids = set(phases)
        for phase in ir.phases.values():
            if phase.phase_id in loop_phase_ids:
                continue
            if extra_writes & phase_field_reads(phase):
                return False
        output_fields = {p.name for p in ir.params if p.is_output}
        if extra_writes & output_fields:
            return False
    # Structural invariant: the dangling messages of the extra execution must
    # not be picked up by whatever runs after the loop.  Receive phases always
    # directly follow their send phase, so this only needs a sanity check.
    first_tags = first.sent_tags()
    if first_tags:
        exit_phase = _phase_after_label(ir, loop.exit_label)
        if exit_phase is not None and exit_phase.received_tags() & first_tags:
            return False
    # Only handle loops we have not already rewritten (flag convention).
    if any(
        isinstance(instr, MAssign) and instr.name.startswith("_is_first")
        for instr in body
    ):
        return False
    return True


def _phase_after_label(ir: PregelIR, label: str) -> VertexPhase | None:
    code = ir.master_code
    idx = next(
        (i for i, s in enumerate(code) if isinstance(s, MLabel) and s.label == label),
        None,
    )
    if idx is None:
        return None
    for instr in code[idx + 1 :]:
        if isinstance(instr, MVPhase):
            return ir.phases[instr.phase]
        if isinstance(instr, (MJump, MBranch, MHalt)):
            return None
    return None


_FLAG_SEQ = [0]


def _apply_intra_loop(ir: PregelIR, loop: _LoopShape) -> None:
    code = ir.master_code
    body = code[loop.body_start : loop.body_end]
    first_idx = next(i for i, s in enumerate(body) if isinstance(s, MVPhase))
    last_idx = max(i for i, s in enumerate(body) if isinstance(s, MVPhase))
    lead = body[:first_idx]
    mid = body[first_idx + 1 : last_idx]
    tail = body[last_idx + 1 :]
    first = ir.phases[body[first_idx].phase]  # type: ignore[union-attr]
    last = ir.phases[body[last_idx].phase]  # type: ignore[union-attr]

    _FLAG_SEQ[0] += 1
    flag = f"_is_first_{_FLAG_SEQ[0]}"
    ir.master_fields[flag] = ty.BOOL

    # Build the merged phase: last-of-iteration-i parts (guarded by !flag),
    # then first-of-iteration-(i+1) parts.
    merged = VertexPhase(
        phase_id=max(ir.phases) + 1,
        label=f"intra[{last.label}+{first.label}]",
    )
    merged.receive = list(last.receive)
    merged.compute = [
        VIf(Un(UnOp.NOT, GlobalGet(flag)), guarded_compute(last), [])
    ] + guarded_compute(first)
    ir.phases[merged.phase_id] = merged
    del ir.phases[first.phase_id]
    del ir.phases[last.phase_id]

    suffix = f"il{_FLAG_SEQ[0]}"
    l_head = f"ilm_head_{suffix}"
    l_first = f"ilm_first_{suffix}"
    l_rest = f"ilm_rest_{suffix}"
    l_cont = f"ilm_cont_{suffix}"
    l_mid = f"ilm_mid_{suffix}"
    cond = loop.cond
    assert cond is not None

    # Layout (Figure 5(b)): per superstep the merged phase runs
    # [P_last of iteration i, P_first of iteration i+1]; the master parts
    # around the iteration boundary (TAIL_i, condition check, LEAD_{i+1})
    # execute — in their original order — in the following superstep's master
    # slot.  On the first pass the flag skips TAIL and the stale P_last part.
    new_body: list[MInstr] = [
        MAssign(flag, Lit(True)),
        *lead,
        MLabel(l_head),
        MVPhase(merged.phase_id),
        MBranch(GlobalGet(flag), l_first, l_rest),
        MLabel(l_first),
        MAssign(flag, Lit(False)),
        MJump(l_mid),
        MLabel(l_rest),
        *tail,
        MBranch(cond, l_cont, loop.exit_label),
        MLabel(l_cont),
        *lead_clone(lead),
        MJump(l_mid),
        MLabel(l_mid),
        *mid,
        MJump(l_head),
    ]

    if loop.head_branch is not None:
        # while-form: keep the entry check, replace [branch][label][body][jump]
        entry = code[loop.head_branch]
        assert isinstance(entry, MBranch)
        entry_branch = MBranch(entry.cond, loop.body_label, loop.exit_label)
        span_start = loop.head_branch
        replacement = [entry_branch, MLabel(loop.body_label)] + new_body
        code[span_start : loop.body_end + 1] = replacement
    else:
        # do-while-form: replace [label][body][branch]
        span_start = loop.body_start - 1
        replacement = [MLabel(loop.body_label)] + new_body
        code[span_start : loop.body_end + 1] = replacement


def lead_clone(lead: list[MInstr]) -> list[MInstr]:
    """LEAD instructions appear twice (loop entry and per-iteration); the
    master interpreter is stateless over instructions so sharing is fine, but
    we re-emit fresh objects to keep the stream unambiguous for printing."""
    out: list[MInstr] = []
    for instr in lead:
        if isinstance(instr, MAssign):
            out.append(MAssign(instr.name, instr.expr))
        elif isinstance(instr, MFinalize):
            out.append(MFinalize(instr.name, instr.op))
        else:
            out.append(instr)
    return out


# ---------------------------------------------------------------------------
# Entry
# ---------------------------------------------------------------------------


def optimize(
    ir: PregelIR,
    rules: RuleLog | None = None,
    *,
    state_merging: bool = True,
    intra_loop_merging: bool = True,
    tracer=None,
) -> PregelIR:
    """Apply the §4.2 optimizations in place and return ``ir``.

    ``tracer`` (a ``repro.obs`` tracer) records one ``compile.pass`` event
    per optimization, including the vertex-phase count before and after —
    the state-machine shrinkage the paper's Figure 5 illustrates.
    """
    traced = tracer is not None and tracer.enabled

    def _pass(rule: str, fn) -> None:
        before = len(ir.phases)
        if not traced:
            fn()
            return
        t0 = tracer.now()
        applied = bool(fn())  # merge count from this invocation, not the
        tracer.event(  # cumulative rule log (the re-run may be a no-op)
            "compile.pass",
            cat="compile",
            det={
                "pass": rule,
                "applied": applied,
                "states_before": before,
                "states_after": len(ir.phases),
            },
            ts=t0,
            dur=tracer.now() - t0,
        )

    if state_merging:
        _pass("State Merging", lambda: merge_states(ir, rules))
    if intra_loop_merging:
        _pass("Intra-Loop Merge", lambda: merge_intra_loop(ir, rules))
        if state_merging:
            _pass("State Merging", lambda: merge_states(ir, rules))
    return ir
