"""Message-combiner inference — an extension beyond the paper.

Pregel lets programs register a *combiner* that folds messages headed for the
same vertex at the sender, cutting network traffic for reduction-shaped
communication.  The paper's compiler does not emit combiners (like
vote-to-halt, it is listed among the things manual programmers tune); we add
the analysis as an opt-in optimization and measure its effect in the
ablation benchmarks.

A tag is combinable when every receive site for it is exactly one

    VFieldReduce(field, op, MsgField(0))

with the same commutative-associative ``op`` everywhere and a single-field
payload: then folding payloads with ``op`` before delivery is
observationally equivalent to applying them one by one.  (Guarded or
multi-statement receives — e.g. SSSP's updated-flag logic — are conservatively
rejected; correct combining there would require a per-program proof.)
"""

from __future__ import annotations

from typing import Callable

from ..pregel.globalmap import GlobalOp, combine
from ..pregelir.ir import MsgField, PregelIR, VFieldReduce, VIf, VMsgLoop, VStmt

#: Reductions that are commutative and associative — safe to pre-fold.
_COMBINABLE_OPS = (
    GlobalOp.SUM,
    GlobalOp.PRODUCT,
    GlobalOp.MIN,
    GlobalOp.MAX,
    GlobalOp.AND,
    GlobalOp.OR,
)


def _msg_loops(stmts: list[VStmt], out: list[VMsgLoop]) -> None:
    for stmt in stmts:
        if isinstance(stmt, VMsgLoop):
            out.append(stmt)
        elif isinstance(stmt, VIf):
            _msg_loops(stmt.then, out)
            _msg_loops(stmt.other, out)


def infer_combiners(ir: PregelIR) -> dict[int, GlobalOp]:
    """Tags whose receive code is a pure single-field reduction, with the op
    to combine by."""
    loops: list[VMsgLoop] = []
    for phase in ir.phases.values():
        _msg_loops(phase.receive, loops)
        _msg_loops(phase.compute, loops)

    per_tag: dict[int, set[GlobalOp] | None] = {}
    for loop in loops:
        ops = per_tag.setdefault(loop.tag, set())
        if ops is None:
            continue
        if (
            len(loop.body) == 1
            and isinstance(loop.body[0], VFieldReduce)
            and loop.body[0].op in _COMBINABLE_OPS
            and isinstance(loop.body[0].expr, MsgField)
            and loop.body[0].expr.index == 0
        ):
            ops.add(loop.body[0].op)
        else:
            per_tag[loop.tag] = None  # disqualified

    result: dict[int, GlobalOp] = {}
    for tag, ops in per_tag.items():
        if ops and len(ops) == 1 and len(ir.messages[tag].fields) == 1:
            result[tag] = next(iter(ops))
    return result


def combiner_functions(
    combiners: dict[int, GlobalOp]
) -> dict[int, Callable[[tuple, tuple], tuple]]:
    """Engine-ready fold functions: combine two messages of the same tag."""

    def make(tag: int, op: GlobalOp):
        def fold(a: tuple, b: tuple) -> tuple:
            return (tag, combine(op, a[1], b[1]))

        return fold

    return {tag: make(tag, op) for tag, op in combiners.items()}
