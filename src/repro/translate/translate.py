"""Translation of Pregel-canonical Green-Marl into Pregel IR (§3.1).

Implements every direct translation rule of the paper:

* **State Machine Construction** — sequential code becomes a master
  instruction stream; each vertex-parallel loop becomes a vertex phase,
  yielded to by an :class:`MVPhase` instruction.  While/If over scalars are
  branches in the master stream (the ``_next_state`` logic of the generated
  GPS code), so they cost no extra timesteps.
* **Vertex and Global Object Construction** — procedure-level scalars become
  master fields; vertex reads of them go through the broadcast global-objects
  map; vertex-side reductions into them become ``Global.put`` with a
  reduction object, folded into the master field by an :class:`MFinalize` in
  the following superstep.
* **Neighborhood Communication** — an inner loop writing its iterator's
  properties becomes a send in its outer phase plus a receive phase
  immediately after.  Message payloads are inferred by dataflow: the maximal
  subexpressions evaluable at the sender travel in the message (deduplicated
  structurally); subexpressions evaluable at the receiver (its own fields,
  broadcast globals, literals) are recomputed there.
* **Multiple Communication** — every send site gets its own message tag;
  payload layouts are recorded per tag for the message class generator.
* **Random Writing** — property writes through a node variable become
  ``sendToNode`` messages applied at the receiver.
* **Edge Properties** — ``t.ToEdge().prop`` reads become per-edge payload
  fields of the enclosing out-neighbor send.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import ast
from ..lang.ast import (
    Assign,
    Binary,
    BinOp,
    Block,
    BoolLit,
    Cast,
    DeferredAssign,
    Expr,
    FloatLit,
    Foreach,
    Ident,
    If,
    InfLit,
    IntLit,
    IterKind,
    MethodCall,
    NilLit,
    Procedure,
    PropAccess,
    ReduceAssign,
    ReduceOp,
    Return,
    Stmt,
    Ternary,
    Unary,
    VarDecl,
    While,
)
from ..lang import types as ty
from ..lang.errors import TranslationError
from ..pregel.globalmap import GlobalOp
from ..transform.pipeline import CanonicalProgram, RuleLog
from ..transform.rewriter import substitute_ident
from ..pregelir import ir
from ..pregelir.ir import (
    Bin,
    Call,
    CastTo,
    Cond,
    Field,
    GlobalGet,
    Inf,
    Lit,
    Local,
    MAssign,
    MBranch,
    MFinalize,
    MHalt,
    MInstr,
    MJump,
    MLabel,
    MsgField,
    MVPhase,
    MyId,
    MessageLayout,
    Nil,
    ParamSpec,
    PregelIR,
    Un,
    VAppendInNbr,
    VAssignLocal,
    VExpr,
    VFieldAssign,
    VFieldReduce,
    VGlobalPut,
    VIf,
    VLocal,
    VMsgLoop,
    VSendNbrs,
    VSendTo,
    VStmt,
    VertexPhase,
)

_REDUCE_TO_GLOBAL: dict[ReduceOp, GlobalOp] = {
    ReduceOp.SUM: GlobalOp.SUM,
    ReduceOp.PRODUCT: GlobalOp.PRODUCT,
    ReduceOp.MIN: GlobalOp.MIN,
    ReduceOp.MAX: GlobalOp.MAX,
    ReduceOp.ALL: GlobalOp.AND,
    ReduceOp.ANY: GlobalOp.OR,
}

#: Who can evaluate a leaf access during neighborhood communication.
_SENDER, _RECEIVER, _BOTH = "sender", "receiver", "both"


@dataclass
class _VertexEnv:
    """Name environment while translating one vertex-parallel loop."""

    outer_iter: str
    locals: set[str] = field(default_factory=set)
    inner_iter: str | None = None


class Translator:
    def __init__(self, canonical: CanonicalProgram):
        self.proc: Procedure = canonical.procedure
        self.check = canonical.check
        self.rules: RuleLog = canonical.rules
        self.graph_name = canonical.check.graph_name

        self.mcode: list[MInstr] = []
        self.phases: dict[int, VertexPhase] = {}
        self.messages: dict[int, MessageLayout] = {}
        self.vertex_fields: dict[str, ty.Type] = {}
        self.master_fields: dict[str, ty.Type] = {}
        self.params: list[ParamSpec] = []
        self.needs_in_nbrs = False
        self._label_count = 0
        self._phase_count = 0

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------

    def translate(self) -> PregelIR:
        self.rules.mark("State Machine Const.")
        self.rules.mark("Message Class Gen.")
        self._collect_fields()
        self._seq_block(self.proc.body)
        self.mcode.append(MHalt(None))
        if self.needs_in_nbrs:
            self._insert_in_nbrs_prologue()
            self.rules.mark("Incoming Neighbors")
        self._check_put_consistency()
        if self.master_fields:
            self.rules.mark("Global Object")
        if len(self.messages) > 1:
            self.rules.mark("Multiple Comm.")
        return PregelIR(
            name=self.proc.name,
            master_code=self.mcode,
            phases=self.phases,
            vertex_fields=self.vertex_fields,
            master_fields=self.master_fields,
            messages=self.messages,
            params=self.params,
            return_type=self.proc.return_type,
            needs_in_nbrs=self.needs_in_nbrs,
        )

    def _check_put_consistency(self) -> None:
        """Each global object holds exactly one reduction per superstep: two
        different operators reducing into the same scalar within one vertex
        phase cannot be expressed in Pregel (and is nondeterministic in
        Green-Marl's parallel semantics)."""
        for phase in self.phases.values():
            ops: dict[str, GlobalOp] = {}
            for stmt in _walk_vstmts(phase.receive + phase.compute):
                if isinstance(stmt, VGlobalPut):
                    seen = ops.get(stmt.name)
                    if seen is not None and seen is not stmt.op:
                        raise TranslationError(
                            f"scalar '{stmt.name}' is reduced with both "
                            f"'{seen.value}' and '{stmt.op.value}' in the same "
                            "vertex-parallel phase; a global object supports "
                            "one reduction at a time"
                        )
                    ops[stmt.name] = stmt.op

    # ------------------------------------------------------------------
    # Field collection
    # ------------------------------------------------------------------

    def _collect_fields(self) -> None:
        for param in self.proc.params:
            ptype = param.param_type
            self.params.append(ParamSpec(param.name, ptype, param.is_output))
            if ptype.is_graph():
                continue
            if isinstance(ptype, ty.NodePropType):
                self._add_vertex_field(param.name, ptype.elem)
            elif isinstance(ptype, ty.EdgePropType):
                pass  # edge properties live on the graph's out-edge arrays
            else:
                self._add_master_field(param.name, ptype)
        self._collect_block_fields(self.proc.body, sequential=True)

    def _collect_block_fields(self, block: Block, *, sequential: bool) -> None:
        for stmt in block.stmts:
            if isinstance(stmt, VarDecl):
                if isinstance(stmt.decl_type, ty.NodePropType):
                    for name in stmt.names:
                        self._add_vertex_field(name, stmt.decl_type.elem)
                elif isinstance(stmt.decl_type, ty.EdgePropType):
                    raise TranslationError(
                        "local edge-property declarations are not supported",
                        stmt.span,
                    )
                elif sequential:
                    for name in stmt.names:
                        self._add_master_field(name, stmt.decl_type)
            elif isinstance(stmt, If):
                self._collect_block_fields(stmt.then, sequential=sequential)
                if stmt.other is not None:
                    self._collect_block_fields(stmt.other, sequential=sequential)
            elif isinstance(stmt, While):
                self._collect_block_fields(stmt.body, sequential=sequential)
            elif isinstance(stmt, Foreach):
                pass  # loop-body declarations become compute-function locals
            elif isinstance(stmt, Block):
                self._collect_block_fields(stmt, sequential=sequential)

    def _add_vertex_field(self, name: str, elem: ty.Type) -> None:
        existing = self.vertex_fields.get(name)
        if existing is not None and existing != elem:
            raise TranslationError(
                f"vertex field '{name}' declared with conflicting types "
                f"{existing} and {elem}"
            )
        self.vertex_fields[name] = elem

    def _add_master_field(self, name: str, t: ty.Type) -> None:
        existing = self.master_fields.get(name)
        if existing is not None and existing != t:
            raise TranslationError(
                f"master field '{name}' declared with conflicting types "
                f"{existing} and {t}"
            )
        self.master_fields[name] = t

    # ------------------------------------------------------------------
    # Labels / phases / tags
    # ------------------------------------------------------------------

    def _fresh_label(self, hint: str) -> str:
        self._label_count += 1
        return f"{hint}_{self._label_count}"

    def _new_phase(self, label: str) -> VertexPhase:
        phase = VertexPhase(self._phase_count, label)
        self.phases[self._phase_count] = phase
        self._phase_count += 1
        return phase

    def _new_tag(self, label: str) -> MessageLayout:
        tag = len(self.messages)
        layout = MessageLayout(tag, label)
        self.messages[tag] = layout
        return layout

    # ------------------------------------------------------------------
    # Sequential (master) translation
    # ------------------------------------------------------------------

    def _seq_block(self, block: Block) -> None:
        for stmt in block.stmts:
            self._seq_stmt(stmt)

    def _seq_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, VarDecl):
            if stmt.decl_type.is_property():
                return
            if stmt.init is not None:
                for name in stmt.names:
                    self.mcode.append(MAssign(name, self._mexpr(stmt.init)))
        elif isinstance(stmt, Assign):
            target = stmt.target
            if not isinstance(target, Ident):
                raise TranslationError(
                    "property write in sequential phase (not canonical)", stmt.span
                )
            self.mcode.append(MAssign(target.name, self._mexpr(stmt.expr)))
        elif isinstance(stmt, ReduceAssign):
            target = stmt.target
            assert isinstance(target, Ident)
            self.mcode.append(
                MAssign(
                    target.name,
                    _apply_reduce(stmt.op, Field(target.name), self._mexpr(stmt.expr)),
                )
            )
        elif isinstance(stmt, If):
            self._seq_if(stmt)
        elif isinstance(stmt, While):
            self._seq_while(stmt)
        elif isinstance(stmt, Return):
            result = self._mexpr(stmt.expr) if stmt.expr is not None else None
            self.mcode.append(MHalt(result))
        elif isinstance(stmt, Foreach):
            self._parallel_loop(stmt)
        elif isinstance(stmt, Block):
            self._seq_block(stmt)
        else:
            raise TranslationError(
                f"cannot translate {type(stmt).__name__} in a sequential phase",
                stmt.span,
            )

    def _seq_if(self, stmt: If) -> None:
        l_then = self._fresh_label("then")
        l_else = self._fresh_label("else")
        l_end = self._fresh_label("endif")
        cond = self._mexpr(stmt.cond)
        self.mcode.append(MBranch(cond, l_then, l_else if stmt.other else l_end))
        self.mcode.append(MLabel(l_then))
        self._seq_block(stmt.then)
        self.mcode.append(MJump(l_end))
        if stmt.other is not None:
            self.mcode.append(MLabel(l_else))
            self._seq_block(stmt.other)
            self.mcode.append(MJump(l_end))
        self.mcode.append(MLabel(l_end))

    def _seq_while(self, stmt: While) -> None:
        l_head = self._fresh_label("while")
        l_body = self._fresh_label("body")
        l_exit = self._fresh_label("endwhile")
        if stmt.do_while:
            self.mcode.append(MLabel(l_body))
            self._seq_block(stmt.body)
            self.mcode.append(MBranch(self._mexpr(stmt.cond), l_body, l_exit))
        else:
            self.mcode.append(MLabel(l_head))
            self.mcode.append(MBranch(self._mexpr(stmt.cond), l_body, l_exit))
            self.mcode.append(MLabel(l_body))
            self._seq_block(stmt.body)
            self.mcode.append(MJump(l_head))
        self.mcode.append(MLabel(l_exit))

    # ------------------------------------------------------------------
    # Vertex-parallel translation
    # ------------------------------------------------------------------

    def _parallel_loop(self, loop: Foreach) -> None:
        env = _VertexEnv(outer_iter=loop.iterator)
        phase = self._new_phase(f"par@{loop.span.line}")
        recv: list[VStmt] = []
        self._set_recv(recv)
        finalizes: list[MFinalize] = []
        recv_finalizes: list[MFinalize] = []
        deferred: list[VStmt] = []
        compute = self._vertex_block(
            loop, loop.body, env, recv, finalizes, recv_finalizes, deferred
        )
        compute.extend(deferred)
        phase.filter = self._vexpr(loop.filter, env) if loop.filter is not None else None
        phase.compute = compute
        self.mcode.append(MVPhase(phase.phase_id))
        self.mcode.extend(_dedupe_finalizes(finalizes))
        if recv:
            recv_phase = self._new_phase(f"recv@{loop.span.line}")
            recv_phase.receive = recv
            self.mcode.append(MVPhase(recv_phase.phase_id))
            self.mcode.extend(_dedupe_finalizes(recv_finalizes))

    def _vertex_block(
        self,
        loop: Foreach,
        block: Block,
        env: _VertexEnv,
        recv: list[VStmt],
        finalizes: list[MFinalize],
        recv_finalizes: list[MFinalize],
        deferred: list[VStmt],
    ) -> list[VStmt]:
        out: list[VStmt] = []
        for stmt in block.stmts:
            if isinstance(stmt, VarDecl):
                if stmt.init is None:
                    raise TranslationError(
                        "uninitialized local in a parallel loop", stmt.span
                    )
                for name in stmt.names:
                    env.locals.add(name)
                    out.append(VLocal(name, self._vexpr(stmt.init, env)))
            elif isinstance(stmt, Assign):
                out.extend(self._vertex_assign(loop, stmt, env, recv))
            elif isinstance(stmt, ReduceAssign):
                out.extend(
                    self._vertex_reduce_assign(loop, stmt, env, recv, finalizes)
                )
            elif isinstance(stmt, DeferredAssign):
                # BSP makes cross-vertex reads see pre-superstep values anyway;
                # to preserve *intra*-vertex read-after-deferred-write order we
                # evaluate now and store at the end of the compute part.
                target = stmt.target
                assert isinstance(target, PropAccess)
                self._require_own_prop(target, env, stmt)
                tmp = f"_def_{len(deferred)}"
                out.append(VLocal(tmp, self._vexpr(stmt.expr, env)))
                deferred.append(VFieldAssign(target.prop, Local(tmp)))
            elif isinstance(stmt, If):
                then = self._vertex_block(
                    loop, stmt.then, env, recv, finalizes, recv_finalizes, deferred
                )
                other = (
                    self._vertex_block(
                        loop, stmt.other, env, recv, finalizes, recv_finalizes, deferred
                    )
                    if stmt.other is not None
                    else []
                )
                out.append(VIf(self._vexpr(stmt.cond, env), then, other))
            elif isinstance(stmt, Foreach):
                out.extend(
                    self._neighborhood_comm(loop, stmt, env, recv, recv_finalizes)
                )
            elif isinstance(stmt, Block):
                out.extend(
                    self._vertex_block(
                        loop, stmt, env, recv, finalizes, recv_finalizes, deferred
                    )
                )
            else:
                raise TranslationError(
                    f"cannot translate {type(stmt).__name__} in a vertex phase",
                    stmt.span,
                )
        return out

    def _require_own_prop(self, target: PropAccess, env: _VertexEnv, stmt: Stmt) -> None:
        if not (
            isinstance(target.target, Ident) and target.target.name == env.outer_iter
        ):
            raise TranslationError(
                "deferred assignment target must be the iterating vertex",
                stmt.span,
            )

    def _vertex_assign(
        self, loop: Foreach, stmt: Assign, env: _VertexEnv, recv: list[VStmt]
    ) -> list[VStmt]:
        target = stmt.target
        if isinstance(target, Ident):
            if target.name in env.locals:
                return [VAssignLocal(target.name, self._vexpr(stmt.expr, env))]
            raise TranslationError(
                f"plain assignment to global scalar '{target.name}' in a "
                "parallel loop is a race",
                stmt.span,
            )
        assert isinstance(target, PropAccess) and isinstance(target.target, Ident)
        owner = target.target.name
        if owner == env.outer_iter:
            return [VFieldAssign(target.prop, self._vexpr(stmt.expr, env))]
        # Random write (§3.1): overwrite another vertex's property.
        return self._random_write(loop, stmt, target, GlobalOp.OVERWRITE, env)

    def _vertex_reduce_assign(
        self,
        loop: Foreach,
        stmt: ReduceAssign,
        env: _VertexEnv,
        recv: list[VStmt],
        finalizes: list[MFinalize],
    ) -> list[VStmt]:
        target = stmt.target
        op = _REDUCE_TO_GLOBAL[stmt.op]
        if isinstance(target, Ident):
            if target.name in env.locals:
                return [
                    VAssignLocal(
                        target.name,
                        _apply_reduce(stmt.op, Local(target.name), self._vexpr(stmt.expr, env)),
                    )
                ]
            if target.name not in self.master_fields:
                raise TranslationError(
                    f"reduction into unknown scalar '{target.name}'", stmt.span
                )
            finalizes.append(MFinalize(target.name, op))
            return [VGlobalPut(target.name, op, self._vexpr(stmt.expr, env))]
        assert isinstance(target, PropAccess) and isinstance(target.target, Ident)
        owner = target.target.name
        if owner == env.outer_iter:
            return [VFieldReduce(target.prop, op, self._vexpr(stmt.expr, env))]
        return self._random_write(loop, stmt, target, op, env)

    # -- random writing -----------------------------------------------------

    def _random_write(
        self,
        loop: Foreach,
        stmt: Stmt,
        target: PropAccess,
        op: GlobalOp,
        env: _VertexEnv,
    ) -> list[VStmt]:
        assert isinstance(stmt, (Assign, ReduceAssign))
        self.rules.mark("Random Writing")
        owner = target.target
        assert isinstance(owner, Ident)
        layout = self._new_tag(f"randw_{target.prop}@{stmt.span.line}")
        splitter = _PayloadSplitter(self, env, receiver_iter=None, layout=layout)
        recv_expr = splitter.split(stmt.expr)
        if isinstance(stmt, ReduceAssign):
            apply: VStmt = VFieldReduce(target.prop, op, recv_expr)
        else:
            apply = VFieldAssign(target.prop, recv_expr)
        self._attach_recv(loop, VMsgLoop(layout.tag, [apply]))
        return [VSendTo(self._vexpr(owner, env), layout.tag, splitter.payload_exprs)]

    def _attach_recv(self, loop: Foreach, msg_loop: VMsgLoop) -> None:
        # The receive statements accumulate on the list passed through the
        # translation of this loop; stored on the instance for simplicity.
        self._current_recv.append(msg_loop)

    # -- neighborhood communication ----------------------------------------------

    def _neighborhood_comm(
        self,
        loop: Foreach,
        inner: Foreach,
        env: _VertexEnv,
        recv: list[VStmt],
        recv_finalizes: list[MFinalize],
    ) -> list[VStmt]:
        direction = "out" if inner.source.kind is IterKind.NBRS else "in"
        if direction == "in":
            self.needs_in_nbrs = True
        layout = self._new_tag(f"nbr@{inner.span.line}")

        # Split the filter into sender-side and receiver-side conjuncts.
        sender_conjuncts: list[Expr] = []
        receiver_conjuncts: list[Expr] = []
        for conjunct in _conjuncts(inner.filter):
            if _mentions_var(conjunct, inner.iterator):
                receiver_conjuncts.append(conjunct)
            else:
                sender_conjuncts.append(conjunct)

        # Inline inner-body locals (e.g. ``Edge e = s.ToEdge();``).
        body_stmts = _inline_inner_locals(inner.body, inner.span)

        splitter = _PayloadSplitter(self, env, receiver_iter=inner.iterator, layout=layout)
        recv_env = _VertexEnv(outer_iter=inner.iterator)

        apply_stmts: list[VStmt] = []
        for stmt in body_stmts:
            apply_stmts.append(
                self._receive_apply(stmt, inner, splitter, recv_env, recv_finalizes)
            )
        guard_exprs = [splitter.split(c) for c in receiver_conjuncts]
        if guard_exprs:
            guard: VExpr = guard_exprs[0]
            for g in guard_exprs[1:]:
                guard = Bin(BinOp.AND, guard, g)
            apply_stmts = [VIf(guard, apply_stmts, [])]
        self._current_recv.append(VMsgLoop(layout.tag, apply_stmts))

        uses_edge_props = splitter.uses_edge_props
        if uses_edge_props:
            self.rules.mark("Edge Property")
            if direction == "in":
                raise TranslationError(
                    "edge properties cannot be read when sending to incoming "
                    "neighbors (§3.1, Edge Properties)",
                    inner.span,
                )
        send: VStmt = VSendNbrs(layout.tag, splitter.payload_exprs, direction)
        if sender_conjuncts:
            cond = self._vexpr(ast.land(*sender_conjuncts), env)
            send = VIf(cond, [send], [])
        return [send]

    def _receive_apply(
        self,
        stmt: Stmt,
        inner: Foreach,
        splitter: "_PayloadSplitter",
        recv_env: _VertexEnv,
        recv_finalizes: list[MFinalize],
    ) -> VStmt:
        if isinstance(stmt, (Assign, ReduceAssign)):
            target = stmt.target
            value = splitter.split(stmt.expr)
            if isinstance(target, Ident):
                # Global reduction performed at the receiver (e.g. the BFS
                # expansion's ``_fin &= False``).
                if not isinstance(stmt, ReduceAssign):
                    raise TranslationError(
                        "plain scalar assignment inside an inner loop", stmt.span
                    )
                op = _REDUCE_TO_GLOBAL[stmt.op]
                recv_finalizes.append(MFinalize(target.name, op))
                return VGlobalPut(target.name, op, value)
            assert isinstance(target, PropAccess) and isinstance(target.target, Ident)
            if target.target.name != inner.iterator:
                raise TranslationError(
                    "inner-loop write must target the inner iterator "
                    "(not canonical)",
                    stmt.span,
                )
            if isinstance(stmt, ReduceAssign):
                return VFieldReduce(
                    target.prop, _REDUCE_TO_GLOBAL[stmt.op], value
                )
            return VFieldAssign(target.prop, value)
        if isinstance(stmt, If):
            cond = splitter.split(stmt.cond)
            then = [
                self._receive_apply(s, inner, splitter, recv_env, recv_finalizes)
                for s in stmt.then.stmts
            ]
            other = (
                [
                    self._receive_apply(s, inner, splitter, recv_env, recv_finalizes)
                    for s in stmt.other.stmts
                ]
                if stmt.other is not None
                else []
            )
            return VIf(cond, then, other)
        raise TranslationError(
            f"cannot translate {type(stmt).__name__} inside an inner loop",
            stmt.span,
        )

    # ------------------------------------------------------------------
    # Incoming-neighbors prologue (§4.3)
    # ------------------------------------------------------------------

    def _insert_in_nbrs_prologue(self) -> None:
        layout = self._new_tag("in_nbrs_id")
        layout.fields.append(("sender_id", ty.NODE))
        send_phase = self._new_phase("in_nbrs_send")
        send_phase.compute = [VSendNbrs(layout.tag, [MyId()], "out")]
        build_phase = self._new_phase("in_nbrs_build")
        build_phase.receive = [
            VMsgLoop(layout.tag, [VAppendInNbr(MsgField(0))])
        ]
        self.mcode[:0] = [MVPhase(send_phase.phase_id), MVPhase(build_phase.phase_id)]

    # ------------------------------------------------------------------
    # Expression conversion
    # ------------------------------------------------------------------

    def _mexpr(self, expr: Expr) -> VExpr:
        """Convert an expression in master (sequential) context."""
        return self._convert(expr, env=None)

    def _vexpr(self, expr: Expr, env: _VertexEnv) -> VExpr:
        """Convert an expression in vertex context."""
        return self._convert(expr, env=env)

    def _convert(self, expr: Expr, env: _VertexEnv | None) -> VExpr:
        if isinstance(expr, IntLit):
            return Lit(expr.value)
        if isinstance(expr, FloatLit):
            return Lit(expr.value)
        if isinstance(expr, BoolLit):
            return Lit(expr.value)
        if isinstance(expr, NilLit):
            return Nil()
        if isinstance(expr, InfLit):
            return Inf(expr.negative)
        if isinstance(expr, Ident):
            return self._convert_ident(expr, env)
        if isinstance(expr, PropAccess):
            return self._convert_prop(expr, env)
        if isinstance(expr, MethodCall):
            return self._convert_method(expr, env)
        if isinstance(expr, Unary):
            return Un(expr.op, self._convert(expr.operand, env))
        if isinstance(expr, Binary):
            return Bin(expr.op, self._convert(expr.lhs, env), self._convert(expr.rhs, env))
        if isinstance(expr, Ternary):
            return Cond(
                self._convert(expr.cond, env),
                self._convert(expr.then, env),
                self._convert(expr.other, env),
            )
        if isinstance(expr, Cast):
            return CastTo(expr.to_type, self._convert(expr.operand, env))
        raise TranslationError(
            f"cannot translate expression {type(expr).__name__}", expr.span
        )

    def _convert_ident(self, expr: Ident, env: _VertexEnv | None) -> VExpr:
        name = expr.name
        if env is None:
            if name == self.graph_name:
                raise TranslationError("graph value used as an expression", expr.span)
            if name in self.master_fields:
                return Field(name)
            raise TranslationError(f"unknown master-side name '{name}'", expr.span)
        if name == env.outer_iter:
            return MyId()
        if name in env.locals:
            return Local(name)
        if name in self.master_fields:
            return GlobalGet(name)
        raise TranslationError(f"unknown vertex-side name '{name}'", expr.span)

    def _convert_prop(self, expr: PropAccess, env: _VertexEnv | None) -> VExpr:
        if isinstance(expr.target, MethodCall) and expr.target.name == "ToEdge":
            return Call("edge_prop", (expr.prop,))
        if env is None:
            raise TranslationError(
                "property access in sequential phase (not canonical)", expr.span
            )
        if isinstance(expr.target, Ident) and expr.target.name == env.outer_iter:
            return Field(expr.prop)
        raise TranslationError(
            f"cannot read property of '{ast.pretty(expr.target) if False else expr.prop}' here",
            expr.span,
        )

    def _convert_method(self, expr: MethodCall, env: _VertexEnv | None) -> VExpr:
        target = expr.target
        if isinstance(target, Ident) and target.name == self.graph_name:
            mapping = {
                "NumNodes": "num_nodes",
                "NumEdges": "num_edges",
                "PickRandom": "pick_random",
            }
            if expr.name in mapping:
                if expr.name == "PickRandom" and env is not None:
                    raise TranslationError(
                        "PickRandom inside a parallel loop is not supported",
                        expr.span,
                    )
                return Call(mapping[expr.name])
            raise TranslationError(f"unknown graph method '{expr.name}'", expr.span)
        if env is not None and isinstance(target, Ident) and target.name == env.outer_iter:
            mapping = {
                "Degree": "out_degree",
                "OutDegree": "out_degree",
                "NumNbrs": "out_degree",
                "InDegree": "in_degree",
                "Id": "my_id",
            }
            if expr.name in mapping:
                if expr.name == "Id":
                    return MyId()
                return Call(mapping[expr.name])
        raise TranslationError(
            f"cannot translate method call '{expr.name}' here", expr.span
        )

    # Receive list plumbing: `_parallel_loop` exposes its recv list here so
    # nested helpers can append without threading it through every call.
    @property
    def _current_recv(self) -> list[VStmt]:
        return self.__recv

    def _set_recv(self, recv: list[VStmt]) -> None:
        self.__recv = recv


# ---------------------------------------------------------------------------
# Payload inference
# ---------------------------------------------------------------------------


class _PayloadSplitter:
    """Splits an inner-loop expression into sender payload and receiver code.

    Maximal sender-evaluable subexpressions (touching the sending vertex's
    fields, compute locals, edge properties, or its id) are converted to
    sender-context IR, appended to the message layout (structurally
    deduplicated — "the compiler does not put the same variable multiple
    times in a message"), and replaced by :class:`MsgField` references in the
    receiver expression.  Receiver-evaluable parts (the receiving vertex's own
    fields, broadcast globals, literals) stay as receiver code.
    """

    def __init__(
        self,
        translator: Translator,
        sender_env: _VertexEnv,
        receiver_iter: str | None,
        layout: MessageLayout,
    ):
        self._tr = translator
        self._env = sender_env
        self._receiver = receiver_iter
        self._layout = layout
        self.payload_exprs: list[VExpr] = []
        self._dedupe: dict[VExpr, int] = {}
        self.uses_edge_props = False

    # classification ------------------------------------------------------

    def _leaf_side(self, expr: Expr) -> str:
        """Where can this leaf be evaluated?"""
        env = self._env
        if isinstance(expr, Ident):
            name = expr.name
            if name == env.outer_iter:
                return _SENDER
            if self._receiver is not None and name == self._receiver:
                return _RECEIVER
            if name in env.locals:
                return _SENDER
            if name in self._tr.master_fields:
                return _BOTH
            raise TranslationError(f"unknown name '{name}' in inner loop", expr.span)
        if isinstance(expr, PropAccess):
            if isinstance(expr.target, MethodCall) and expr.target.name == "ToEdge":
                return _SENDER
            assert isinstance(expr.target, Ident)
            owner = expr.target.name
            if owner == env.outer_iter:
                return _SENDER
            if self._receiver is not None and owner == self._receiver:
                return _RECEIVER
            raise TranslationError(
                f"random read of '{owner}.{expr.prop}' in inner loop", expr.span
            )
        if isinstance(expr, MethodCall):
            if expr.name == "ToEdge":
                return _SENDER
            assert isinstance(expr.target, Ident)
            owner = expr.target.name
            if owner == env.outer_iter:
                return _SENDER
            if self._receiver is not None and owner == self._receiver:
                return _RECEIVER
            if owner == self._tr.graph_name:
                return _BOTH
            raise TranslationError(
                f"cannot evaluate '{owner}.{expr.name}()' in inner loop", expr.span
            )
        return _BOTH  # literals

    def _side(self, expr: Expr) -> str:
        """Combined evaluability of a whole subexpression."""
        sides = [self._leaf_side(leaf) for leaf in _leaves(expr)]
        sender_ok = all(s in (_SENDER, _BOTH) for s in sides)
        receiver_ok = all(s in (_RECEIVER, _BOTH) for s in sides)
        if receiver_ok:
            return _RECEIVER if not sender_ok else _BOTH
        if sender_ok:
            return _SENDER
        return "mixed"

    # splitting ----------------------------------------------------------

    def split(self, expr: Expr) -> VExpr:
        side = self._side(expr)
        if side in (_RECEIVER, _BOTH):
            return self._to_receiver(expr)
        if side == _SENDER:
            return self._payload_ref(expr)
        # mixed: recurse into children
        if isinstance(expr, Unary):
            return Un(expr.op, self.split(expr.operand))
        if isinstance(expr, Binary):
            return Bin(expr.op, self.split(expr.lhs), self.split(expr.rhs))
        if isinstance(expr, Ternary):
            return Cond(self.split(expr.cond), self.split(expr.then), self.split(expr.other))
        if isinstance(expr, Cast):
            return CastTo(expr.to_type, self.split(expr.operand))
        raise TranslationError(
            f"cannot split {type(expr).__name__} between sender and receiver",
            expr.span,
        )

    def _payload_ref(self, expr: Expr) -> MsgField:
        sender_vexpr = self._tr._vexpr(expr, self._env)
        if _contains_edge_prop(sender_vexpr):
            self.uses_edge_props = True
        index = self._dedupe.get(sender_vexpr)
        if index is None:
            index = len(self.payload_exprs)
            self.payload_exprs.append(sender_vexpr)
            self._dedupe[sender_vexpr] = index
            field_type = expr.type if expr.type is not None else ty.DOUBLE
            self._layout.fields.append((f"f{index}", field_type))
        return MsgField(index)

    def _to_receiver(self, expr: Expr) -> VExpr:
        recv_env = _VertexEnv(outer_iter=self._receiver or "<none>")
        return self._tr._convert(expr, recv_env)


# ---------------------------------------------------------------------------
# Small helpers
# ---------------------------------------------------------------------------


def _apply_reduce(op: ReduceOp, current: VExpr, value: VExpr) -> VExpr:
    if op is ReduceOp.SUM:
        return Bin(BinOp.ADD, current, value)
    if op is ReduceOp.PRODUCT:
        return Bin(BinOp.MUL, current, value)
    if op is ReduceOp.MIN:
        return Cond(Bin(BinOp.LT, value, current), value, current)
    if op is ReduceOp.MAX:
        return Cond(Bin(BinOp.GT, value, current), value, current)
    if op is ReduceOp.ALL:
        return Bin(BinOp.AND, current, value)
    if op is ReduceOp.ANY:
        return Bin(BinOp.OR, current, value)
    raise TranslationError(f"cannot apply reduction {op}")


def _walk_vstmts(stmts: list[VStmt]):
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, VIf):
            yield from _walk_vstmts(stmt.then)
            yield from _walk_vstmts(stmt.other)
        elif isinstance(stmt, VMsgLoop):
            yield from _walk_vstmts(stmt.body)


def _dedupe_finalizes(finalizes: list[MFinalize]) -> list[MFinalize]:
    seen: set[str] = set()
    out: list[MFinalize] = []
    for fin in finalizes:
        if fin.name not in seen:
            seen.add(fin.name)
            out.append(fin)
    return out


def _conjuncts(expr: Expr | None) -> list[Expr]:
    if expr is None:
        return []
    if isinstance(expr, Binary) and expr.op is BinOp.AND:
        return _conjuncts(expr.lhs) + _conjuncts(expr.rhs)
    return [expr]


def _mentions_var(expr: Expr, name: str) -> bool:
    from ..analysis.access import expr_reads

    return any(a.var == name for a in expr_reads(expr))


def _leaves(expr: Expr):
    """Leaf accesses of an expression (idents, prop reads, method calls)."""
    if isinstance(expr, (Ident, PropAccess, MethodCall, IntLit, FloatLit, BoolLit, NilLit, InfLit)):
        yield expr
        return
    if isinstance(expr, Unary):
        yield from _leaves(expr.operand)
    elif isinstance(expr, Binary):
        yield from _leaves(expr.lhs)
        yield from _leaves(expr.rhs)
    elif isinstance(expr, Ternary):
        yield from _leaves(expr.cond)
        yield from _leaves(expr.then)
        yield from _leaves(expr.other)
    elif isinstance(expr, Cast):
        yield from _leaves(expr.operand)
    else:
        yield expr


def _contains_edge_prop(vexpr: VExpr) -> bool:
    if isinstance(vexpr, Call) and vexpr.name == "edge_prop":
        return True
    if isinstance(vexpr, Bin):
        return _contains_edge_prop(vexpr.lhs) or _contains_edge_prop(vexpr.rhs)
    if isinstance(vexpr, Un):
        return _contains_edge_prop(vexpr.operand)
    if isinstance(vexpr, Cond):
        return (
            _contains_edge_prop(vexpr.cond)
            or _contains_edge_prop(vexpr.then)
            or _contains_edge_prop(vexpr.other)
        )
    if isinstance(vexpr, CastTo):
        return _contains_edge_prop(vexpr.operand)
    return False


def _inline_inner_locals(block: Block, span) -> list[Stmt]:
    """Inline inner-body scalar/edge locals into subsequent statements."""
    out: list[Stmt] = []
    bindings: dict[str, Expr] = {}

    def rewrite(expr: Expr) -> Expr:
        result = expr
        for name, value in bindings.items():
            result = substitute_ident(result, name, value)
        return result

    for stmt in block.stmts:
        if isinstance(stmt, VarDecl):
            if stmt.init is None:
                raise TranslationError(
                    "uninitialized local inside an inner loop", stmt.span
                )
            if len(stmt.names) != 1:
                raise TranslationError(
                    "multi-name declarations inside inner loops are not "
                    "supported",
                    stmt.span,
                )
            bindings[stmt.names[0]] = rewrite(stmt.init)
        elif isinstance(stmt, (Assign, ReduceAssign)):
            stmt.expr = rewrite(stmt.expr)
            out.append(stmt)
        elif isinstance(stmt, If):
            stmt.cond = rewrite(stmt.cond)
            stmt.then = Block(_inline_inner_locals(stmt.then, span), span=stmt.span)
            if stmt.other is not None:
                stmt.other = Block(
                    _inline_inner_locals(stmt.other, span), span=stmt.span
                )
            out.append(stmt)
        else:
            raise TranslationError(
                f"{type(stmt).__name__} not supported inside an inner loop",
                stmt.span,
            )
    return out


def translate(canonical: CanonicalProgram) -> PregelIR:
    """Translate a Pregel-canonical program into Pregel IR (unoptimized)."""
    return Translator(canonical).translate()
