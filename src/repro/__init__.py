"""repro — a reproduction of "Simplifying Scalable Graph Processing with a
Domain-Specific Language" (Hong, Salihoglu, Widom, Olukotun; CGO 2014).

The package contains the full system the paper describes, in Python:

* a Green-Marl frontend (``repro.lang``) and reference interpreter
  (``repro.interp``);
* the Pregel-canonical transformations of §4.1 (``repro.transform``) and the
  §3.1 translation rules plus §4.2 optimizations (``repro.translate``);
* code generation (``repro.codegen``): an executable backend and a GPS-style
  Java emitter;
* a GPS/Pregel simulator with message and network-I/O metering
  (``repro.pregel``);
* the paper's six algorithms, hand-written Pregel baselines, workload
  generators and the benchmark harness regenerating every table and figure
  (``repro.algorithms``, ``repro.graphgen``, ``repro.bench``).

Quick start::

    from repro import compile_source, interpret
    from repro.graphgen import twitter_like, attach_standard_props

    graph = attach_standard_props(twitter_like(1000, avg_degree=10))
    compiled = compile_source(open("examples/my_algorithm.gm").read())
    result = compiled.program.run(graph, {"K": 25})
"""

from .compiler import CompilationResult, compile_algorithm, compile_procedure, compile_source
from .interp import interpret
from .lang import GreenMarlError, NotPregelCanonicalError, parse_procedure, pretty
from .pregel import Graph, PregelEngine, RunMetrics

__version__ = "1.0.0"

__all__ = [
    "CompilationResult",
    "Graph",
    "GreenMarlError",
    "NotPregelCanonicalError",
    "PregelEngine",
    "RunMetrics",
    "compile_algorithm",
    "compile_procedure",
    "compile_source",
    "interpret",
    "parse_procedure",
    "pretty",
    "__version__",
]
