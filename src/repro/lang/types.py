"""Green-Marl type system.

The subset reproduced here covers everything the paper's six algorithms use:
primitive scalars, graph/node/edge handles, and node/edge properties.
Types are immutable values compared structurally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Prim(enum.Enum):
    INT = "Int"
    LONG = "Long"
    FLOAT = "Float"
    DOUBLE = "Double"
    BOOL = "Bool"


class Type:
    """Base class for all Green-Marl types."""

    def is_numeric(self) -> bool:
        return False

    def is_boolean(self) -> bool:
        return False

    def is_node(self) -> bool:
        return False

    def is_edge(self) -> bool:
        return False

    def is_graph(self) -> bool:
        return False

    def is_property(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class PrimType(Type):
    prim: Prim

    def is_numeric(self) -> bool:
        return self.prim is not Prim.BOOL

    def is_boolean(self) -> bool:
        return self.prim is Prim.BOOL

    def is_integral(self) -> bool:
        return self.prim in (Prim.INT, Prim.LONG)

    def is_floating(self) -> bool:
        return self.prim in (Prim.FLOAT, Prim.DOUBLE)

    def __str__(self) -> str:
        return self.prim.value


@dataclass(frozen=True, slots=True)
class GraphType(Type):
    def is_graph(self) -> bool:
        return True

    def __str__(self) -> str:
        return "Graph"


@dataclass(frozen=True, slots=True)
class NodeType(Type):
    def is_node(self) -> bool:
        return True

    def __str__(self) -> str:
        return "Node"


@dataclass(frozen=True, slots=True)
class EdgeType(Type):
    def is_edge(self) -> bool:
        return True

    def __str__(self) -> str:
        return "Edge"


@dataclass(frozen=True, slots=True)
class NodePropType(Type):
    elem: Type

    def is_property(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"N_P<{self.elem}>"


@dataclass(frozen=True, slots=True)
class EdgePropType(Type):
    elem: Type

    def is_property(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"E_P<{self.elem}>"


INT = PrimType(Prim.INT)
LONG = PrimType(Prim.LONG)
FLOAT = PrimType(Prim.FLOAT)
DOUBLE = PrimType(Prim.DOUBLE)
BOOL = PrimType(Prim.BOOL)
GRAPH = GraphType()
NODE = NodeType()
EDGE = EdgeType()

_NUMERIC_RANK = {Prim.INT: 0, Prim.LONG: 1, Prim.FLOAT: 2, Prim.DOUBLE: 3}


def join_numeric(a: Type, b: Type) -> Type | None:
    """Usual arithmetic conversion: the wider of two numeric types.

    Returns ``None`` when either side is not numeric.
    """
    if not (isinstance(a, PrimType) and isinstance(b, PrimType)):
        return None
    if not (a.is_numeric() and b.is_numeric()):
        return None
    return a if _NUMERIC_RANK[a.prim] >= _NUMERIC_RANK[b.prim] else b


def assignable(dst: Type, src: Type) -> bool:
    """Whether a value of type ``src`` may be assigned to a slot of ``dst``.

    Numeric types convert freely (as in the reference Green-Marl compiler,
    narrowing emits a warning at most); node/edge/bool/graph require an exact
    match.
    """
    if dst == src:
        return True
    if isinstance(dst, PrimType) and isinstance(src, PrimType):
        return dst.is_numeric() and src.is_numeric()
    return False


def comparable(a: Type, b: Type) -> bool:
    """Whether ``==`` / ``!=`` is defined between the two types."""
    if a == b:
        return True
    if isinstance(a, PrimType) and isinstance(b, PrimType):
        return a.is_numeric() and b.is_numeric()
    return False


#: Runtime representation of the NIL node/edge literal (an invalid id).
NIL = -1


def default_value(t: Type):
    """The zero value used when a property or variable is left uninitialized.

    Node/edge slots default to :data:`NIL` (-1), the same representation the
    Pregel backend and the reference interpreter use, so results compare
    directly.
    """
    if isinstance(t, PrimType):
        if t.prim is Prim.BOOL:
            return False
        if t.prim in (Prim.FLOAT, Prim.DOUBLE):
            return 0.0
        return 0
    if isinstance(t, NodeType) or isinstance(t, EdgeType):
        return NIL
    raise ValueError(f"no default value for type {t}")
