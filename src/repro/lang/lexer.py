"""Hand-written lexer for Green-Marl.

The lexer is a straightforward single-pass scanner.  Two Green-Marl-specific
wrinkles are handled here rather than in the parser:

* ``min=`` / ``max=`` reduction-assignment operators: the identifiers ``min``
  and ``max`` immediately followed by a single ``=`` lex as one token.
* ``|`` is emitted as :data:`TokenKind.BAR` (the absolute-value delimiter,
  as used by PageRank's ``|val - t.pg_rank|``); ``||`` is logical or.
"""

from __future__ import annotations

from .errors import LexError, Span
from .tokens import KEYWORDS, Token, TokenKind

_SINGLE_CHAR: dict[str, TokenKind] = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMI,
    ":": TokenKind.COLON,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "@": TokenKind.AT,
    "?": TokenKind.QUESTION,
    "%": TokenKind.PERCENT,
}


class Lexer:
    """Tokenizes a Green-Marl source string."""

    def __init__(self, source: str):
        self._src = source
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # -- scanning machinery -------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self._pos + offset
        return self._src[idx] if idx < len(self._src) else ""

    def _advance(self) -> str:
        ch = self._src[self._pos]
        self._pos += 1
        if ch == "\n":
            self._line += 1
            self._col = 1
        else:
            self._col += 1
        return ch

    def _skip_trivia(self) -> None:
        while self._pos < len(self._src):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = Span.point(self._line, self._col)
                self._advance()
                self._advance()
                while True:
                    if self._pos >= len(self._src):
                        raise LexError("unterminated block comment", start)
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance()
                        self._advance()
                        break
                    self._advance()
            else:
                return

    def _make(self, kind: TokenKind, text: str, line: int, col: int) -> Token:
        return Token(kind, text, Span(line, col, self._line, self._col))

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, col = self._line, self._col
        if self._pos >= len(self._src):
            return self._make(TokenKind.EOF, "", line, col)

        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._identifier(line, col)
        if ch.isdigit():
            return self._number(line, col)
        return self._operator(line, col)

    def _identifier(self, line: int, col: int) -> Token:
        start = self._pos
        while self._pos < len(self._src) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self._src[start : self._pos]
        # `min=` / `max=` reduction assignment (but not `min==`).
        if text in ("min", "max") and self._peek() == "=" and self._peek(1) != "=":
            self._advance()
            kind = TokenKind.MIN_ASSIGN if text == "min" else TokenKind.MAX_ASSIGN
            return self._make(kind, text + "=", line, col)
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return self._make(kind, text, line, col)

    def _number(self, line: int, col: int) -> Token:
        start = self._pos
        while self._pos < len(self._src) and self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._pos < len(self._src) and self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit() or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._pos < len(self._src) and self._peek().isdigit():
                self._advance()
        text = self._src[start : self._pos]
        kind = TokenKind.FLOAT_LIT if is_float else TokenKind.INT_LIT
        return self._make(kind, text, line, col)

    def _operator(self, line: int, col: int) -> Token:
        ch = self._advance()
        nxt = self._peek()
        two = ch + nxt
        two_char = {
            "==": TokenKind.EQ,
            "!=": TokenKind.NEQ,
            "<=": TokenKind.LE,
            ">=": TokenKind.GE,
            "&&": TokenKind.AND_OP,
            "||": TokenKind.OR_OP,
            "+=": TokenKind.PLUS_ASSIGN,
            "*=": TokenKind.TIMES_ASSIGN,
            "&=": TokenKind.AND_ASSIGN,
            "|=": TokenKind.OR_ASSIGN,
            "++": TokenKind.INCR,
        }
        if two in two_char:
            self._advance()
            return self._make(two_char[two], two, line, col)
        one_char = {
            "=": TokenKind.ASSIGN,
            "+": TokenKind.PLUS,
            "-": TokenKind.MINUS,
            "*": TokenKind.STAR,
            "/": TokenKind.SLASH,
            "<": TokenKind.LT,
            ">": TokenKind.GT,
            "!": TokenKind.NOT,
            "|": TokenKind.BAR,
        }
        if ch in one_char:
            return self._make(one_char[ch], ch, line, col)
        if ch in _SINGLE_CHAR:
            return self._make(_SINGLE_CHAR[ch], ch, line, col)
        raise LexError(f"unexpected character {ch!r}", Span.point(line, col))


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list ending in EOF."""
    return Lexer(source).tokenize()
