"""Type checker and name resolution for Green-Marl procedures.

Besides verifying the program, the checker produces a :class:`CheckResult`
used by every later phase:

* ``Expr.type`` is filled in on each expression node;
* ``resolved`` maps each :class:`Ident` occurrence to its :class:`Symbol`;
* ``properties`` / ``scalars`` list the declared node/edge properties and the
  sequential-phase scalar variables (the paper's vertex-class fields and
  master-class fields, respectively);
* ``iterator_of`` maps iterator symbols to the loop that binds them.

Because the transformation passes rewrite the AST freely, the checker is cheap
and is simply re-run after every pass (programs are a few dozen statements).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import types as ty
from .ast import (
    Assign,
    Bfs,
    Binary,
    BinOp,
    Block,
    BoolLit,
    Cast,
    DeferredAssign,
    Expr,
    FloatLit,
    Foreach,
    Ident,
    If,
    InfLit,
    IntLit,
    IterKind,
    IterSource,
    MethodCall,
    NilLit,
    Procedure,
    PropAccess,
    ReduceAssign,
    ReduceExpr,
    ReduceOp,
    Return,
    Stmt,
    Ternary,
    Unary,
    UnOp,
    VarDecl,
    While,
    walk,
)
from .errors import Span, TypeCheckError
from .symbols import Scope, Symbol, SymbolKind

#: Built-in method signatures: (receiver kind, name) -> (arg types, result).
_GRAPH_METHODS: dict[str, tuple[list[ty.Type], ty.Type]] = {
    "NumNodes": ([], ty.LONG),
    "NumEdges": ([], ty.LONG),
    "PickRandom": ([], ty.NODE),
}
_NODE_METHODS: dict[str, tuple[list[ty.Type], ty.Type]] = {
    "Degree": ([], ty.INT),
    "OutDegree": ([], ty.INT),
    "InDegree": ([], ty.INT),
    "NumNbrs": ([], ty.INT),
    "Id": ([], ty.LONG),
    "ToEdge": ([], ty.EDGE),
}


@dataclass
class CheckResult:
    procedure: Procedure
    graph_name: str
    properties: dict[str, Symbol] = field(default_factory=dict)
    scalars: dict[str, Symbol] = field(default_factory=dict)
    resolved: dict[Ident, Symbol] = field(default_factory=dict)
    iterator_of: dict[Symbol, Stmt] = field(default_factory=dict)

    def symbol(self, ident: Ident) -> Symbol:
        return self.resolved[ident]

    def prop_elem_type(self, name: str) -> ty.Type:
        prop_type = self.properties[name].type
        assert isinstance(prop_type, (ty.NodePropType, ty.EdgePropType))
        return prop_type.elem


class TypeChecker:
    def __init__(self, proc: Procedure):
        self._proc = proc
        self._result: CheckResult | None = None
        self._return_type = proc.return_type

    # -- entry ---------------------------------------------------------------

    def check(self) -> CheckResult:
        proc = self._proc
        graph_param = proc.graph_param
        if graph_param is None:
            raise TypeCheckError(
                f"procedure '{proc.name}' has no Graph parameter", proc.span,
                hint="Pregel compilation requires exactly one directed graph argument",
            )
        if sum(1 for p in proc.params if p.param_type.is_graph()) > 1:
            raise TypeCheckError(
                "multiple Graph parameters are not supported (§3.2: at most one graph)",
                proc.span,
            )
        self._result = CheckResult(proc, graph_param.name)
        top = Scope()
        for param in proc.params:
            if top.defined_here(param.name):
                raise TypeCheckError(f"duplicate parameter '{param.name}'", param.span)
            kind = SymbolKind.PARAM_OUT if param.is_output else SymbolKind.PARAM_IN
            symbol = Symbol(param.name, param.param_type, kind, param)
            top.define(symbol)
            self._register(symbol)
        self.check_block(proc.body, top.child())
        return self._result

    def _register(self, symbol: Symbol) -> None:
        assert self._result is not None
        if symbol.type.is_property():
            self._result.properties[symbol.name] = symbol
        elif symbol.is_scalar() and not symbol.type.is_graph():
            self._result.scalars[symbol.name] = symbol

    # -- statements ------------------------------------------------------------

    def check_block(self, block: Block, scope: Scope) -> None:
        for stmt in block.stmts:
            self.check_stmt(stmt, scope)

    def check_stmt(self, stmt: Stmt, scope: Scope) -> None:
        if isinstance(stmt, Block):
            self.check_block(stmt, scope.child())
        elif isinstance(stmt, VarDecl):
            self._check_var_decl(stmt, scope)
        elif isinstance(stmt, Assign):
            self._check_assign(stmt, scope)
        elif isinstance(stmt, ReduceAssign):
            self._check_reduce_assign(stmt, scope)
        elif isinstance(stmt, DeferredAssign):
            self._check_deferred_assign(stmt, scope)
        elif isinstance(stmt, If):
            cond = self.check_expr(stmt.cond, scope)
            self._require_bool(cond, stmt.cond.span, "If condition")
            self.check_block(stmt.then, scope.child())
            if stmt.other is not None:
                self.check_block(stmt.other, scope.child())
        elif isinstance(stmt, While):
            cond = self.check_expr(stmt.cond, scope)
            self._require_bool(cond, stmt.cond.span, "While condition")
            self.check_block(stmt.body, scope.child())
        elif isinstance(stmt, Foreach):
            self._check_foreach(stmt, scope)
        elif isinstance(stmt, Bfs):
            self._check_bfs(stmt, scope)
        elif isinstance(stmt, Return):
            self._check_return(stmt, scope)
        else:
            raise TypeCheckError(f"unknown statement {type(stmt).__name__}", stmt.span)

    def _check_var_decl(self, stmt: VarDecl, scope: Scope) -> None:
        for name in stmt.names:
            if scope.defined_here(name):
                raise TypeCheckError(f"redeclaration of '{name}'", stmt.span)
            symbol = Symbol(name, stmt.decl_type, self._decl_kind(stmt.decl_type), stmt)
            scope.define(symbol)
            self._register(symbol)
        if stmt.init is not None:
            if stmt.decl_type.is_property():
                raise TypeCheckError(
                    "property declarations cannot have initializers "
                    "(use a group assignment, e.g. G.prop = 0)",
                    stmt.span,
                )
            init_type = self.check_expr(stmt.init, scope)
            self._require_assignable(stmt.decl_type, init_type, stmt.span)

    @staticmethod
    def _decl_kind(decl_type: ty.Type) -> SymbolKind:
        return SymbolKind.PROPERTY if decl_type.is_property() else SymbolKind.LOCAL

    def _check_assign(self, stmt: Assign, scope: Scope) -> None:
        target_type = self._check_lvalue(stmt.target, scope)
        expr_type = self.check_expr(stmt.expr, scope)
        self._require_assignable(target_type, expr_type, stmt.span)

    def _check_reduce_assign(self, stmt: ReduceAssign, scope: Scope) -> None:
        target_type = self._check_lvalue(stmt.target, scope)
        expr_type = self.check_expr(stmt.expr, scope)
        if stmt.op in (ReduceOp.ALL, ReduceOp.ANY):
            self._require_bool(target_type, stmt.span, f"'{stmt.op.value}=' target")
            self._require_bool(expr_type, stmt.expr.span, f"'{stmt.op.value}=' operand")
        else:
            if not target_type.is_numeric():
                raise TypeCheckError(
                    f"reduction target must be numeric, got {target_type}", stmt.span
                )
            if not expr_type.is_numeric():
                raise TypeCheckError(
                    f"reduction operand must be numeric, got {expr_type}", stmt.expr.span
                )
        if stmt.bind is not None:
            self._lookup(stmt.bind, stmt.span, scope)

    def _check_deferred_assign(self, stmt: DeferredAssign, scope: Scope) -> None:
        if not isinstance(stmt.target, PropAccess):
            raise TypeCheckError(
                "deferred assignment (<=) target must be a property access", stmt.span
            )
        target_type = self._check_lvalue(stmt.target, scope)
        expr_type = self.check_expr(stmt.expr, scope)
        self._require_assignable(target_type, expr_type, stmt.span)
        if stmt.bind is not None:
            self._lookup(stmt.bind, stmt.span, scope)

    def _check_foreach(self, stmt: Foreach, scope: Scope) -> None:
        self._check_iter_source(stmt.source, scope)
        inner = scope.child()
        kind = SymbolKind.ITERATOR
        symbol = Symbol(stmt.iterator, ty.NODE, kind, stmt)
        inner.define(symbol)
        assert self._result is not None
        self._result.iterator_of[symbol] = stmt
        if stmt.filter is not None:
            filter_type = self.check_expr(stmt.filter, inner)
            self._require_bool(filter_type, stmt.filter.span, "iteration filter")
        self.check_block(stmt.body, inner.child())
        if stmt.parallel:
            self._check_reduction_reads(stmt)

    def _check_reduction_reads(self, loop: Foreach) -> None:
        """A scalar being reduced by a parallel loop may not be read inside
        that loop: its intermediate value is undefined under parallel
        semantics (the reduction completes only at the loop boundary)."""
        targets: set[str] = set()
        reads: list[tuple[str, Span]] = []
        self._collect_scalar_reduces_and_reads(loop.body, targets, reads)
        local_names = {
            name
            for s in walk(loop.body)
            if isinstance(s, VarDecl)
            for name in s.names
        }
        targets -= local_names
        for name, span in reads:
            if name in targets:
                raise TypeCheckError(
                    f"scalar '{name}' is read inside the parallel loop that "
                    "reduces it; the reduction's value is only defined after "
                    "the loop",
                    span,
                )

    def _collect_scalar_reduces_and_reads(
        self, block: Block, targets: set[str], reads: list[tuple[str, Span]]
    ) -> None:
        for stmt in block.stmts:
            if isinstance(stmt, ReduceAssign):
                if isinstance(stmt.target, Ident):
                    targets.add(stmt.target.name)
                self._collect_ident_reads(stmt.expr, reads)
            elif isinstance(stmt, (Assign, DeferredAssign)):
                self._collect_ident_reads(stmt.expr, reads)
            elif isinstance(stmt, VarDecl):
                if stmt.init is not None:
                    self._collect_ident_reads(stmt.init, reads)
            elif isinstance(stmt, If):
                self._collect_ident_reads(stmt.cond, reads)
                self._collect_scalar_reduces_and_reads(stmt.then, targets, reads)
                if stmt.other is not None:
                    self._collect_scalar_reduces_and_reads(stmt.other, targets, reads)
            elif isinstance(stmt, Foreach):
                if stmt.filter is not None:
                    self._collect_ident_reads(stmt.filter, reads)
                self._collect_scalar_reduces_and_reads(stmt.body, targets, reads)
            elif isinstance(stmt, Block):
                self._collect_scalar_reduces_and_reads(stmt, targets, reads)

    @staticmethod
    def _collect_ident_reads(expr: Expr, reads: list[tuple[str, Span]]) -> None:
        for node in walk(expr):
            if isinstance(node, Ident):
                reads.append((node.name, node.span))

    def _check_bfs(self, stmt: Bfs, scope: Scope) -> None:
        self._check_iter_source(stmt.source, scope)
        root_type = self.check_expr(stmt.root, scope)
        if not root_type.is_node():
            raise TypeCheckError(
                f"BFS root must be a Node, got {root_type}", stmt.root.span
            )
        inner = scope.child()
        symbol = Symbol(stmt.iterator, ty.NODE, SymbolKind.BFS_ITERATOR, stmt)
        inner.define(symbol)
        assert self._result is not None
        self._result.iterator_of[symbol] = stmt
        if stmt.filter is not None:
            self._require_bool(
                self.check_expr(stmt.filter, inner), stmt.filter.span, "InBFS filter"
            )
        self.check_block(stmt.body, inner.child())
        if stmt.reverse_filter is not None:
            self._require_bool(
                self.check_expr(stmt.reverse_filter, inner),
                stmt.reverse_filter.span,
                "InReverse filter",
            )
        if stmt.reverse_body is not None:
            self.check_block(stmt.reverse_body, inner.child())

    def _check_iter_source(self, source: IterSource, scope: Scope) -> None:
        driver_type = self.check_expr(source.driver, scope)
        if source.kind is IterKind.NODES:
            if not driver_type.is_graph():
                raise TypeCheckError(
                    f"'.Nodes' requires a Graph, got {driver_type}", source.span
                )
        else:
            if not driver_type.is_node():
                raise TypeCheckError(
                    f"'.{source.kind.value}' requires a Node, got {driver_type}",
                    source.span,
                )

    def _check_return(self, stmt: Return, scope: Scope) -> None:
        if self._return_type is None:
            if stmt.expr is not None:
                raise TypeCheckError(
                    "procedure has no return type but Return has a value", stmt.span
                )
            return
        if stmt.expr is None:
            raise TypeCheckError(
                f"Return needs a value of type {self._return_type}", stmt.span
            )
        expr_type = self.check_expr(stmt.expr, scope)
        self._require_assignable(self._return_type, expr_type, stmt.span)

    # -- lvalues -----------------------------------------------------------

    def _check_lvalue(self, target: Expr, scope: Scope) -> ty.Type:
        if isinstance(target, Ident):
            symbol = self._lookup(target.name, target.span, scope)
            self._result.resolved[target] = symbol  # type: ignore[union-attr]
            if symbol.is_iterator():
                raise TypeCheckError(f"cannot assign to iterator '{target.name}'", target.span)
            if symbol.type.is_property() or symbol.type.is_graph():
                raise TypeCheckError(
                    f"cannot assign directly to {symbol.kind.value} '{target.name}'",
                    target.span,
                )
            target.type = symbol.type
            return symbol.type
        if isinstance(target, PropAccess):
            return self.check_expr(target, scope)
        raise TypeCheckError("invalid assignment target", target.span)

    # -- expressions -----------------------------------------------------------

    def check_expr(self, expr: Expr, scope: Scope) -> ty.Type:
        expr.type = self._infer(expr, scope)
        return expr.type

    def _infer(self, expr: Expr, scope: Scope) -> ty.Type:
        if isinstance(expr, IntLit):
            return ty.INT
        if isinstance(expr, FloatLit):
            return ty.DOUBLE
        if isinstance(expr, BoolLit):
            return ty.BOOL
        if isinstance(expr, NilLit):
            return ty.NODE
        if isinstance(expr, InfLit):
            return ty.DOUBLE
        if isinstance(expr, Ident):
            symbol = self._lookup(expr.name, expr.span, scope)
            self._result.resolved[expr] = symbol  # type: ignore[union-attr]
            return symbol.type
        if isinstance(expr, PropAccess):
            return self._infer_prop_access(expr, scope)
        if isinstance(expr, MethodCall):
            return self._infer_method_call(expr, scope)
        if isinstance(expr, Unary):
            return self._infer_unary(expr, scope)
        if isinstance(expr, Binary):
            return self._infer_binary(expr, scope)
        if isinstance(expr, Ternary):
            return self._infer_ternary(expr, scope)
        if isinstance(expr, Cast):
            operand_type = self.check_expr(expr.operand, scope)
            if not (operand_type.is_numeric() and expr.to_type.is_numeric()):
                raise TypeCheckError(
                    f"cannot cast {operand_type} to {expr.to_type}", expr.span
                )
            return expr.to_type
        if isinstance(expr, ReduceExpr):
            return self._infer_reduce(expr, scope)
        raise TypeCheckError(f"unknown expression {type(expr).__name__}", expr.span)

    def _infer_prop_access(self, expr: PropAccess, scope: Scope) -> ty.Type:
        target_type = self.check_expr(expr.target, scope)
        assert self._result is not None
        prop_symbol = self._result.properties.get(expr.prop)
        if prop_symbol is None:
            raise TypeCheckError(f"unknown property '{expr.prop}'", expr.span)
        prop_type = prop_symbol.type
        if target_type.is_graph():
            # Group access (G.prop): legal only in group assignments, which the
            # normalizer removes; reads elsewhere are rejected there.
            assert isinstance(prop_type, (ty.NodePropType, ty.EdgePropType))
            return prop_type.elem
        if isinstance(prop_type, ty.NodePropType):
            if not target_type.is_node():
                raise TypeCheckError(
                    f"node property '{expr.prop}' accessed through {target_type}",
                    expr.span,
                )
            return prop_type.elem
        assert isinstance(prop_type, ty.EdgePropType)
        if not target_type.is_edge():
            raise TypeCheckError(
                f"edge property '{expr.prop}' accessed through {target_type}", expr.span
            )
        return prop_type.elem

    def _infer_method_call(self, expr: MethodCall, scope: Scope) -> ty.Type:
        target_type = self.check_expr(expr.target, scope)
        if target_type.is_graph():
            table = _GRAPH_METHODS
        elif target_type.is_node():
            table = _NODE_METHODS
        else:
            raise TypeCheckError(
                f"no methods available on values of type {target_type}", expr.span
            )
        signature = table.get(expr.name)
        if signature is None:
            raise TypeCheckError(
                f"unknown method '{expr.name}' on {target_type}", expr.span
            )
        arg_types, result = signature
        if len(expr.args) != len(arg_types):
            raise TypeCheckError(
                f"'{expr.name}' expects {len(arg_types)} argument(s), got {len(expr.args)}",
                expr.span,
            )
        for arg, expected in zip(expr.args, arg_types):
            actual = self.check_expr(arg, scope)
            self._require_assignable(expected, actual, arg.span)
        return result

    def _infer_unary(self, expr: Unary, scope: Scope) -> ty.Type:
        operand_type = self.check_expr(expr.operand, scope)
        if expr.op is UnOp.NOT:
            self._require_bool(operand_type, expr.span, "'!' operand")
            return ty.BOOL
        if not operand_type.is_numeric():
            raise TypeCheckError(
                f"'{expr.op.value}' requires a numeric operand, got {operand_type}",
                expr.span,
            )
        return operand_type

    def _infer_binary(self, expr: Binary, scope: Scope) -> ty.Type:
        lhs = self.check_expr(expr.lhs, scope)
        rhs = self.check_expr(expr.rhs, scope)
        op = expr.op
        if op in (BinOp.AND, BinOp.OR):
            self._require_bool(lhs, expr.lhs.span, f"'{op.value}' operand")
            self._require_bool(rhs, expr.rhs.span, f"'{op.value}' operand")
            return ty.BOOL
        if op in (BinOp.EQ, BinOp.NEQ):
            if not ty.comparable(lhs, rhs):
                raise TypeCheckError(f"cannot compare {lhs} with {rhs}", expr.span)
            return ty.BOOL
        if op in (BinOp.LT, BinOp.GT, BinOp.LE, BinOp.GE):
            if ty.join_numeric(lhs, rhs) is None:
                raise TypeCheckError(
                    f"ordering comparison requires numeric operands, got {lhs} and {rhs}",
                    expr.span,
                )
            return ty.BOOL
        joined = ty.join_numeric(lhs, rhs)
        if joined is None:
            raise TypeCheckError(
                f"'{op.value}' requires numeric operands, got {lhs} and {rhs}", expr.span
            )
        if op is BinOp.MOD:
            if not (
                isinstance(lhs, ty.PrimType)
                and isinstance(rhs, ty.PrimType)
                and lhs.is_integral()
                and rhs.is_integral()
            ):
                raise TypeCheckError("'%' requires integral operands", expr.span)
        return joined

    def _infer_ternary(self, expr: Ternary, scope: Scope) -> ty.Type:
        cond = self.check_expr(expr.cond, scope)
        self._require_bool(cond, expr.cond.span, "'?:' condition")
        then = self.check_expr(expr.then, scope)
        other = self.check_expr(expr.other, scope)
        if then == other:
            return then
        joined = ty.join_numeric(then, other)
        if joined is None:
            raise TypeCheckError(
                f"'?:' branches have incompatible types {then} and {other}", expr.span
            )
        return joined

    def _infer_reduce(self, expr: ReduceExpr, scope: Scope) -> ty.Type:
        self._check_iter_source(expr.source, scope)
        inner = scope.child()
        symbol = Symbol(expr.iterator, ty.NODE, SymbolKind.ITERATOR, expr)
        inner.define(symbol)
        if expr.filter is not None:
            self._require_bool(
                self.check_expr(expr.filter, inner), expr.filter.span, "reduction filter"
            )
        if expr.op in (ReduceOp.ANY, ReduceOp.ALL):
            if expr.body is not None:
                raise TypeCheckError(
                    f"'{expr.op.name}' takes a predicate, not a body", expr.span
                )
            if expr.filter is None:
                raise TypeCheckError(f"'{expr.op.name}' requires a predicate", expr.span)
            return ty.BOOL
        if expr.op is ReduceOp.COUNT:
            if expr.body is not None:
                raise TypeCheckError("'Count' does not take a body", expr.span)
            return ty.INT
        assert expr.body is not None
        body_type = self.check_expr(expr.body, inner)
        if not body_type.is_numeric():
            raise TypeCheckError(
                f"reduction body must be numeric, got {body_type}", expr.body.span
            )
        if expr.op is ReduceOp.AVG:
            return ty.DOUBLE
        return body_type

    # -- small helpers -----------------------------------------------------

    def _lookup(self, name: str, span: Span, scope: Scope) -> Symbol:
        symbol = scope.lookup(name)
        if symbol is None:
            raise TypeCheckError(f"undefined name '{name}'", span)
        return symbol

    @staticmethod
    def _require_bool(t: ty.Type, span: Span, what: str) -> None:
        if not t.is_boolean():
            raise TypeCheckError(f"{what} must be Bool, got {t}", span)

    @staticmethod
    def _require_assignable(dst: ty.Type, src: ty.Type, span: Span) -> None:
        if not ty.assignable(dst, src):
            raise TypeCheckError(f"cannot assign {src} to {dst}", span)


def typecheck(proc: Procedure) -> CheckResult:
    """Type-check ``proc`` in place (filling ``Expr.type``) and return the
    symbol information needed by analyses and transformations."""
    return TypeChecker(proc).check()
