"""Token kinds for the Green-Marl lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import Span


class TokenKind(enum.Enum):
    # literals / identifiers
    IDENT = "identifier"
    INT_LIT = "integer literal"
    FLOAT_LIT = "float literal"

    # keywords
    KW_PROCEDURE = "Procedure"
    KW_LOCAL = "Local"
    KW_IF = "If"
    KW_ELSE = "Else"
    KW_WHILE = "While"
    KW_DO = "Do"
    KW_FOREACH = "Foreach"
    KW_FOR = "For"
    KW_INBFS = "InBFS"
    KW_INREVERSE = "InReverse"
    KW_FROM = "From"
    KW_RETURN = "Return"
    KW_TRUE = "True"
    KW_FALSE = "False"
    KW_NIL = "NIL"
    KW_INF = "INF"

    # type keywords
    KW_GRAPH = "Graph"
    KW_NODE = "Node"
    KW_EDGE = "Edge"
    KW_INT = "Int"
    KW_LONG = "Long"
    KW_FLOAT = "Float"
    KW_DOUBLE = "Double"
    KW_BOOL = "Bool"
    KW_NODE_PROP = "N_P"
    KW_EDGE_PROP = "E_P"

    # punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COLON = ":"
    COMMA = ","
    DOT = "."
    AT = "@"
    QUESTION = "?"
    BAR = "|"  # absolute-value delimiter; `||` lexes as OR_OP

    # operators
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    TIMES_ASSIGN = "*="
    MIN_ASSIGN = "min="
    MAX_ASSIGN = "max="
    AND_ASSIGN = "&="
    OR_ASSIGN = "|="
    INCR = "++"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NEQ = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    AND_OP = "&&"
    OR_OP = "||"
    NOT = "!"

    EOF = "<eof>"


KEYWORDS: dict[str, TokenKind] = {
    "Procedure": TokenKind.KW_PROCEDURE,
    "Proc": TokenKind.KW_PROCEDURE,
    "Local": TokenKind.KW_LOCAL,
    "If": TokenKind.KW_IF,
    "Else": TokenKind.KW_ELSE,
    "While": TokenKind.KW_WHILE,
    "Do": TokenKind.KW_DO,
    "Foreach": TokenKind.KW_FOREACH,
    "For": TokenKind.KW_FOR,
    "InBFS": TokenKind.KW_INBFS,
    "InReverse": TokenKind.KW_INREVERSE,
    "InRBFS": TokenKind.KW_INREVERSE,
    "From": TokenKind.KW_FROM,
    "Return": TokenKind.KW_RETURN,
    "True": TokenKind.KW_TRUE,
    "False": TokenKind.KW_FALSE,
    "NIL": TokenKind.KW_NIL,
    "INF": TokenKind.KW_INF,
    "Graph": TokenKind.KW_GRAPH,
    "Node": TokenKind.KW_NODE,
    "Edge": TokenKind.KW_EDGE,
    "Int": TokenKind.KW_INT,
    "Long": TokenKind.KW_LONG,
    "Float": TokenKind.KW_FLOAT,
    "Double": TokenKind.KW_DOUBLE,
    "Bool": TokenKind.KW_BOOL,
    "N_P": TokenKind.KW_NODE_PROP,
    "E_P": TokenKind.KW_EDGE_PROP,
    "Node_Prop": TokenKind.KW_NODE_PROP,
    "Edge_Prop": TokenKind.KW_EDGE_PROP,
}

#: Type keywords, used by the parser to detect declaration statements.
TYPE_KEYWORDS = frozenset(
    {
        TokenKind.KW_GRAPH,
        TokenKind.KW_NODE,
        TokenKind.KW_EDGE,
        TokenKind.KW_INT,
        TokenKind.KW_LONG,
        TokenKind.KW_FLOAT,
        TokenKind.KW_DOUBLE,
        TokenKind.KW_BOOL,
        TokenKind.KW_NODE_PROP,
        TokenKind.KW_EDGE_PROP,
    }
)


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    text: str
    span: Span

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.span}"
