"""Source locations and compiler diagnostics for the Green-Marl frontend.

Every token and AST node carries a :class:`Span` so that later phases
(type checking, canonicality analysis, transformation failures) can point
at the offending source text, exactly like the paper's compiler reports an
error when a program cannot be made Pregel-canonical.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Span:
    """A half-open region of source text: [start, end) with 1-based line/col."""

    line: int = 0
    col: int = 0
    end_line: int = 0
    end_col: int = 0

    @staticmethod
    def point(line: int, col: int) -> "Span":
        return Span(line, col, line, col + 1)

    def merge(self, other: "Span") -> "Span":
        """Smallest span covering both ``self`` and ``other``."""
        if other.is_unknown():
            return self
        if self.is_unknown():
            return other
        lo = min((self.line, self.col), (other.line, other.col))
        hi = max((self.end_line, self.end_col), (other.end_line, other.end_col))
        return Span(lo[0], lo[1], hi[0], hi[1])

    def is_unknown(self) -> bool:
        return self.line == 0

    def __str__(self) -> str:
        if self.is_unknown():
            return "<unknown>"
        return f"{self.line}:{self.col}"


UNKNOWN_SPAN = Span()


class GreenMarlError(Exception):
    """Base class for every diagnostic the compiler raises."""

    def __init__(self, message: str, span: Span = UNKNOWN_SPAN, *, hint: str | None = None):
        self.message = message
        self.span = span
        self.hint = hint
        super().__init__(self.render())

    def render(self, source: str | None = None, filename: str = "<input>") -> str:
        """Human-readable diagnostic, with a source excerpt when available."""
        head = f"{filename}:{self.span}: {self.kind()}: {self.message}"
        parts = [head]
        if source is not None and not self.span.is_unknown():
            lines = source.splitlines()
            if 1 <= self.span.line <= len(lines):
                text = lines[self.span.line - 1]
                parts.append("  " + text)
                width = max(1, self.span.end_col - self.span.col) if self.span.end_line == self.span.line else 1
                parts.append("  " + " " * (self.span.col - 1) + "^" * width)
        if self.hint:
            parts.append(f"  hint: {self.hint}")
        return "\n".join(parts)

    def kind(self) -> str:
        return "error"


class LexError(GreenMarlError):
    def kind(self) -> str:
        return "lex error"


class ParseError(GreenMarlError):
    def kind(self) -> str:
        return "parse error"


class TypeCheckError(GreenMarlError):
    def kind(self) -> str:
        return "type error"


class TransformError(GreenMarlError):
    """A Green-Marl→Green-Marl rewrite could not be applied soundly."""

    def kind(self) -> str:
        return "transform error"


class NotPregelCanonicalError(GreenMarlError):
    """Raised when a program violates the Pregel-canonical conditions of §3.2
    and no transformation rule is known to repair it (paper §4.1: "Otherwise,
    the compiler reports an error")."""

    def kind(self) -> str:
        return "not pregel-canonical"


class TranslationError(GreenMarlError):
    """Internal inconsistency while translating canonical Green-Marl to Pregel IR."""

    def kind(self) -> str:
        return "translation error"


@dataclass
class DiagnosticSink:
    """Collects non-fatal warnings emitted during compilation."""

    warnings: list[str] = field(default_factory=list)

    def warn(self, message: str, span: Span = UNKNOWN_SPAN) -> None:
        self.warnings.append(f"{span}: warning: {message}")
