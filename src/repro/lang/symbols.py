"""Symbols and lexical scopes for Green-Marl procedures."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from .ast import AstNode
from .types import Type


class SymbolKind(enum.Enum):
    PARAM_IN = "input parameter"
    PARAM_OUT = "output parameter"
    LOCAL = "local variable"
    PROPERTY = "property"
    ITERATOR = "iterator"
    BFS_ITERATOR = "bfs iterator"


@dataclass(eq=False)
class Symbol:
    name: str
    type: Type
    kind: SymbolKind
    decl: AstNode | None = None

    def is_property(self) -> bool:
        return self.kind is SymbolKind.PROPERTY

    def is_iterator(self) -> bool:
        return self.kind in (SymbolKind.ITERATOR, SymbolKind.BFS_ITERATOR)

    def is_scalar(self) -> bool:
        """Scalar variables in the paper's sense: sequential-phase values that
        become master-class fields (params and locals of non-property type)."""
        return self.kind in (SymbolKind.PARAM_IN, SymbolKind.PARAM_OUT, SymbolKind.LOCAL)

    def __repr__(self) -> str:
        return f"Symbol({self.name}: {self.type}, {self.kind.name})"


@dataclass(eq=False)
class Scope:
    """One lexical scope; lookup walks outward through ``parent``."""

    parent: "Scope | None" = None
    _symbols: dict[str, Symbol] = field(default_factory=dict)

    def define(self, symbol: Symbol) -> Symbol:
        self._symbols[symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Symbol | None:
        scope: Scope | None = self
        while scope is not None:
            found = scope._symbols.get(name)
            if found is not None:
                return found
            scope = scope.parent
        return None

    def defined_here(self, name: str) -> bool:
        return name in self._symbols

    def child(self) -> "Scope":
        return Scope(parent=self)

    def symbols(self) -> Iterator[Symbol]:
        yield from self._symbols.values()
