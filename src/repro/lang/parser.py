"""Recursive-descent parser for the Green-Marl subset of the paper.

The grammar covers every construct used by the paper's six algorithms
(Figures 2 and 4 and the Appendix programs): procedures with input/output
parameter lists, scalar and property declarations, parallel ``Foreach`` with
filters, ``InBFS``/``InReverse`` traversals, ``While``/``Do-While``, reduction
assignments (``+=``, ``min=``, ``&=`` …), deferred assignments (``<=``),
reduction expressions (``Sum``, ``Count``, ``Exist`` …), graph/node built-in
methods, casts, the ternary operator and the ``|e|`` absolute-value form.
"""

from __future__ import annotations

from . import ast
from .ast import (
    Assign,
    Bfs,
    BinOp,
    Block,
    BoolLit,
    Cast,
    DeferredAssign,
    Expr,
    FloatLit,
    Foreach,
    Ident,
    If,
    InfLit,
    IntLit,
    IterKind,
    IterSource,
    MethodCall,
    NilLit,
    Param,
    Procedure,
    PropAccess,
    ReduceAssign,
    ReduceExpr,
    ReduceOp,
    Return,
    Stmt,
    Ternary,
    Unary,
    UnOp,
    VarDecl,
    While,
)
from .errors import ParseError, Span
from .lexer import tokenize
from .tokens import TYPE_KEYWORDS, Token, TokenKind
from . import types as ty

_REDUCE_ASSIGN_OPS: dict[TokenKind, ReduceOp] = {
    TokenKind.PLUS_ASSIGN: ReduceOp.SUM,
    TokenKind.TIMES_ASSIGN: ReduceOp.PRODUCT,
    TokenKind.MIN_ASSIGN: ReduceOp.MIN,
    TokenKind.MAX_ASSIGN: ReduceOp.MAX,
    TokenKind.AND_ASSIGN: ReduceOp.ALL,
    TokenKind.OR_ASSIGN: ReduceOp.ANY,
}

_CMP_OPS: dict[TokenKind, BinOp] = {
    TokenKind.EQ: BinOp.EQ,
    TokenKind.NEQ: BinOp.NEQ,
    TokenKind.LT: BinOp.LT,
    TokenKind.GT: BinOp.GT,
    TokenKind.LE: BinOp.LE,
    TokenKind.GE: BinOp.GE,
}

_PRIM_TYPES: dict[TokenKind, ty.Type] = {
    TokenKind.KW_INT: ty.INT,
    TokenKind.KW_LONG: ty.LONG,
    TokenKind.KW_FLOAT: ty.FLOAT,
    TokenKind.KW_DOUBLE: ty.DOUBLE,
    TokenKind.KW_BOOL: ty.BOOL,
}


class Parser:
    def __init__(self, source: str):
        self._source = source
        self._tokens = tokenize(source)
        self._pos = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _at(self, kind: TokenKind, offset: int = 0) -> bool:
        return self._peek(offset).kind is kind

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _expect(self, kind: TokenKind, what: str | None = None) -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            expected = what or f"'{kind.value}'"
            raise ParseError(
                f"expected {expected}, found '{tok.text or tok.kind.value}'", tok.span
            )
        return self._advance()

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    # -- entry points ----------------------------------------------------------

    def parse_program(self) -> list[Procedure]:
        procs = [self.parse_procedure()]
        while not self._at(TokenKind.EOF):
            procs.append(self.parse_procedure())
        return procs

    def parse_procedure(self) -> Procedure:
        start = self._expect(TokenKind.KW_PROCEDURE).span
        self._accept(TokenKind.KW_LOCAL)
        name = self._expect(TokenKind.IDENT, "procedure name").text
        self._expect(TokenKind.LPAREN)
        params: list[Param] = []
        if not self._at(TokenKind.RPAREN):
            params.extend(self._parse_param_group(is_output=False))
            if self._accept(TokenKind.SEMI):
                params.extend(self._parse_param_group(is_output=True))
        self._expect(TokenKind.RPAREN)
        return_type: ty.Type | None = None
        if self._accept(TokenKind.COLON):
            return_type = self._parse_type()
        body = self._parse_block()
        return Procedure(name, params, return_type, body, span=start.merge(body.span))

    def _parse_param_group(self, *, is_output: bool) -> list[Param]:
        """Parse ``a, b: T, c: U`` — names share the type that follows them."""
        params: list[Param] = []
        while True:
            names: list[tuple[str, Span]] = []
            tok = self._expect(TokenKind.IDENT, "parameter name")
            names.append((tok.text, tok.span))
            while self._accept(TokenKind.COMMA):
                tok = self._expect(TokenKind.IDENT, "parameter name")
                names.append((tok.text, tok.span))
            self._expect(TokenKind.COLON)
            param_type = self._parse_type()
            for pname, pspan in names:
                params.append(Param(pname, param_type, is_output, span=pspan))
            if not self._accept(TokenKind.COMMA):
                return params

    # -- types -------------------------------------------------------------

    def _parse_type(self) -> ty.Type:
        tok = self._peek()
        if tok.kind in _PRIM_TYPES:
            self._advance()
            return _PRIM_TYPES[tok.kind]
        if tok.kind is TokenKind.KW_GRAPH:
            self._advance()
            return ty.GRAPH
        if tok.kind is TokenKind.KW_NODE:
            self._advance()
            self._skip_graph_binding()
            return ty.NODE
        if tok.kind is TokenKind.KW_EDGE:
            self._advance()
            self._skip_graph_binding()
            return ty.EDGE
        if tok.kind in (TokenKind.KW_NODE_PROP, TokenKind.KW_EDGE_PROP):
            self._advance()
            self._expect(TokenKind.LT)
            elem = self._parse_type()
            self._expect(TokenKind.GT)
            self._skip_graph_binding()
            if tok.kind is TokenKind.KW_NODE_PROP:
                return ty.NodePropType(elem)
            return ty.EdgePropType(elem)
        raise ParseError(f"expected a type, found '{tok.text or tok.kind.value}'", tok.span)

    def _skip_graph_binding(self) -> None:
        """Accept and discard an explicit graph binding like ``Node(G)`` or
        ``N_P<Int>(G)`` — we support exactly one graph per procedure."""
        if self._at(TokenKind.LPAREN) and self._at(TokenKind.IDENT, 1) and self._at(TokenKind.RPAREN, 2):
            self._advance()
            self._advance()
            self._advance()

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> Block:
        start = self._expect(TokenKind.LBRACE).span
        stmts: list[Stmt] = []
        while not self._at(TokenKind.RBRACE):
            stmts.append(self._parse_stmt())
        end = self._expect(TokenKind.RBRACE).span
        return Block(stmts, span=start.merge(end))

    def _parse_stmt_as_block(self) -> Block:
        """A statement where the grammar allows either ``{…}`` or one stmt."""
        if self._at(TokenKind.LBRACE):
            return self._parse_block()
        stmt = self._parse_stmt()
        return Block([stmt], span=stmt.span)

    def _parse_stmt(self) -> Stmt:
        tok = self._peek()
        if tok.kind is TokenKind.LBRACE:
            return self._parse_block()
        if tok.kind in TYPE_KEYWORDS:
            return self._parse_var_decl()
        if tok.kind is TokenKind.KW_IF:
            return self._parse_if()
        if tok.kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if tok.kind is TokenKind.KW_DO:
            return self._parse_do_while()
        if tok.kind in (TokenKind.KW_FOREACH, TokenKind.KW_FOR):
            return self._parse_foreach()
        if tok.kind is TokenKind.KW_INBFS:
            return self._parse_bfs()
        if tok.kind is TokenKind.KW_RETURN:
            return self._parse_return()
        if tok.kind is TokenKind.IDENT:
            return self._parse_simple_stmt()
        raise ParseError(f"expected a statement, found '{tok.text or tok.kind.value}'", tok.span)

    def _parse_var_decl(self) -> VarDecl:
        start = self._peek().span
        decl_type = self._parse_type()
        names = [self._expect(TokenKind.IDENT, "variable name").text]
        while self._accept(TokenKind.COMMA):
            names.append(self._expect(TokenKind.IDENT, "variable name").text)
        init: Expr | None = None
        if self._accept(TokenKind.ASSIGN):
            init = self.parse_expr()
        end = self._expect(TokenKind.SEMI).span
        return VarDecl(decl_type, names, init, span=start.merge(end))

    def _parse_if(self) -> If:
        start = self._expect(TokenKind.KW_IF).span
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        then = self._parse_stmt_as_block()
        other: Block | None = None
        if self._accept(TokenKind.KW_ELSE):
            other = self._parse_stmt_as_block()
        span = start.merge(other.span if other else then.span)
        return If(cond, then, other, span=span)

    def _parse_while(self) -> While:
        start = self._expect(TokenKind.KW_WHILE).span
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        body = self._parse_stmt_as_block()
        return While(cond, body, do_while=False, span=start.merge(body.span))

    def _parse_do_while(self) -> While:
        start = self._expect(TokenKind.KW_DO).span
        body = self._parse_stmt_as_block()
        self._expect(TokenKind.KW_WHILE)
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        end = self._expect(TokenKind.SEMI).span
        return While(cond, body, do_while=True, span=start.merge(end))

    def _parse_iter_header(self) -> tuple[str, IterSource]:
        """Parse ``it: driver.Range`` (shared by Foreach, InBFS and the
        reduction expressions)."""
        it = self._expect(TokenKind.IDENT, "iterator name")
        self._expect(TokenKind.COLON)
        driver = self._expect(TokenKind.IDENT, "iteration source")
        self._expect(TokenKind.DOT)
        range_tok = self._expect(TokenKind.IDENT, "iteration range")
        kind = ast.ITER_SOURCE_NAMES.get(range_tok.text)
        if kind is None:
            raise ParseError(
                f"unknown iteration range '{range_tok.text}'",
                range_tok.span,
                hint="expected one of: " + ", ".join(sorted(ast.ITER_SOURCE_NAMES)),
            )
        source = IterSource(
            Ident(driver.text, span=driver.span), kind, span=driver.span.merge(range_tok.span)
        )
        return it.text, source

    def _parse_filter(self) -> Expr | None:
        """An optional iteration filter, written ``(cond)`` or ``[cond]``."""
        if self._accept(TokenKind.LBRACKET):
            cond = self.parse_expr()
            self._expect(TokenKind.RBRACKET)
            return cond
        if self._at(TokenKind.LPAREN):
            self._advance()
            cond = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            return cond
        return None

    def _parse_foreach(self) -> Foreach:
        tok = self._advance()  # Foreach | For
        parallel = tok.kind is TokenKind.KW_FOREACH
        self._expect(TokenKind.LPAREN)
        iterator, source = self._parse_iter_header()
        self._expect(TokenKind.RPAREN)
        filt = self._parse_filter()
        body = self._parse_stmt_as_block()
        return Foreach(iterator, source, filt, body, parallel, span=tok.span.merge(body.span))

    def _parse_bfs(self) -> Bfs:
        start = self._expect(TokenKind.KW_INBFS).span
        self._expect(TokenKind.LPAREN)
        iterator, source = self._parse_iter_header()
        if source.kind is not IterKind.NODES:
            raise ParseError("InBFS must iterate over G.Nodes", source.span)
        self._expect(TokenKind.KW_FROM)
        root = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        filt = self._parse_filter()
        body = self._parse_block()
        reverse_filter: Expr | None = None
        reverse_body: Block | None = None
        end_span = body.span
        if self._accept(TokenKind.KW_INREVERSE):
            reverse_filter = self._parse_filter()
            reverse_body = self._parse_block()
            end_span = reverse_body.span
        return Bfs(
            iterator,
            source,
            root,
            filt,
            body,
            reverse_filter,
            reverse_body,
            span=start.merge(end_span),
        )

    def _parse_return(self) -> Return:
        start = self._expect(TokenKind.KW_RETURN).span
        expr: Expr | None = None
        if not self._at(TokenKind.SEMI):
            expr = self.parse_expr()
        end = self._expect(TokenKind.SEMI).span
        return Return(expr, span=start.merge(end))

    def _parse_simple_stmt(self) -> Stmt:
        """Assignment forms: ``lhs = e;``, ``lhs <= e @ i;``, ``lhs op= e;``,
        ``lhs++;`` where ``lhs`` is an identifier or a property access."""
        target = self._parse_designator()
        tok = self._peek()
        if tok.kind is TokenKind.ASSIGN:
            self._advance()
            expr = self.parse_expr()
            end = self._expect(TokenKind.SEMI).span
            return Assign(target, expr, span=target.span.merge(end))
        if tok.kind is TokenKind.LE:  # deferred (bulk-synchronous) assignment
            self._advance()
            expr = self.parse_expr()
            bind = self._parse_bind()
            end = self._expect(TokenKind.SEMI).span
            return DeferredAssign(target, expr, bind, span=target.span.merge(end))
        if tok.kind in _REDUCE_ASSIGN_OPS:
            self._advance()
            expr = self.parse_expr()
            bind = self._parse_bind()
            end = self._expect(TokenKind.SEMI).span
            return ReduceAssign(
                target, _REDUCE_ASSIGN_OPS[tok.kind], expr, bind, span=target.span.merge(end)
            )
        if tok.kind is TokenKind.INCR:
            self._advance()
            end = self._expect(TokenKind.SEMI).span
            one = IntLit(1, span=tok.span)
            read = self._copy_designator(target)
            add = ast.Binary(BinOp.ADD, read, one, span=tok.span)
            return Assign(target, add, span=target.span.merge(end))
        raise ParseError(
            f"expected an assignment operator, found '{tok.text or tok.kind.value}'", tok.span
        )

    def _parse_designator(self) -> Expr:
        tok = self._expect(TokenKind.IDENT, "assignment target")
        target: Expr = Ident(tok.text, span=tok.span)
        if self._at(TokenKind.DOT):
            self._advance()
            prop_tok = self._expect(TokenKind.IDENT, "property name")
            target = PropAccess(target, prop_tok.text, span=tok.span.merge(prop_tok.span))
        return target

    @staticmethod
    def _copy_designator(target: Expr) -> Expr:
        if isinstance(target, Ident):
            return Ident(target.name, span=target.span)
        assert isinstance(target, PropAccess) and isinstance(target.target, Ident)
        return PropAccess(Ident(target.target.name, span=target.span), target.prop, span=target.span)

    def _parse_bind(self) -> str | None:
        if self._accept(TokenKind.AT):
            return self._expect(TokenKind.IDENT, "binding iterator").text
        return None

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expr:
        cond = self._parse_or()
        if self._accept(TokenKind.QUESTION):
            then = self.parse_expr()
            self._expect(TokenKind.COLON)
            other = self._parse_ternary()
            return Ternary(cond, then, other, span=cond.span.merge(other.span))
        return cond

    def _parse_or(self) -> Expr:
        lhs = self._parse_and()
        while self._accept(TokenKind.OR_OP):
            rhs = self._parse_and()
            lhs = ast.Binary(BinOp.OR, lhs, rhs, span=lhs.span.merge(rhs.span))
        return lhs

    def _parse_and(self) -> Expr:
        lhs = self._parse_cmp()
        while self._accept(TokenKind.AND_OP):
            rhs = self._parse_cmp()
            lhs = ast.Binary(BinOp.AND, lhs, rhs, span=lhs.span.merge(rhs.span))
        return lhs

    def _parse_cmp(self) -> Expr:
        lhs = self._parse_add()
        tok = self._peek()
        if tok.kind in _CMP_OPS:
            self._advance()
            rhs = self._parse_add()
            return ast.Binary(_CMP_OPS[tok.kind], lhs, rhs, span=lhs.span.merge(rhs.span))
        return lhs

    def _parse_add(self) -> Expr:
        lhs = self._parse_mul()
        while True:
            if self._accept(TokenKind.PLUS):
                rhs = self._parse_mul()
                lhs = ast.Binary(BinOp.ADD, lhs, rhs, span=lhs.span.merge(rhs.span))
            elif self._accept(TokenKind.MINUS):
                rhs = self._parse_mul()
                lhs = ast.Binary(BinOp.SUB, lhs, rhs, span=lhs.span.merge(rhs.span))
            else:
                return lhs

    def _parse_mul(self) -> Expr:
        lhs = self._parse_unary()
        while True:
            if self._accept(TokenKind.STAR):
                rhs = self._parse_unary()
                lhs = ast.Binary(BinOp.MUL, lhs, rhs, span=lhs.span.merge(rhs.span))
            elif self._accept(TokenKind.SLASH):
                rhs = self._parse_unary()
                lhs = ast.Binary(BinOp.DIV, lhs, rhs, span=lhs.span.merge(rhs.span))
            elif self._accept(TokenKind.PERCENT):
                rhs = self._parse_unary()
                lhs = ast.Binary(BinOp.MOD, lhs, rhs, span=lhs.span.merge(rhs.span))
            else:
                return lhs

    def _parse_unary(self) -> Expr:
        tok = self._peek()
        if tok.kind is TokenKind.MINUS:
            self._advance()
            if self._at(TokenKind.KW_INF):
                inf = self._advance()
                return InfLit(negative=True, span=tok.span.merge(inf.span))
            operand = self._parse_unary()
            return Unary(UnOp.NEG, operand, span=tok.span.merge(operand.span))
        if tok.kind is TokenKind.PLUS:
            self._advance()
            if self._at(TokenKind.KW_INF):
                inf = self._advance()
                return InfLit(negative=False, span=tok.span.merge(inf.span))
            return self._parse_unary()
        if tok.kind is TokenKind.NOT:
            self._advance()
            operand = self._parse_unary()
            return Unary(UnOp.NOT, operand, span=tok.span.merge(operand.span))
        return self._parse_primary()

    def _is_cast_ahead(self) -> bool:
        return (
            self._at(TokenKind.LPAREN)
            and self._peek(1).kind in TYPE_KEYWORDS
            and self._at(TokenKind.RPAREN, 2)
        )

    def _parse_primary(self) -> Expr:
        tok = self._peek()
        if tok.kind is TokenKind.INT_LIT:
            self._advance()
            return IntLit(int(tok.text), span=tok.span)
        if tok.kind is TokenKind.FLOAT_LIT:
            self._advance()
            return FloatLit(float(tok.text), span=tok.span)
        if tok.kind is TokenKind.KW_TRUE:
            self._advance()
            return BoolLit(True, span=tok.span)
        if tok.kind is TokenKind.KW_FALSE:
            self._advance()
            return BoolLit(False, span=tok.span)
        if tok.kind is TokenKind.KW_NIL:
            self._advance()
            return NilLit(span=tok.span)
        if tok.kind is TokenKind.KW_INF:
            self._advance()
            return InfLit(negative=False, span=tok.span)
        if self._is_cast_ahead():
            self._advance()
            to_type = self._parse_type()
            self._expect(TokenKind.RPAREN)
            operand = self._parse_unary()
            return Cast(to_type, operand, span=tok.span.merge(operand.span))
        if tok.kind is TokenKind.LPAREN:
            self._advance()
            inner = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            return inner
        if tok.kind is TokenKind.BAR:
            self._advance()
            inner = self.parse_expr()
            end = self._expect(TokenKind.BAR, "closing '|'").span
            return Unary(UnOp.ABS, inner, span=tok.span.merge(end))
        if tok.kind is TokenKind.IDENT:
            if tok.text in ast.REDUCE_EXPR_NAMES and self._at(TokenKind.LPAREN, 1):
                return self._parse_reduce_expr()
            return self._parse_postfix()
        raise ParseError(
            f"expected an expression, found '{tok.text or tok.kind.value}'", tok.span
        )

    def _parse_reduce_expr(self) -> ReduceExpr:
        name_tok = self._advance()
        op = ast.REDUCE_EXPR_NAMES[name_tok.text]
        self._expect(TokenKind.LPAREN)
        iterator, source = self._parse_iter_header()
        self._expect(TokenKind.RPAREN)
        filt = self._parse_filter()
        body: Expr | None = None
        end_span = source.span
        if self._accept(TokenKind.LBRACE):
            body = self.parse_expr()
            end_span = self._expect(TokenKind.RBRACE).span
        if op in (ReduceOp.ANY, ReduceOp.ALL) and body is not None and filt is None:
            # Exist(n: …){cond} — predicate written as the body.
            filt, body = body, None
        if body is None and op not in (ReduceOp.COUNT, ReduceOp.ANY, ReduceOp.ALL):
            raise ParseError(
                f"{name_tok.text} requires a body expression in braces", name_tok.span
            )
        return ReduceExpr(op, iterator, source, filt, body, span=name_tok.span.merge(end_span))

    def _parse_postfix(self) -> Expr:
        tok = self._expect(TokenKind.IDENT)
        expr: Expr = Ident(tok.text, span=tok.span)
        while self._at(TokenKind.DOT):
            self._advance()
            member = self._expect(TokenKind.IDENT, "member name")
            if self._at(TokenKind.LPAREN):
                self._advance()
                args: list[Expr] = []
                if not self._at(TokenKind.RPAREN):
                    args.append(self.parse_expr())
                    while self._accept(TokenKind.COMMA):
                        args.append(self.parse_expr())
                end = self._expect(TokenKind.RPAREN).span
                expr = MethodCall(expr, member.text, args, span=tok.span.merge(end))
            else:
                expr = PropAccess(expr, member.text, span=tok.span.merge(member.span))
        return expr


def parse_procedure(source: str) -> Procedure:
    """Parse a single Green-Marl procedure from ``source``."""
    parser = Parser(source)
    proc = parser.parse_procedure()
    tok = parser._peek()
    if tok.kind is not TokenKind.EOF:
        raise ParseError(f"unexpected trailing input '{tok.text}'", tok.span)
    return proc


def parse_program(source: str) -> list[Procedure]:
    """Parse one or more procedures from ``source``."""
    return Parser(source).parse_program()
