"""Abstract syntax tree for the Green-Marl subset used by the paper.

Design notes
------------

* Nodes are plain dataclasses with identity equality (``eq=False``) so that
  analyses can key dictionaries and sets by AST node.
* Every node carries a :class:`~repro.lang.errors.Span`.
* Expression nodes have a mutable ``type`` slot filled in by the type checker.
* :func:`walk` yields a preorder traversal; rewriting passes construct new
  statement lists and use :func:`map_expr` for expression rewriting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields
from typing import Callable, Iterator

from .errors import UNKNOWN_SPAN, Span
from .types import Type


# ---------------------------------------------------------------------------
# Operators and iteration kinds
# ---------------------------------------------------------------------------


class BinOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    EQ = "=="
    NEQ = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    AND = "&&"
    OR = "||"


class UnOp(enum.Enum):
    NEG = "-"
    NOT = "!"
    ABS = "| |"


class ReduceOp(enum.Enum):
    """Reduction operators, used both by reduce-assignments (``+=``, ``min=`` …)
    and by reduction expressions (``Sum``, ``Count``, ``Exist`` …)."""

    SUM = "+"
    PRODUCT = "*"
    COUNT = "count"
    MIN = "min"
    MAX = "max"
    AVG = "avg"
    ALL = "&&"  # All(...)  /  &=
    ANY = "||"  # Exist(...)  /  |=


#: Reduction-expression spellings accepted by the parser.
REDUCE_EXPR_NAMES: dict[str, ReduceOp] = {
    "Sum": ReduceOp.SUM,
    "Product": ReduceOp.PRODUCT,
    "Count": ReduceOp.COUNT,
    "Min": ReduceOp.MIN,
    "Max": ReduceOp.MAX,
    "Avg": ReduceOp.AVG,
    "All": ReduceOp.ALL,
    "Exist": ReduceOp.ANY,
}


class IterKind(enum.Enum):
    NODES = "Nodes"
    NBRS = "Nbrs"
    IN_NBRS = "InNbrs"
    UP_NBRS = "UpNbrs"      # BFS parents (only valid inside InBFS/InReverse)
    DOWN_NBRS = "DownNbrs"  # BFS children (only valid inside InBFS/InReverse)

    def is_neighborhood(self) -> bool:
        return self is not IterKind.NODES


#: Spellings accepted after the ``.`` of an iteration source.
ITER_SOURCE_NAMES: dict[str, IterKind] = {
    "Nodes": IterKind.NODES,
    "Nbrs": IterKind.NBRS,
    "OutNbrs": IterKind.NBRS,
    "InNbrs": IterKind.IN_NBRS,
    "UpNbrs": IterKind.UP_NBRS,
    "DownNbrs": IterKind.DOWN_NBRS,
}


def flip_iter_kind(kind: IterKind) -> IterKind:
    """Reverse the edge direction of a neighborhood iteration (§4.1, Flipping
    Edges).  BFS-relative directions flip between parents and children."""
    flips = {
        IterKind.NBRS: IterKind.IN_NBRS,
        IterKind.IN_NBRS: IterKind.NBRS,
        IterKind.UP_NBRS: IterKind.DOWN_NBRS,
        IterKind.DOWN_NBRS: IterKind.UP_NBRS,
    }
    return flips[kind]


# ---------------------------------------------------------------------------
# Base node
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class AstNode:
    """Common base: all AST nodes carry a source span."""

    span: Span = field(default=UNKNOWN_SPAN, kw_only=True)

    def children(self) -> Iterator["AstNode"]:
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, AstNode):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, AstNode):
                        yield item


def walk(node: AstNode) -> Iterator[AstNode]:
    """Preorder traversal of the subtree rooted at ``node``."""
    yield node
    for child in node.children():
        yield from walk(child)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Expr(AstNode):
    """Base class for expressions; ``type`` is filled by the type checker."""

    type: Type | None = field(default=None, kw_only=True, repr=False)


@dataclass(eq=False)
class IntLit(Expr):
    value: int = 0


@dataclass(eq=False)
class FloatLit(Expr):
    value: float = 0.0


@dataclass(eq=False)
class BoolLit(Expr):
    value: bool = False


@dataclass(eq=False)
class NilLit(Expr):
    """The NIL node/edge literal."""


@dataclass(eq=False)
class InfLit(Expr):
    """+INF / -INF."""

    negative: bool = False


@dataclass(eq=False)
class Ident(Expr):
    name: str = ""


@dataclass(eq=False)
class PropAccess(Expr):
    """``target.prop`` — a node/edge property read, or (when ``target`` is the
    graph) the group-assignment form that only appears on an LHS."""

    target: Expr = None  # type: ignore[assignment]
    prop: str = ""


@dataclass(eq=False)
class MethodCall(Expr):
    """Built-in method calls: ``G.NumNodes()``, ``n.Degree()``,
    ``G.PickRandom()``, ``s.ToEdge()`` …"""

    target: Expr = None  # type: ignore[assignment]
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass(eq=False)
class Unary(Expr):
    op: UnOp = UnOp.NEG
    operand: Expr = None  # type: ignore[assignment]


@dataclass(eq=False)
class Binary(Expr):
    op: BinOp = BinOp.ADD
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]


@dataclass(eq=False)
class Ternary(Expr):
    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    other: Expr = None  # type: ignore[assignment]


@dataclass(eq=False)
class Cast(Expr):
    to_type: Type = None  # type: ignore[assignment]
    operand: Expr = None  # type: ignore[assignment]


@dataclass(eq=False)
class IterSource(AstNode):
    """The range of an iteration: ``G.Nodes``, ``n.Nbrs``, ``n.InNbrs`` …"""

    driver: Expr = None  # type: ignore[assignment]
    kind: IterKind = IterKind.NODES


@dataclass(eq=False)
class ReduceExpr(Expr):
    """``Sum(w: t.InNbrs)(filter){body}`` and friends.

    ``body`` is ``None`` for ``Count``; for ``Exist``/``All`` the predicate may
    be written either as the filter or as the body.
    """

    op: ReduceOp = ReduceOp.SUM
    iterator: str = ""
    source: IterSource = None  # type: ignore[assignment]
    filter: Expr | None = None
    body: Expr | None = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Stmt(AstNode):
    pass


@dataclass(eq=False)
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass(eq=False)
class VarDecl(Stmt):
    """``Int S = 0;`` or ``N_P<Bool> updated;`` (property declaration)."""

    decl_type: Type = None  # type: ignore[assignment]
    names: list[str] = field(default_factory=list)
    init: Expr | None = None


@dataclass(eq=False)
class Assign(Stmt):
    """Plain assignment.  When ``target`` is a :class:`PropAccess` whose target
    is the graph (``G.dist = …``), this is a *group assignment* over all nodes,
    desugared by the normalizer into a parallel Foreach."""

    target: Expr = None  # type: ignore[assignment]
    expr: Expr = None  # type: ignore[assignment]


@dataclass(eq=False)
class ReduceAssign(Stmt):
    """``S += e;``, ``x min= e;``, ``b &= e;`` …  with an optional ``@ iter``
    binding (ignored by the sequential semantics, significant to Green-Marl's
    parallel semantics checker; we accept and record it)."""

    target: Expr = None  # type: ignore[assignment]
    op: ReduceOp = ReduceOp.SUM
    expr: Expr = None  # type: ignore[assignment]
    bind: str | None = None


@dataclass(eq=False)
class DeferredAssign(Stmt):
    """``t.prop <= e @ t;`` — bulk-synchronous write, visible after the
    enclosing parallel loop finishes."""

    target: Expr = None  # type: ignore[assignment]
    expr: Expr = None  # type: ignore[assignment]
    bind: str | None = None


@dataclass(eq=False)
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Block = None  # type: ignore[assignment]
    other: Block | None = None


@dataclass(eq=False)
class While(Stmt):
    """``While (c) {…}`` or ``Do {…} While (c);`` when ``do_while`` is set."""

    cond: Expr = None  # type: ignore[assignment]
    body: Block = None  # type: ignore[assignment]
    do_while: bool = False


@dataclass(eq=False)
class Foreach(Stmt):
    """``Foreach (it: source)(filter) {…}``.

    ``parallel`` is False for the sequential ``For`` spelling.
    """

    iterator: str = ""
    source: IterSource = None  # type: ignore[assignment]
    filter: Expr | None = None
    body: Block = None  # type: ignore[assignment]
    parallel: bool = True


@dataclass(eq=False)
class Bfs(Stmt):
    """``InBFS (v: G.Nodes From root)(filter) {…} InReverse(rfilter) {…}``."""

    iterator: str = ""
    source: IterSource = None  # type: ignore[assignment]
    root: Expr = None  # type: ignore[assignment]
    filter: Expr | None = None
    body: Block = None  # type: ignore[assignment]
    reverse_filter: Expr | None = None
    reverse_body: Block | None = None


@dataclass(eq=False)
class Return(Stmt):
    expr: Expr | None = None


# ---------------------------------------------------------------------------
# Procedure
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Param(AstNode):
    name: str = ""
    param_type: Type = None  # type: ignore[assignment]
    is_output: bool = False


@dataclass(eq=False)
class Procedure(AstNode):
    name: str = ""
    params: list[Param] = field(default_factory=list)
    return_type: Type | None = None
    body: Block = None  # type: ignore[assignment]

    @property
    def graph_param(self) -> Param | None:
        for p in self.params:
            if p.param_type.is_graph():
                return p
        return None


# ---------------------------------------------------------------------------
# Rewriting helpers
# ---------------------------------------------------------------------------

ExprFn = Callable[[Expr], Expr]


def map_expr(expr: Expr, fn: ExprFn) -> Expr:
    """Bottom-up expression rewrite: children first, then ``fn`` on the node.

    ``fn`` may return its argument unchanged; nodes are rebuilt only via field
    mutation, keeping identity (and attached types) where possible.
    """
    if isinstance(expr, PropAccess):
        expr.target = map_expr(expr.target, fn)
    elif isinstance(expr, MethodCall):
        expr.target = map_expr(expr.target, fn)
        expr.args = [map_expr(a, fn) for a in expr.args]
    elif isinstance(expr, Unary):
        expr.operand = map_expr(expr.operand, fn)
    elif isinstance(expr, Binary):
        expr.lhs = map_expr(expr.lhs, fn)
        expr.rhs = map_expr(expr.rhs, fn)
    elif isinstance(expr, Ternary):
        expr.cond = map_expr(expr.cond, fn)
        expr.then = map_expr(expr.then, fn)
        expr.other = map_expr(expr.other, fn)
    elif isinstance(expr, Cast):
        expr.operand = map_expr(expr.operand, fn)
    elif isinstance(expr, ReduceExpr):
        expr.source.driver = map_expr(expr.source.driver, fn)
        if expr.filter is not None:
            expr.filter = map_expr(expr.filter, fn)
        if expr.body is not None:
            expr.body = map_expr(expr.body, fn)
    return fn(expr)


def stmt_exprs(stmt: Stmt) -> list[Expr]:
    """The direct expression operands of a statement (not recursing into
    nested statements)."""
    if isinstance(stmt, VarDecl):
        return [stmt.init] if stmt.init is not None else []
    if isinstance(stmt, Assign):
        return [stmt.target, stmt.expr]
    if isinstance(stmt, (ReduceAssign, DeferredAssign)):
        return [stmt.target, stmt.expr]
    if isinstance(stmt, If):
        return [stmt.cond]
    if isinstance(stmt, While):
        return [stmt.cond]
    if isinstance(stmt, Foreach):
        out: list[Expr] = [stmt.source.driver]
        if stmt.filter is not None:
            out.append(stmt.filter)
        return out
    if isinstance(stmt, Bfs):
        out = [stmt.source.driver, stmt.root]
        if stmt.filter is not None:
            out.append(stmt.filter)
        if stmt.reverse_filter is not None:
            out.append(stmt.reverse_filter)
        return out
    if isinstance(stmt, Return):
        return [stmt.expr] if stmt.expr is not None else []
    return []


def sub_blocks(stmt: Stmt) -> list[Block]:
    """The nested statement blocks of a statement."""
    if isinstance(stmt, If):
        return [stmt.then] + ([stmt.other] if stmt.other is not None else [])
    if isinstance(stmt, While):
        return [stmt.body]
    if isinstance(stmt, Foreach):
        return [stmt.body]
    if isinstance(stmt, Bfs):
        return [stmt.body] + ([stmt.reverse_body] if stmt.reverse_body is not None else [])
    if isinstance(stmt, Block):
        return [stmt]
    return []


# -- convenience constructors (used heavily by the transformation passes) ----


def ident(name: str, *, type: Type | None = None, span: Span = UNKNOWN_SPAN) -> Ident:
    return Ident(name, type=type, span=span)


def intlit(value: int) -> IntLit:
    return IntLit(value)


def prop(target_name: str, prop_name: str, *, span: Span = UNKNOWN_SPAN) -> PropAccess:
    return PropAccess(Ident(target_name, span=span), prop_name, span=span)


def binop(op: BinOp, lhs: Expr, rhs: Expr) -> Binary:
    return Binary(op, lhs, rhs, span=lhs.span.merge(rhs.span))


def land(*terms: Expr) -> Expr:
    """Conjunction of one or more boolean expressions."""
    result = terms[0]
    for t in terms[1:]:
        result = binop(BinOp.AND, result, t)
    return result
