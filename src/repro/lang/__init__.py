"""Green-Marl language frontend: lexer, parser, AST, types, type checker."""

from .errors import (
    DiagnosticSink,
    GreenMarlError,
    LexError,
    NotPregelCanonicalError,
    ParseError,
    Span,
    TransformError,
    TranslationError,
    TypeCheckError,
)
from .lexer import tokenize
from .parser import parse_procedure, parse_program
from .pretty import pretty

__all__ = [
    "DiagnosticSink",
    "GreenMarlError",
    "LexError",
    "NotPregelCanonicalError",
    "ParseError",
    "Span",
    "TransformError",
    "TranslationError",
    "TypeCheckError",
    "tokenize",
    "parse_procedure",
    "parse_program",
    "pretty",
]
