"""Pretty-printer: AST → Green-Marl source.

The output re-parses to an equivalent AST (round-trip property, tested with
hypothesis), and is used to display transformed programs — e.g. the
Pregel-canonical form the compiler produces before translation.
"""

from __future__ import annotations

from .ast import (
    Assign,
    AstNode,
    Bfs,
    Binary,
    BinOp,
    Block,
    BoolLit,
    Cast,
    DeferredAssign,
    Expr,
    FloatLit,
    Foreach,
    Ident,
    If,
    InfLit,
    IntLit,
    IterSource,
    MethodCall,
    NilLit,
    Procedure,
    PropAccess,
    ReduceAssign,
    ReduceExpr,
    ReduceOp,
    Return,
    Stmt,
    Ternary,
    Unary,
    UnOp,
    VarDecl,
    While,
)

_REDUCE_ASSIGN_SPELLING = {
    ReduceOp.SUM: "+=",
    ReduceOp.PRODUCT: "*=",
    ReduceOp.MIN: "min=",
    ReduceOp.MAX: "max=",
    ReduceOp.ALL: "&=",
    ReduceOp.ANY: "|=",
}

_REDUCE_EXPR_SPELLING = {
    ReduceOp.SUM: "Sum",
    ReduceOp.PRODUCT: "Product",
    ReduceOp.COUNT: "Count",
    ReduceOp.MIN: "Min",
    ReduceOp.MAX: "Max",
    ReduceOp.AVG: "Avg",
    ReduceOp.ALL: "All",
    ReduceOp.ANY: "Exist",
}

# Binding strength, used to decide where parentheses are required.
_PRECEDENCE = {
    BinOp.OR: 1,
    BinOp.AND: 2,
    BinOp.EQ: 3,
    BinOp.NEQ: 3,
    BinOp.LT: 3,
    BinOp.GT: 3,
    BinOp.LE: 3,
    BinOp.GE: 3,
    BinOp.ADD: 4,
    BinOp.SUB: 4,
    BinOp.MUL: 5,
    BinOp.DIV: 5,
    BinOp.MOD: 5,
}
_TERNARY_PREC = 0
_UNARY_PREC = 6


class PrettyPrinter:
    def __init__(self, indent: str = "  "):
        self._indent = indent
        self._lines: list[str] = []
        self._depth = 0

    # -- emission helpers ----------------------------------------------------

    def _emit(self, text: str) -> None:
        self._lines.append(self._indent * self._depth + text)

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"

    # -- top level -----------------------------------------------------------

    def print_procedure(self, proc: Procedure) -> str:
        inputs = [p for p in proc.params if not p.is_output]
        outputs = [p for p in proc.params if p.is_output]
        sig = ", ".join(f"{p.name}: {p.param_type}" for p in inputs)
        if outputs:
            sig += "; " + ", ".join(f"{p.name}: {p.param_type}" for p in outputs)
        ret = f": {proc.return_type}" if proc.return_type is not None else ""
        self._emit(f"Procedure {proc.name}({sig}){ret} {{")
        self._depth += 1
        for stmt in proc.body.stmts:
            self.print_stmt(stmt)
        self._depth -= 1
        self._emit("}")
        return self.render()

    # -- statements -----------------------------------------------------------

    def print_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            self._emit("{")
            self._depth += 1
            for s in stmt.stmts:
                self.print_stmt(s)
            self._depth -= 1
            self._emit("}")
        elif isinstance(stmt, VarDecl):
            init = f" = {self.expr(stmt.init)}" if stmt.init is not None else ""
            self._emit(f"{stmt.decl_type} {', '.join(stmt.names)}{init};")
        elif isinstance(stmt, Assign):
            self._emit(f"{self.expr(stmt.target)} = {self.expr(stmt.expr)};")
        elif isinstance(stmt, ReduceAssign):
            bind = f" @ {stmt.bind}" if stmt.bind else ""
            op = _REDUCE_ASSIGN_SPELLING[stmt.op]
            self._emit(f"{self.expr(stmt.target)} {op} {self.expr(stmt.expr)}{bind};")
        elif isinstance(stmt, DeferredAssign):
            bind = f" @ {stmt.bind}" if stmt.bind else ""
            self._emit(f"{self.expr(stmt.target)} <= {self.expr(stmt.expr)}{bind};")
        elif isinstance(stmt, If):
            self._emit(f"If ({self.expr(stmt.cond)})")
            self.print_stmt(stmt.then)
            if stmt.other is not None:
                self._emit("Else")
                self.print_stmt(stmt.other)
        elif isinstance(stmt, While):
            if stmt.do_while:
                self._emit("Do")
                self.print_stmt(stmt.body)
                self._emit(f"While ({self.expr(stmt.cond)});")
            else:
                self._emit(f"While ({self.expr(stmt.cond)})")
                self.print_stmt(stmt.body)
        elif isinstance(stmt, Foreach):
            kw = "Foreach" if stmt.parallel else "For"
            filt = f" [{self.expr(stmt.filter)}]" if stmt.filter is not None else ""
            self._emit(f"{kw} ({stmt.iterator}: {self.iter_source(stmt.source)}){filt}")
            self.print_stmt(stmt.body)
        elif isinstance(stmt, Bfs):
            filt = f" [{self.expr(stmt.filter)}]" if stmt.filter is not None else ""
            self._emit(
                f"InBFS ({stmt.iterator}: {self.iter_source(stmt.source)} "
                f"From {self.expr(stmt.root)}){filt}"
            )
            self.print_stmt(stmt.body)
            if stmt.reverse_body is not None:
                rfilt = (
                    f" [{self.expr(stmt.reverse_filter)}]"
                    if stmt.reverse_filter is not None
                    else ""
                )
                self._emit(f"InReverse{rfilt}")
                self.print_stmt(stmt.reverse_body)
        elif isinstance(stmt, Return):
            if stmt.expr is None:
                self._emit("Return;")
            else:
                self._emit(f"Return {self.expr(stmt.expr)};")
        else:
            raise TypeError(f"cannot pretty-print statement {type(stmt).__name__}")

    # -- expressions -----------------------------------------------------------

    def iter_source(self, source: IterSource) -> str:
        return f"{self.expr(source.driver)}.{source.kind.value}"

    def expr(self, e: Expr, parent_prec: int = -1) -> str:
        text, prec = self._expr_with_prec(e)
        if prec < parent_prec:
            return f"({text})"
        return text

    def _expr_with_prec(self, e: Expr) -> tuple[str, int]:
        atom = 100
        if isinstance(e, IntLit):
            return str(e.value), atom
        if isinstance(e, FloatLit):
            return repr(e.value), atom
        if isinstance(e, BoolLit):
            return ("True" if e.value else "False"), atom
        if isinstance(e, NilLit):
            return "NIL", atom
        if isinstance(e, InfLit):
            return ("-INF" if e.negative else "+INF"), atom
        if isinstance(e, Ident):
            return e.name, atom
        if isinstance(e, PropAccess):
            return f"{self.expr(e.target, atom)}.{e.prop}", atom
        if isinstance(e, MethodCall):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{self.expr(e.target, atom)}.{e.name}({args})", atom
        if isinstance(e, Unary):
            if e.op is UnOp.ABS:
                return f"|{self.expr(e.operand)}|", atom
            op = "-" if e.op is UnOp.NEG else "!"
            return f"{op}{self.expr(e.operand, _UNARY_PREC)}", _UNARY_PREC
        if isinstance(e, Binary):
            prec = _PRECEDENCE[e.op]
            lhs = self.expr(e.lhs, prec)
            # left-associative: right operand needs strictly higher precedence
            rhs = self.expr(e.rhs, prec + 1)
            return f"{lhs} {e.op.value} {rhs}", prec
        if isinstance(e, Ternary):
            cond = self.expr(e.cond, _TERNARY_PREC + 1)
            then = self.expr(e.then)
            other = self.expr(e.other, _TERNARY_PREC)
            return f"{cond} ? {then} : {other}", _TERNARY_PREC
        if isinstance(e, Cast):
            return f"({e.to_type}) {self.expr(e.operand, _UNARY_PREC)}", _UNARY_PREC
        if isinstance(e, ReduceExpr):
            name = _REDUCE_EXPR_SPELLING[e.op]
            head = f"{name}({e.iterator}: {self.iter_source(e.source)})"
            if e.filter is not None:
                head += f"[{self.expr(e.filter)}]"
            if e.body is not None:
                head += f"{{{self.expr(e.body)}}}"
            return head, atom
        raise TypeError(f"cannot pretty-print expression {type(e).__name__}")


def pretty(node: AstNode) -> str:
    """Render a procedure, statement or expression back to Green-Marl text."""
    printer = PrettyPrinter()
    if isinstance(node, Procedure):
        return printer.print_procedure(node)
    if isinstance(node, Stmt):
        printer.print_stmt(node)
        return printer.render()
    if isinstance(node, Expr):
        return printer.expr(node)
    raise TypeError(f"cannot pretty-print {type(node).__name__}")
