"""The tracing core: spans, typed events, and the deterministic projection.

The observability layer records everything the paper's evaluation (§5)
measures — per-superstep message/byte/timestep counts, per-worker load, which
compiler transformations fired — as a single ordered stream of
:class:`TraceEvent` records.  Two tracer implementations share one API:

* :class:`Tracer` — records events with wall-clock offsets taken from a
  per-tracer epoch (``perf_counter`` at construction);
* :class:`NullTracer` — the default; every method is a no-op and
  ``enabled`` is ``False``, so instrumented code can skip even the cheap
  bookkeeping.  The engine treats ``tracer=None`` and a disabled tracer
  identically: the hot loops are untouched.

Every event separates its payload into two dicts:

* ``det`` — the *deterministic* fields: quantities that must be bit-identical
  across ``frontier``/``dense`` scheduling and across fault-injected
  recovered runs (message counts, bytes, per-worker send/compute counts,
  halt votes, applied compiler rules).  Events whose outcome legitimately
  differs between such runs (checkpoints, crashes, recovery) carry
  ``det=None`` and are excluded from the deterministic projection.
* ``info`` — everything else: wall times, scheduler mode (sparse vs dense),
  fault-tolerance detail, straggler timings.

:func:`deterministic_events` projects a stream down to its ``det`` half;
``repro.obs.export.deterministic_jsonl`` serializes that projection so tests
can assert byte equality between two traces.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class TraceEvent:
    """One record in the trace stream.

    ``ts`` is seconds since the tracer's epoch; ``dur`` is the span length in
    seconds for span-shaped events (``None`` for instants).
    """

    name: str
    cat: str = "run"
    ts: float = 0.0
    dur: float | None = None
    det: dict | None = None
    info: dict | None = None

    def to_obj(self) -> dict:
        """A plain JSON-serializable dict (stable key set, no None noise)."""
        obj: dict = {"name": self.name, "cat": self.cat, "ts": self.ts}
        if self.dur is not None:
            obj["dur"] = self.dur
        if self.det is not None:
            obj["det"] = self.det
        if self.info is not None:
            obj["info"] = self.info
        return obj


@dataclass
class Span:
    """Mutable payload handed out by :meth:`Tracer.span`: fill ``det`` /
    ``info`` inside the ``with`` body and the closing event carries them."""

    det: dict = field(default_factory=dict)
    info: dict = field(default_factory=dict)


class NullTracer:
    """The do-nothing tracer: the default observability configuration.

    ``enabled`` is ``False`` so instrumented call-sites (the engine's run
    loop, the compiler pipeline) skip their bookkeeping entirely; the methods
    still exist so code that *does* call them unconditionally stays correct.
    """

    enabled = False
    events: tuple = ()

    def now(self) -> float:
        return 0.0

    def event(self, name, cat="run", det=None, info=None, ts=None, dur=None) -> None:
        pass

    @contextmanager
    def span(self, name, cat="run"):
        yield Span()

    def on_rollback(self, superstep: int) -> None:
        pass


#: Shared no-op instance — safe because NullTracer holds no state.
NULL_TRACER = NullTracer()


class Tracer:
    """A recording tracer: one per traced execution (engine run and/or
    compilation).  Event timestamps are offsets from the tracer's creation,
    so one tracer threaded through compile *and* run yields one coherent
    timeline."""

    enabled = True

    def __init__(self):
        self._t0 = time.perf_counter()
        self.events: list[TraceEvent] = []

    def now(self) -> float:
        """Seconds since this tracer's epoch."""
        return time.perf_counter() - self._t0

    def event(
        self,
        name: str,
        cat: str = "run",
        det: dict | None = None,
        info: dict | None = None,
        ts: float | None = None,
        dur: float | None = None,
    ) -> None:
        self.events.append(
            TraceEvent(name, cat, self.now() if ts is None else ts, dur, det, info)
        )

    @contextmanager
    def span(self, name: str, cat: str = "run"):
        """Time a region; the event is appended when the block exits."""
        t0 = self.now()
        payload = Span()
        try:
            yield payload
        finally:
            self.event(
                name,
                cat,
                det=payload.det or None,
                info=payload.info or None,
                ts=t0,
                dur=self.now() - t0,
            )

    def on_rollback(self, superstep: int) -> None:
        """Rollback recovery rewound the engine to ``superstep``: drop the
        superstep records the replay is about to regenerate, so a recovered
        run's deterministic stream matches its failure-free twin's.  Events
        without a step (fault-tolerance lifecycle, compile passes) describe
        things that really happened and are kept."""
        self.events = [
            e
            for e in self.events
            if not (
                e.det is not None
                and "step" in e.det
                and e.det["step"] >= superstep
            )
        ]


def deterministic_events(events) -> list[dict]:
    """The deterministic projection of a trace: ``(name, det)`` for every
    event that carries deterministic fields, in stream order.  This is the
    sequence asserted bit-identical across schedulers and across
    fault-injected recovered runs."""
    return [{"name": e.name, "det": e.det} for e in events if e.det is not None]
