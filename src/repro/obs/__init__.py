"""``repro.obs`` — the observability subsystem.

A cross-cutting tracing/profiling layer threaded through the Pregel engine
(per-superstep phase timings, per-worker load, frontier/scheduler state),
the fault-tolerance manager (checkpoint/crash/recovery lifecycle), and the
compiler pipeline (which §4.1/§4.2 transformations fired, with per-pass
timings — Table 3 as a trace).

Attach a :class:`Tracer` anywhere an engine option travels::

    from repro.obs import Tracer
    tracer = Tracer()
    compiled = compile_algorithm("pagerank", emit_java=False, tracer=tracer)
    compiled.program.run(graph, args, tracer=tracer)
    write_chrome_trace(tracer.events, "pagerank.json")   # open in Perfetto

The default is :data:`NULL_TRACER` semantics — ``tracer=None`` leaves the
engine's hot loops completely untouched (measured <5% on the Figure 6
PageRank run; see ``benchmarks/bench_obs.py``).
"""

from .tracer import NULL_TRACER, NullTracer, Span, TraceEvent, Tracer, deterministic_events
from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    deterministic_snapshot,
    prometheus_text,
)
from .export import (
    chrome_trace,
    deterministic_jsonl,
    load_jsonl,
    strip_timing,
    timeline_report,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .profile import (
    StragglerRow,
    WorkerStats,
    profile_report,
    straggler_supersteps,
    worker_profile,
)

__all__ = [
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "Span",
    "StragglerRow",
    "TraceEvent",
    "Tracer",
    "WorkerStats",
    "chrome_trace",
    "deterministic_events",
    "deterministic_jsonl",
    "deterministic_snapshot",
    "load_jsonl",
    "profile_report",
    "prometheus_text",
    "straggler_supersteps",
    "strip_timing",
    "timeline_report",
    "to_jsonl",
    "worker_profile",
    "write_chrome_trace",
    "write_jsonl",
]
