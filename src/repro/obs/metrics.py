"""Labeled metrics registry: counters, gauges, and log-bucketed histograms.

Where the tracer (:mod:`repro.obs.tracer`) records an *ordered stream* of
events for one run, the registry aggregates *cumulative quantities* that are
cheap to bump on hot paths and cheap to merge across processes: message and
byte totals, checkpoint sizes, spill volume, per-phase wall-time
distributions.  It is the measurement substrate for the bench telemetry
pipeline (``repro.bench.telemetry``), the ``gm-pregel metrics`` exporter,
and any future long-running service.

The same zero-cost discipline as the tracer applies:

* :class:`MetricsRegistry` — the recording implementation.  ``enabled`` is
  ``True``; instruments are handles (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) created once and bumped with plain attribute math.
* :class:`NullRegistry` — every instrument factory returns a shared no-op
  handle and ``enabled`` is ``False``.  The engine treats
  ``metrics_registry=None`` and a disabled registry identically: the hot
  loops are untouched (asserted <5% in ``benchmarks/bench_obs.py``).

Instrument identity is ``(name, sorted(labels))``; asking twice returns the
same handle, asking with a different instrument type raises.  Histograms are
log-bucketed at powers of two (``math.frexp`` exponents), stored sparsely,
so observations spanning microseconds to minutes cost one dict bump and
merge bucket-wise without rebinning.

Like trace events' ``det``/``info`` split, every instrument carries a
``det`` flag: deterministic families (message counts, superstep totals)
must be bit-identical across ``sim``/``columnar``/``mp`` on identical runs;
timing families are not.  :func:`deterministic_snapshot` projects a
snapshot down to its deterministic half so tests can assert cross-backend
equality, mirroring ``deterministic_events`` for traces.

Merge semantics (used for the parent-side merge of per-worker registries at
the mp barrier, and by ``gm-pregel compare`` tooling):

* counters — summed;
* histograms — bucket-wise summed (count/sum add, min/max widen);
* gauges — merged by ``max`` (every gauge in the system is a peak or
  high-water mark; a "last write wins" rule would be order-dependent
  across workers and therefore nondeterministic).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, amount=1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value merged by ``max`` (peaks / high-water marks)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def set_max(self, value) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """A log-bucketed distribution: one sparse bucket per power of two.

    ``observe(v)`` files ``v`` under the bucket whose upper bound is the
    smallest power of two >= ``v`` (``math.frexp`` exponent — no log call,
    no bucket-list scan).  Non-positive observations share a single
    underflow bucket with upper bound 0.
    """

    __slots__ = ("count", "total", "vmin", "vmax", "buckets")
    kind = "histogram"

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self.buckets: Dict[int, int] = {}  # frexp exponent -> count

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        if value > 0.0:
            mantissa, exp = math.frexp(value)
            if mantissa == 0.5:  # exact power of two belongs in its own bucket
                exp -= 1
            self.buckets[exp] = self.buckets.get(exp, 0) + 1
        else:
            self.buckets[_UNDERFLOW] = self.buckets.get(_UNDERFLOW, 0) + 1

    def bounds(self) -> Iterator[Tuple[float, int]]:
        """``(upper_bound, count)`` pairs in ascending bound order."""
        for exp in sorted(self.buckets):
            bound = 0.0 if exp == _UNDERFLOW else math.ldexp(1.0, exp)
            yield bound, self.buckets[exp]


#: Sentinel exponent for the <= 0 bucket; far below any frexp result.
_UNDERFLOW = -5000


class _NullInstrument:
    """One shared handle standing in for every disabled instrument."""

    __slots__ = ()

    def inc(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def set_max(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The do-nothing registry: the default metrics configuration.

    ``enabled`` is ``False`` so instrumented call-sites skip their
    bookkeeping entirely; the factories still hand back a working (no-op)
    instrument so code that holds handles unconditionally stays correct.
    """

    enabled = False

    def counter(self, name, det=False, **labels):
        return _NULL_INSTRUMENT

    def gauge(self, name, det=False, **labels):
        return _NULL_INSTRUMENT

    def histogram(self, name, det=False, **labels):
        return _NULL_INSTRUMENT

    def snapshot(self, reset=False) -> dict:
        return {}

    def merge_snapshot(self, snap) -> None:
        pass


#: Shared no-op instance — safe because NullRegistry holds no state.
NULL_REGISTRY = NullRegistry()


class MetricsRegistry:
    """A recording registry: one per measured execution (or per worker
    process — worker snapshots merge into the parent's registry at the mp
    barrier)."""

    enabled = True

    def __init__(self):
        # name -> (kind, det, {label_key: instrument})
        self._families: Dict[str, Tuple[str, bool, Dict[LabelKey, object]]] = {}

    def _instrument(self, name, cls, det, labels):
        family = self._families.get(name)
        if family is None:
            family = (cls.kind, bool(det), {})
            self._families[name] = family
        elif family[0] != cls.kind:
            raise ValueError(
                f"metric {name!r} already registered as {family[0]}, not {cls.kind}"
            )
        series = family[2]
        key = _label_key(labels)
        inst = series.get(key)
        if inst is None:
            inst = series[key] = cls()
        return inst

    def counter(self, name: str, det: bool = False, **labels) -> Counter:
        return self._instrument(name, Counter, det, labels)

    def gauge(self, name: str, det: bool = False, **labels) -> Gauge:
        return self._instrument(name, Gauge, det, labels)

    def histogram(self, name: str, det: bool = False, **labels) -> Histogram:
        return self._instrument(name, Histogram, det, labels)

    # -- snapshot / merge ------------------------------------------------

    def snapshot(self, reset: bool = False) -> dict:
        """A plain JSON-serializable dict of every family, deterministically
        ordered (names sorted, series sorted by label tuple).

        With ``reset=True`` the registry is emptied after snapshotting —
        the mp workers use this so each barrier merge carries exactly one
        superstep's increments.
        """
        out: dict = {}
        for name in sorted(self._families):
            kind, det, series = self._families[name]
            rows = []
            for key in sorted(series):
                inst = series[key]
                row: dict = {"labels": dict(key)}
                if kind == "histogram":
                    row["count"] = inst.count
                    row["sum"] = inst.total
                    if inst.count:
                        row["min"] = inst.vmin
                        row["max"] = inst.vmax
                    row["buckets"] = [[b, c] for b, c in inst.bounds()]
                else:
                    row["value"] = inst.value
                rows.append(row)
            out[name] = {"kind": kind, "det": det, "series": rows}
        if reset:
            self._families = {}
        return out

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` dict into this registry (counters sum,
        histograms bucket-wise sum, gauges max)."""
        for name, family in snap.items():
            kind = family["kind"]
            det = family.get("det", False)
            cls = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}[kind]
            for row in family["series"]:
                inst = self._instrument(name, cls, det, row["labels"])
                if kind == "counter":
                    inst.value += row["value"]
                elif kind == "gauge":
                    if row["value"] > inst.value:
                        inst.value = row["value"]
                else:
                    count = row["count"]
                    if not count:
                        continue
                    inst.count += count
                    inst.total += row["sum"]
                    if row["min"] < inst.vmin:
                        inst.vmin = row["min"]
                    if row["max"] > inst.vmax:
                        inst.vmax = row["max"]
                    for bound, bcount in row["buckets"]:
                        exp = _UNDERFLOW if bound == 0.0 else math.frexp(bound)[1] - 1
                        inst.buckets[exp] = inst.buckets.get(exp, 0) + bcount


def deterministic_snapshot(snap: dict) -> dict:
    """The deterministic projection of a snapshot: only families flagged
    ``det``, and for histograms only the order-independent count/sum (wall
    times never appear in det families, but bucket boundaries of merged
    histograms could differ by merge order of float sums — counts cannot).
    This is the dict asserted equal across sim/columnar/mp."""
    out = {}
    for name, family in snap.items():
        if not family.get("det"):
            continue
        if family["kind"] == "histogram":
            rows = [
                {"labels": r["labels"], "count": r["count"]}
                for r in family["series"]
            ]
        else:
            rows = [dict(r) for r in family["series"]]
        out[name] = {"kind": family["kind"], "series": rows}
    return out


# -- exposition ----------------------------------------------------------


def _prom_name(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_prom_name(k)}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _prom_value(v) -> str:
    if isinstance(v, float):
        if v == math.inf:
            return "+Inf"
        return repr(v)
    return str(v)


def prometheus_text(snap: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict in the Prometheus
    text exposition format (histograms as cumulative ``_bucket`` series
    plus ``_sum``/``_count``)."""
    lines = []
    for name in sorted(snap):
        family = snap[name]
        pname = _prom_name(name)
        kind = family["kind"]
        lines.append(f"# TYPE {pname} {kind}")
        for row in family["series"]:
            labels = row["labels"]
            if kind == "histogram":
                cumulative = 0
                for bound, count in row["buckets"]:
                    cumulative += count
                    le = dict(labels)
                    le["le"] = _prom_value(float(bound))
                    lines.append(f"{pname}_bucket{_prom_labels(le)} {cumulative}")
                le = dict(labels)
                le["le"] = "+Inf"
                lines.append(f"{pname}_bucket{_prom_labels(le)} {row['count']}")
                lines.append(f"{pname}_sum{_prom_labels(labels)} {_prom_value(row['sum'])}")
                lines.append(f"{pname}_count{_prom_labels(labels)} {row['count']}")
            else:
                lines.append(f"{pname}{_prom_labels(labels)} {_prom_value(row['value'])}")
    return "\n".join(lines) + "\n"
