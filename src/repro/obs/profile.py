"""Per-worker profiling: aggregate a trace into worker load and straggler
reports.

The paper's per-graph runtimes are dominated by the slowest worker of each
superstep (skewed graphs concentrate hub traffic on one partition).  The
profile view makes that visible from a recorded trace:

* :func:`worker_profile` — per-worker totals over the whole run: vertices
  computed, messages sent (combiner folds included, as in
  ``RunMetrics.worker_sent``), payload bytes staged, and vertex-compute
  seconds;
* :func:`straggler_supersteps` — the supersteps with the worst
  compute-time imbalance (max/mean over workers), i.e. where a real cluster
  would stall at the barrier;
* :func:`profile_report` — both, rendered as the ``gm-pregel profile``
  terminal view.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class WorkerStats:
    """One worker's totals over a traced run.

    ``pid`` and ``route_seconds`` are populated only from mp-backend
    traces, where workers are real OS processes and the exchange barrier
    times each worker's slab decode + inbox merge.
    """

    worker: int
    computed: int = 0
    sent: int = 0
    bytes: int = 0
    seconds: float = 0.0
    pid: int | None = None
    route_seconds: float = 0.0


def _superstep_events(events):
    return [e for e in events if e.name == "superstep"]


def worker_profile(events) -> list[WorkerStats]:
    """Aggregate per-superstep worker counters into per-worker run totals."""
    stats: list[WorkerStats] = []

    def _grow(n: int) -> None:
        while len(stats) < n:
            stats.append(WorkerStats(worker=len(stats)))

    for e in _superstep_events(events):
        det, info = e.det or {}, e.info or {}
        computed = det.get("worker_computed") or []
        sent = det.get("worker_sent") or []
        nbytes = det.get("worker_bytes") or []
        seconds = info.get("worker_seconds") or []
        pids = info.get("worker_pids") or []
        route = info.get("worker_route_seconds") or []
        _grow(max(len(computed), len(sent), len(nbytes), len(seconds), len(pids)))
        for w, v in enumerate(computed):
            stats[w].computed += v
        for w, v in enumerate(sent):
            stats[w].sent += v
        for w, v in enumerate(nbytes):
            stats[w].bytes += v
        for w, v in enumerate(seconds):
            stats[w].seconds += v
        for w, v in enumerate(pids):
            stats[w].pid = v  # stable across supersteps until a restart
        for w, v in enumerate(route):
            stats[w].route_seconds += v
    return stats


@dataclass
class StragglerRow:
    """One superstep's load-imbalance summary."""

    step: int
    slowest_worker: int
    slowest_seconds: float
    imbalance: float  # max/mean of per-worker compute seconds (1.0 = balanced)
    slowest_pid: int | None = None  # OS process identity (mp backend only)
    slowest_route_seconds: float = 0.0  # exchange-phase time of that worker


def straggler_supersteps(events, top: int = 5) -> list[StragglerRow]:
    """The ``top`` supersteps with the worst compute-time imbalance."""
    rows: list[StragglerRow] = []
    for e in _superstep_events(events):
        det, info = e.det or {}, e.info or {}
        secs = info.get("worker_seconds") or []
        if not secs:
            continue
        mean = sum(secs) / len(secs)
        if mean <= 0:
            continue
        worst = max(range(len(secs)), key=lambda w: secs[w])
        pids = info.get("worker_pids") or []
        route = info.get("worker_route_seconds") or []
        rows.append(
            StragglerRow(
                det.get("step", -1),
                worst,
                secs[worst],
                max(secs) / mean,
                pids[worst] if worst < len(pids) else None,
                route[worst] if worst < len(route) else 0.0,
            )
        )
    rows.sort(key=lambda r: r.imbalance, reverse=True)
    return rows[:top]


def profile_report(events, top: int = 5) -> str:
    """The ``gm-pregel profile`` terminal view: per-worker totals plus the
    worst straggler supersteps."""
    stats = worker_profile(events)
    if not stats:
        return "(no superstep records in trace)"
    lines = ["== per-worker totals =="]
    header = ["worker", "computed", "sent", "bytes", "compute ms", "share"]
    # mp traces carry real process identities and exchange (route) timings;
    # single-process backends leave them unset and the columns stay hidden.
    with_pids = any(s.pid is not None for s in stats)
    with_route = any(s.route_seconds > 0 for s in stats)
    if with_pids:
        header.insert(1, "pid")
    if with_route:
        header.append("route ms")
    total_seconds = sum(s.seconds for s in stats) or 1.0
    rows = []
    for s in stats:
        row = [
            str(s.worker),
            str(s.computed),
            str(s.sent),
            str(s.bytes),
            f"{s.seconds * 1e3:.2f}",
            f"{100.0 * s.seconds / total_seconds:.1f}%",
        ]
        if with_pids:
            row.insert(1, "-" if s.pid is None else str(s.pid))
        if with_route:
            row.append(f"{s.route_seconds * 1e3:.2f}")
        rows.append(row)
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    lines += ["  ".join(c.rjust(w) for c, w in zip(row, widths)) for row in rows]

    sent = [s.sent for s in stats]
    if sent and sum(sent) > 0:
        mean = sum(sent) / len(sent)
        lines.append("")
        lines.append(f"send load imbalance (max/mean): {max(sent) / mean:.2f}")

    stragglers = straggler_supersteps(events, top)
    if stragglers:
        lines.append("")
        lines.append(f"== top {len(stragglers)} straggler supersteps ==")
        for row in stragglers:
            who = f"worker {row.slowest_worker}"
            if row.slowest_pid is not None:
                who += f" (pid {row.slowest_pid})"
            line = (
                f"  step {row.step}: {who} took "
                f"{row.slowest_seconds * 1e3:.2f} ms "
                f"({row.imbalance:.2f}x the mean)"
            )
            if row.slowest_route_seconds > 0:
                line += f", route {row.slowest_route_seconds * 1e3:.2f} ms"
            lines.append(line)
    return "\n".join(lines)
