"""Trace exporters: JSONL, Chrome trace-event JSON, and a textual timeline.

Three consumers, three formats:

* :func:`to_jsonl` / :func:`write_jsonl` — one JSON object per line, the
  machine-readable event log.  :func:`deterministic_jsonl` writes only the
  deterministic projection (no timestamps, no ``info``), the form that is
  byte-identical across schedulers and across fault-injected recovered runs.
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (one ``{"traceEvents": [...]}`` object), loadable in
  Perfetto / ``chrome://tracing``.  Superstep phase times become complete
  ("X") slices on per-phase tracks, per-worker compute time becomes one
  track per worker, and frontier/message counts become counter ("C") tracks.
* :func:`timeline_report` — a fixed-width per-superstep table for terminals
  and CI logs (the ``gm-pregel trace`` output).
"""

from __future__ import annotations

import json
from pathlib import Path

from .tracer import TraceEvent, deterministic_events

#: superstep phase keys (in ``info``) → display label, in execution order.
PHASES = (
    ("master_s", "master"),
    ("route_s", "route"),
    ("vertex_s", "vertex"),
    ("combine_s", "combine"),
    ("barrier_s", "barrier"),
)


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def to_jsonl(events) -> str:
    """The full event log, one sorted-key JSON object per line."""
    return "".join(
        json.dumps(e.to_obj(), sort_keys=True, default=str) + "\n" for e in events
    )


def deterministic_jsonl(events) -> str:
    """The deterministic projection as JSONL (timestamps and ``info``
    excluded) — byte-identical across runs that must agree."""
    return "".join(
        json.dumps(obj, sort_keys=True, default=str) + "\n"
        for obj in deterministic_events(events)
    )


def write_jsonl(events, path) -> None:
    Path(path).write_text(to_jsonl(events))


def load_jsonl(path) -> list[dict]:
    return [json.loads(line) for line in Path(path).read_text().splitlines() if line]


def strip_timing(obj: dict) -> dict:
    """Project one parsed JSONL record down to its deterministic half
    (drop ``ts``/``dur``/``info``); returns ``{}`` for non-deterministic
    events so callers can filter on truthiness."""
    if "det" not in obj:
        return {}
    return {"name": obj["name"], "det": obj["det"]}


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------

_PID = 1
#: tid layout: fixed tracks for the superstep phases, counters, then one
#: track per worker starting at _WORKER_TID0.
_PHASE_TID0 = 1
_COUNTER_TID = 0
_WORKER_TID0 = 100


def chrome_trace(events) -> dict:
    """Render the event stream in Chrome trace-event format (JSON object
    form).  All timestamps are microseconds from the tracer epoch."""
    out: list[dict] = []

    def meta(tid: int, label: str) -> dict:
        return {
            "ph": "M",
            "name": "thread_name",
            "pid": _PID,
            "tid": tid,
            "args": {"name": label},
        }

    out.append(
        {
            "ph": "M",
            "name": "process_name",
            "pid": _PID,
            "args": {"name": "gm-pregel"},
        }
    )
    for idx, (_, label) in enumerate(PHASES):
        out.append(meta(_PHASE_TID0 + idx, f"phase:{label}"))
    workers_named = 0

    for e in events:
        base = e.ts * 1e6
        if e.name == "superstep" and e.info is not None:
            step = (e.det or {}).get("step", "?")
            t = base
            for idx, (key, label) in enumerate(PHASES):
                dur = e.info.get(key, 0.0) * 1e6
                out.append(
                    {
                        "ph": "X",
                        "name": f"{label} s{step}",
                        "cat": e.cat,
                        "pid": _PID,
                        "tid": _PHASE_TID0 + idx,
                        "ts": t,
                        "dur": dur,
                    }
                )
                t += dur
            det = e.det or {}
            out.append(
                {
                    "ph": "C",
                    "name": "active_vertices",
                    "pid": _PID,
                    "tid": _COUNTER_TID,
                    "ts": base,
                    "args": {"active": det.get("active", 0)},
                }
            )
            out.append(
                {
                    "ph": "C",
                    "name": "messages",
                    "pid": _PID,
                    "tid": _COUNTER_TID,
                    "ts": base,
                    "args": {
                        "messages": det.get("messages", 0),
                        "net_messages": det.get("net_messages", 0),
                    },
                }
            )
            worker_seconds = e.info.get("worker_seconds", ())
            while workers_named < len(worker_seconds):
                out.append(meta(_WORKER_TID0 + workers_named, f"worker {workers_named}"))
                workers_named += 1
            # Per-worker compute slices: each worker's share of the vertex
            # phase, drawn from the phase's start so stragglers stand out.
            vertex_ts = base + sum(e.info.get(k, 0.0) for k, _ in PHASES[:2]) * 1e6
            for w, seconds in enumerate(worker_seconds):
                out.append(
                    {
                        "ph": "X",
                        "name": f"w{w} s{step}",
                        "cat": "worker",
                        "pid": _PID,
                        "tid": _WORKER_TID0 + w,
                        "ts": vertex_ts,
                        "dur": seconds * 1e6,
                        "args": {
                            "computed": _at(det.get("worker_computed"), w),
                            "sent": _at(det.get("worker_sent"), w),
                            "bytes": _at(det.get("worker_bytes"), w),
                        },
                    }
                )
        elif e.dur is not None:
            out.append(
                {
                    "ph": "X",
                    "name": e.name,
                    "cat": e.cat,
                    "pid": _PID,
                    "tid": _COUNTER_TID,
                    "ts": base,
                    "dur": e.dur * 1e6,
                    "args": _args(e),
                }
            )
        else:
            out.append(
                {
                    "ph": "i",
                    "s": "g",
                    "name": e.name,
                    "cat": e.cat,
                    "pid": _PID,
                    "tid": _COUNTER_TID,
                    "ts": base,
                    "args": _args(e),
                }
            )
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def _at(seq, idx):
    try:
        return seq[idx]
    except (TypeError, IndexError):
        return None


def _args(e: TraceEvent) -> dict:
    args: dict = {}
    if e.det:
        args.update(e.det)
    if e.info:
        args.update(e.info)
    return args


def write_chrome_trace(events, path) -> None:
    Path(path).write_text(json.dumps(chrome_trace(events), default=str))


# ---------------------------------------------------------------------------
# Textual timeline
# ---------------------------------------------------------------------------


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}"


def timeline_report(events) -> str:
    """A per-superstep table: counts on the left, phase milliseconds on the
    right — the ``gm-pregel trace`` terminal view."""
    header = [
        "step",
        "mode",
        "active",
        "halted",
        "msgs",
        "bytes",
        "net",
        "master ms",
        "route ms",
        "vertex ms",
        "combine ms",
        "barrier ms",
        "imbal",
    ]
    rows: list[list[str]] = []
    for e in events:
        if e.name != "superstep":
            continue
        det, info = e.det or {}, e.info or {}
        secs = info.get("worker_seconds") or []
        busiest = max(secs) if secs else 0.0
        mean = (sum(secs) / len(secs)) if secs else 0.0
        rows.append(
            [
                str(det.get("step", "?")),
                str(info.get("mode", "?")),
                str(det.get("active", 0)),
                str(det.get("halted", 0)),
                str(det.get("messages", 0)),
                str(det.get("message_bytes", 0)),
                str(det.get("net_messages", 0)),
                _fmt_ms(info.get("master_s", 0.0)),
                _fmt_ms(info.get("route_s", 0.0)),
                _fmt_ms(info.get("vertex_s", 0.0)),
                _fmt_ms(info.get("combine_s", 0.0)),
                _fmt_ms(info.get("barrier_s", 0.0)),
                f"{busiest / mean:.2f}" if mean > 0 else "-",
            ]
        )
    if not rows:
        return "(no superstep records in trace)"
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.rjust(w) for c, w in zip(row, widths)) for row in rows]
    tail = [e for e in events if e.name == "run.end"]
    if tail:
        det = tail[-1].det or {}
        lines.append("")
        lines.append(
            f"run: supersteps={det.get('supersteps')} messages={det.get('messages')} "
            f"net_bytes={det.get('net_bytes')} halt={det.get('halt_reason')}"
        )
    return "\n".join(lines)
