"""Top-level compiler facade — the paper's Figure 1 pipeline in one call.

    from repro import compile_source
    compiled = compile_source(open("pagerank.gm").read())
    result = compiled.program.run(graph, {"e": 1e-3, "d": 0.85, "max_iter": 10})

``compile_source`` runs: parse → typecheck → desugar → BFS lowering →
random-access conversion → dissection → edge flipping → canonical check →
translation → state merging → intra-loop merging → code generation, and
returns everything each stage produced (canonical Green-Marl text, Pregel IR,
executable program, generated Java) plus the log of applied rules (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .lang.ast import Procedure
from .lang.parser import parse_procedure
from .lang.pretty import pretty
from .codegen.executable import CompiledProgram
from .pregelir.ir import PregelIR
from .transform.pipeline import CanonicalProgram, RuleLog, to_canonical
from .translate.merge import optimize
from .translate.translate import translate


@dataclass
class CompilationResult:
    """Everything the compiler produced for one Green-Marl procedure."""

    name: str
    procedure: Procedure
    canonical_source: str
    ir: PregelIR
    program: CompiledProgram
    rules: RuleLog
    java_source: str = field(default="", repr=False)

    def rule_row(self) -> dict[str, bool]:
        """Applied-transformation row for Table 3."""
        return self.rules.row()


def compile_procedure(
    proc: Procedure,
    *,
    state_merging: bool = True,
    intra_loop_merging: bool = True,
    emit_java: bool = True,
    tracer=None,
) -> CompilationResult:
    """Compile an already-parsed procedure (consumed destructively).

    ``tracer`` (a ``repro.obs`` tracer) records the compiler-pass telemetry:
    one ``compile.pass`` event per §4.1/§4.2 transformation (with the
    state-machine size before/after merging), span events for the pipeline
    stages, and a final ``compile.rules`` event carrying the full applied-rule
    row — Table 3 as a trace.
    """
    if tracer is None or not tracer.enabled:
        from .obs.tracer import NULL_TRACER

        tracer = NULL_TRACER
    name = proc.name
    with tracer.span("compile.canonicalize", cat="compile"):
        canonical: CanonicalProgram = to_canonical(proc, tracer=tracer)
    canonical_source = pretty(canonical.procedure)
    with tracer.span("compile.translate", cat="compile") as span:
        ir = translate(canonical)
        span.info["states"] = len(ir.phases)
        span.info["messages"] = len(ir.messages)
    with tracer.span("compile.optimize", cat="compile"):
        optimize(
            ir,
            canonical.rules,
            state_merging=state_merging,
            intra_loop_merging=intra_loop_merging,
            tracer=tracer,
        )
    with tracer.span("compile.codegen", cat="compile"):
        program = CompiledProgram(ir)
    java_source = ""
    if emit_java:
        from .codegen.java import generate_java

        with tracer.span("compile.codegen_java", cat="compile"):
            java_source = generate_java(ir)
    tracer.event(
        "compile.rules",
        cat="compile",
        det={"procedure": name, "applied": sorted(canonical.rules.applied)},
    )
    return CompilationResult(
        name=name,
        procedure=canonical.procedure,
        canonical_source=canonical_source,
        ir=ir,
        program=program,
        rules=canonical.rules,
        java_source=java_source,
    )


def compile_source(source: str, **options) -> CompilationResult:
    """Compile Green-Marl source text into an executable Pregel program."""
    return compile_procedure(parse_procedure(source), **options)


def compile_algorithm(name: str, **options) -> CompilationResult:
    """Compile one of the bundled paper algorithms by key (see
    :data:`repro.algorithms.sources.ALGORITHMS`)."""
    from .algorithms.sources import load_procedure

    return compile_procedure(load_procedure(name), **options)
