"""Top-level compiler facade — the paper's Figure 1 pipeline in one call.

    from repro import compile_source
    compiled = compile_source(open("pagerank.gm").read())
    result = compiled.program.run(graph, {"e": 1e-3, "d": 0.85, "max_iter": 10})

``compile_source`` runs: parse → typecheck → desugar → BFS lowering →
random-access conversion → dissection → edge flipping → canonical check →
translation → state merging → intra-loop merging → code generation, and
returns everything each stage produced (canonical Green-Marl text, Pregel IR,
executable program, generated Java) plus the log of applied rules (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .lang.ast import Procedure
from .lang.parser import parse_procedure
from .lang.pretty import pretty
from .codegen.executable import CompiledProgram
from .pregelir.ir import PregelIR
from .transform.pipeline import CanonicalProgram, RuleLog, to_canonical
from .translate.merge import optimize
from .translate.translate import translate


@dataclass
class CompilationResult:
    """Everything the compiler produced for one Green-Marl procedure."""

    name: str
    procedure: Procedure
    canonical_source: str
    ir: PregelIR
    program: CompiledProgram
    rules: RuleLog
    java_source: str = field(default="", repr=False)

    def rule_row(self) -> dict[str, bool]:
        """Applied-transformation row for Table 3."""
        return self.rules.row()


def compile_procedure(
    proc: Procedure,
    *,
    state_merging: bool = True,
    intra_loop_merging: bool = True,
    emit_java: bool = True,
) -> CompilationResult:
    """Compile an already-parsed procedure (consumed destructively)."""
    name = proc.name
    canonical: CanonicalProgram = to_canonical(proc)
    canonical_source = pretty(canonical.procedure)
    ir = translate(canonical)
    optimize(
        ir,
        canonical.rules,
        state_merging=state_merging,
        intra_loop_merging=intra_loop_merging,
    )
    program = CompiledProgram(ir)
    java_source = ""
    if emit_java:
        from .codegen.java import generate_java

        java_source = generate_java(ir)
    return CompilationResult(
        name=name,
        procedure=canonical.procedure,
        canonical_source=canonical_source,
        ir=ir,
        program=program,
        rules=canonical.rules,
        java_source=java_source,
    )


def compile_source(source: str, **options) -> CompilationResult:
    """Compile Green-Marl source text into an executable Pregel program."""
    return compile_procedure(parse_procedure(source), **options)


def compile_algorithm(name: str, **options) -> CompilationResult:
    """Compile one of the bundled paper algorithms by key (see
    :data:`repro.algorithms.sources.ALGORITHMS`)."""
    from .algorithms.sources import load_procedure

    return compile_procedure(load_procedure(name), **options)
