"""GPS-style Java source emission (§4.3, Message Class and I/O Methods).

The paper's compiler emits Java for GPS; ours executes on the simulator but
also emits the equivalent Java artifact, used for inspection and for the
generated-code side of Table 2's lines-of-code comparison.  The emitted
program has the exact shape the paper describes:

* a serializable ``Message`` class with per-tag payload fields and
  ``write``/``readFields`` methods (generated from the inferred layouts);
* a vertex class whose ``compute()`` reads the broadcast ``_state`` and
  switches to the per-state method (``do_state_k``);
* a master class holding the global scalars, running the state machine and
  broadcasting the state number and globals each superstep.

The Java is an artifact (we have no JVM/GPS here); it is syntactically
plausible and structurally faithful rather than compiled.
"""

from __future__ import annotations

import io

from ..lang.ast import BinOp, UnOp
from ..lang import types as ty
from ..pregel.globalmap import GlobalOp
from ..pregelir.ir import (
    Bin,
    Call,
    CastTo,
    Cond,
    Field,
    GlobalGet,
    Inf,
    Lit,
    Local,
    MAssign,
    MBranch,
    MFinalize,
    MHalt,
    MJump,
    MLabel,
    MsgField,
    MVPhase,
    MyId,
    Nil,
    PregelIR,
    Un,
    VAppendInNbr,
    VAssignLocal,
    VertexPhase,
    VFieldAssign,
    VFieldReduce,
    VGlobalPut,
    VIf,
    VLocal,
    VMsgLoop,
    VSendNbrs,
    VSendTo,
    VStmt,
)

_JAVA_TYPES = {
    ty.Prim.INT: "int",
    ty.Prim.LONG: "long",
    ty.Prim.FLOAT: "float",
    ty.Prim.DOUBLE: "double",
    ty.Prim.BOOL: "boolean",
}

_BIN_JAVA = {
    BinOp.ADD: "+",
    BinOp.SUB: "-",
    BinOp.MUL: "*",
    BinOp.DIV: "/",
    BinOp.MOD: "%",
    BinOp.EQ: "==",
    BinOp.NEQ: "!=",
    BinOp.LT: "<",
    BinOp.GT: ">",
    BinOp.LE: "<=",
    BinOp.GE: ">=",
    BinOp.AND: "&&",
    BinOp.OR: "||",
}

_GLOBAL_CLASSES = {
    GlobalOp.SUM: "SumGlobal",
    GlobalOp.PRODUCT: "ProductGlobal",
    GlobalOp.MIN: "MinGlobal",
    GlobalOp.MAX: "MaxGlobal",
    GlobalOp.AND: "AndGlobal",
    GlobalOp.OR: "OrGlobal",
    GlobalOp.OVERWRITE: "OverwriteGlobal",
}


def java_type(t: ty.Type) -> str:
    if isinstance(t, ty.PrimType):
        return _JAVA_TYPES[t.prim]
    if t.is_node() or t.is_edge():
        return "int"
    raise ValueError(f"no Java type for {t}")


def _io_method(t: ty.Type) -> str:
    if isinstance(t, ty.PrimType):
        return {
            ty.Prim.INT: "Int",
            ty.Prim.LONG: "Long",
            ty.Prim.FLOAT: "Float",
            ty.Prim.DOUBLE: "Double",
            ty.Prim.BOOL: "Boolean",
        }[t.prim]
    return "Int"


class _W:
    def __init__(self):
        self._buf = io.StringIO()
        self.depth = 0

    def line(self, text: str = "") -> None:
        self._buf.write("    " * self.depth + text + "\n")

    def open(self, text: str) -> None:
        self.line(text + " {")
        self.depth += 1

    def close(self, suffix: str = "") -> None:
        self.depth -= 1
        self.line("}" + suffix)

    def text(self) -> str:
        return self._buf.getvalue()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def jexpr(e, *, ctx: str, msgp: str = "m.f") -> str:
    """Render an IR expression; ``ctx`` is 'vertex' or 'master'; ``msgp`` is
    the Java prefix for message payload fields (tag-qualified when tagged)."""
    if isinstance(e, Lit):
        if isinstance(e.value, bool):
            return "true" if e.value else "false"
        return repr(e.value)
    if isinstance(e, Inf):
        return "-INF" if e.negative else "INF"
    if isinstance(e, Nil):
        return "NIL"
    if isinstance(e, Local):
        return e.name
    if isinstance(e, Field):
        return f"getValue().{e.name}" if ctx == "vertex" else e.name
    if isinstance(e, GlobalGet):
        return f'getGlobal("{e.name}")'
    if isinstance(e, MsgField):
        return f"{msgp}{e.index}"
    if isinstance(e, MyId):
        return "getId()"
    if isinstance(e, Bin):
        return f"({jexpr(e.lhs, ctx=ctx, msgp=msgp)} {_BIN_JAVA[e.op]} {jexpr(e.rhs, ctx=ctx, msgp=msgp)})"
    if isinstance(e, Un):
        if e.op is UnOp.NEG:
            return f"(-{jexpr(e.operand, ctx=ctx, msgp=msgp)})"
        if e.op is UnOp.NOT:
            return f"(!{jexpr(e.operand, ctx=ctx, msgp=msgp)})"
        return f"Math.abs({jexpr(e.operand, ctx=ctx, msgp=msgp)})"
    if isinstance(e, Cond):
        return (
            f"({jexpr(e.cond, ctx=ctx, msgp=msgp)} ? {jexpr(e.then, ctx=ctx, msgp=msgp)}"
            f" : {jexpr(e.other, ctx=ctx, msgp=msgp)})"
        )
    if isinstance(e, CastTo):
        return f"(({java_type(e.to_type)}) {jexpr(e.operand, ctx=ctx, msgp=msgp)})"
    if isinstance(e, Call):
        if e.name == "out_degree":
            return "getOutEdges().size()"
        if e.name == "in_degree":
            return "getValue()._in_nbrs.length"
        if e.name == "num_nodes":
            return "getTotalNumVertices()"
        if e.name == "num_edges":
            return "getTotalNumEdges()"
        if e.name == "edge_prop":
            return f"edge.{e.args[0]}"
        if e.name == "pick_random":
            return "random.nextInt(getTotalNumVertices())"
        raise ValueError(f"unknown builtin '{e.name}'")
    raise ValueError(f"cannot render {type(e).__name__}")


# ---------------------------------------------------------------------------
# Vertex statements
# ---------------------------------------------------------------------------


def _jstmt(w: _W, stmt: VStmt, ir: PregelIR, msgp: str = "m.f") -> None:
    ctx = "vertex"
    if isinstance(stmt, VLocal):
        w.line(f"double {stmt.name} = {jexpr(stmt.expr, ctx=ctx, msgp=msgp)};")
    elif isinstance(stmt, VAssignLocal):
        w.line(f"{stmt.name} = {jexpr(stmt.expr, ctx=ctx, msgp=msgp)};")
    elif isinstance(stmt, VFieldAssign):
        w.line(f"getValue().{stmt.name} = {jexpr(stmt.expr, ctx=ctx, msgp=msgp)};")
    elif isinstance(stmt, VFieldReduce):
        field = f"getValue().{stmt.name}"
        value = jexpr(stmt.expr, ctx=ctx, msgp=msgp)
        if stmt.op is GlobalOp.SUM:
            w.line(f"{field} += {value};")
        elif stmt.op is GlobalOp.PRODUCT:
            w.line(f"{field} *= {value};")
        elif stmt.op is GlobalOp.MIN:
            w.line(f"{field} = Math.min({field}, {value});")
        elif stmt.op is GlobalOp.MAX:
            w.line(f"{field} = Math.max({field}, {value});")
        elif stmt.op is GlobalOp.AND:
            w.line(f"{field} = {field} && {value};")
        elif stmt.op is GlobalOp.OR:
            w.line(f"{field} = {field} || {value};")
        else:
            w.line(f"{field} = {value};")
    elif isinstance(stmt, VIf):
        w.open(f"if ({jexpr(stmt.cond, ctx=ctx, msgp=msgp)})")
        for s in stmt.then:
            _jstmt(w, s, ir, msgp)
        if stmt.other:
            w.close(" else {")
            w.depth += 1
            for s in stmt.other:
                _jstmt(w, s, ir, msgp)
            w.close()
        else:
            w.close()
    elif isinstance(stmt, VGlobalPut):
        cls = _GLOBAL_CLASSES[stmt.op]
        w.line(
            f'putGlobal("{stmt.name}", new {cls}({jexpr(stmt.expr, ctx=ctx, msgp=msgp)}));'
        )
    elif isinstance(stmt, VSendNbrs):
        _jsend_nbrs(w, stmt, ir)
    elif isinstance(stmt, VSendTo):
        args = ", ".join(jexpr(p, ctx=ctx, msgp=msgp) for p in stmt.payload)
        w.line(
            f"sendMessage({jexpr(stmt.target, ctx=ctx, msgp=msgp)}, "
            f"Message.tag{stmt.tag}({args}));"
        )
    elif isinstance(stmt, VAppendInNbr):
        w.line(f"inNbrsBuilder.add({jexpr(stmt.source, ctx=ctx, msgp=msgp)});")
    elif isinstance(stmt, VMsgLoop):
        body_msgp = f"m.t{stmt.tag}_f" if ir.tagged else "m.f"
        w.open("for (Message m : messages)")
        if ir.tagged:
            w.open(f"if (m.tag == {stmt.tag})")
        for s in stmt.body:
            _jstmt(w, s, ir, body_msgp)
        if ir.tagged:
            w.close()
        w.close()
    else:
        raise ValueError(f"cannot render {type(stmt).__name__}")


def _jsend_nbrs(w: _W, stmt: VSendNbrs, ir: PregelIR) -> None:
    args = ", ".join(jexpr(p, ctx="vertex") for p in stmt.payload)
    per_edge = any("edge." in jexpr(p, ctx="vertex") for p in stmt.payload)
    if stmt.direction == "in":
        w.open("for (int dst : getValue()._in_nbrs)")
        w.line(f"sendMessage(dst, Message.tag{stmt.tag}({args}));")
        w.close()
    elif per_edge:
        w.open("for (Edge edge : getOutEdges())")
        w.line(f"sendMessage(edge.getTargetId(), Message.tag{stmt.tag}({args}));")
        w.close()
    else:
        w.line(f"sendToNbrs(Message.tag{stmt.tag}({args}));")


# ---------------------------------------------------------------------------
# Whole program
# ---------------------------------------------------------------------------


def generate_java(ir: PregelIR) -> str:
    w = _W()
    cls = _camel(ir.name)
    w.line(f"// Generated by the Green-Marl Pregel backend from '{ir.name}.gm'.")
    w.line("// Target framework: GPS (master.compute() extension of Pregel).")
    w.line("import java.io.DataInput;")
    w.line("import java.io.DataOutput;")
    w.line("import java.io.IOException;")
    w.line("import java.util.Random;")
    w.line()
    w.open(f"public class {cls}")
    w.line(f"static final double INF = Double.POSITIVE_INFINITY;")
    w.line(f"static final int NIL = -1;")
    w.line()
    _emit_message_class(w, ir)
    w.line()
    _emit_vertex_value(w, ir)
    w.line()
    _emit_vertex_class(w, ir, cls)
    w.line()
    _emit_master_class(w, ir, cls)
    w.close()
    return w.text()


def _camel(name: str) -> str:
    return "".join(part.capitalize() for part in name.split("_")) or "Program"


def _emit_message_class(w: _W, ir: PregelIR) -> None:
    w.open("public static class Message implements Writable")
    if ir.tagged:
        w.line("byte tag;")

    def jfield(layout, fname: str) -> str:
        return f"t{layout.tag}_{fname}" if ir.tagged else fname

    for layout in ir.messages.values():
        for fname, ftype in layout.fields:
            w.line(f"{java_type(ftype)} {jfield(layout, fname)};  // {layout.label}")
    for layout in ir.messages.values():
        params = ", ".join(f"{java_type(t)} {n}" for n, t in layout.fields)
        w.open(f"static Message tag{layout.tag}({params})")
        w.line("Message m = new Message();")
        if ir.tagged:
            w.line(f"m.tag = {layout.tag};")
        for fname, _ in layout.fields:
            w.line(f"m.{jfield(layout, fname)} = {fname};")
        w.line("return m;")
        w.close()
    # Serialization boilerplate (§4.3): the payload layout decides what is
    # written for each tag.
    w.open("public void write(DataOutput out) throws IOException")
    if ir.tagged:
        w.line("out.writeByte(tag);")
        w.open("switch (tag)")
        for layout in ir.messages.values():
            w.line(f"case {layout.tag}:")
            w.depth += 1
            for fname, ftype in layout.fields:
                w.line(f"out.write{_io_method(ftype)}({jfield(layout, fname)});")
            w.line("break;")
            w.depth -= 1
        w.close()
    else:
        for layout in ir.messages.values():
            for fname, ftype in layout.fields:
                w.line(f"out.write{_io_method(ftype)}({jfield(layout, fname)});")
    w.close()
    w.open("public void readFields(DataInput in) throws IOException")
    if ir.tagged:
        w.line("tag = in.readByte();")
        w.open("switch (tag)")
        for layout in ir.messages.values():
            w.line(f"case {layout.tag}:")
            w.depth += 1
            for fname, ftype in layout.fields:
                w.line(f"{jfield(layout, fname)} = in.read{_io_method(ftype)}();")
            w.line("break;")
            w.depth -= 1
        w.close()
    else:
        for layout in ir.messages.values():
            for fname, ftype in layout.fields:
                w.line(f"{jfield(layout, fname)} = in.read{_io_method(ftype)}();")
    w.close()
    w.close()


def _emit_vertex_value(w: _W, ir: PregelIR) -> None:
    w.open("public static class VertexValue implements Writable")
    for name, elem in ir.vertex_fields.items():
        w.line(f"{java_type(elem)} {name};")
    if ir.needs_in_nbrs:
        w.line("int[] _in_nbrs;")
    w.open("public void write(DataOutput out) throws IOException")
    for name, elem in ir.vertex_fields.items():
        w.line(f"out.write{_io_method(elem)}({name});")
    w.close()
    w.open("public void readFields(DataInput in) throws IOException")
    for name, elem in ir.vertex_fields.items():
        w.line(f"{name} = in.read{_io_method(elem)}();")
    w.close()
    w.close()


def _emit_vertex_class(w: _W, ir: PregelIR, cls: str) -> None:
    w.open(
        f"public static class {cls}Vertex extends Vertex<VertexValue, Message>"
    )
    w.open("public void compute(Iterable<Message> messages, int superstepNo)")
    w.line('int _state = getGlobal("_state");')
    w.open("switch (_state)")
    for phase in sorted(ir.phases.values(), key=lambda p: p.phase_id):
        w.line(f"case {phase.phase_id}: do_state_{phase.phase_id}(messages); break;")
    w.close()
    w.close()
    for phase in sorted(ir.phases.values(), key=lambda p: p.phase_id):
        w.line()
        w.open(
            f"private void do_state_{phase.phase_id}(Iterable<Message> messages)"
            f"  // {phase.label}"
        )
        if ir.needs_in_nbrs and any(
            isinstance(s, VMsgLoop) and any(isinstance(b, VAppendInNbr) for b in s.body)
            for s in phase.receive
        ):
            w.line("IntArrayBuilder inNbrsBuilder = new IntArrayBuilder();")
        for stmt in phase.receive:
            _jstmt(w, stmt, ir)
        if ir.needs_in_nbrs and any(
            isinstance(s, VMsgLoop) and any(isinstance(b, VAppendInNbr) for b in s.body)
            for s in phase.receive
        ):
            w.line("getValue()._in_nbrs = inNbrsBuilder.toArray();")
        if phase.filter is not None:
            w.line(f"if (!({jexpr(phase.filter, ctx='vertex')})) return;")
        for stmt in phase.compute:
            _jstmt(w, stmt, ir)
        w.close()
    w.close()


def _emit_master_class(w: _W, ir: PregelIR, cls: str) -> None:
    w.open(f"public static class {cls}Master extends Master")
    for name, t in ir.master_fields.items():
        w.line(f"{java_type(t)} {name};")
    w.line("int _pc = 0;")
    w.line("Random random = new Random();")
    w.line()
    w.open("public void compute(int superstepNo)")
    w.open("while (true)")
    w.open("switch (_pc)")
    labels = {
        instr.label: idx
        for idx, instr in enumerate(ir.master_code)
        if isinstance(instr, MLabel)
    }
    for idx, instr in enumerate(ir.master_code):
        w.line(f"case {idx}:")
        w.depth += 1
        if isinstance(instr, MAssign):
            w.line(f"{instr.name} = {jexpr(instr.expr, ctx='master')};")
            w.line(f"_pc = {idx + 1}; break;")
        elif isinstance(instr, MFinalize):
            w.line(f'if (hasGlobal("{instr.name}"))')
            w.line(
                f'    {instr.name} = combine_{instr.op.name.lower()}'
                f'({instr.name}, getGlobal("{instr.name}"));'
            )
            w.line(f"_pc = {idx + 1}; break;")
        elif isinstance(instr, MLabel):
            w.line(f"_pc = {idx + 1}; break;  // {instr.label}:")
        elif isinstance(instr, MJump):
            w.line(f"_pc = {labels[instr.label]}; break;  // goto {instr.label}")
        elif isinstance(instr, MBranch):
            w.line(
                f"_pc = {jexpr(instr.cond, ctx='master')} ? "
                f"{labels[instr.on_true]} : {labels[instr.on_false]}; break;"
            )
        elif isinstance(instr, MVPhase):
            w.line(f'putGlobal("_state", {instr.phase});')
            w.line("broadcastGlobals();  // scalar master fields")
            w.line(f"_pc = {idx + 1};")
            w.line("return;  // yield: run vertex phase this superstep")
        elif isinstance(instr, MHalt):
            if instr.result is not None:
                w.line(f"setResult({jexpr(instr.result, ctx='master')});")
            w.line("haltComputation();")
            w.line("return;")
        w.depth -= 1
    w.close()
    w.close()
    w.close()
    w.close()
