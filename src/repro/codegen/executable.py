"""Executable backend: Pregel IR → Python code running on the simulator.

This plays the role of the paper's Java code generation, but targets our
GPS simulator so the generated programs can actually execute:

* the **vertex side** is generated as Python source (one function per vertex
  phase plus a ``_state``-dispatching ``vertex_compute``), compiled with
  ``exec`` against closures over the graph's CSR arrays and the vertex-field
  columns — so generated programs run at the same speed class as hand-written
  Pregel programs, keeping Figure 6's normalized comparison meaningful;
* the **master side** interprets the IR instruction stream: each superstep it
  executes master instructions until an :class:`MVPhase` (broadcasting the
  state number and the global scalars, like the generated GPS master does)
  or an :class:`MHalt`.

``CompiledProgram.run(graph, args)`` wires everything to a
:class:`~repro.pregel.runtime.PregelEngine` and returns outputs + metrics.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from ..lang.ast import BinOp, UnOp
from ..lang import types as ty
from ..pregel.backend import get_backend
from ..pregel.ft import ColumnState
from ..pregel.globalmap import GlobalOp, combine
from ..pregel.graph import Graph
from ..pregel.runtime import PregelEngine, RunMetrics
from ..pregelir.schema import derive_schema
from ..pregelir.ir import (
    Bin,
    Call,
    CastTo,
    Cond,
    Field,
    GlobalGet,
    Inf,
    Lit,
    Local,
    MAssign,
    MBranch,
    MFinalize,
    MHalt,
    MJump,
    MLabel,
    MsgField,
    MVPhase,
    MyId,
    Nil,
    NIL_NODE,
    INF_VALUE,
    PregelIR,
    Un,
    VAppendInNbr,
    VAssignLocal,
    VExpr,
    VFieldAssign,
    VFieldReduce,
    VGlobalPut,
    VIf,
    VLocal,
    VMsgLoop,
    VSendNbrs,
    VSendTo,
    VStmt,
    VertexPhase,
)

_BIN_PY = {
    BinOp.ADD: "+",
    BinOp.SUB: "-",
    BinOp.MUL: "*",
    BinOp.MOD: "%",
    BinOp.EQ: "==",
    BinOp.NEQ: "!=",
    BinOp.LT: "<",
    BinOp.GT: ">",
    BinOp.LE: "<=",
    BinOp.GE: ">=",
    BinOp.AND: "and",
    BinOp.OR: "or",
}


def gm_div(a, b):
    """Green-Marl division: Int/Int truncates toward zero (as in Java)."""
    if type(a) is int and type(b) is int:
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


# ---------------------------------------------------------------------------
# Expression → Python source
# ---------------------------------------------------------------------------


def expr_py(e: VExpr) -> str:
    if isinstance(e, Lit):
        return repr(e.value)
    if isinstance(e, Inf):
        return "-INF" if e.negative else "INF"
    if isinstance(e, Nil):
        return "NIL"
    if isinstance(e, Local):
        return f"L_{e.name}"
    if isinstance(e, Field):
        return f"F_{e.name}[vid]"
    if isinstance(e, GlobalGet):
        return f"B[{e.name!r}]"
    if isinstance(e, MsgField):
        return f"_m[{e.index + 1}]"
    if isinstance(e, MyId):
        return "vid"
    if isinstance(e, Bin):
        if e.op is BinOp.DIV:
            return f"gm_div({expr_py(e.lhs)}, {expr_py(e.rhs)})"
        return f"({expr_py(e.lhs)} {_BIN_PY[e.op]} {expr_py(e.rhs)})"
    if isinstance(e, Un):
        if e.op is UnOp.NEG:
            return f"(-{expr_py(e.operand)})"
        if e.op is UnOp.NOT:
            return f"(not {expr_py(e.operand)})"
        return f"abs({expr_py(e.operand)})"
    if isinstance(e, Cond):
        return f"({expr_py(e.then)} if {expr_py(e.cond)} else {expr_py(e.other)})"
    if isinstance(e, CastTo):
        if isinstance(e.to_type, ty.PrimType) and e.to_type.is_integral():
            return f"int({expr_py(e.operand)})"
        if isinstance(e.to_type, ty.PrimType) and e.to_type.prim is ty.Prim.BOOL:
            return f"bool({expr_py(e.operand)})"
        return f"float({expr_py(e.operand)})"
    if isinstance(e, Call):
        if e.name == "out_degree":
            return "(OUT_OFF[vid + 1] - OUT_OFF[vid])"
        if e.name == "in_degree":
            return "(IN_OFF[vid + 1] - IN_OFF[vid])"
        if e.name == "num_nodes":
            return "NUM_NODES"
        if e.name == "num_edges":
            return "NUM_EDGES"
        if e.name == "edge_prop":
            return f"EP_{e.args[0]}[_ei]"
        raise ValueError(f"unknown builtin '{e.name}' in vertex context")
    raise ValueError(f"cannot generate code for {type(e).__name__}")


def _contains_edge_prop(e: VExpr) -> bool:
    if isinstance(e, Call) and e.name == "edge_prop":
        return True
    for attr in ("lhs", "rhs", "operand", "cond", "then", "other"):
        child = getattr(e, attr, None)
        if isinstance(child, VExpr) and _contains_edge_prop(child):
            return True
    return False


# ---------------------------------------------------------------------------
# Statement → Python source
# ---------------------------------------------------------------------------


class _Emitter:
    def __init__(self):
        self._buf = io.StringIO()
        self._depth = 0

    def line(self, text: str) -> None:
        self._buf.write("    " * self._depth + text + "\n")

    def indent(self) -> None:
        self._depth += 1

    def dedent(self) -> None:
        self._depth -= 1

    def text(self) -> str:
        return self._buf.getvalue()


_REDUCE_PY = {
    GlobalOp.SUM: "F_{f}[vid] = F_{f}[vid] + {e}",
    GlobalOp.PRODUCT: "F_{f}[vid] = F_{f}[vid] * {e}",
    GlobalOp.AND: "F_{f}[vid] = F_{f}[vid] and {e}",
    GlobalOp.OR: "F_{f}[vid] = F_{f}[vid] or {e}",
    GlobalOp.OVERWRITE: "F_{f}[vid] = {e}",
}


def emit_stmt(out: _Emitter, stmt: VStmt) -> None:
    if isinstance(stmt, VLocal) or isinstance(stmt, VAssignLocal):
        out.line(f"L_{stmt.name} = {expr_py(stmt.expr)}")
    elif isinstance(stmt, VFieldAssign):
        out.line(f"F_{stmt.name}[vid] = {expr_py(stmt.expr)}")
    elif isinstance(stmt, VFieldReduce):
        if stmt.op is GlobalOp.MIN:
            out.line(f"_v = {expr_py(stmt.expr)}")
            out.line(f"if _v < F_{stmt.name}[vid]: F_{stmt.name}[vid] = _v")
        elif stmt.op is GlobalOp.MAX:
            out.line(f"_v = {expr_py(stmt.expr)}")
            out.line(f"if _v > F_{stmt.name}[vid]: F_{stmt.name}[vid] = _v")
        else:
            out.line(_REDUCE_PY[stmt.op].format(f=stmt.name, e=expr_py(stmt.expr)))
    elif isinstance(stmt, VIf):
        out.line(f"if {expr_py(stmt.cond)}:")
        out.indent()
        if stmt.then:
            for s in stmt.then:
                emit_stmt(out, s)
        else:
            out.line("pass")
        out.dedent()
        if stmt.other:
            out.line("else:")
            out.indent()
            for s in stmt.other:
                emit_stmt(out, s)
            out.dedent()
    elif isinstance(stmt, VGlobalPut):
        out.line(f"ctx.put_global({stmt.name!r}, OP_{stmt.op.name}, {expr_py(stmt.expr)})")
    elif isinstance(stmt, VSendNbrs):
        _emit_send_nbrs(out, stmt)
    elif isinstance(stmt, VSendTo):
        payload = ", ".join(expr_py(p) for p in stmt.payload)
        msg = f"({stmt.tag}, {payload})" if payload else f"({stmt.tag},)"
        out.line(f"ctx.send({expr_py(stmt.target)}, {msg})")
    elif isinstance(stmt, VAppendInNbr):
        out.line(f"F__in_nbrs[vid].append({expr_py(stmt.source)})")
    elif isinstance(stmt, VMsgLoop):
        out.line("for _m in messages:")
        out.indent()
        out.line(f"if _m[0] == {stmt.tag}:")
        out.indent()
        if stmt.body:
            for s in stmt.body:
                emit_stmt(out, s)
        else:
            out.line("pass")
        out.dedent()
        out.dedent()
    else:
        raise ValueError(f"cannot emit {type(stmt).__name__}")


def _emit_send_nbrs(out: _Emitter, stmt: VSendNbrs) -> None:
    per_edge = any(_contains_edge_prop(p) for p in stmt.payload)
    payload = ", ".join(expr_py(p) for p in stmt.payload)
    msg = f"({stmt.tag}, {payload})" if payload else f"({stmt.tag},)"
    # The payload is evaluated only when there is at least one neighbor:
    # flipped loops may divide by the sender's own degree (e.g. PageRank),
    # which is undefined — and never needed — on sink vertices.
    if stmt.direction == "in":
        if per_edge:
            raise ValueError("edge properties are unavailable on in-direction sends")
        out.line(f"if F__in_nbrs[vid]:")
        out.indent()
        out.line(f"_msg = {msg}")
        # Bulk send: typed backends stage one packed record per block.
        out.line("ctx.send_list(F__in_nbrs[vid], _msg)")
        out.dedent()
    elif per_edge:
        out.line("for _ei in range(OUT_OFF[vid], OUT_OFF[vid + 1]):")
        out.indent()
        out.line(f"ctx.send(OUT_TGT[_ei], {msg})")
        out.dedent()
    else:
        out.line("if OUT_OFF[vid] != OUT_OFF[vid + 1]:")
        out.indent()
        out.line(f"_msg = {msg}")
        out.line("ctx.send_nbrs(vid, _msg)")
        out.dedent()


# ---------------------------------------------------------------------------
# Whole-program vertex source
# ---------------------------------------------------------------------------


def generate_vertex_source(ir: PregelIR) -> str:
    """Python source of the generated vertex program.

    The module defines ``make_vertex_compute(env)``; calling it with the
    binding environment (field columns, CSR arrays, broadcast dict, …)
    returns the ``vertex_compute(ctx, vid, messages)`` function.
    """
    out = _Emitter()
    out.line(f"# Generated Pregel vertex program for '{ir.name}'.")
    out.line("def make_vertex_compute(env):")
    out.indent()
    out.line("globals().update(env)")
    for phase in ir.phases.values():
        out.line("")
        out.line(f"def _phase_{phase.phase_id}(ctx, vid, messages):")
        out.indent()
        out.line(f"# {phase.label}")
        for stmt in phase.receive:
            emit_stmt(out, stmt)
        if phase.filter is not None:
            out.line(f"if not ({expr_py(phase.filter)}):")
            out.indent()
            out.line("return")
            out.dedent()
        for stmt in phase.compute:
            emit_stmt(out, stmt)
        if not phase.receive and not phase.compute and phase.filter is None:
            out.line("pass")
        out.dedent()
    out.line("")
    dispatch = ", ".join(
        f"{pid}: _phase_{pid}" for pid in sorted(ir.phases)
    )
    out.line(f"_DISPATCH = {{{dispatch}}}")
    out.line("")
    out.line("def vertex_compute(ctx, vid, messages):")
    out.indent()
    out.line("_fn = _DISPATCH.get(B.get('_state', -1))")
    out.line("if _fn is not None:")
    out.indent()
    out.line("_fn(ctx, vid, messages)")
    out.dedent()
    out.dedent()
    out.line("return vertex_compute")
    out.dedent()
    return out.text()


# ---------------------------------------------------------------------------
# Master interpreter
# ---------------------------------------------------------------------------

_MAX_MASTER_OPS = 10_000_000


class GeneratedMaster:
    """Interprets the IR master instruction stream, one superstep at a time."""

    def __init__(self, ir: PregelIR, init_fields: dict):
        self.ir = ir
        self.fields: dict = {}
        for name, t in ir.master_fields.items():
            self.fields[name] = ty.default_value(t)
        self.fields.update(init_fields)
        self._pc = 0
        self._labels = {
            instr.label: idx
            for idx, instr in enumerate(ir.master_code)
            if isinstance(instr, MLabel)
        }
        self.halted = False

    def compute(self, ctx: PregelEngine) -> None:
        code = self.ir.master_code
        fields = self.fields
        ops = 0
        while True:
            ops += 1
            if ops > _MAX_MASTER_OPS:
                raise RuntimeError("master did not yield a vertex phase (infinite loop?)")
            if self._pc >= len(code):
                ctx.halt()
                self.halted = True
                return
            instr = code[self._pc]
            if isinstance(instr, MAssign):
                fields[instr.name] = self._eval(instr.expr, ctx)
            elif isinstance(instr, MFinalize):
                if ctx.globals.has_aggregated(instr.name):
                    fields[instr.name] = combine(
                        instr.op, fields[instr.name], ctx.get_agg(instr.name)
                    )
            elif isinstance(instr, MLabel):
                pass
            elif isinstance(instr, MJump):
                self._pc = self._labels[instr.label]
                continue
            elif isinstance(instr, MBranch):
                target = instr.on_true if self._eval(instr.cond, ctx) else instr.on_false
                self._pc = self._labels[target]
                continue
            elif isinstance(instr, MVPhase):
                ctx.put_broadcast("_state", instr.phase)
                for name, value in fields.items():
                    ctx.put_broadcast(name, value)
                self._pc += 1
                return
            elif isinstance(instr, MHalt):
                result = self._eval(instr.result, ctx) if instr.result is not None else None
                ctx.halt()
                ctx.set_result(result)
                self.halted = True
                return
            else:
                raise ValueError(f"unknown master instruction {type(instr).__name__}")
            self._pc += 1

    # -- fault tolerance (Checkpointable) -------------------------------

    def checkpoint_state(self) -> dict:
        return {"fields": dict(self.fields), "pc": self._pc, "halted": self.halted}

    def restore_state(self, state: dict, vertices=None) -> None:
        if vertices is not None:
            # Confined recovery: the master did not fail, so its scalar
            # fields and program counter are already correct.
            return
        self.fields.clear()
        self.fields.update(state["fields"])
        self._pc = state["pc"]
        self.halted = state["halted"]

    def _eval(self, e: VExpr, ctx: PregelEngine):
        if isinstance(e, Lit):
            return e.value
        if isinstance(e, Inf):
            return -INF_VALUE if e.negative else INF_VALUE
        if isinstance(e, Nil):
            return NIL_NODE
        if isinstance(e, Field):
            return self.fields[e.name]
        if isinstance(e, GlobalGet):
            return self.fields[e.name]
        if isinstance(e, Bin):
            if e.op is BinOp.AND:
                return self._eval(e.lhs, ctx) and self._eval(e.rhs, ctx)
            if e.op is BinOp.OR:
                return self._eval(e.lhs, ctx) or self._eval(e.rhs, ctx)
            a, b = self._eval(e.lhs, ctx), self._eval(e.rhs, ctx)
            return _eval_bin(e.op, a, b)
        if isinstance(e, Un):
            v = self._eval(e.operand, ctx)
            if e.op is UnOp.NEG:
                return -v
            if e.op is UnOp.NOT:
                return not v
            return abs(v)
        if isinstance(e, Cond):
            return (
                self._eval(e.then, ctx)
                if self._eval(e.cond, ctx)
                else self._eval(e.other, ctx)
            )
        if isinstance(e, CastTo):
            v = self._eval(e.operand, ctx)
            if isinstance(e.to_type, ty.PrimType) and e.to_type.is_integral():
                return int(v)
            if isinstance(e.to_type, ty.PrimType) and e.to_type.prim is ty.Prim.BOOL:
                return bool(v)
            return float(v)
        if isinstance(e, Call):
            if e.name == "num_nodes":
                return ctx.graph.num_nodes
            if e.name == "num_edges":
                return ctx.graph.num_edges
            if e.name == "pick_random":
                return ctx.pick_random_node()
            raise ValueError(f"unknown builtin '{e.name}' in master context")
        raise ValueError(f"cannot evaluate {type(e).__name__} on the master")


def _eval_bin(op: BinOp, a, b):
    if op is BinOp.ADD:
        return a + b
    if op is BinOp.SUB:
        return a - b
    if op is BinOp.MUL:
        return a * b
    if op is BinOp.DIV:
        return gm_div(a, b)
    if op is BinOp.MOD:
        return a % b
    if op is BinOp.EQ:
        return a == b
    if op is BinOp.NEQ:
        return a != b
    if op is BinOp.LT:
        return a < b
    if op is BinOp.GT:
        return a > b
    if op is BinOp.LE:
        return a <= b
    return a >= b


# ---------------------------------------------------------------------------
# Program container
# ---------------------------------------------------------------------------


@dataclass
class RunResult:
    metrics: RunMetrics
    outputs: dict[str, list]
    result: object
    fields: dict[str, list] = field(repr=False, default_factory=dict)


class CompiledProgram:
    """A compiled Green-Marl procedure, ready to run on the simulator."""

    def __init__(self, ir: PregelIR):
        self.ir = ir
        self.vertex_source = generate_vertex_source(ir)
        namespace: dict = {}
        exec(compile(self.vertex_source, f"<generated:{ir.name}>", "exec"), namespace)
        self._factory = namespace["make_vertex_compute"]
        # Derived here — after the optimizer has finished mutating phases
        # and message layouts — so the typed storage/wire schema can never
        # go stale relative to the message classes it describes (§4.3).
        self.schema = derive_schema(ir)
        ir.schema = self.schema

    # -- wiring ---------------------------------------------------------

    def _build_fields(self, graph: Graph, args: dict) -> dict[str, list]:
        fields: dict[str, list] = {}
        for name, elem in self.ir.vertex_fields.items():
            if name in args:
                values = args[name]
                if len(values) != graph.num_nodes:
                    raise ValueError(
                        f"property argument '{name}' has wrong length"
                    )
                fields[name] = list(values)
            elif name in graph.node_props:
                fields[name] = list(graph.node_props[name])
            else:
                fields[name] = [_field_default(elem)] * graph.num_nodes
        if self.ir.needs_in_nbrs:
            fields["_in_nbrs"] = [[] for _ in range(graph.num_nodes)]
        return fields

    def _scalar_args(self, args: dict) -> dict:
        init = {}
        for param in self.ir.params:
            if param.gm_type.is_graph() or param.gm_type.is_property():
                continue
            if param.name in args:
                init[param.name] = args[param.name]
            elif not param.is_output:
                raise ValueError(f"missing scalar argument '{param.name}'")
        return init

    def make_engine(
        self,
        graph: Graph,
        args: dict | None = None,
        *,
        backend="sim",
        use_combiners: bool = False,
        scheduling: str = "frontier",
        frontier_threshold: float = 0.25,
        **engine_opts,
    ) -> tuple[PregelEngine, dict[str, list], GeneratedMaster]:
        """Instantiate a PregelEngine for this program.

        ``scheduling`` selects the engine's superstep scheduler: ``"frontier"``
        (default) tracks the active set and iterates only it when sparse, with
        batched per-worker message routing; ``"dense"`` is the classic scan of
        every vertex.  Both are bit-identical on outputs and on every metered
        quantity (``RunMetrics.parity_key()``); generated programs never call
        ``vote_to_halt`` (§5.2), so they only benefit from frontier scheduling
        through the batched routing path.  ``frontier_threshold`` is the
        active-set density above which frontier mode falls back to the dense
        scan (GraphIt-style direction switch).  Remaining ``engine_opts`` pass
        through to :class:`PregelEngine`.

        ``backend`` selects the execution backend (``"sim"``, ``"columnar"``
        or ``"mp"``, or an :class:`ExecutionBackend` instance): how property
        columns are stored, how staged messages are represented, and which
        engine drives the supersteps.  All backends are parity-identical;
        compositions a backend refuses raise
        :class:`~repro.pregel.backend.BackendUnsupported`.
        """
        backend_impl = get_backend(backend)
        args = dict(args or {})
        engine_opts["scheduling"] = scheduling
        engine_opts["frontier_threshold"] = frontier_threshold
        if use_combiners and "combiners" not in engine_opts:
            from ..translate.combiner import combiner_functions, infer_combiners

            engine_opts["combiners"] = combiner_functions(infer_combiners(self.ir))
        for name, param in ((p.name, p) for p in self.ir.params):
            if isinstance(param.gm_type, ty.EdgePropType) and name not in graph.edge_props:
                raise ValueError(f"graph is missing edge property '{name}'")
        fields = backend_impl.build_columns(
            self.schema, graph, self._build_fields(graph, args), args
        )
        master = GeneratedMaster(self.ir, self._scalar_args(args))

        env: dict = {
            "B": None,  # patched below (needs the engine's broadcast dict)
            "INF": INF_VALUE,
            "NIL": NIL_NODE,
            "gm_div": gm_div,
            "NUM_NODES": graph.num_nodes,
            "NUM_EDGES": graph.num_edges,
            "OUT_OFF": graph.out_offsets,
            "OUT_TGT": graph.out_targets,
            "IN_OFF": graph.in_offsets,
        }
        for op in GlobalOp:
            env[f"OP_{op.name}"] = op
        for name, column in fields.items():
            env[f"F_{name}"] = column
        for name, column in graph.edge_props.items():
            env[f"EP_{name}"] = column

        # Wire sizes come from the typed schema, on every backend — so
        # ``message_bytes`` always meters the bytes a columnar slab (or a
        # shared-memory segment) actually carries, and mem budgets stay
        # meaningful.
        sizes = {tag: self.schema.message_size(tag) for tag in self.schema.tags}

        def message_size(msg: tuple) -> int:
            return sizes[msg[0]]

        engine = backend_impl.create_engine(
            graph,
            master_compute=master.compute,
            message_size=message_size,
            schema=self.schema,
            engine_opts=engine_opts,
        )
        env["B"] = engine.globals.broadcast
        engine._vertex_compute = self._factory(env)
        if hasattr(engine, "install_bulk_receivers"):
            from .vectorize import build_bulk_receivers

            tracer = getattr(engine, "tracer", None)
            tracing = tracer is not None and tracer.enabled
            decisions: list | None = [] if tracing else None
            engine.install_bulk_receivers(
                build_bulk_receivers(
                    self.ir, self.schema, fields, env["B"], decisions=decisions
                )
            )
            if tracing and decisions is not None:
                # info-only: which receive phases compiled to bulk handlers
                # and why the rest stayed scalar.  Never det — the sim
                # backend skips the vectorizer entirely, so these events
                # must not enter cross-backend deterministic comparisons.
                for decision in decisions:
                    tracer.event("compile.vectorize", cat="compile", info=decision)
        if hasattr(engine, "_columns"):
            # The mp backend's parent process scatters the workers'
            # partitions back into these columns after the run.
            engine._columns = fields
        if getattr(engine, "ft", None) is not None:
            # Checkpoints must cover everything a worker crash can destroy:
            # the vertex property columns and the master's interpreter state.
            engine.ft.register(ColumnState(fields))
            engine.ft.register(master)
        return engine, fields, master

    def run(
        self,
        graph: Graph,
        args: dict | None = None,
        *,
        backend="sim",
        use_combiners: bool = False,
        **engine_opts,
    ) -> RunResult:
        engine, fields, _master = self.make_engine(
            graph, args, backend=backend, use_combiners=use_combiners, **engine_opts
        )
        metrics = engine.run()
        backend_impl = get_backend(backend)
        outputs = {
            p.name: backend_impl.column_values(fields[p.name])
            for p in self.ir.params
            if p.is_output and p.name in fields
        }
        return RunResult(metrics, outputs, metrics.result, fields)


def _field_default(elem: ty.Type):
    value = ty.default_value(elem)
    return value


def compile_ir(ir: PregelIR) -> CompiledProgram:
    return CompiledProgram(ir)
