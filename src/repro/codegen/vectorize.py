"""Vectorized bulk receive handlers for the columnar data plane.

The PR 6 sweep showed the per-message receive loop (struct-unpack one
record, run the generated ``for _m in messages`` body) is the dominant
cost of the columnar backend.  This module compiles eligible receive
loops into *bulk* handlers that consume a whole per-tag slab at the
delivery barrier: decode the packed payload into typed numpy columns
once, then apply each reduction with ``np.ufunc.at`` over the
destination-vertex array.

Bit-parity with the simulator is the hard constraint, which dictates
the design:

* ``np.ufunc.at`` applies updates sequentially in index order, i.e. in
  global send order — exactly the fold order the simulator's
  per-message loop uses for any single receiver (``np.add.reduceat``
  would use pairwise summation and break float parity, so it is not
  used);
* a loop is vectorized only when every statement is a plain field
  reduction (``SUM``/``PRODUCT``/``MIN``/``MAX``), optionally guarded
  by a side-effect-free condition, and the set of fields *written* by
  the loop is disjoint from the set of fields *read* anywhere in the
  phase's receive statements — so evaluating guards and values against
  pre-delivery column state is indistinguishable from the simulator's
  message-at-a-time interleaving;
* guarded reductions evaluate their value expression only over the
  masked selection, preserving the simulator's guarantee that the
  guard protects hazardous expressions (e.g. divisions).

Anything outside those rules (assignments, ``put_global``, in-neighbor
appends, cross-statement field dependences, INF-sentinel payload
slots) leaves the whole phase on the scalar path.  Handlers are keyed
by ``(phase_state, tag)`` and engage only on the columnar slab fast
path, where messages for a consumed tag then bypass inbox slot-fill
entirely.
"""

from __future__ import annotations

import operator
from array import array
from typing import Any, Callable, Dict, Optional, Tuple

from ..lang.ast import BinOp, UnOp
from ..pregel.globalmap import GlobalOp
from ..pregelir.ir import (
    Bin,
    Field,
    GlobalGet,
    Inf,
    Lit,
    MsgField,
    MyId,
    INF_VALUE,
    PregelIR,
    Un,
    VExpr,
    VFieldReduce,
    VIf,
    VMsgLoop,
)

try:  # numpy is optional for the simulator; required for vectorization
    import numpy as _np
except ImportError:  # pragma: no cover - baked into the container
    _np = None

__all__ = ["build_bulk_receivers"]

# struct slot code -> numpy field dtype (packed, little-endian)
_SLOT_DTYPES = {"?": "u1", "i": "<i4", "q": "<i8", "d": "<f8"}
# array.array column typecode -> numpy view dtype
_COLUMN_DTYPES = {"b": "i1", "q": "<i8", "d": "<f8"}

_ARITH = {
    BinOp.ADD: operator.add,
    BinOp.SUB: operator.sub,
    BinOp.MUL: operator.mul,
    BinOp.MOD: operator.mod,
}
_COMPARE = {
    BinOp.EQ: operator.eq,
    BinOp.NEQ: operator.ne,
    BinOp.LT: operator.lt,
    BinOp.GT: operator.gt,
    BinOp.LE: operator.le,
    BinOp.GE: operator.ge,
}


class _Unvectorizable(Exception):
    """Raised while analysing a loop that must stay on the scalar path."""


def _vec_gm_div(a: Any, b: Any) -> Any:
    """Vectorized Green-Marl division (Int/Int truncates toward zero)."""

    def _integral(x: Any) -> bool:
        if isinstance(x, bool):
            return False
        if isinstance(x, (int, _np.integer)):
            return True
        return isinstance(x, _np.ndarray) and x.dtype.kind in "iu"

    if _integral(a) and _integral(b):
        q = _np.abs(a) // _np.abs(b)
        return _np.where(_np.equal(_np.greater_equal(a, 0), _np.greater_equal(b, 0)), q, -q)
    return _np.true_divide(a, b)


# ---------------------------------------------------------------------------
# Expression compilation (tree -> closure over a per-call context)
# ---------------------------------------------------------------------------
#
# The context dict carries:
#   "sel"   - the destination-vertex index array for this evaluation
#   "msg"   - {slot index: decoded payload column}, masked in step with sel
#   "B"     - the live broadcast dict
#   "views" - {field name: writable numpy view over its array column}


def _compile_expr(e: VExpr, reads: set, msg_used: set) -> Callable[[dict], Any]:
    if isinstance(e, Lit):
        value = e.value
        return lambda ctx: value
    if isinstance(e, Inf):
        value = -INF_VALUE if e.negative else INF_VALUE
        return lambda ctx: value
    if isinstance(e, GlobalGet):
        name = e.name
        return lambda ctx: ctx["B"][name]
    if isinstance(e, Field):
        name = e.name
        reads.add(name)
        return lambda ctx: ctx["views"][name][ctx["sel"]]
    if isinstance(e, MsgField):
        index = e.index
        msg_used.add(index)
        return lambda ctx: ctx["msg"][index]
    if isinstance(e, MyId):
        return lambda ctx: ctx["sel"]
    if isinstance(e, Bin):
        lhs = _compile_expr(e.lhs, reads, msg_used)
        rhs = _compile_expr(e.rhs, reads, msg_used)
        if e.op is BinOp.DIV:
            return lambda ctx: _vec_gm_div(lhs(ctx), rhs(ctx))
        if e.op is BinOp.AND:
            return lambda ctx: _np.logical_and(lhs(ctx), rhs(ctx))
        if e.op is BinOp.OR:
            return lambda ctx: _np.logical_or(lhs(ctx), rhs(ctx))
        fn = _ARITH.get(e.op) or _COMPARE.get(e.op)
        if fn is None:
            raise _Unvectorizable(f"binary op {e.op}")
        return lambda ctx: fn(lhs(ctx), rhs(ctx))
    if isinstance(e, Un):
        operand = _compile_expr(e.operand, reads, msg_used)
        if e.op is UnOp.NEG:
            return lambda ctx: -operand(ctx)
        if e.op is UnOp.NOT:
            return lambda ctx: _np.logical_not(operand(ctx))
        return lambda ctx: _np.abs(operand(ctx))
    raise _Unvectorizable(f"expression {type(e).__name__}")


def _expr_kind(e: VExpr, columns: dict, slot_codes: dict) -> Optional[str]:
    """Statically classify an expression as integral ('i'), float ('f'),
    or unknown (None) — used to refuse float folds into integer columns."""
    if isinstance(e, Lit):
        if isinstance(e.value, bool):
            return "i"
        return "i" if isinstance(e.value, int) else "f"
    if isinstance(e, Inf):
        return "f"
    if isinstance(e, Field):
        col = columns.get(e.name)
        code = col.typecode if isinstance(col, array) else None
        return {"b": "i", "q": "i", "d": "f"}.get(code)
    if isinstance(e, MsgField):
        return {"?": "i", "i": "i", "q": "i", "d": "f"}.get(slot_codes.get(e.index))
    if isinstance(e, MyId):
        return "i"
    if isinstance(e, Bin):
        if e.op is BinOp.DIV:
            return None  # gm_div result kind depends on runtime types
        if e.op in _COMPARE or e.op in (BinOp.AND, BinOp.OR):
            return "i"
        lhs = _expr_kind(e.lhs, columns, slot_codes)
        rhs = _expr_kind(e.rhs, columns, slot_codes)
        if lhs == "i" and rhs == "i":
            return "i"
        if lhs in ("i", "f") and rhs in ("i", "f"):
            return "f"
        return None
    if isinstance(e, Un):
        if e.op is UnOp.NOT:
            return "i"
        return _expr_kind(e.operand, columns, slot_codes)
    return None


# ---------------------------------------------------------------------------
# Loop / phase analysis
# ---------------------------------------------------------------------------


class _Spec:
    """One vectorizable reduction: ``[if cond:] target op= value``."""

    __slots__ = ("target", "ufunc", "cond", "value", "cond_expr", "value_expr")

    def __init__(self, target, ufunc, cond, value, cond_expr, value_expr):
        self.target = target
        self.ufunc = ufunc
        self.cond = cond
        self.value = value
        self.cond_expr = cond_expr
        self.value_expr = value_expr


def _reduce_ufunc(op: GlobalOp):
    if op is GlobalOp.SUM:
        return _np.add
    if op is GlobalOp.PRODUCT:
        return _np.multiply
    if op is GlobalOp.MIN:
        return _np.minimum
    if op is GlobalOp.MAX:
        return _np.maximum
    raise _Unvectorizable(f"reduction op {op}")


def _analyse_loop(loop: VMsgLoop, reads: set, msg_used: set):
    specs = []
    for stmt in loop.body:
        if isinstance(stmt, VFieldReduce):
            guarded = [(None, stmt)]
        elif (
            isinstance(stmt, VIf)
            and not stmt.other
            and stmt.then
            and all(isinstance(s, VFieldReduce) for s in stmt.then)
        ):
            guarded = [(stmt.cond, s) for s in stmt.then]
        else:
            raise _Unvectorizable(f"statement {type(stmt).__name__}")
        for cond, red in guarded:
            ufunc = _reduce_ufunc(red.op)
            cond_fn = _compile_expr(cond, reads, msg_used) if cond is not None else None
            value_fn = _compile_expr(red.expr, reads, msg_used)
            specs.append(_Spec(red.name, ufunc, cond_fn, value_fn, cond, red.expr))
    return specs


def _field_view(columns: dict, name: str):
    col = columns.get(name)
    if not isinstance(col, array):
        raise _Unvectorizable(f"column {name} is not a typed array")
    dtype = _COLUMN_DTYPES.get(col.typecode)
    if dtype is None:
        raise _Unvectorizable(f"column {name} typecode {col.typecode}")
    return _np.frombuffer(col, dtype=dtype)


def _record_dtype(tag_schema):
    fields = []
    if tag_schema.fmt.startswith("<B"):
        fields.append(("t", "u1"))
    slot_codes = {}
    for i, slot in enumerate(tag_schema.slots):
        if slot.inf_sentinel:
            # sentinel re-integerization is a per-value branch; keep scalar
            raise _Unvectorizable(f"slot {slot.name} carries an INF sentinel")
        dtype = _SLOT_DTYPES.get(slot.code)
        if dtype is None:
            raise _Unvectorizable(f"slot code {slot.code}")
        fields.append((f"s{i}", dtype))
        slot_codes[i] = slot.code
    rec = _np.dtype(fields) if fields else None
    if rec is not None and rec.itemsize != tag_schema.size:
        raise _Unvectorizable("record layout mismatch")
    return rec, slot_codes


def _build_phase(phase, tag_schemas, columns, broadcast):
    """Return ({(state, tag): handler}, reason) for one phase.

    The handler dict is ``None`` when the phase stays scalar; ``reason``
    then names the first disqualifier (the same strings `_Unvectorizable`
    carries), so callers can surface *why* a phase missed the fast path.

    Vectorization is all-or-nothing per phase: bulk handlers run at the
    delivery barrier, before any scalar receive loop, so mixing the two
    within a phase could reorder effects the simulator interleaves.
    """
    stmts = phase.receive
    if not stmts:
        return None, "no receive statements"
    if not all(isinstance(s, VMsgLoop) for s in stmts):
        return None, "receive body is not all message loops"
    tags = [s.tag for s in stmts]
    if len(set(tags)) != len(tags):
        return None, "duplicate tag across receive statements"

    handlers = {}
    reads: set = set()
    writes = []
    try:
        for loop in stmts:
            tag_schema = tag_schemas.get(loop.tag)
            if tag_schema is None:
                raise _Unvectorizable("unknown tag")
            rec_dtype, slot_codes = _record_dtype(tag_schema)
            msg_used: set = set()
            specs = _analyse_loop(loop, reads, msg_used)
            if any(i not in slot_codes for i in msg_used):
                raise _Unvectorizable("message field out of range")
            for spec in specs:
                writes.append(spec.target)
                tgt = _field_view(columns, spec.target)
                if tgt.dtype.kind != "f":
                    kind = _expr_kind(spec.value_expr, columns, slot_codes)
                    if kind != "i":
                        raise _Unvectorizable("non-integral fold into integer column")
            handlers[(phase.phase_id, loop.tag)] = _make_handler(
                specs, rec_dtype, sorted(msg_used), columns, reads | set(writes), broadcast
            )
        # written fields must be pairwise distinct and never read by the
        # phase's receive statements (guards included): then per-statement
        # batched application equals the simulator's per-message order.
        if len(set(writes)) != len(writes) or set(writes) & reads:
            raise _Unvectorizable("field dependence between receive statements")
    except _Unvectorizable as exc:
        return None, str(exc)
    return handlers, "vectorized"


def _make_handler(specs, rec_dtype, msg_fields, columns, touched, broadcast):
    views = {name: _field_view(columns, name) for name in touched}
    targets = {spec.target: views[spec.target] for spec in specs}

    def handler(dsts, payload, count):
        if count == 0:
            return
        if len(dsts) != count:
            dsts = dsts[:count]
        msg_full: Dict[int, Any] = {}
        if rec_dtype is not None and msg_fields:
            rec = _np.frombuffer(payload, dtype=rec_dtype, count=count)
            for i in msg_fields:
                msg_full[i] = rec[f"s{i}"]
        for spec in specs:
            sel = dsts
            msg = msg_full
            if spec.cond is not None:
                ctx = {"sel": dsts, "msg": msg_full, "B": broadcast, "views": views}
                mask = spec.cond(ctx)
                if isinstance(mask, _np.ndarray) and mask.ndim:
                    sel = dsts[mask]
                    if not sel.size:
                        continue
                    msg = {i: v[mask] for i, v in msg_full.items()}
                elif not mask:
                    continue
            ctx = {"sel": sel, "msg": msg, "B": broadcast, "views": views}
            spec.ufunc.at(targets[spec.target], sel, spec.value(ctx))

    return handler


def build_bulk_receivers(
    ir: PregelIR, schema, columns: dict, broadcast: dict, decisions: list | None = None
) -> Dict[Tuple[int, int], Callable]:
    """Compile vectorized receive handlers for every eligible phase.

    ``columns`` maps field name -> its storage column (the same objects
    the generated vertex source closes over); ``broadcast`` is the live
    broadcast dict, read at call time for globals and dispatch state.
    Returns ``{}`` when numpy or the schema is unavailable.

    When ``decisions`` is a list, one record per phase is appended:
    ``{"phase": id, "eligible": bool, "reason": str, "tags": [...]}`` —
    the observability feed behind the ``compile.vectorize`` trace events.
    """
    if _np is None or schema is None:
        if decisions is not None:
            reason = "numpy unavailable" if _np is None else "no message schema"
            for phase in ir.phases.values():
                decisions.append(
                    {
                        "phase": phase.phase_id,
                        "eligible": False,
                        "reason": reason,
                        "tags": [],
                    }
                )
        return {}
    handlers: Dict[Tuple[int, int], Callable] = {}
    tag_schemas = schema.tags
    for phase in ir.phases.values():
        built, reason = _build_phase(phase, tag_schemas, columns, broadcast)
        if built:
            handlers.update(built)
        if decisions is not None:
            decisions.append(
                {
                    "phase": phase.phase_id,
                    "eligible": built is not None,
                    "reason": reason,
                    "tags": sorted(tag for _state, tag in built) if built else [],
                }
            )
    return handlers
