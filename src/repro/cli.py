"""Command-line interface: ``gm-pregel`` (or ``python -m repro``).

Subcommands:

* ``compile FILE.gm`` — run the full pipeline; ``--emit`` selects the
  artifact to print (java, canonical Green-Marl, the state machine, or the
  executable Python vertex program);
* ``run FILE.gm`` — compile and execute on a generated graph, printing
  outputs and run metrics; ``--trace``/``--trace-chrome`` export the event
  log, ``--metrics-json`` dumps the complete metrics ledger;
* ``trace FILE.gm`` — compile and execute with tracing on and print the
  per-superstep timeline (phase times, active set, message traffic);
* ``profile FILE.gm`` — compile and execute with tracing on and print the
  per-worker load profile and straggler supersteps;
* ``metrics FILE.gm`` — compile and execute with a recording metrics
  registry and print the snapshot (``--format json|prom``);
* ``interp FILE.gm`` — execute under the shared-memory reference semantics;
* ``bench`` — regenerate the paper's tables/figure on the simulator;
* ``compare BASELINE CURRENT`` — noise-aware perf-regression check between
  two ``BENCH_*.json`` telemetry documents (exit 1 on regression).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from .compiler import compile_source
from .graphgen.registry import TABLE1, load_graph
from .interp import interpret
from .lang.errors import GreenMarlError
from .pregel.backend import BACKENDS, BackendUnsupported


def _parse_value(text: str):
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    return text


def _die(message: str) -> "SystemExit":
    """Usage error: one line on stderr, exit code 2 (argparse's convention),
    never a traceback."""
    print(f"gm-pregel: error: {message}", file=sys.stderr)
    return SystemExit(2)


def _parse_args_list(pairs: list[str]) -> dict:
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise _die(f"--arg expects name=value, got '{pair}'")
        name, value = pair.split("=", 1)
        out[name] = _parse_value(value)
    return out


def _validate_run_shape(ns: argparse.Namespace) -> None:
    """Range-check the numeric run parameters up front: out-of-range values
    are usage errors (exit 2), not tracebacks from deep inside a run."""
    if not 0.0 < ns.scale <= 16.0:
        raise _die(f"--scale must be in (0, 16], got {ns.scale}")
    if not 1 <= ns.workers <= 4096:
        raise _die(f"--workers must be in [1, 4096], got {ns.workers}")
    if getattr(ns, "checkpoint_every", 0) < 0:
        raise _die(f"--checkpoint-every must be >= 0, got {ns.checkpoint_every}")
    if getattr(ns, "max_restarts", 0) < 0:
        raise _die(f"--max-restarts must be >= 0, got {ns.max_restarts}")
    if getattr(ns, "exchange_deadline", 30.0) <= 0:
        raise _die(
            f"--exchange-deadline must be > 0, got {ns.exchange_deadline}"
        )


def _cmd_compile(ns: argparse.Namespace) -> int:
    source = Path(ns.file).read_text()
    result = compile_source(
        source,
        state_merging=not ns.no_state_merging,
        intra_loop_merging=not ns.no_intra_loop,
    )
    if ns.emit == "java":
        print(result.java_source)
    elif ns.emit == "canonical":
        print(result.canonical_source)
    elif ns.emit == "states":
        print(result.ir.describe())
        print()
        print("applied rules:", ", ".join(sorted(result.rules.applied)))
    elif ns.emit == "python":
        print(result.program.vertex_source)
    return 0


def _load_cli_graph(ns: argparse.Namespace):
    if ns.graph_file:
        from .graphgen.io import GraphFormatError, load_edge_list

        try:
            return load_edge_list(ns.graph_file)
        except FileNotFoundError:
            raise _die(f"--graph-file: no such file: {ns.graph_file}") from None
        except GraphFormatError as exc:
            raise _die(f"--graph-file: {exc}") from None
    return load_graph(ns.graph, ns.scale, ns.seed)


def _build_fault_tolerance(ns: argparse.Namespace):
    """``(FaultTolerance | None, real_faults)`` from the CLI flags.

    ``--heartbeat`` implies fault tolerance (detection escalates into
    checkpoint recovery), so supervision alone still gets a manager.
    ``--inject-fault`` accepts simulated crashes (``W@S``, any backend)
    and real process faults (``kill:W@S`` / ``hang:W@S``, mp only) —
    the latter are returned separately for the mp engine.
    """
    if not ns.checkpoint_every and not ns.inject_fault and not ns.heartbeat:
        return None, ()
    from .pregel.ft import (
        NETWORK_FAULT_KINDS,
        FaultPlan,
        FaultTolerance,
        RealFault,
        parse_fault,
    )

    try:
        faults = [parse_fault(spec) for spec in ns.inject_fault]
        for fault in faults:
            if fault.worker >= ns.workers:
                raise ValueError(
                    f"names worker {fault.worker} but --workers is {ns.workers}"
                )
        real = tuple(f for f in faults if isinstance(f, RealFault))
        if real and ns.backend != "mp":
            raise ValueError(
                f"'{real[0].kind}:' faults are real process faults — they "
                "need real worker processes (run with --backend mp)"
            )
        network = tuple(f for f in real if f.kind in NETWORK_FAULT_KINDS)
        if network and getattr(ns, "transport", "shm") != "tcp":
            raise ValueError(
                f"'{network[0].kind}:' faults are network faults — they "
                "need the real socket transport (run with --transport tcp)"
            )
        plan = FaultPlan(
            checkpoint_every=ns.checkpoint_every,
            crashes=tuple(f for f in faults if not isinstance(f, RealFault)),
            recovery=ns.recovery,
        )
    except ValueError as exc:
        raise _die(f"--inject-fault: {exc}") from None
    return FaultTolerance(plan), real


def _build_transport(ns: argparse.Namespace):
    """A SimulatedTransport from ``--net-faults``, or None when unused."""
    if not ns.net_faults:
        return None
    from .pregel.net import SimulatedTransport, parse_net_faults

    try:
        return SimulatedTransport(parse_net_faults(ns.net_faults))
    except ValueError as exc:
        raise _die(f"--net-faults: {exc}") from None


def _build_supervisor(ns: argparse.Namespace):
    """A Supervisor from ``--heartbeat``/``--max-restarts``, or None."""
    if not ns.heartbeat:
        return None
    from .pregel.supervisor import Supervisor, parse_heartbeat

    try:
        return Supervisor(parse_heartbeat(ns.heartbeat, max_restarts=ns.max_restarts))
    except ValueError as exc:
        raise _die(f"--heartbeat: {exc}") from None


def _build_mem(ns: argparse.Namespace):
    """A MemoryManager from ``--mem-budget``/``--spill-dir``, or None."""
    if not ns.mem_budget:
        if ns.spill_dir:
            raise _die("--spill-dir requires --mem-budget")
        return None
    from .pregel.mem import MemoryManager, parse_mem_budget

    if ns.spill_dir:
        try:
            os.makedirs(ns.spill_dir, exist_ok=True)
        except OSError as exc:
            raise _die(f"--spill-dir: {exc}")
    try:
        plan = parse_mem_budget(ns.mem_budget)
        if ns.spill_dir:
            import dataclasses

            plan = dataclasses.replace(plan, spill_dir=ns.spill_dir)
        for worker, _budget in plan.worker_budgets:
            if worker >= ns.workers:
                raise ValueError(
                    f"targets worker {worker} but --workers is {ns.workers}"
                )
    except ValueError as exc:
        raise _die(f"--mem-budget: {exc}") from None
    return MemoryManager(plan)


def _validate_backend_composition(ns: argparse.Namespace) -> None:
    """Refuse unsupported backend/feature compositions *before* the graph
    loads.  The engine constructor re-checks (it is the authority), but by
    then the CLI has spent seconds generating a large graph — validating
    from the flags alone makes ``--backend mp --net-faults ...`` on a
    1M-vertex graph fail in milliseconds, with the identical exit-2
    message, because both paths share :func:`composition_refusals`."""
    if ns.backend != "mp":
        if getattr(ns, "transport", "shm") == "tcp":
            raise _die(
                "--transport tcp needs real worker processes to connect "
                "(run with --backend mp)"
            )
        return
    from .pregel.backend.mp import composition_refusals, mp_available

    sentinel = object()
    refusals = composition_refusals(
        transport=sentinel if ns.net_faults else None,
    )
    if refusals:
        raise _die(refusals[0])
    if not mp_available():
        raise _die(
            "the mp backend needs fork start-method and "
            "multiprocessing.shared_memory, unavailable on this platform"
        )


def _execute_traced(
    ns: argparse.Namespace, *, force_trace: bool = False, metrics_registry=None
):
    """Compile and run ``ns.file``, threading one tracer through the compiler
    and the engine when tracing is requested (or forced by the subcommand).
    Returns ``(graph, run, tracer)``; trace/metrics exports are written here
    so every run-shaped subcommand shares them."""
    _validate_run_shape(ns)
    _validate_backend_composition(ns)
    # Build every flag-derived component *before* the graph loads: a
    # malformed --inject-fault / --heartbeat / --mem-budget spec is a
    # usage error and must exit 2 in milliseconds, not after seconds of
    # graph generation.
    ft, real_faults = _build_fault_tolerance(ns)
    transport = _build_transport(ns)
    supervisor = _build_supervisor(ns)
    mem = _build_mem(ns)
    tracer = None
    if force_trace or ns.trace or ns.trace_chrome:
        from .obs import Tracer

        tracer = Tracer()
    source = Path(ns.file).read_text()
    graph = _load_cli_graph(ns)
    result = compile_source(source, emit_java=False, tracer=tracer)
    args = _parse_args_list(ns.arg)
    engine_opts = {}
    if getattr(ns, "partitioning", "hash") != "hash":
        engine_opts["partitioning"] = ns.partitioning
    if ns.backend == "mp":
        # mp-only knobs: the sim/columnar engines have no worker
        # processes, so they do not take these keyword arguments.
        engine_opts.update(
            real_faults=real_faults,
            exchange_deadline=ns.exchange_deadline,
            max_restarts=ns.max_restarts,
            transport_mode=getattr(ns, "transport", "shm"),
        )
    try:
        run = result.program.run(
            graph,
            args,
            backend=ns.backend,
            num_workers=ns.workers,
            seed=ns.seed,
            scheduling=ns.scheduling,
            ft=ft,
            tracer=tracer,
            metrics_registry=metrics_registry,
            transport=transport,
            supervisor=supervisor,
            mem=mem,
            **engine_opts,
        )
    except BackendUnsupported as exc:
        # A feature composition the backend deliberately refuses is a
        # usage error (exit 2), never a traceback or a silent wrong answer.
        raise _die(str(exc)) from None
    if ns.metrics_json:
        Path(ns.metrics_json).write_text(
            json.dumps(run.metrics.to_dict(), sort_keys=True, default=str) + "\n"
        )
    if tracer is not None:
        from .obs import write_chrome_trace, write_jsonl

        if ns.trace:
            write_jsonl(tracer.events, ns.trace)
            print(f"trace: {len(tracer.events)} events -> {ns.trace}", file=sys.stderr)
        if ns.trace_chrome:
            write_chrome_trace(tracer.events, ns.trace_chrome)
            print(
                f"chrome trace -> {ns.trace_chrome} (open in Perfetto)",
                file=sys.stderr,
            )
    return graph, run, tracer, supervisor, mem


def _cmd_run(ns: argparse.Namespace) -> int:
    graph, run, _tracer, supervisor, mem = _execute_traced(ns)
    print(f"graph: {graph}")
    print(f"metrics: {run.metrics.summary()}")
    if run.metrics.faults_injected:
        print(
            f"recovery: {ns.recovery} survived {run.metrics.faults_injected} "
            f"worker crash(es), {run.metrics.lost_supersteps} superstep(s) lost, "
            f"{run.metrics.recovery_replay_work} vertex computations replayed"
        )
    if mem is not None:
        report = mem.report()
        print(report.summary())
        if report.oom:
            # Graceful degradation: the budget could not hold an irreducible
            # allocation — partial result plus a structured report, no crash.
            print(
                f"memory: OUT OF MEMORY — worker {report.oom['worker']} in "
                f"{report.oom['phase']} at superstep {report.oom['superstep']} "
                f"needed {report.oom['needed_bytes']} bytes against a "
                f"{report.oom['budget_bytes']}-byte budget; partial result "
                f"covers {run.metrics.supersteps} superstep(s)"
            )
    if supervisor is not None:
        report = supervisor.report()
        if report["degraded"]:
            # Graceful degradation: the restart budget ran out, so this is
            # a *partial* result — say so structurally, don't raise.
            print(
                f"supervisor: DEGRADED (halt_reason=unrecoverable) after "
                f"{report['restarts_used']}/{report['max_restarts']} restart(s); "
                f"partial result covers {report['completed_supersteps']} superstep(s)"
            )
        else:
            print(
                f"supervisor: {report['restarts_used']} restart(s), "
                f"{report['heartbeats_missed']} heartbeat(s) missed, "
                f"{len(report['quarantined_workers'])} worker(s) quarantined, "
                f"clock={report['clock_units']:.1f} units"
            )
        for detection in report["detections"]:
            cause = detection.get("cause")
            print(
                f"supervisor: worker {detection['worker']} declared dead at "
                f"superstep {detection['superstep']} after "
                f"{detection['silence']:.2f} units of silence "
                f"(phi={detection['phi']:.2f}"
                + (f", cause={cause}" if cause else "")
                + f") -> {detection['action']}"
            )
    if run.result is not None:
        print(f"result: {run.result}")
    for name, column in run.outputs.items():
        preview = ", ".join(str(v) for v in column[:8])
        print(f"output {name}: [{preview}{', ...' if len(column) > 8 else ''}]")
    return 0


def _cmd_trace(ns: argparse.Namespace) -> int:
    from .obs import timeline_report

    graph, run, tracer, _supervisor, _mem = _execute_traced(ns, force_trace=True)
    print(f"graph: {graph}")
    print(timeline_report(tracer.events))
    print()
    print(f"metrics: {run.metrics.summary()}")
    return 0


def _cmd_profile(ns: argparse.Namespace) -> int:
    from .obs import profile_report

    graph, run, tracer, _supervisor, _mem = _execute_traced(ns, force_trace=True)
    print(f"graph: {graph}")
    print(profile_report(tracer.events))
    print()
    print(f"metrics: {run.metrics.summary()}")
    return 0


def _cmd_metrics(ns: argparse.Namespace) -> int:
    """Run once with a recording metrics registry and print the snapshot
    (JSON or Prometheus text exposition)."""
    from .obs import MetricsRegistry, prometheus_text

    registry = MetricsRegistry()
    graph, run, _tracer, _supervisor, _mem = _execute_traced(
        ns, metrics_registry=registry
    )
    snap = registry.snapshot()
    if ns.format == "prom":
        print(prometheus_text(snap), end="")
    else:
        print(json.dumps(snap, indent=2, sort_keys=True))
    print(f"graph: {graph}", file=sys.stderr)
    print(f"metrics: {run.metrics.summary()}", file=sys.stderr)
    return 0


def _cmd_compare(ns: argparse.Namespace) -> int:
    """Compare two BENCH_*.json documents; exit 1 on regression, 2 on a
    malformed document or threshold spec."""
    from .bench.telemetry import TelemetryError, compare, load_bench

    thresholds = {}
    for spec in ns.threshold:
        if "=" not in spec:
            raise _die(f"--threshold expects metric=ratio, got '{spec}'")
        metric, _, ratio_text = spec.partition("=")
        try:
            ratio = float(ratio_text)
        except ValueError:
            raise _die(f"--threshold ratio must be a number, got '{ratio_text}'") from None
        if ratio < 1.0:
            raise _die(f"--threshold ratio must be >= 1.0, got {ratio}")
        thresholds[metric] = ratio
    if ns.wall_threshold < 1.0:
        raise _die(f"--wall-threshold must be >= 1.0, got {ns.wall_threshold}")
    try:
        baseline = load_bench(ns.baseline)
        current = load_bench(ns.current)
        result = compare(
            baseline,
            current,
            wall_threshold=ns.wall_threshold,
            thresholds=thresholds,
            counts_only=ns.counts_only,
        )
    except TelemetryError as exc:
        raise _die(str(exc)) from None
    print(result.render())
    return 0 if result.ok else 1


def _cmd_interp(ns: argparse.Namespace) -> int:
    _validate_run_shape(ns)
    source = Path(ns.file).read_text()
    graph = _load_cli_graph(ns)
    args = _parse_args_list(ns.arg)
    result = interpret(source, graph, args, seed=ns.seed)
    if result.result is not None:
        print(f"result: {result.result}")
    for name, column in result.outputs.items():
        preview = ", ".join(str(v) for v in column[:8])
        print(f"output {name}: [{preview}{', ...' if len(column) > 8 else ''}]")
    return 0


def _cmd_bench(ns: argparse.Namespace) -> int:
    from .bench import figure6_experiments, render_table, table2_rows
    from .bench.tables import render_check_matrix
    from .compiler import compile_algorithm
    from .algorithms.sources import ALGORITHMS
    from .transform.pipeline import TABLE3_ROWS

    print("== Table 2: lines of code ==")
    rows = table2_rows()
    print(
        render_table(
            ["Algorithm", "GM", "GM(paper)", "Java(gen)", "GPS(paper)"],
            [
                [r.display, r.green_marl, r.paper_green_marl, r.generated_java, r.paper_gps]
                for r in rows
            ],
        )
    )
    print()
    print("== Table 3: applied transformations ==")
    marks = {name: compile_algorithm(name, emit_java=False).rule_row() for name in ALGORITHMS}
    print(render_check_matrix(TABLE3_ROWS, list(ALGORITHMS), marks))
    print()
    print(f"== Figure 6: generated vs manual (scale={ns.scale}) ==")
    results = figure6_experiments(ns.scale, repeats=ns.repeats)
    print(
        render_table(
            ["Algorithm", "Graph", "Norm. runtime", "Δ timesteps", "msgs gen", "msgs man"],
            [
                [
                    r.algorithm,
                    r.graph,
                    r.normalized_runtime,
                    r.timestep_delta,
                    r.generated.messages,
                    r.manual.messages if r.manual else None,
                ]
                for r in results
            ],
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="gm-pregel",
        description="Green-Marl → Pregel compiler (CGO 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile a .gm file and print an artifact")
    p_compile.add_argument("file")
    p_compile.add_argument(
        "--emit",
        choices=("java", "canonical", "states", "python"),
        default="states",
    )
    p_compile.add_argument("--no-state-merging", action="store_true")
    p_compile.add_argument("--no-intra-loop", action="store_true")
    p_compile.set_defaults(fn=_cmd_compile)

    run_like = (
        ("run", _cmd_run, "run a .gm file on a graph"),
        ("trace", _cmd_trace, "run with tracing and print the superstep timeline"),
        ("profile", _cmd_profile, "run with tracing and print the per-worker profile"),
        ("metrics", _cmd_metrics, "run with a metrics registry and print the snapshot"),
        ("interp", _cmd_interp, "interp a .gm file on a graph"),
    )
    for name, fn, help_text in run_like:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("file")
        if name == "metrics":
            p.add_argument(
                "--format",
                choices=("json", "prom"),
                default="json",
                help="snapshot exposition format: structured JSON or the "
                "Prometheus text format",
            )
        p.add_argument("--graph", choices=tuple(TABLE1), default="twitter")
        p.add_argument("--graph-file", help="edge-list file instead of a generator")
        p.add_argument("--scale", type=float, default=0.25)
        p.add_argument("--seed", type=int, default=17)
        p.add_argument("--workers", type=int, default=4)
        p.add_argument(
            "--arg", action="append", default=[], help="procedure argument name=value"
        )
        if name != "interp":
            p.add_argument(
                "--scheduling",
                choices=("frontier", "dense"),
                default="frontier",
                help="superstep scheduling: 'frontier' iterates only the "
                "active set when it is sparse (batched message routing); "
                "'dense' always scans every vertex",
            )
            p.add_argument(
                "--backend",
                choices=BACKENDS,
                default="sim",
                help="execution backend: 'sim' is the dict-based simulator, "
                "'columnar' stores properties in typed arrays and stages "
                "messages as packed struct slabs, 'mp' runs real worker "
                "processes exchanging those slabs over shared memory; all "
                "are parity-identical on outputs and metered quantities",
            )
            p.add_argument(
                "--transport",
                choices=("shm", "tcp"),
                default="shm",
                help="mp backend data plane: 'shm' exchanges slabs through "
                "shared-memory segments, 'tcp' moves the cross-worker slabs "
                "over real loopback sockets (length-prefixed CRC frames, "
                "per-destination sequence numbers, ack/retransmit/dedup); "
                "outputs and parity_key() are bit-identical across both",
            )
            p.add_argument(
                "--partitioning",
                choices=("hash", "range"),
                default="hash",
                help="vertex -> worker placement: 'hash' interleaves ids "
                "round-robin, 'range' assigns contiguous id blocks "
                "(id-local edges stay within one worker); outputs are "
                "bit-identical across both at equal worker counts",
            )
            p.add_argument(
                "--checkpoint-every",
                type=int,
                default=0,
                metavar="N",
                help="checkpoint engine+program state every N supersteps (0 = off)",
            )
            p.add_argument(
                "--inject-fault",
                action="append",
                default=[],
                metavar="[KIND:]WORKER@STEP",
                help="crash the given worker entering the given superstep "
                "(repeatable); the run recovers from the latest checkpoint.  "
                "Plain W@S simulates the crash on any backend; kill:W@S "
                "SIGKILLs the real worker process and hang:W@S wedges it "
                "past the exchange deadline (both --backend mp only, "
                "detected by the parent's deadline-based barrier); "
                "netsplit:W@S closes the worker's listening socket "
                "mid-exchange and slowlink:W@S stalls it past its peers' "
                "deadline (both --backend mp --transport tcp only, "
                "classified as refused/timeout by the peers)",
            )
            p.add_argument(
                "--recovery",
                choices=("rollback", "confined"),
                default="rollback",
                help="recovery strategy: rollback replays every partition, "
                "confined replays only the failed worker's partition",
            )
            p.add_argument(
                "--net-faults",
                metavar="SPEC",
                help="route messages through a simulated faulty channel "
                "hidden behind reliable exactly-once delivery, e.g. "
                "'drop=0.05,dup=0.02,reorder=0.1,corrupt=0.01,seed=7' "
                "(results stay bit-identical; the faults are metered)",
            )
            p.add_argument(
                "--heartbeat",
                metavar="SPEC",
                help="supervise the run with heartbeat failure detection "
                "and automatic recovery, e.g. "
                "'interval=1,phi=4,deadline=5,crash=1@3,straggler=2,seed=5' "
                "(crash=W@S schedules *silent* deaths the detector must "
                "notice; implies fault tolerance)",
            )
            p.add_argument(
                "--exchange-deadline",
                type=float,
                default=30.0,
                metavar="SECONDS",
                help="mp backend: how long the parent waits for a worker's "
                "barrier reply before declaring it dead/hung and escalating "
                "into recovery (default 30)",
            )
            p.add_argument(
                "--max-restarts",
                type=int,
                default=3,
                metavar="N",
                help="restart budget for detected failures; past it the run "
                "degrades to a partial result with halt_reason=unrecoverable",
            )
            p.add_argument(
                "--mem-budget",
                action="append",
                default=[],
                metavar="BYTES[@W]",
                help="per-worker memory budget (k/m/g suffixes allowed); "
                "BYTES@W targets one worker (repeatable).  Over-budget "
                "inboxes spill to disk and outboxes split the superstep; "
                "results stay bit-identical.  A budget too small for a "
                "single vertex's inbox degrades the run to "
                "halt_reason=out_of_memory with a structured report",
            )
            p.add_argument(
                "--spill-dir",
                metavar="DIR",
                help="parent directory for the run's private spill files "
                "(default: the system temp dir); requires --mem-budget",
            )
            p.add_argument(
                "--trace",
                metavar="FILE",
                help="write the observability event log (compiler passes, "
                "per-superstep records, FT lifecycle) as JSONL",
            )
            p.add_argument(
                "--trace-chrome",
                metavar="FILE",
                help="write the trace in Chrome trace-event JSON "
                "(loadable in Perfetto / chrome://tracing)",
            )
            p.add_argument(
                "--metrics-json",
                metavar="FILE",
                help="write the complete RunMetrics ledger as JSON",
            )
        p.set_defaults(fn=fn)

    p_bench = sub.add_parser("bench", help="regenerate the paper's tables")
    p_bench.add_argument("--scale", type=float, default=0.5)
    p_bench.add_argument("--repeats", type=int, default=3)
    p_bench.set_defaults(fn=_cmd_bench)

    p_compare = sub.add_parser(
        "compare",
        help="compare two BENCH_*.json telemetry documents for perf regressions",
    )
    p_compare.add_argument("baseline", help="baseline BENCH_*.json path")
    p_compare.add_argument("current", help="current BENCH_*.json path")
    p_compare.add_argument(
        "--wall-threshold",
        type=float,
        default=1.15,
        metavar="RATIO",
        help="min-of-N wall-time ratio above which a run regresses "
        "(default 1.15)",
    )
    p_compare.add_argument(
        "--threshold",
        action="append",
        default=[],
        metavar="METRIC=RATIO",
        help="per-count threshold, e.g. messages=1.10 allows 10%% growth; "
        "counts without one must match exactly (repeatable)",
    )
    p_compare.add_argument(
        "--counts-only",
        action="store_true",
        help="skip wall-time comparison (cross-host CI: only the "
        "deterministic counts are comparable)",
    )
    p_compare.set_defaults(fn=_cmd_compare)

    ns = parser.parse_args(argv)
    try:
        return ns.fn(ns)
    except GreenMarlError as exc:
        print(exc.render(), file=sys.stderr)
        return 1
    except BrokenPipeError:
        # output piped into a pager/head that closed early — not an error
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
