"""Directed property graph in CSR (compressed sparse row) form.

This is the graph substrate both the Pregel engine and the shared-memory
reference interpreter run on.  Node properties are columnar arrays indexed by
vertex id; edge properties are arrays aligned with the out-edge CSR order, so
an edge's property is addressed by its CSR position — matching Pregel's model
where the edge ``(u, v)`` and its values belong to the source vertex ``u``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class Graph:
    num_nodes: int
    # CSR over outgoing edges
    out_offsets: list[int]
    out_targets: list[int]
    # CSR over incoming edges; in_edge_ids maps each in-edge back to its
    # position in the out-CSR (where edge properties live).
    in_offsets: list[int]
    in_sources: list[int]
    in_edge_ids: list[int]
    node_props: dict[str, list] = field(default_factory=dict)
    edge_props: dict[str, list] = field(default_factory=dict)

    # -- construction -----------------------------------------------------

    @staticmethod
    def from_edges(
        num_nodes: int,
        edges: Sequence[tuple[int, int]],
        edge_props: dict[str, Sequence] | None = None,
    ) -> "Graph":
        """Build a graph from an edge list.

        ``edge_props`` values are aligned with ``edges``; they are re-ordered
        into CSR position internally.
        """
        num_edges = len(edges)
        out_deg = [0] * num_nodes
        in_deg = [0] * num_nodes
        for src, dst in edges:
            if not (0 <= src < num_nodes and 0 <= dst < num_nodes):
                raise ValueError(f"edge ({src}, {dst}) out of range for {num_nodes} nodes")
            out_deg[src] += 1
            in_deg[dst] += 1

        out_offsets = _prefix_sum(out_deg)
        in_offsets = _prefix_sum(in_deg)
        out_targets = [0] * num_edges
        in_sources = [0] * num_edges
        in_edge_ids = [0] * num_edges

        cursor = list(out_offsets[:-1])
        edge_pos = [0] * num_edges
        for idx, (src, dst) in enumerate(edges):
            pos = cursor[src]
            cursor[src] += 1
            out_targets[pos] = dst
            edge_pos[idx] = pos
        in_cursor = list(in_offsets[:-1])
        for idx, (src, dst) in enumerate(edges):
            pos = in_cursor[dst]
            in_cursor[dst] += 1
            in_sources[pos] = src
            in_edge_ids[pos] = edge_pos[idx]

        graph = Graph(
            num_nodes, out_offsets, out_targets, in_offsets, in_sources, in_edge_ids
        )
        if edge_props:
            for name, values in edge_props.items():
                if len(values) != num_edges:
                    raise ValueError(
                        f"edge property '{name}' has {len(values)} values for "
                        f"{num_edges} edges"
                    )
                csr_values = [None] * num_edges
                for idx, value in enumerate(values):
                    csr_values[edge_pos[idx]] = value
                graph.edge_props[name] = csr_values  # type: ignore[assignment]
        return graph

    # -- topology --------------------------------------------------------

    @property
    def num_edges(self) -> int:
        return len(self.out_targets)

    def out_nbrs(self, v: int) -> list[int]:
        return self.out_targets[self.out_offsets[v] : self.out_offsets[v + 1]]

    def in_nbrs(self, v: int) -> list[int]:
        return self.in_sources[self.in_offsets[v] : self.in_offsets[v + 1]]

    def out_edge_range(self, v: int) -> range:
        """CSR edge-id positions of v's outgoing edges (index edge_props)."""
        return range(self.out_offsets[v], self.out_offsets[v + 1])

    def out_degree(self, v: int) -> int:
        return self.out_offsets[v + 1] - self.out_offsets[v]

    def in_degree(self, v: int) -> int:
        return self.in_offsets[v + 1] - self.in_offsets[v]

    def degree(self, v: int) -> int:
        return self.out_degree(v)

    def nodes(self) -> range:
        return range(self.num_nodes)

    def edges(self) -> Iterable[tuple[int, int]]:
        for v in self.nodes():
            for w in self.out_nbrs(v):
                yield (v, w)

    # -- properties ----------------------------------------------------------

    def add_node_prop(self, name: str, values: Sequence | None = None, default=0) -> list:
        if values is not None:
            if len(values) != self.num_nodes:
                raise ValueError(
                    f"node property '{name}' has {len(values)} values for "
                    f"{self.num_nodes} nodes"
                )
            column = list(values)
        else:
            column = [default] * self.num_nodes
        self.node_props[name] = column
        return column

    def add_edge_prop_csr(self, name: str, values: Sequence | None = None, default=0) -> list:
        """Add an edge property already in CSR order."""
        if values is not None:
            if len(values) != self.num_edges:
                raise ValueError(
                    f"edge property '{name}' has {len(values)} values for "
                    f"{self.num_edges} edges"
                )
            column = list(values)
        else:
            column = [default] * self.num_edges
        self.edge_props[name] = column
        return column

    def __repr__(self) -> str:
        return f"Graph(nodes={self.num_nodes}, edges={self.num_edges})"


def _prefix_sum(counts: list[int]) -> list[int]:
    offsets = [0] * (len(counts) + 1)
    total = 0
    for i, c in enumerate(counts):
        offsets[i] = total
        total += c
    offsets[len(counts)] = total
    return offsets
