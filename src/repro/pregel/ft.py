"""Fault tolerance for the Pregel simulator: checkpointing, crash injection,
and recovery.

Pregel (and GPS, the substrate of the paper's evaluation) is a
*fault-tolerant* BSP system: workers write a checkpoint of their partition
state to durable storage at configurable superstep intervals, the master
detects worker failures at the barrier, and the job recovers by reloading
the latest checkpoint and replaying the lost supersteps.  This module adds
that layer to the simulator so programs — generated and hand-written alike —
can be executed, metered, and *verified* under failure.

Three pieces:

* **Checkpointing** — at superstep boundaries (start of superstep, before
  ``master.compute()``) the engine's state and every registered
  :class:`Checkpointable` program state are pickled into an immutable blob.
  The blob's length is the metered checkpoint cost
  (:attr:`~repro.pregel.runtime.RunMetrics.checkpoint_bytes`).  Pickling
  doubles as deep isolation: a later restore can never alias live state.
* **Deterministic fault injection** — a :class:`FaultPlan` carries a
  schedule of :class:`CrashEvent`\\ s (worker *w* dies at the barrier
  entering superstep *s*, losing the partition it owns) plus an optional
  transient cross-worker message-loss rate whose retry/backoff cost is
  metered from a dedicated seeded RNG (so the fault machinery never
  perturbs the algorithm's own random stream).
* **Recovery** — two strategies, selected by ``FaultPlan.recovery``:

  - ``"rollback"`` (Pregel's classic checkpoint recovery): *every*
    partition reloads the latest checkpoint and the engine replays all lost
    supersteps.  Metrics counters are part of the checkpoint, so after
    replay the run's ledger is bit-identical to a failure-free execution.
  - ``"confined"`` (GPS-style confined recovery): only the failed worker's
    partition reloads its checkpoint slice; its lost supersteps are
    recomputed from the per-superstep message and broadcast logs the
    healthy workers retained, while their own state — and the metrics
    ledger, which lives on the master — is untouched.  Replay runs with
    sends and global puts suppressed (their effects already reached the
    healthy side), so recovery work is proportional to one partition, not
    the whole graph.

Because the engine is deterministic (the master RNG state is part of every
checkpoint), both strategies produce results, supersteps, and message
totals bit-identical to a failure-free run — the property
``tests/test_fault_tolerance.py`` asserts for all six paper algorithms.
"""

from __future__ import annotations

import pickle
import random
import time
from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime uses duck typing)
    from .runtime import PregelEngine


@runtime_checkable
class Checkpointable(Protocol):
    """Program-owned state that must survive a worker crash.

    ``checkpoint_state`` returns a picklable snapshot payload;
    ``restore_state`` writes a loaded payload back **in place** (live
    closures and generated code alias the underlying columns, so restores
    must mutate, never rebind).  ``vertices`` restricts the restore to one
    partition's vertex ids (confined recovery); ``None`` means restore
    everything, including any non-partitioned state such as master scalars.
    """

    def checkpoint_state(self) -> dict: ...

    def restore_state(self, state: dict, vertices: Sequence[int] | None = None) -> None: ...


class ColumnState:
    """A :class:`Checkpointable` over columnar per-vertex state.

    Covers both the generated programs' property columns (``F_name`` arrays)
    and the manual baselines' closure-captured lists (``pr``, ``dist``,
    ``match``, …): anything shaped ``{name: one-value-per-vertex list}``.
    """

    def __init__(self, columns: dict[str, list]):
        self.columns = columns

    def checkpoint_state(self) -> dict:
        # A shallow copy per column suffices: the enclosing checkpoint is
        # pickled, which deep-copies nested values (e.g. _in_nbrs lists).
        return {name: list(col) for name, col in self.columns.items()}

    def restore_state(self, state: dict, vertices: Sequence[int] | None = None) -> None:
        for name, saved in state.items():
            col = self.columns[name]
            if vertices is None:
                if isinstance(col, array):
                    # Typed backend column: slice-assignment needs an array
                    # of the same typecode, not the checkpointed list.
                    col[:] = array(col.typecode, saved)
                else:
                    col[:] = saved
            else:
                for v in vertices:
                    col[v] = saved[v]


@dataclass(frozen=True)
class CrashEvent:
    """Worker ``worker`` fails at the barrier entering superstep ``superstep``,
    losing the vertex partition (fields, voted bits, undelivered inbox) it
    owns.  Each event fires at most once — recovery re-executes the same
    superstep numbers, and a crash is not re-injected into its own replay."""

    worker: int
    superstep: int


def parse_crash(spec: str) -> CrashEvent:
    """Parse the CLI syntax ``WORKER@STEP`` (e.g. ``1@5``)."""
    try:
        worker_text, step_text = spec.split("@", 1)
        return CrashEvent(int(worker_text), int(step_text))
    except ValueError:
        raise ValueError(
            f"invalid fault spec '{spec}': expected WORKER@STEP, e.g. 1@5"
        ) from None


#: the real fault kinds ``parse_fault`` and the mp engine accept.  ``kill``
#: and ``hang`` are process faults (any mp transport); ``netsplit`` and
#: ``slowlink`` are *network* faults that only mean something when the
#: slabs actually travel a network — they additionally require the tcp
#: transport (``--transport tcp``).
REAL_FAULT_KINDS = ("kill", "hang", "netsplit", "slowlink")
NETWORK_FAULT_KINDS = ("netsplit", "slowlink")


@dataclass(frozen=True)
class RealFault:
    """A real process- or network-level fault for the mp backend.

    ``kill`` SIGKILLs worker ``worker``'s OS process at superstep
    ``superstep``; ``hang`` makes it sleep past the parent's exchange
    deadline.  Under the tcp transport, ``netsplit`` closes the worker's
    listening socket mid-exchange (peers see ECONNREFUSED) and
    ``slowlink`` throttles the worker's outbound link below the exchange
    deadline (peers time out waiting for its frames).  Unlike a
    :class:`CrashEvent` the failure is *not announced* — the parent must
    detect it through its deadline-based barrier (and, for the network
    kinds, the workers' own peer-failure classification) and escalate
    into the same checkpoint recovery.  Each fault fires at most once."""

    kind: str  # "kill" | "hang" | "netsplit" | "slowlink"
    worker: int
    superstep: int


def parse_fault(spec: str) -> CrashEvent | RealFault:
    """Parse one ``--inject-fault`` spec.

    ``W@S`` is a simulated :class:`CrashEvent` (any backend);
    ``kill:W@S`` / ``hang:W@S`` are :class:`RealFault` process faults
    (mp backend only — SIGKILL / sleep-past-deadline), and
    ``netsplit:W@S`` / ``slowlink:W@S`` are real network faults
    (mp backend with ``--transport tcp`` only)."""
    if ":" in spec:
        kind, _, rest = spec.partition(":")
        if kind not in REAL_FAULT_KINDS:
            raise ValueError(
                f"invalid fault spec '{spec}': unknown kind '{kind}' "
                "(expected WORKER@STEP, or one of "
                + ", ".join(f"{k}:WORKER@STEP" for k in REAL_FAULT_KINDS)
                + ")"
            )
        try:
            crash = parse_crash(rest)
        except ValueError:
            raise ValueError(
                f"invalid fault spec '{spec}': expected {kind}:WORKER@STEP, "
                f"e.g. {kind}:1@5"
            ) from None
        return RealFault(kind, crash.worker, crash.superstep)
    return parse_crash(spec)


@dataclass(frozen=True)
class FaultPlan:
    """Everything about a run's failure model, fixed up front (deterministic).

    * ``checkpoint_every`` — checkpoint at supersteps 0, k, 2k, …; 0 disables
      periodic checkpoints (an initial superstep-0 checkpoint is still taken
      whenever crashes are scheduled, mirroring the durable job input).
    * ``crashes`` — the injection schedule.
    * ``recovery`` — ``"rollback"`` or ``"confined"`` (see module docstring).
    * ``message_loss_rate`` / ``max_retries`` — probability that one delivery
      attempt of a cross-worker message fails transiently; each failed
      attempt is retried with exponential backoff (1, 2, 4, … simulated
      units) up to ``max_retries`` times and metered in
      ``messages_retried`` / ``retry_backoff_units``.  Delivery ultimately
      succeeds, so results are unaffected — this meters the *cost* of an
      at-least-once network, it does not drop data.
    * ``seed`` — seeds the injector's own RNG, independent of the engine's.
    """

    checkpoint_every: int = 0
    crashes: tuple[CrashEvent, ...] = ()
    recovery: str = "rollback"
    message_loss_rate: float = 0.0
    max_retries: int = 3
    seed: int = 29

    def __post_init__(self):
        if self.recovery not in ("rollback", "confined"):
            raise ValueError(
                f"unknown recovery strategy '{self.recovery}' "
                "(expected 'rollback' or 'confined')"
            )
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if not 0.0 <= self.message_loss_rate < 1.0:
            raise ValueError("message_loss_rate must be in [0, 1)")


class FaultTolerance:
    """Per-run fault-tolerance manager: owns checkpoints, logs, and recovery.

    Create one per execution (it is stateful) and hand it to the engine:
    ``program.run(graph, args, ft=FaultTolerance(plan))``.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._engine: "PregelEngine | None" = None
        self._mreg = None  # engine's metrics registry, picked up at attach()
        self._programs: list[Checkpointable] = []
        #: (superstep, blob) — latest entry is the recovery point.  The blob
        #: is pickled bytes, or a streamed on-disk handle when the engine
        #: runs under a memory budget (see _take_checkpoint).
        self._checkpoints: list[tuple[int, object]] = []
        self._pending = sorted(plan.crashes, key=lambda c: c.superstep)
        self._rng = random.Random(plan.seed)
        #: set by the supervisor: heartbeat-detected failures need a
        #: recovery point even when no crash is *scheduled*, so the initial
        #: superstep-0 checkpoint is forced regardless of ``crashes``.
        self.force_initial_checkpoint = False
        # Confined recovery replays a partition from what the healthy side
        # already knows: the messages delivered each superstep and the
        # master's broadcast map each superstep (keyed by superstep number,
        # pruned back to the latest checkpoint).
        self._outbox_log: dict[int, dict[int, list]] = {}
        self._broadcast_log: dict[int, dict] = {}

    # -- wiring ----------------------------------------------------------

    def attach(self, engine: "PregelEngine") -> None:
        if self._engine is not None:
            raise RuntimeError("a FaultTolerance manager drives exactly one run")
        for crash in self._pending:
            if not 0 <= crash.worker < engine.num_workers:
                raise ValueError(
                    f"fault schedules worker {crash.worker} but the engine "
                    f"has {engine.num_workers} workers"
                )
        self._engine = engine
        self._mreg = getattr(engine, "_mreg", None)

    def register(self, program: Checkpointable) -> None:
        """Add program-owned state to every future checkpoint."""
        self._programs.append(program)

    # -- engine hooks ----------------------------------------------------

    def on_superstep_start(self) -> None:
        """Runs first thing each superstep: checkpoint if due, then inject.

        Checkpoint-before-inject means a crash at a checkpointed superstep
        loses nothing — the snapshot reached durable storage before the
        worker died, exactly the barrier protocol Pregel describes.
        """
        engine = self._engine
        step = engine.superstep
        every = self.plan.checkpoint_every
        due = (every > 0 and step % every == 0) or (
            step == 0 and (self._pending or self.force_initial_checkpoint)
        )
        if due:
            self._take_checkpoint()
        # Re-read the superstep each time: a rollback rewinds it, and any
        # remaining events at the original superstep must then wait for the
        # replay to reach them again.
        while self._pending and self._pending[0].superstep == engine.superstep:
            self._recover(self._pending.pop(0))

    def on_master_done(self) -> None:
        """Log the broadcast map vertices will see this superstep (confined)."""
        if self.plan.recovery == "confined":
            engine = self._engine
            self._broadcast_log[engine.superstep] = dict(engine.globals.broadcast)

    def on_superstep_end(self) -> None:
        """Log the superstep's outgoing messages (confined recovery replay).

        ``outbox_view()`` gives the in-flight ``{dst: msgs}`` map under either
        scheduler (dense mode returns the live dict by reference; frontier
        mode merges its per-worker outbox batches).  After the delivery swap
        the engine only reads the message lists, so the log sees exactly what
        superstep+1 delivered.  A real cluster keeps the same log on the
        healthy workers.
        """
        if self.plan.recovery == "confined":
            engine = self._engine
            self._outbox_log[engine.superstep] = engine.outbox_view()

    def account_delivery(self) -> None:
        """Meter transient delivery failures of one cross-worker message."""
        rate = self.plan.message_loss_rate
        if rate <= 0.0:
            return
        metrics = self._engine.metrics
        attempt = 1
        while attempt <= self.plan.max_retries and self._rng.random() < rate:
            metrics.messages_retried += 1
            metrics.retry_backoff_units += 1 << (attempt - 1)
            attempt += 1

    # -- observability ---------------------------------------------------

    def _tracer(self):
        """The engine's recording tracer, or None.  FT events carry no
        deterministic payload (``det=None``): a faulted run's trace must
        still project to the same deterministic stream as its failure-free
        twin, and checkpoints/crashes/recoveries only happen on the faulted
        side."""
        tracer = self._engine.tracer
        return tracer if tracer is not None and tracer.enabled else None

    # -- checkpointing ---------------------------------------------------

    def _take_checkpoint(self) -> None:
        engine = self._engine
        t0 = time.perf_counter()
        payload = {
            "engine": engine.checkpoint_state(),
            "programs": [p.checkpoint_state() for p in self._programs],
        }
        mem = engine.mem
        if mem is not None and mem.limited:
            # Budgeted run: stream the payload to disk through a bounded
            # window instead of materializing one pickled blob in memory —
            # the serialization cost is metered as checkpoint_peak_bytes
            # and charged against the tightest worker budget.
            blob = mem.write_checkpoint(payload)
            nbytes = blob.size
        else:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            nbytes = len(blob)
        self._checkpoints.append((engine.superstep, blob))
        engine.metrics.checkpoints_taken += 1
        engine.metrics.checkpoint_bytes += nbytes
        if self._mreg is not None:
            self._mreg.counter("ft.checkpoints").inc()
            self._mreg.histogram("ft.checkpoint_bytes").observe(nbytes)
        tracer = self._tracer()
        if tracer is not None:
            tracer.event(
                "ft.checkpoint",
                cat="ft",
                info={
                    "superstep": engine.superstep,
                    "bytes": nbytes,
                    "seconds": time.perf_counter() - t0,
                },
            )
        # Logs before the new recovery point can never be replayed again.
        horizon = engine.superstep - 1
        for log in (self._outbox_log, self._broadcast_log):
            for key in [k for k in log if k < horizon]:
                del log[key]

    # -- recovery --------------------------------------------------------

    def recover_worker(
        self, worker: int, partitions: Sequence[int] | None = None
    ) -> None:
        """Detector-driven recovery: the supervisor detected (rather than
        pre-declared) that ``worker`` died at the current barrier.

        ``partitions`` lists the logical partitions the dead worker was
        *hosting* (after straggler quarantine a worker can host partitions
        other than its own); confined recovery replays each of them.
        ``None`` means the worker hosted only its own partition.
        """
        engine = self._engine
        self._recover(
            CrashEvent(worker, engine.superstep),
            partitions=partitions,
            source="detected",
        )

    def _recover(
        self,
        crash: CrashEvent,
        partitions: Sequence[int] | None = None,
        source: str = "scheduled",
    ) -> None:
        engine = self._engine
        if not self._checkpoints:
            raise RuntimeError(
                f"worker {crash.worker} crashed at superstep {crash.superstep} "
                "with no checkpoint to recover from"
            )
        metrics = engine.metrics
        metrics.faults_injected += 1
        ckpt_step, blob = self._checkpoints[-1]
        lost = engine.superstep - ckpt_step
        metrics.lost_supersteps += lost
        if self._mreg is not None:
            self._mreg.counter("ft.crashes").inc()
            self._mreg.counter("ft.lost_supersteps").inc(lost)
        tracer = self._tracer()
        if tracer is not None:
            tracer.event(
                "ft.crash",
                cat="ft",
                info={
                    "worker": crash.worker,
                    "superstep": crash.superstep,
                    "checkpoint_superstep": ckpt_step,
                    "lost_supersteps": lost,
                    "source": source,
                },
            )
        t0 = time.perf_counter()
        replay_before = metrics.recovery_replay_work
        payload = pickle.loads(blob) if isinstance(blob, bytes) else blob.load()
        if self.plan.recovery == "rollback":
            engine.restore_state(payload["engine"])
            for program, state in zip(self._programs, payload["programs"]):
                program.restore_state(state)
            # Every partition re-executes the lost supersteps.
            metrics.recovery_replay_work += lost * engine.graph.num_nodes
        else:
            for partition in (
                partitions if partitions is not None else (crash.worker,)
            ):
                self._confined_recover(partition, ckpt_step, payload)
        if self._mreg is not None:
            self._mreg.counter("ft.recoveries", strategy=self.plan.recovery).inc()
            self._mreg.counter("ft.replay_work").inc(
                metrics.recovery_replay_work - replay_before
            )
        if tracer is not None:
            tracer.event(
                "ft.recovery",
                cat="ft",
                info={
                    "strategy": self.plan.recovery,
                    "worker": crash.worker,
                    "from_superstep": ckpt_step,
                    "replay_work": metrics.recovery_replay_work - replay_before,
                    "seconds": time.perf_counter() - t0,
                    "source": source,
                },
            )

    def _confined_recover(self, worker: int, ckpt_step: int, payload: dict) -> None:
        """Recompute only the failed partition, feeding it logged traffic.

        Healthy partitions keep their (current) state; the metrics ledger —
        which lives on the master — is never rolled back.  The failed
        worker's vertices are restored to the checkpoint slice and stepped
        forward through the lost supersteps with:

        * inboxes rebuilt from the outbox logs (checkpointed in-flight
          messages for the first replayed superstep);
        * the broadcast map each superstep swapped to its logged value;
        * sends and global puts suppressed — their effects already reached
          the healthy side during the original execution (and the failed
          partition's own regenerated sends are, by determinism, exactly the
          logged ones it is being fed).
        """
        engine = self._engine
        worker_of = engine._worker_of
        vids = [v for v in range(engine.graph.num_nodes) if worker_of[v] == worker]
        engine.restore_state(payload["engine"], vertices=vids)
        for program, state in zip(self._programs, payload["programs"]):
            program.restore_state(state, vertices=vids)

        crash_step = engine.superstep
        ckpt_outbox = payload["engine"]["outbox"]
        voted = engine._voted
        compute = engine._vertex_compute
        saved_broadcast = dict(engine.globals.broadcast)
        broadcast = engine.globals.broadcast
        work = 0
        engine._ft_replaying = True
        try:
            for step in range(ckpt_step, crash_step):
                # Messages delivered at `step` were sent at `step - 1`; the
                # checkpoint carries the in-flight set for its own superstep.
                sent = ckpt_outbox if step == ckpt_step else self._outbox_log.get(step - 1, {})
                inbox = {
                    dst: msgs for dst, msgs in sent.items() if worker_of[dst] == worker
                }
                engine.superstep = step
                broadcast.clear()
                broadcast.update(self._broadcast_log.get(step, {}))
                if voted is not None:
                    for dst in inbox:
                        voted[dst] = 0
                for vid in vids:
                    if voted is not None and voted[vid]:
                        continue
                    engine._current_vertex = vid
                    compute(engine, vid, inbox.get(vid, ()))
                    work += 1
        finally:
            engine._ft_replaying = False
            engine._current_vertex = -1
            engine.superstep = crash_step
            broadcast.clear()
            broadcast.update(saved_broadcast)
        engine.metrics.recovery_replay_work += work
