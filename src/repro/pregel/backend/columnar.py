"""Columnar backend: typed property columns + struct-packed message slabs.

Vertex properties live in ``array.array`` columns typed from the program
schema (``array`` indexing returns native Python scalars, so generated
code behaves identically on lists and columns).  Messages are staged as
per-tag *slabs* — a destination-id array plus a packed payload byte
buffer — instead of per-destination tuple lists, and decoded once at the
batched-routing barrier.  Loop-invariant neighbor broadcasts
(``send_nbrs``) stage one CSR slice + ``record * degree`` bytes, turning
the per-message Python send loop into a handful of bulk operations.

Composition policy: the slab fast path engages only when nothing needs to
observe individual staged messages.  Fault-tolerance checkpointing, the
simulated transport, a limited memory budget, a recording tracer, sender
combiners, and vote-to-halt all fall back to the simulator's tuple
staging — same typed columns, same metered quantities, same results —
so every robustness feature keeps working on this backend.  Metering is
identical either way: ``message_size`` is the schema wire size, so
``message_bytes`` always equals the actual slab payload bytes.
"""

from __future__ import annotations

from array import array
from typing import Callable

import numpy as np

from ..graph import Graph
from ..runtime import PregelEngine, _NO_MESSAGES
from .base import ExecutionBackend
from .codec import MessageCodec


def build_typed_columns(schema, fields: dict[str, list]) -> dict:
    """Convert list columns to ``array.array`` columns per the schema.

    ``_in_nbrs`` (list-of-lists from the Incoming-Neighbors prologue) and
    any column whose initial values do not fit the scheduled typecode
    (e.g. a float-valued property handed to an Int field, which the
    simulator happily stores) keep a representation that can hold them.
    """
    out: dict = {}
    for name, values in fields.items():
        code = schema.columns.get(name)
        if code is None:
            out[name] = values  # _in_nbrs and friends: not a scalar column
            continue
        column = None
        start = {"b": 0, "q": 1, "d": 2}[code]
        for tc in ("b", "q", "d")[start:]:
            try:
                column = array(tc, values)
                break
            except (TypeError, OverflowError):
                continue
        out[name] = values if column is None else column
    return out


class ColumnarEngine(PregelEngine):
    """PregelEngine whose staged messages are typed slabs.

    The run loop, scheduling, metering, and every hook are inherited; only
    the staging representation changes, behind ``_enqueue`` (the already
    swappable per-send dispatch) and the ``_deliver_batched`` barrier hook.
    """

    def __init__(self, graph: Graph, *, schema=None, **engine_opts):
        requested = engine_opts.get("scheduling", "frontier")
        if requested not in ("frontier", "dense"):
            raise ValueError(
                f"unknown scheduling '{requested}' (expected 'frontier' or 'dense')"
            )
        # Slab staging *is* batched routing; a dense-scheduling request
        # only changes which delivery code would run, and the two are
        # parity-identical, so the engine always runs the batched path.
        engine_opts["scheduling"] = "frontier"
        super().__init__(graph, **engine_opts)
        self.scheduling = requested
        self.schema = schema
        self.metrics.backend = "columnar"
        #: (phase state, tag) -> vectorized bulk receive handler; installed
        #: by the code generator, consulted only on the slab fast path.
        self._bulk_receivers: dict = {}
        tracing = self.tracer is not None and self.tracer.enabled
        self._slab_active = (
            schema is not None
            and not self._combiners
            and self._voted is None
            and self.ft is None
            and self._transport is None
            and not self._mem_limited
            and not tracing
        )
        if not self._slab_active:
            return
        if self._mreg is not None:
            self._m_slab_flushes = self._mreg.counter("columnar.slab_flushes")
            self._m_slab_records = self._mreg.counter("columnar.slab_records")
            self._m_bulk_records = self._mreg.counter("columnar.bulk_records")
            self._m_scalar_records = self._mreg.counter("columnar.scalar_records")
        self._codec = MessageCodec(schema)
        ntags = (max(schema.tags) + 1) if schema.tags else 0
        #: per-tag staging: interleave-ordered destination chunks (numpy
        #: CSR slices and flushed scalar-send runs) + packed payload bytes.
        self._slab_singles: list[list[int]] = [[] for _ in range(ntags)]
        self._slab_chunks: list[list] = [[] for _ in range(ntags)]
        self._slab_payloads: list[bytearray] = [bytearray() for _ in range(ntags)]
        self._np_out_tgt = np.asarray(graph.out_targets, dtype=np.int32)
        if isinstance(self._worker_of, bytes):
            owner = np.frombuffer(self._worker_of, dtype=np.uint8)
        else:  # >256 workers: the placement table is a plain int list
            owner = np.asarray(self._worker_of, dtype=np.int64)
        self._nbr_owner = owner[self._np_out_tgt]
        # Per-vertex cross-worker neighbor counts, precomputed in one
        # vectorized pass so the per-send hot path stays numpy-free (a
        # per-call ``owners == w`` comparison costs microseconds).
        n = graph.num_nodes
        degrees = np.diff(np.asarray(graph.out_offsets, dtype=np.int64))
        src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        same = self._nbr_owner == np.repeat(owner, degrees)
        self._cross_nbrs = (degrees - np.bincount(src[same], minlength=n)).tolist()
        self._enqueue = self._slab_enqueue  # type: ignore[method-assign]

    def install_bulk_receivers(self, handlers: dict) -> None:
        """Register vectorized receive handlers keyed by (state, tag).

        A registered handler consumes a whole per-tag slab at the delivery
        barrier — the tag's messages then never reach per-vertex inbox
        slots, and the scalar receive loop (tag-filtered) sees none of
        them, so effects are applied exactly once.  Only honored while the
        slab fast path is active; fallback staging keeps scalar semantics.
        """
        if self._slab_active:
            self._bulk_receivers = handlers
            # Backend provenance for RunMetrics.summary(): which receive
            # phases actually have a vectorized path on this run.
            self.metrics.vectorized_phases = sorted(
                {f"phase{state}" for state, _tag in handlers}
            )

    # -- staging --------------------------------------------------------

    def _slab_enqueue(self, dst: int, msg: tuple) -> None:
        # Scalar sends (random writes, per-edge-property payloads) append
        # to the pending singles run; metering already happened in send().
        tag = msg[0]
        self._slab_singles[tag].append(dst)
        self._slab_payloads[tag] += self._codec.pack[tag](msg)

    def send_nbrs(self, vid: int, msg: tuple) -> None:
        if not self._slab_active:
            PregelEngine.send_nbrs(self, vid, msg)
            return
        if self._ft_replaying:
            return
        graph = self.graph
        s = graph.out_offsets[vid]
        e = graph.out_offsets[vid + 1]
        deg = e - s
        if deg == 0:
            return
        tag = msg[0]
        singles = self._slab_singles[tag]
        if singles:
            self._slab_chunks[tag].append(np.asarray(singles, dtype=np.int32))
            singles.clear()
        self._slab_chunks[tag].append(self._np_out_tgt[s:e])
        self._slab_payloads[tag] += self._codec.pack[tag](msg) * deg
        m = self.metrics
        size = self._codec.sizes[tag]
        sender_worker = self._worker_of[self._current_vertex]
        m.messages += deg
        m.message_bytes += size * deg
        m.worker_sent[sender_worker] += deg
        cross = self._cross_nbrs[vid]
        if cross:
            m.net_messages += cross
            m.net_bytes += size * cross
        if self._track_makespan:
            step_work = self._step_work
            step_work[sender_worker] += deg
            owners = self._nbr_owner[s:e]
            for w, c in enumerate(np.bincount(owners, minlength=self.num_workers)):
                step_work[w] += int(c)

    def send_list(self, dsts: list, msg: tuple) -> None:
        if not self._slab_active:
            PregelEngine.send_list(self, dsts, msg)
            return
        if self._ft_replaying or not dsts:
            return
        n = len(dsts)
        tag = msg[0]
        self._slab_singles[tag].extend(dsts)
        self._slab_payloads[tag] += self._codec.pack[tag](msg) * n
        m = self.metrics
        size = self._codec.sizes[tag]
        worker_of = self._worker_of
        sender_worker = worker_of[self._current_vertex]
        m.messages += n
        m.message_bytes += size * n
        m.worker_sent[sender_worker] += n
        cross = 0
        for dst in dsts:
            if worker_of[dst] != sender_worker:
                cross += 1
        if cross:
            m.net_messages += cross
            m.net_bytes += size * cross
        if self._track_makespan:
            step_work = self._step_work
            step_work[sender_worker] += n
            for dst in dsts:
                step_work[worker_of[dst]] += 1

    # -- barrier --------------------------------------------------------

    def _deliver_batched(self, mem, mem_limited, transport) -> None:
        if not self._slab_active:
            super()._deliver_batched(mem, mem_limited, transport)
            return
        touched = self._touched
        touched.clear()
        slots = self._inbox_slots
        receiving = touched.append
        no_messages = _NO_MESSAGES
        metered = self._mreg is not None
        for tag in self._codec.tag_ids:
            singles = self._slab_singles[tag]
            chunks = self._slab_chunks[tag]
            if singles:
                chunks.append(np.asarray(singles, dtype=np.int32))
                singles.clear()
            if not chunks:
                continue
            dsts = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            self._slab_chunks[tag] = []
            payload = bytes(self._slab_payloads[tag])
            self._slab_payloads[tag] = bytearray()
            if metered:
                self._m_slab_flushes.inc()
                self._m_slab_records.inc(len(dsts))
            if self._bulk_receivers:
                # The master has already broadcast this superstep's state,
                # so the handler keyed by (state, tag) is exactly the
                # receive loop the vertex phase would run on these records.
                handler = self._bulk_receivers.get(
                    (self.globals.broadcast.get("_state"), tag)
                )
                if handler is not None:
                    handler(dsts, payload, len(dsts))
                    if metered:
                        self._m_bulk_records.inc(len(dsts))
                    continue
            if metered:
                self._m_scalar_records.inc(len(dsts))
            records = self._codec.unpack[tag](payload, len(dsts))
            # Group by receiver with one stable sort: per-receiver order
            # within a tag stays global send order, and receive code
            # consumes messages through tag-filtered loops, so grouping by
            # tag is invisible.  Bucket fills become list slices (C-speed)
            # instead of 2M Python-level appends.
            order = np.argsort(dsts, kind="stable")
            sorted_dsts = dsts[order]
            sorted_recs = [records[i] for i in order.tolist()]
            cuts = np.flatnonzero(sorted_dsts[1:] != sorted_dsts[:-1]) + 1
            starts = [0, *cuts.tolist()]
            ends = [*cuts.tolist(), len(sorted_recs)]
            for dst, a, b in zip(sorted_dsts[starts].tolist(), starts, ends):
                bucket = slots[dst]
                if bucket is no_messages:
                    slots[dst] = sorted_recs[a:b]
                    receiving(dst)
                else:
                    bucket.extend(sorted_recs[a:b])


class ColumnarBackend(ExecutionBackend):
    name = "columnar"
    supports = {
        "ft": "fallback",
        "net": "fallback",
        "mem": "fallback",
        "supervisor": True,
        "tracer": "fallback",
        "combiners": "fallback",
        "voting": "fallback",
        "track_makespan": True,
        "range_partitioning": True,
    }

    def build_columns(
        self, schema, graph: Graph, fields: dict[str, list], args: dict
    ) -> dict:
        return build_typed_columns(schema, fields)

    def create_engine(
        self,
        graph: Graph,
        *,
        master_compute: Callable,
        message_size: Callable[[tuple], int],
        schema,
        engine_opts: dict,
    ) -> ColumnarEngine:
        return ColumnarEngine(
            graph,
            schema=schema,
            vertex_compute=None,  # type: ignore[arg-type]
            master_compute=master_compute,
            message_size=message_size,
            **engine_opts,
        )

    def column_values(self, column) -> list:
        return column.tolist() if isinstance(column, array) else column
