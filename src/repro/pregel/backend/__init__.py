"""Pluggable execution backends for compiled Pregel programs.

``sim`` is the dict-based simulator (default, parity oracle), ``columnar``
stores vertex properties in typed arrays and stages messages as packed
struct slabs, and ``mp`` runs real worker processes that exchange those
slabs through shared memory.  All backends are observationally identical
on ``RunMetrics.parity_key()`` and program outputs; select one with
``CompiledProgram.make_engine(backend=...)`` or ``--backend`` on the CLI.
"""

from __future__ import annotations

from .base import BackendUnsupported, ExecutionBackend

#: registry keys, in documentation order (sim first: it is the default).
BACKENDS = ("sim", "columnar", "mp")


def get_backend(backend) -> ExecutionBackend:
    """Resolve a backend name (or pass through an instance) to a backend.

    Imports lazily so selecting ``sim`` never pays for numpy-heavy
    modules, and raises ``ValueError`` — a usage error, exit code 2 on the
    CLI — for unknown names.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend == "sim" or backend is None:
        from .sim import SimBackend

        return SimBackend()
    if backend == "columnar":
        from .columnar import ColumnarBackend

        return ColumnarBackend()
    if backend == "mp":
        from .mp import MPBackend

        return MPBackend()
    raise ValueError(
        f"unknown backend {backend!r} (expected one of {', '.join(BACKENDS)})"
    )


__all__ = [
    "BACKENDS",
    "BackendUnsupported",
    "ExecutionBackend",
    "get_backend",
]
