"""Multiprocessing backend: real worker processes + shared-memory slabs.

The simulator *models* ``num_workers`` machines inside one process; this
backend makes them real: one forked OS process per worker, each computing
its hash partition of the vertices every superstep, exchanging the
columnar backend's typed message slabs through ``multiprocessing.shared_memory``
segments, and synchronizing at the same batched-routing barrier — here an
actual parent-coordinated barrier rather than a simulated one.

Determinism (the whole point of the parity contract) is preserved by
order-reconstructing merges at the parent barrier:

* every slab record carries its **sender id**; a receiving worker merges
  the incoming per-source slabs with a stable sort on sender, which
  reconstructs the simulator's per-receiver message order exactly (global
  send order = ascending sender id, since workers scan their partitions in
  ascending order and partitions interleave);
* vertex **global-object puts** ship to the parent as ``(vid, value)``
  streams and are re-folded sequentially in ascending-vid order, so even
  non-associative float reductions (a PageRank error sum) come out
  bit-identical to the single-process fold;
* **combiners** fold per-process at the sender (each worker keeps one slot
  per ``(dst, tag)``, stamped with the vid of the slot's *first* send);
  the parent merges all workers' slots with a stable sort on that birth
  vid, which reconstructs the simulator's combiner-table insertion order
  (one vid belongs to one worker, so ties stay in per-worker — i.e.
  program — order), then meters and routes the folded payloads exactly
  like the simulator's barrier flush;
* **fault tolerance** checkpoints from the parent: ``checkpoint_state()``
  first pulls every worker's live partition columns back into the parent's
  columns (so the registered ``ColumnState`` sees fresh data), and the
  in-flight message set is the parent's own decode of the last exchange's
  slabs.  Recovery restores parent-side state — confined replay runs *in
  the parent* over the restored columns with sends/puts suppressed — and
  then **re-forks** the affected worker processes from the parent, which
  inherit the recovered columns copy-on-write and are re-seeded with their
  partition's in-flight inbox;
* **tracing** buffers per-process counters (computed, seconds, staged
  bytes) in each worker's barrier reply; the parent merges them by
  worker id into the same deterministic superstep records the simulator
  emits, so ``deterministic_jsonl`` projects identically across backends;
* **vote-to-halt** keeps one authoritative vote bitset in the parent:
  each forked worker inherits it copy-on-write, skips its voted vertices,
  clears votes for every vertex it delivers to, and ships its partition's
  slice back in the exchange reply; the parent folds the slices and
  applies the simulator's dense halt rule (no deliveries + all voted) at
  the master boundary;
* **supervision and memory budgets** run against *real* processes: every
  barrier reply is a liveness ping feeding the phi-accrual
  :class:`~repro.pregel.supervisor.Supervisor` on wall time, and each
  reply reports the worker's byte accounting, charged parent-side against
  the :class:`~repro.pregel.mem.MemPlan` (over-budget degrades to
  ``halt_reason="out_of_memory"`` with the structured report, exactly the
  simulator's contract).

Failure handling is real, not simulated: the parent's barrier is a
**deadline-based exchange** — every reply is awaited with
``conn.poll`` ticks against a monotonic deadline while watching the
process sentinel, so a SIGKILL'd worker is detected in milliseconds (EOF
/ dead sentinel) and a hung worker within ``exchange_deadline`` seconds,
never a deadlock.  Detections escalate through
:meth:`~repro.pregel.ft.FaultTolerance.recover_worker` — checkpoint
restore, confined replay in the parent, re-fork of the dead process —
with capped restarts degrading to ``halt_reason="unrecoverable"``.
``--inject-fault kill:W@S`` (real SIGKILL) and ``hang:W@S`` (sleep past
the deadline) exercise the path; shared-memory segments and bound
sockets are tracked module-wide and released on every exit path
(``finally`` + ``atexit``).

**Transports.** ``transport_mode="shm"`` (the default) carries every
slab through the shared-memory segments.  ``"tcp"`` adds a real network
data plane (:mod:`repro.pregel.backend.tcp`): each worker owns a
loopback listening socket bound in the parent before the fork, and the
*cross-worker* slabs travel as length-prefixed CRC-framed messages with
per-destination sequence numbers, acks, bounded retransmit with
exponential backoff, and dedup — the :mod:`repro.pregel.net` delivery
discipline against real kernel buffers.  Slabs are still written to the
segments in tcp mode (the parent's checkpoint decode, makespan
accounting, and delivery counts read them there), so shm and tcp runs
are bit-identical on ``parity_key()`` and outputs by construction; the
receivers' *inboxes*, however, are built from the socket frames, so a
peer that cannot be reached (connection refused / reset / silent past
the per-peer deadline) is a classified real failure: the worker abandons
the exchange, reports ``{peer: cause}`` in its barrier reply, and the
parent folds the reports into a culprit, escalates through
``ft.recover_worker`` and re-seeds the surviving workers' inboxes from
its own slab decode.  ``--inject-fault netsplit:W@S`` (the worker closes
its listening socket mid-exchange) and ``slowlink:W@S`` (the worker
stalls past its peers' deadline) inject real network faults on this
path.

**Partitioning.** ``partitioning="hash"`` (default) interleaves vertex
ids across workers; ``"range"`` assigns contiguous id blocks with the
simulator's exact placement formula.  Both reconstruct the simulator's
per-receiver order from the same stable sender-vid sort — the sim
computes vertices in ascending global vid order whatever the placement,
and a sender vid sort restores exactly that for interleaved *and*
contiguous partitions.

The backend still refuses — with :class:`BackendUnsupported` — the
simulated transport (real pipes and sockets carry the slabs;
channel-fault modeling would have nothing real to model).
:func:`composition_refusals` exposes the refusal list so the CLI can
validate a composition *before* loading a graph, with identical messages.
"""

from __future__ import annotations

import atexit
import os
import random
import signal
import time
import traceback
from array import array
from typing import Any, Callable

import numpy as np

from ..ft import NETWORK_FAULT_KINDS, REAL_FAULT_KINDS, RealFault
from ..globalmap import GlobalObjectMap
from ..graph import Graph
from ..mem import MemoryExhausted
from ..runtime import VOTING_DISABLED_ERROR, PregelEngine, RunMetrics
from .base import BackendUnsupported, ExecutionBackend
from .codec import MessageCodec
from .columnar import build_typed_columns

_EMPTY: tuple = ()

#: granularity of the deadline-based receive loop: how often the parent
#: re-checks the worker's sentinel while waiting for a barrier reply.
_POLL_TICK = 0.05

#: every live shared-memory segment created by any MPEngine in this
#: process, by name — the atexit backstop unlinks whatever an aborted or
#: interrupted run left behind (``/dev/shm`` files outlive the process).
_LIVE_SEGMENTS: dict[str, Any] = {}
_CLEANUP_REGISTERED = False


def _track_segment(seg) -> None:
    global _CLEANUP_REGISTERED
    _LIVE_SEGMENTS[seg.name] = seg
    if not _CLEANUP_REGISTERED:
        atexit.register(_cleanup_segments)
        _CLEANUP_REGISTERED = True


def _release_segment(seg) -> None:
    _LIVE_SEGMENTS.pop(seg.name, None)
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:
        pass


def _cleanup_segments() -> None:
    for seg in list(_LIVE_SEGMENTS.values()):
        _release_segment(seg)


#: every parent-owned bound socket (tcp transport listeners) alive in
#: this process, by id — like the segments, the atexit backstop closes
#: whatever an aborted run left bound.  A listener is tracked from bind
#: until the parent closes its copy right after the owning worker forks.
_LIVE_SOCKETS: dict[int, Any] = {}
_SOCKET_CLEANUP_REGISTERED = False


def _track_socket(sock) -> None:
    global _SOCKET_CLEANUP_REGISTERED
    _LIVE_SOCKETS[id(sock)] = sock
    if not _SOCKET_CLEANUP_REGISTERED:
        atexit.register(_cleanup_sockets)
        _SOCKET_CLEANUP_REGISTERED = True


def _release_socket(sock) -> None:
    _LIVE_SOCKETS.pop(id(sock), None)
    try:
        sock.close()
    except OSError:
        pass


def _cleanup_sockets() -> None:
    for sock in list(_LIVE_SOCKETS.values()):
        _release_socket(sock)


class _WorkerDead(Exception):
    """A worker failed its exchange deadline: the process died (EOF, dead
    sentinel) or went silent past the deadline.  Internal — the engine
    either escalates into recovery or surfaces a RuntimeError."""

    def __init__(self, wid: int, cause: str):
        super().__init__(wid, cause)
        self.wid = wid
        self.cause = cause  # "died" | "timeout"

    def describe(self) -> str:
        return (
            "missed the exchange deadline"
            if self.cause == "timeout"
            else "died unexpectedly"
        )

#: absolute ceiling on one worker's auto-sized shared-memory segment; a
#: superstep whose slabs outgrow it spills through the inline-pipe
#: overflow path, which is correctness-neutral (just slower).
_SLAB_CEILING = 256 << 20


def mp_available() -> bool:
    """True when the platform can run this backend (fork + shared memory).

    Importability alone is not enough: hosts without a usable ``/dev/shm``
    import ``shared_memory`` fine and then fail at segment creation, mid
    superstep.  Probe with a tiny create/unlink round-trip so the failure
    becomes an up-front :class:`BackendUnsupported` refusal instead.
    """
    try:
        import multiprocessing
        from multiprocessing import shared_memory

        if "fork" not in multiprocessing.get_all_start_methods():
            return False
        probe = shared_memory.SharedMemory(create=True, size=16)
        probe.close()
        probe.unlink()
        return True
    except (ImportError, OSError):
        return False


def clamp_slab_bytes(requested: int, plan=None) -> int:
    """Cap an auto-sized per-worker slab reservation.

    Unbounded, the ``traffic * record`` heuristic can reserve multi-GB
    segments on dense graphs.  The cap is the tightest configured
    per-worker budget of a PR 5 :class:`~repro.pregel.mem.MemPlan` when
    one is given, else the absolute ceiling; the floor stays at 1 MiB (a
    smaller segment is all directory, no slab).  Capacity never affects
    results — overflow travels inline over the pipes.
    """
    cap = _SLAB_CEILING
    if plan is not None and getattr(plan, "limited", False):
        finite = [budget for _worker, budget in plan.worker_budgets]
        if plan.budget_bytes:
            finite.append(plan.budget_bytes)
        if finite:
            cap = min(cap, min(finite))
    return max(1 << 20, min(requested, cap))


def composition_refusals(
    *,
    use_voting: bool = False,
    combiners=None,
    ft=None,
    transport=None,
    supervisor=None,
    mem=None,
    tracer=None,
    track_makespan: bool = False,
    partitioning: str = "hash",
) -> list[str]:
    """Refusal messages for running a composition on the mp backend.

    Empty means the composition is supported.  Shared by
    :class:`MPEngine` construction and the CLI's pre-load validation, so
    a refused flag combination fails with the identical message whether
    it is caught in milliseconds (CLI, before the graph loads) or at
    engine construction.  ``combiners``, ``ft``, ``tracer``,
    ``use_voting``, ``supervisor``, ``mem``, ``track_makespan``, and
    ``partitioning`` are accepted for signature stability: those
    compositions are supported (range partitioning runs contiguous vid
    blocks with the simulator's placement formula).
    """
    # lifted compositions — no longer refused
    del combiners, ft, tracer, use_voting, supervisor, mem, track_makespan
    del partitioning
    refusals = []

    def refuse(feature: str, hint: str) -> None:
        refusals.append(
            f"the mp backend does not support {feature}: {hint} "
            "(run with --backend sim or columnar)"
        )

    if transport is not None:
        refuse(
            "the simulated transport",
            "real pipes and sockets carry the slabs — --transport tcp "
            "runs a real network instead",
        )
    return refusals


class _TagStage:
    """Outgoing messages for one (destination worker, tag): a destination
    array, sender run-lengths, and the packed payload slab."""

    __slots__ = ("dsts", "senders", "counts", "payload")

    def __init__(self):
        self.dsts = array("i")
        self.senders: list[int] = []
        self.counts: list[int] = []
        self.payload = bytearray()


class MPEngine:
    """Parent-side coordinator: runs the master, merges global puts and
    combiner slots, drives the worker barrier, and owns checkpointing.
    API-compatible with PregelEngine where the generated master, the
    fault-tolerance manager, and the compiled-program wiring need it."""

    def __init__(
        self,
        graph: Graph,
        *,
        schema,
        vertex_compute: Callable | None = None,
        master_compute: Callable | None = None,
        message_size: Callable[[tuple], int] | None = None,
        num_workers: int = 4,
        seed: int = 17,
        max_supersteps: int = 1_000_000,
        use_voting: bool = False,
        record_per_superstep: bool = False,
        combiners: dict | None = None,
        partitioning: str = "hash",
        track_makespan: bool = False,
        ft=None,
        scheduling: str = "frontier",
        frontier_threshold: float = 0.25,
        tracer=None,
        transport=None,
        supervisor=None,
        mem=None,
        metrics_registry=None,
        mp_slab_bytes: int | None = None,
        real_faults=(),
        exchange_deadline: float = 30.0,
        max_restarts: int = 3,
        transport_mode: str = "shm",
    ):
        refusals = composition_refusals(
            use_voting=use_voting,
            combiners=combiners,
            ft=ft,
            transport=transport,
            supervisor=supervisor,
            mem=mem,
            tracer=tracer,
            track_makespan=track_makespan,
            partitioning=partitioning,
        )
        if refusals:
            raise BackendUnsupported(refusals[0])
        if scheduling not in ("frontier", "dense"):
            raise ValueError(
                f"unknown scheduling '{scheduling}' (expected 'frontier' or 'dense')"
            )
        if schema is None:
            raise BackendUnsupported(
                "the mp backend needs a program schema (compiled programs only)"
            )
        if not mp_available():
            raise BackendUnsupported(
                "the mp backend needs fork start-method and "
                "multiprocessing.shared_memory, unavailable on this platform"
            )
        if exchange_deadline <= 0:
            raise ValueError("exchange_deadline must be > 0")
        if transport_mode not in ("shm", "tcp"):
            raise ValueError(
                f"unknown transport '{transport_mode}' (expected 'shm' or 'tcp')"
            )
        if partitioning not in ("hash", "range"):
            raise ValueError(f"unknown partitioning '{partitioning}'")
        real_faults = tuple(real_faults or ())
        for fault in real_faults:
            if fault.kind not in REAL_FAULT_KINDS:
                raise ValueError(f"unknown real fault kind '{fault.kind}'")
            if fault.kind in NETWORK_FAULT_KINDS and transport_mode != "tcp":
                raise ValueError(
                    f"'{fault.kind}:' faults are network faults — they need "
                    "the real socket transport (run with --transport tcp)"
                )
            if not 0 <= fault.worker < max(1, num_workers):
                raise ValueError(
                    f"fault targets worker {fault.worker} but the engine "
                    f"has {max(1, num_workers)} workers"
                )
        if real_faults and ft is None:
            raise ValueError(
                "real process faults (kill:/hang:/netsplit:/slowlink:) "
                "require fault tolerance: pass ft=... / --checkpoint-every "
                "so recovery has a checkpoint to restore"
            )
        self.graph = graph
        self.schema = schema
        self.scheduling = scheduling
        self.num_workers = max(1, num_workers)
        self.rng = random.Random(seed)
        self.globals = GlobalObjectMap()
        self.metrics = RunMetrics(backend="mp")
        self.metrics.worker_sent = [0] * self.num_workers
        self.superstep = 0
        self.result: Any = None
        self.partitioning = partitioning
        self.transport_mode = transport_mode
        self._halt = False
        self._vertex_compute = vertex_compute
        self._master_compute = master_compute
        self._message_size = message_size
        self._max_supersteps = max_supersteps
        self._record_per_superstep = record_per_superstep
        self._combiners = combiners or {}
        self._codec = MessageCodec(schema)
        w = self.num_workers
        n = graph.num_nodes
        # Vertex -> worker placement, the simulator's exact formulas:
        # 'hash' interleaves ids round-robin, 'range' owns contiguous
        # blocks.  ``_part_slices[wid]`` is the matching column/bitset
        # slice, so strided and contiguous partitions share every
        # gather/scatter/vote path below.
        if partitioning == "hash":
            self._worker_of = bytes(v % w for v in range(n)) if w <= 256 else [
                v % w for v in range(n)
            ]
            self._part_slices = [slice(wid, None, w) for wid in range(w)]
        else:
            placed = [min(v * w // max(1, n), w - 1) for v in range(n)]
            self._worker_of = bytes(placed) if w <= 256 else placed
            bounds = [0] * (w + 1)
            for owner in placed:
                bounds[owner + 1] += 1
            for wid in range(w):
                bounds[wid + 1] += bounds[wid]
            self._part_slices = [
                slice(bounds[wid], bounds[wid + 1]) for wid in range(w)
            ]
        self._columns: dict[str, Any] = {}
        self.tracer = tracer
        # Metrics registry: the parent owns the authoritative registry;
        # each worker process builds its own post-fork and ships snapshots
        # back in its barrier replies, merged parent-side (counters sum,
        # histograms bucket-sum, gauges max) — set before ft.attach() so
        # the FT manager picks up its instruments.
        self.metrics_registry = metrics_registry
        self._mreg = (
            metrics_registry
            if metrics_registry is not None and metrics_registry.enabled
            else None
        )
        self.ft = ft
        self._use_voting = use_voting
        # One authoritative vote bitset in the parent: forked workers
        # inherit it copy-on-write, mutate their own partition's slice,
        # and ship that slice back in every exchange reply for the parent
        # to fold (the FT replay also reads/writes this directly).
        self._voted = bytearray(graph.num_nodes) if use_voting else None
        self._delivered = 0
        self._track_makespan = track_makespan
        self._ft_replaying = False
        self._current_vertex = -1
        # real-failure machinery: scheduled process faults, the exchange
        # deadline, deferred detections, and the engine-level restart cap
        # (the Supervisor owns its own cap when one is attached).
        self._real_pending: list[RealFault] = list(real_faults)
        self._exchange_deadline = float(exchange_deadline)
        self._max_restarts = max_restarts
        self._restarts_used = 0
        self._hang_now: dict[int, float] = {}
        self._net_now: dict[int, str] = {}
        self._dead_pending: list[tuple[int, str]] = []
        self._abort_reason: str | None = None
        # tcp transport plumbing: parent-bound listeners (children inherit
        # across the fork; the parent closes its copy right after each
        # fork), the port map, and per-worker fork epochs (bumped on every
        # re-fork so receivers reset that sender's sequence stream).
        self._listeners: list = []
        self._ports: list[int] = []
        self._epochs: list[int] = [0] * w
        #: set when an abandoned tcp exchange discarded live workers'
        #: inboxes: the next _refork() re-seeds every surviving worker
        #: from the parent's slab decode.
        self._reseed_live = False
        #: in-flight messages (sent last superstep, delivered to the live
        #: worker inboxes) as the parent's own decode — checkpoint payloads
        #: and confined-recovery logs read this through outbox_view().
        self._inflight: dict[int, list] = {}
        self._refork_all = False
        self._refork_workers: set[int] = set()
        # live process plumbing (populated by run(), mutated by _refork)
        self._mpctx = None
        self._segments: list = []
        self._conns: list = []
        self._procs: list = []
        self._workers: list[_Worker] = []
        if ft is not None:
            ft.attach(self)
        self.supervisor = supervisor
        if supervisor is not None:
            supervisor.attach(self)  # requires ft — raises sim's message
            # The supervisor's scheduled silent crashes become real
            # SIGKILLs on this backend: same flag, real process death.
            self._real_pending.extend(
                RealFault("kill", crash.worker, crash.superstep)
                for crash in supervisor.plan.silent_crashes
            )
        if self.ft is not None and (self._real_pending or supervisor is not None):
            # A fault can fire at superstep 0, before any periodic
            # checkpoint exists — force one so recovery always has a base.
            self.ft.force_initial_checkpoint = True
        self.mem = mem
        if mem is not None:
            mem.attach(self)
        self._mem_prev_inbox = [0] * w
        if mp_slab_bytes is None:
            per_record = 8 + self.schema.max_message_size()
            traffic = (graph.num_edges * 2) // w + graph.num_nodes
            mp_slab_bytes = clamp_slab_bytes(
                traffic * per_record, mem.plan if mem is not None else None
            )
        self._slab_bytes = mp_slab_bytes

    # -- master-side API (GeneratedMaster's ctx) ------------------------

    def get_agg(self, name: str, default: Any = None) -> Any:
        return self.globals.get_aggregated(name, default)

    def put_broadcast(self, name: str, value: Any) -> None:
        self.globals.put_broadcast(name, value)
        self.metrics.broadcast_values += 1

    def halt(self, result: Any = None) -> None:
        self._halt = True
        if result is not None:
            self.result = result

    def set_result(self, value: Any) -> None:
        self.result = value

    def pick_random_node(self) -> int:
        return self.rng.randrange(self.graph.num_nodes)

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    # -- vertex-side ctx API (confined-recovery replay only) -------------
    #
    # Normal supersteps run the vertex phase in the worker processes; the
    # parent executes generated vertex code only while replaying a failed
    # partition over its restored columns, where every send and put was
    # already delivered during the original execution and is suppressed.

    def send(self, dst: int, msg: tuple) -> None:
        if not self._ft_replaying:
            raise RuntimeError("mp parent runs vertex code only during FT replay")

    def send_nbrs(self, vid: int, msg: tuple) -> None:
        if not self._ft_replaying:
            raise RuntimeError("mp parent runs vertex code only during FT replay")

    def send_list(self, dsts: list, msg: tuple) -> None:
        if not self._ft_replaying:
            raise RuntimeError("mp parent runs vertex code only during FT replay")

    def put_global(self, name: str, op, value) -> None:
        if not self._ft_replaying:
            raise RuntimeError("mp parent runs vertex code only during FT replay")

    def vote_to_halt(self, vid: int) -> None:
        # Votes are *state*, not traffic: unlike sends they are re-applied
        # during replay so the recovered bitset matches the lost one.
        if self._voted is None:
            raise RuntimeError(VOTING_DISABLED_ERROR)
        self._voted[vid] = 1

    def get_global(self, name: str):
        return self.globals.broadcast[name]

    # -- checkpoint / restore (FaultTolerance manager hooks) -------------

    def outbox_view(self) -> dict[int, list]:
        """The in-flight ``{dst: msgs}`` map (parent-side slab decode)."""
        return self._inflight

    def checkpoint_state(self) -> dict:
        """Snapshot at a superstep boundary, sim-shaped.

        The workers own the live partition columns, so the snapshot first
        pulls them back into the parent's columns — the FT manager
        serializes the registered ``ColumnState`` (over those same column
        objects) right after this returns, so it sees fresh data.
        """
        self._sync_columns()
        metrics = self.metrics
        return {
            "superstep": self.superstep,
            "outbox": dict(self._inflight),
            "frontier": None,
            "voted": bytes(self._voted) if self._voted is not None else None,
            "rng": self.rng.getstate(),
            "result": self.result,
            "halt": self._halt,
            "broadcast": dict(self.globals.broadcast),
            "aggregated": dict(self.globals.aggregated),
            "metrics": {
                name: getattr(metrics, name)
                for name in PregelEngine._CHECKPOINTED_METRICS
            },
            "per_superstep_messages": list(metrics.per_superstep_messages),
            "worker_sent": list(metrics.worker_sent),
        }

    def restore_state(self, state: dict, vertices: list[int] | None = None) -> None:
        """Restore a checkpoint payload.

        ``vertices`` selects confined recovery: the manager restores the
        failed partition's columns and replays it in the parent, so the
        engine only needs to remember which worker must be re-forked from
        the recovered parent state.  ``None`` is a full rollback: master
        state, metrics ledger, and the in-flight set rewind to the
        boundary, and *every* worker is re-forked from the restored
        columns before the replay resumes.
        """
        if vertices is not None:
            if self._voted is not None and state["voted"] is not None:
                saved = state["voted"]
                for v in vertices:
                    self._voted[v] = saved[v]
            self._refork_workers.add(self._worker_of[vertices[0]])
            return
        self.superstep = state["superstep"]
        self._inflight = dict(state["outbox"])
        if self._voted is not None and state["voted"] is not None:
            self._voted[:] = state["voted"]
            # The halt check's delivery count rewinds with the timeline:
            # the checkpoint's in-flight set is exactly what the restored
            # superstep consumes.
            self._delivered = sum(len(msgs) for msgs in self._inflight.values())
        self.rng.setstate(state["rng"])
        self.result = state["result"]
        self._halt = state["halt"]
        self.globals.broadcast.clear()
        self.globals.broadcast.update(state["broadcast"])
        self.globals.aggregated = dict(state["aggregated"])
        metrics = self.metrics
        for name, value in state["metrics"].items():
            setattr(metrics, name, value)
        saved_per_superstep = state["per_superstep_messages"]
        if len(saved_per_superstep) > state["superstep"]:
            raise ValueError(
                f"checkpoint at superstep {state['superstep']} carries "
                f"{len(saved_per_superstep)} per-superstep entries — a "
                "checkpoint can never have more entries than completed "
                "supersteps"
            )
        metrics.per_superstep_messages[:] = saved_per_superstep
        if self._record_per_superstep and len(saved_per_superstep) < state["superstep"]:
            metrics.per_superstep_messages.extend(
                [0] * (state["superstep"] - len(saved_per_superstep))
            )
        metrics.worker_sent[:] = state["worker_sent"]
        self._refork_all = True
        # Rollback replay re-runs the dropped supersteps through the
        # re-forked workers; the tracer drops their records so a recovered
        # stream stays identical to a failure-free one.
        if self.tracer is not None:
            self.tracer.on_rollback(self.superstep)

    # -- execution ------------------------------------------------------

    def run(self) -> RunMetrics:
        import multiprocessing
        from multiprocessing import shared_memory

        if self._vertex_compute is None:
            raise RuntimeError("no vertex program attached")
        tracer = self.tracer
        traced = tracer is not None and tracer.enabled
        if traced:
            tracer.event(
                "run.begin",
                cat="engine",
                det={
                    "num_workers": self.num_workers,
                    "num_nodes": self.graph.num_nodes,
                    "num_edges": self.graph.num_edges,
                    "use_voting": self._use_voting,
                    "partitioning": self.partitioning,
                },
                info={
                    "scheduling": self.scheduling,
                    "max_supersteps": self._max_supersteps,
                },
            )
        start = time.perf_counter()
        self._mpctx = ctx = multiprocessing.get_context("fork")
        w = self.num_workers
        halt_reason = "max_supersteps"
        oom = None
        try:
            for _ in range(w):
                seg = shared_memory.SharedMemory(create=True, size=self._slab_bytes)
                self._segments.append(seg)
                _track_segment(seg)
            if self.transport_mode == "tcp":
                # Bind every worker's listener *before* any fork: the full
                # port map is then inherited by every child, and each
                # child closes the siblings' copies in its own _init.
                from . import tcp as tcp_transport

                for _ in range(w):
                    sock = tcp_transport.bind_listener()
                    self._listeners.append(sock)
                    self._ports.append(sock.getsockname()[1])
                    _track_socket(sock)
            self._workers = [
                _Worker(wid, self, self._segments) for wid in range(w)
            ]
            for wid in range(w):
                self._spawn_worker(wid, fresh=True)
            if self.supervisor is not None:
                self.supervisor.start_liveness(time.monotonic())
            try:
                halt_reason = self._coordinate()
            except MemoryExhausted as exc:
                # Same degradation contract as the simulator: the run ends
                # with a structured report, not an exception.
                oom = exc
                halt_reason = "out_of_memory"
                self._current_vertex = -1
            try:
                self._gather_columns()
            except (_WorkerDead, OSError, RuntimeError):
                # An unrecoverable abort can leave dead workers behind;
                # collect what the live ones return and keep the parent's
                # (restored) columns for the rest.
                pass
            for proc in self._procs:
                proc.join(timeout=30)
        except _WorkerDead as exc:
            raise RuntimeError(
                f"mp worker {exc.wid} {exc.describe()} at superstep "
                f"{self.superstep} (no recovery path here)"
            ) from None
        finally:
            for proc in self._procs:
                if proc.is_alive():
                    proc.terminate()
            for conn in self._conns:
                conn.close()
            for seg in self._segments:
                _release_segment(seg)
            for sock in self._listeners:
                if sock is not None:
                    _release_socket(sock)
            if self.mem is not None:
                # Mirrors the simulator's teardown: record the OOM (if any)
                # into the report, then release spill/checkpoint scratch —
                # this path runs on *every* exit, worker death included.
                if oom is not None:
                    self.mem.record_oom(oom)
                self.mem.close()
        if oom is not None and self.supervisor is not None:
            self.supervisor.on_oom(oom)
        m = self.metrics
        m.supersteps = self.superstep
        m.wall_seconds = time.perf_counter() - start
        m.result = self.result
        m.halt_reason = halt_reason
        if self._mreg is not None:
            self._mreg.counter("pregel.runs", det=True, halt_reason=halt_reason).inc()
            self._mreg.histogram("pregel.run_seconds").observe(m.wall_seconds)
            self._mreg.gauge("pregel.num_workers").set_max(self.num_workers)
        if traced:
            tracer.event(
                "run.end",
                cat="engine",
                det={
                    "supersteps": m.supersteps,
                    "messages": m.messages,
                    "message_bytes": m.message_bytes,
                    "net_messages": m.net_messages,
                    "net_bytes": m.net_bytes,
                    "broadcast_values": m.broadcast_values,
                    "worker_sent": list(m.worker_sent),
                    "halt_reason": m.halt_reason,
                    "result": m.result,
                },
                info={"wall_seconds": m.wall_seconds},
            )
        return m

    def _spawn_worker(self, wid: int, *, fresh: bool) -> None:
        """Fork worker ``wid`` from the parent's current state.

        ``fresh=False`` replaces a terminated worker during recovery: the
        new process copy-on-write-inherits the parent's restored/replayed
        columns, and its inbox is re-seeded with its partition's slice of
        the in-flight messages (the healthy workers still hold theirs)."""
        ctx = self._mpctx
        part = None
        if not fresh:
            part = self._seed_part(wid)
            if self.transport_mode == "tcp":
                # The replacement worker needs a live listener: the old
                # one died with the process (or was the netsplit).  Bind a
                # fresh port in the parent pre-fork and bump the worker's
                # epoch so every receiver resets its sequence stream.
                from . import tcp as tcp_transport

                old = self._listeners[wid]
                if old is not None:
                    _release_socket(old)
                sock = tcp_transport.bind_listener()
                _track_socket(sock)
                self._listeners[wid] = sock
                self._ports[wid] = sock.getsockname()[1]
                self._epochs[wid] += 1
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=self._workers[wid].main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        if self.transport_mode == "tcp":
            # The child inherited the listening fd across the fork; close
            # the parent's copy so a worker-side close (the netsplit
            # fault, or a death) really drops the kernel listener and
            # peers see ECONNREFUSED.
            _release_socket(self._listeners[wid])
        if fresh:
            self._conns.append(parent_conn)
            self._procs.append(proc)
        else:
            self._conns[wid] = parent_conn
            self._procs[wid] = proc
            parent_conn.send(("seed", part))

    def _seed_part(self, wid: int) -> dict[int, list]:
        """This worker's slice of the in-flight messages, with the
        matching parent-side vote clears applied.

        The seeded in-flight messages *are* the partition's next
        delivery; a normal exchange clears the receivers' votes
        worker-side, so re-apply those clears here — a re-forked child
        inherits the cleared bitset copy-on-write, and a live re-seeded
        worker applies the same clears in its seed handler."""
        worker_of = self._worker_of
        part = {
            dst: list(msgs)
            for dst, msgs in self._inflight.items()
            if worker_of[dst] == wid
        }
        if self._voted is not None:
            voted = self._voted
            for dst in part:
                voted[dst] = 0
        return part

    def _refork(self) -> None:
        wids = (
            range(self.num_workers) if self._refork_all
            else sorted(self._refork_workers)
        )
        for wid in wids:
            proc = self._procs[wid]
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=10)
            self._conns[wid].close()
            self._spawn_worker(wid, fresh=False)
        for wid in wids:
            try:
                self._recv(wid)  # ("ready",) after the seed
            except _WorkerDead as exc:
                raise RuntimeError(
                    f"mp worker {wid} {exc.describe()} during recovery re-fork"
                ) from None
        if self._reseed_live and not self._refork_all:
            # An abandoned tcp exchange: the surviving workers discarded
            # their partial inboxes, so re-seed them from the parent's own
            # slab decode — the same per-destination lists a successful
            # socket merge would have produced (identical stable sort).
            reforked = set(wids)
            live = [
                wid for wid in range(self.num_workers) if wid not in reforked
            ]
            for wid in live:
                self._send(wid, ("seed", self._seed_part(wid)))
            for wid in live:
                try:
                    self._recv(wid)
                except _WorkerDead as exc:
                    raise RuntimeError(
                        f"mp worker {wid} {exc.describe()} during "
                        "post-exchange re-seed"
                    ) from None
        self._reseed_live = False
        self._refork_all = False
        self._refork_workers.clear()

    def _inject_real_faults(self) -> None:
        """Fire scheduled real process faults for the current superstep:
        ``kill`` SIGKILLs the worker's OS process now, ``hang`` arms a
        sleep past the exchange deadline in this superstep's step command,
        ``netsplit``/``slowlink`` arm a network fault delivered in this
        superstep's exchange command (the worker closes its listener /
        stalls past its peers' deadline mid-exchange).  Fired faults are
        consumed — recovery re-executes superstep numbers, and a fault is
        not re-injected into its own replay (matching simulated
        CrashEvent semantics)."""
        kills: list[int] = []
        if self._real_pending:
            due = [f for f in self._real_pending if f.superstep == self.superstep]
            if due:
                self._real_pending = [
                    f for f in self._real_pending if f.superstep != self.superstep
                ]
                for fault in due:
                    if fault.kind == "kill":
                        kills.append(fault.worker)
                    elif fault.kind == "hang":
                        self._hang_now[fault.worker] = self._exchange_deadline * 4
                    else:
                        self._net_now[fault.worker] = fault.kind
        if self.supervisor is not None:
            # A supervised crash_rate draws real kills per superstep, the
            # plan's seeded RNG deciding — same knob, real process death.
            kills.extend(self.supervisor.draw_real_crashes())
        for wid in dict.fromkeys(kills):
            proc = self._procs[wid]
            if proc.is_alive():
                os.kill(proc.pid, signal.SIGKILL)
                proc.join(timeout=10)

    def _escalate(self, failures: list[tuple[int, str]]) -> bool:
        """Escalate detected worker failures into checkpoint recovery.

        Returns False when the run must abort (restart budget exhausted,
        or no checkpoint to restore) — the caller degrades to
        ``halt_reason="unrecoverable"``; this never raises for a
        recoverable-contract failure and never hangs."""
        now = time.monotonic()
        if self._mreg is not None:
            for _wid, cause in failures:
                self._mreg.counter("mp.exchange_deadline_misses", cause=cause).inc()
        if self.ft is None:
            wid, cause = failures[0]
            raise RuntimeError(
                f"mp worker {wid} "
                f"{'missed the exchange deadline' if cause == 'timeout' else 'died unexpectedly'} "
                f"at superstep {self.superstep} with no fault tolerance "
                "attached (pass ft=... / --checkpoint-every to recover)"
            )
        supervisor = self.supervisor
        for wid, cause in failures:
            try:
                if supervisor is not None:
                    if not supervisor.on_worker_failure(wid, now, cause):
                        self._abort_reason = "unrecoverable"
                        return False
                else:
                    if self._restarts_used >= self._max_restarts:
                        self._abort_reason = "unrecoverable"
                        return False
                    self._restarts_used += 1
                    self.metrics.restarts += 1
                    if self._mreg is not None:
                        self._mreg.counter(
                            "supervisor.restarts", backend="mp"
                        ).inc()
                    self.ft.recover_worker(wid)
            except RuntimeError as exc:
                if "no checkpoint" not in str(exc):
                    raise
                self._abort_reason = "unrecoverable"
                return False
        return True

    def _fold_peer_reports(self, reports: dict[int, dict]) -> None:
        """Fold the workers' tcp exchange failure reports into culprits.

        Connection-level evidence (``refused``/``reset``) is conclusive:
        only a peer whose listener or process is actually gone produces
        it, so those peers are the culprits and timeout-only accusations
        — including a netsplit victim blaming every peer whose frames
        never reached its closed listener — are discarded.  With no
        connection-level evidence (a slowlink: the culprit's connects
        still succeed, its frames just never arrive), the peer accused by
        the most reporters is blamed.  Any report means the reporters
        discarded their partial inboxes, so the next ``_refork()``
        re-seeds every surviving worker from the parent's slab decode."""
        accused: dict[int, dict[str, int]] = {}
        for _reporter, report in reports.items():
            for peer, cause in report.items():
                causes = accused.setdefault(peer, {})
                causes[cause] = causes.get(cause, 0) + 1
        conn_level = {
            peer: ("refused" if "refused" in causes else "reset")
            for peer, causes in accused.items()
            if "refused" in causes or "reset" in causes
        }
        if conn_level:
            blamed = sorted(conn_level.items())
        else:
            peer = max(
                accused.items(), key=lambda kv: (sum(kv[1].values()), -kv[0])
            )[0]
            blamed = [(peer, "timeout")]
        already = {wid for wid, _cause in self._dead_pending}
        for peer, cause in blamed:
            if peer not in already:
                self._dead_pending.append((peer, cause))
                already.add(peer)
        self._reseed_live = True

    def _send(self, wid: int, payload) -> None:
        """Send a command, tolerating an already-dead worker: the failure
        is detected (and escalated) at the next deadline receive."""
        try:
            self._conns[wid].send(payload)
        except (BrokenPipeError, OSError):
            pass

    def _recv(self, wid: int, deadline: float | None = None):
        """Deadline-based exchange receive from worker ``wid``.

        Polls the pipe in short ticks against a monotonic deadline while
        watching the process sentinel, so the parent barrier never blocks
        on a dead or hung worker: EOF / a dead process raises
        :class:`_WorkerDead(cause="died")` within a tick, silence past the
        deadline raises ``cause="timeout"``.  A worker that trapped its
        own exception still surfaces it as a RuntimeError.
        """
        conn = self._conns[wid]
        limit = time.monotonic() + (
            self._exchange_deadline if deadline is None else deadline
        )
        while True:
            remaining = limit - time.monotonic()
            try:
                if conn.poll(min(_POLL_TICK, max(0.0, remaining))):
                    reply = conn.recv()
                    break
            except (EOFError, OSError):
                raise _WorkerDead(wid, "died") from None
            if not self._procs[wid].is_alive():
                # Died between replies: drain anything it flushed before
                # the pipe went down, then report the death.
                try:
                    if conn.poll(0):
                        reply = conn.recv()
                        break
                except (EOFError, OSError):
                    pass
                raise _WorkerDead(wid, "died")
            if remaining <= 0:
                raise _WorkerDead(wid, "timeout")
        if reply[0] == "error":
            raise RuntimeError(f"mp worker failed:\n{reply[1]}")
        return reply

    def _coordinate(self) -> str:
        m = self.metrics
        ft = self.ft
        tracer = self.tracer
        traced = tracer is not None and tracer.enabled
        mreg = self._mreg
        metered = mreg is not None
        instr = traced or metered
        if metered:
            m_steps = mreg.counter("pregel.supersteps", det=True)
            m_messages = mreg.counter("pregel.messages", det=True)
            m_msg_bytes = mreg.counter("pregel.message_bytes", det=True)
            m_net_messages = mreg.counter("pregel.net_messages", det=True)
            m_net_bytes = mreg.counter("pregel.net_bytes", det=True)
            m_broadcasts = mreg.counter("pregel.broadcasts", det=True)
            m_step_s = mreg.histogram("pregel.superstep_seconds")
            m_master_s = mreg.histogram("pregel.phase_seconds", phase="master")
            m_exchange_s = mreg.histogram("pregel.phase_seconds", phase="exchange")
        worker_of = self._worker_of
        sizes = self._codec.sizes
        w = self.num_workers
        supervisor = self.supervisor
        voted = self._voted
        while self.superstep < self._max_supersteps:
            # Failures detected at the previous exchange barrier escalate
            # first: checkpoint recovery runs parent-side and flags the
            # affected workers for re-fork.
            if self._dead_pending:
                dead, self._dead_pending = self._dead_pending, []
                if not self._escalate(dead):
                    return "unrecoverable"
            # Re-fork *before* the FT boundary: a due checkpoint
            # round-trips every worker pipe, so flagged workers must be
            # live again by then.
            if self._refork_all or self._refork_workers:
                self._refork()
            # Fault-tolerance boundary: checkpoint if due (pulling fresh
            # columns from the workers), then inject any scheduled crash.
            # Simulated CrashEvent recovery restores/replays parent-side
            # state and flags the affected workers, re-forked here —
            # before the master runs, exactly the simulator's ordering.
            if ft is not None:
                ft.on_superstep_start()
                if self._refork_all or self._refork_workers:
                    self._refork()
            # Real process faults fire *after* the boundary checkpoint, so
            # a fault at superstep S always has a recovery base <= S.
            self._inject_real_faults()
            if self._abort_reason is not None:
                return self._abort_reason
            if instr:
                # Snapshot the ledger *after* any recovery so the superstep
                # record meters exactly this superstep's deltas.
                t_step0 = time.perf_counter()
                s_messages = m.messages
                s_message_bytes = m.message_bytes
                s_net_messages = m.net_messages
                s_net_bytes = m.net_bytes
                s_broadcasts = m.broadcast_values
                if traced:
                    step_ts = tracer.now()
                    s_worker_sent = list(m.worker_sent)
            # Master phase: sees globals aggregated from the previous
            # superstep — exactly the simulator's ordering.
            if self._master_compute is not None:
                self._master_compute(self)
                if self._halt:
                    return "master_halt"
            if ft is not None:
                ft.on_master_done()
            if metered:
                m_master_s.observe(time.perf_counter() - t_step0)
            # Vote-to-halt termination, the simulator's dense rule at the
            # same boundary: messages delivered at the last exchange wake
            # their receivers (votes cleared worker-side before the slices
            # fold), so "nothing delivered and everyone voted" halts.
            if (
                voted is not None
                and self.superstep > 0
                and self._delivered == 0
                and 0 not in voted
            ):
                return "all_halted"
            bcast = dict(self.globals.broadcast)
            hang = self._hang_now
            self._hang_now = {}
            for wid in range(w):
                self._send(wid, ("step", bcast, hang.get(wid, 0.0)))
            # Vertex-phase barrier under a deadline.  A death here is
            # recovered *within* the superstep when confinement allows it:
            # the failed partition replays parent-side to this superstep's
            # boundary, the worker re-forks from the restored columns, and
            # the step command is re-issued — healthy workers never rewind
            # and their replies stay valid.  A rollback instead abandons
            # the superstep and restarts the loop from the restored one.
            replies: list = [None] * w
            pending = list(range(w))
            rolled_back = False
            while pending:
                dead: list[tuple[int, str]] = []
                for wid in pending:
                    try:
                        replies[wid] = self._recv(wid)
                        if supervisor is not None:
                            supervisor.observe_liveness(wid, time.monotonic())
                    except _WorkerDead as exc:
                        dead.append((wid, exc.cause))
                if not dead:
                    break
                if not self._escalate(dead):
                    return "unrecoverable"
                if self._refork_all:
                    rolled_back = True
                    break
                self._refork()
                pending = [wid for wid, _cause in dead]
                for wid in pending:
                    self._send(wid, ("step", bcast, 0.0))
            if rolled_back:
                continue
            step_messages = 0
            step_net = 0
            all_puts: list = []
            all_slots: list = []
            worker_computed = []
            worker_sent_step = []
            worker_seconds = []
            worker_bytes = []
            for wid, (_, _dir, _inline, counters, puts, slots) in enumerate(replies):
                m.messages += counters["messages"]
                m.message_bytes += counters["bytes"]
                m.net_messages += counters["net_messages"]
                m.net_bytes += counters["net_bytes"]
                m.worker_sent[wid] += counters["sent"]
                step_messages += counters["messages"]
                step_net += counters["net_messages"]
                worker_computed.append(counters["computed"])
                worker_sent_step.append(counters["sent"])
                worker_seconds.append(counters["seconds"])
                worker_bytes.append(counters["staged"])
                all_puts.extend(puts)
                all_slots.extend(slots)
            if ft is not None:
                # The simulator meters one (argument-free) delivery account
                # per cross-worker send during the phase; the parent makes
                # the same number of calls, so the FT manager's seeded
                # retry counters come out identical.
                account = ft.account_delivery
                for _ in range(step_net):
                    account()
            # Combiner barrier flush: a stable sort on the birth vid of
            # each per-worker slot reconstructs the simulator's combiner
            # table insertion order (ties = one vertex's sends, already in
            # program order within its worker's slot list).  Metering at
            # flush, on the folded payload — the message that travels.
            combined_parts: list[list] = [[] for _ in range(w)]
            if all_slots:
                all_slots.sort(key=lambda s: s[0])
                for birth, dst, tag, msg in all_slots:
                    size = sizes[tag]
                    m.messages += 1
                    m.message_bytes += size
                    dest = worker_of[dst]
                    if worker_of[birth] != dest:
                        m.net_messages += 1
                        m.net_bytes += size
                        if ft is not None:
                            ft.account_delivery()
                    combined_parts[dest].append((dst, msg))
                step_messages += len(all_slots)
            if self._record_per_superstep:
                m.per_superstep_messages.append(step_messages)
            # Re-fold vertex puts in ascending-vid order: bit-identical to
            # the simulator's sequential fold (float sums included).
            all_puts.sort(key=lambda p: p[2])
            put_reduce = self.globals.put_reduce
            for name, op, _vid, value in all_puts:
                put_reduce(name, op, value)
            directories = [r[1] for r in replies]
            inlines = [r[2] for r in replies]
            if self._track_makespan:
                # The simulator's work units: one per computed vertex, one
                # per send (sender side), one per message for its receiving
                # worker — combined messages count their folded deliveries.
                step_work = [c + s for c, s in zip(worker_computed, worker_sent_step)]
                for directory in directories:
                    for dest, _tag, count, _offset, _plen in directory:
                        step_work[dest] += count
                for entries in inlines:
                    for dest, _tag, count, _db, _sb, _payload in entries:
                        step_work[dest] += count
                for dest in range(w):
                    step_work[dest] += len(combined_parts[dest])
                m.makespan_units += max(step_work)
                m.ideal_units += sum(step_work) / w
            if instr:
                t_exchange = time.perf_counter()
            if self.transport_mode == "tcp":
                # The exchange command carries the current port/epoch map
                # (a within-superstep re-fork may have moved a listener)
                # plus this worker's armed network fault, if any.
                ports, epochs = list(self._ports), list(self._epochs)
                net_now, self._net_now = self._net_now, {}
                for wid in range(w):
                    fault = net_now.get(wid)
                    if fault == "slowlink":
                        fault = ("slowlink", self._exchange_deadline * 1.5)
                    net = {"ports": ports, "epochs": epochs, "fault": fault}
                    self._send(
                        wid, ("exchange", directories, inlines, combined_parts, net)
                    )
            else:
                for wid in range(w):
                    self._send(
                        wid, ("exchange", directories, inlines, combined_parts)
                    )
            # The exchange barrier: each worker replies ("ready",
            # route_seconds, registry_snapshot | None, received_bytes,
            # vote_slice | None) — this is where the per-worker registries
            # merge into the parent's and the vote bitset folds.  A death
            # here is *deferred*: the dead worker's slabs already sit in
            # parent-owned segments (written before its stat reply), so the
            # superstep's bookkeeping completes and the escalation runs at
            # the top of the next loop, where recovery replays cover the
            # missing reply's effects.
            worker_route_seconds = [0.0] * w
            delivered_bytes = [0] * w
            peer_reports: dict[int, dict] = {}
            for wid in range(w):
                try:
                    ready = self._recv(wid)
                except _WorkerDead as exc:
                    self._dead_pending.append((wid, exc.cause))
                    continue
                if supervisor is not None:
                    supervisor.observe_liveness(wid, time.monotonic())
                worker_route_seconds[wid] = ready[1] if len(ready) > 1 else 0.0
                if metered and len(ready) > 2 and ready[2]:
                    mreg.merge_snapshot(ready[2])
                if len(ready) > 3:
                    delivered_bytes[wid] = ready[3]
                if voted is not None and len(ready) > 4 and ready[4] is not None:
                    voted[self._part_slices[wid]] = ready[4]
                if len(ready) > 5 and ready[5]:
                    peer_reports[wid] = ready[5]
            if peer_reports:
                self._fold_peer_reports(peer_reports)
            if metered:
                m_exchange_s.observe(time.perf_counter() - t_exchange)
            if voted is not None:
                # Deliveries of this exchange (consumed next superstep) —
                # the termination check's "inbox empty" side.
                delivered = 0
                for directory in directories:
                    for _dest, _tag, count, _offset, _plen in directory:
                        delivered += count
                for entries in inlines:
                    for _dest, _tag, count, _db, _sb, _payload in entries:
                        delivered += count
                delivered += sum(len(part) for part in combined_parts)
                self._delivered = delivered
            if self.mem is not None:
                # Parent-enforced MemPlan: charge each worker's reported
                # resident bytes — last exchange's inbox (consumed this
                # superstep) plus this exchange's deliveries.  Crossing the
                # hard budget raises MemoryExhausted, degraded by run() to
                # halt_reason="out_of_memory" with the structured report.
                self.mem.charge_exchange(
                    self._mem_prev_inbox, delivered_bytes, self.superstep
                )
                self._mem_prev_inbox = delivered_bytes
            if ft is not None:
                # Decode this superstep's outbox from the slabs while the
                # segments still hold them: checkpoint payloads and the
                # confined-recovery logs both read it via outbox_view().
                self._inflight = self._decode_outbox(directories, inlines)
                for dst, msg in (pair for part in combined_parts for pair in part):
                    bucket = self._inflight.get(dst)
                    if bucket is None:
                        self._inflight[dst] = [msg]
                    else:
                        bucket.append(msg)
                ft.on_superstep_end()
            self.globals.end_superstep()
            self.superstep += 1
            if metered:
                m_steps.inc()
                m_messages.inc(m.messages - s_messages)
                m_msg_bytes.inc(m.message_bytes - s_message_bytes)
                m_net_messages.inc(m.net_messages - s_net_messages)
                m_net_bytes.inc(m.net_bytes - s_net_bytes)
                m_broadcasts.inc(m.broadcast_values - s_broadcasts)
                m_step_s.observe(time.perf_counter() - t_step0)
            if traced:
                tracer.event(
                    "superstep",
                    cat="engine",
                    ts=step_ts,
                    det={
                        "step": self.superstep - 1,
                        "active": sum(worker_computed),
                        "halted": int(sum(voted)) if voted is not None else 0,
                        "messages": m.messages - s_messages,
                        "message_bytes": m.message_bytes - s_message_bytes,
                        "net_messages": m.net_messages - s_net_messages,
                        "net_bytes": m.net_bytes - s_net_bytes,
                        "broadcasts": m.broadcast_values - s_broadcasts,
                        "worker_computed": worker_computed,
                        "worker_sent": [
                            now - then
                            for now, then in zip(m.worker_sent, s_worker_sent)
                        ],
                        "worker_bytes": worker_bytes,
                    },
                    info={
                        "mode": "dense",
                        "frontier": -1,
                        "worker_seconds": worker_seconds,
                        # Real-process identities + per-worker exchange
                        # (route) timings: `gm-pregel profile` ranks
                        # stragglers by actual OS process.  Info-only —
                        # pids differ run to run by construction.
                        "worker_pids": [proc.pid for proc in self._procs],
                        "worker_route_seconds": worker_route_seconds,
                    },
                )
        return "max_supersteps"

    def _decode_outbox(self, directories, inlines) -> dict[int, list]:
        """Parent-side decode of every worker's slabs into one sim-shaped
        ``{dst: msgs}`` map (all destinations, not just one worker's).

        Per-tag stable sender sort reconstructs global send order per
        receiver; receive loops are tag-filtered, so grouping a receiver's
        messages by tag is invisible — the confined replay feeds these
        lists straight to the generated receive code."""
        codec = self._codec
        per_tag: dict[int, list] = {tag: [] for tag in codec.tag_ids}
        for source, directory in enumerate(directories):
            seg_buf = self._segments[source].buf
            for _dest, tag, count, offset, payload_len in directory:
                mid = offset + 4 * count
                pay = mid + 4 * count
                per_tag[tag].append(
                    (
                        np.frombuffer(bytes(seg_buf[offset:mid]), dtype=np.int32),
                        np.frombuffer(bytes(seg_buf[mid:pay]), dtype=np.int32),
                        bytes(seg_buf[pay : pay + payload_len]),
                        count,
                    )
                )
        for entries in inlines:
            for _dest, tag, count, dst_bytes, sender_bytes, payload in entries:
                per_tag[tag].append(
                    (
                        np.frombuffer(dst_bytes, dtype=np.int32),
                        np.frombuffer(sender_bytes, dtype=np.int32),
                        payload,
                        count,
                    )
                )
        outbox: dict[int, list] = {}
        for tag in codec.tag_ids:
            parts = per_tag[tag]
            if not parts:
                continue
            if len(parts) == 1:
                dst_all, snd_all, payload, count = parts[0]
                records = codec.unpack[tag](payload, count)
            else:
                dst_all = np.concatenate([p[0] for p in parts])
                snd_all = np.concatenate([p[1] for p in parts])
                records = []
                for _dst, _snd, payload, count in parts:
                    records.extend(codec.unpack[tag](payload, count))
            by_sender = np.argsort(snd_all, kind="stable")
            order = by_sender[np.argsort(dst_all[by_sender], kind="stable")]
            sorted_dsts = dst_all[order]
            sorted_recs = [records[i] for i in order.tolist()]
            cuts = np.flatnonzero(sorted_dsts[1:] != sorted_dsts[:-1]) + 1
            starts = [0, *cuts.tolist()]
            ends = [*cuts.tolist(), len(sorted_recs)]
            for dst, a, b in zip(sorted_dsts[starts].tolist(), starts, ends):
                bucket = outbox.get(dst)
                if bucket is None:
                    outbox[dst] = sorted_recs[a:b]
                else:
                    bucket.extend(sorted_recs[a:b])
        return outbox

    def _sync_columns(self) -> None:
        """Pull every worker's live partition back into the parent columns."""
        if not self._conns:
            return  # workers not forked yet: the columns hold initial state
        for wid in range(self.num_workers):
            self._send(wid, ("snapshot",))
        self._scatter_columns()

    def _gather_columns(self) -> None:
        """Final column pull at end of run (workers exit afterwards).

        Tolerates dead workers: after an unrecoverable abort the parent's
        columns already hold the best known (restored) state for the dead
        partitions, so only the live workers' slices are pulled."""
        for wid in range(self.num_workers):
            self._send(wid, ("finish",))
        self._scatter_columns(tolerate_dead=True)

    def _scatter_columns(self, *, tolerate_dead: bool = False) -> None:
        n = self.graph.num_nodes
        w = self.num_workers
        for wid in range(w):
            try:
                reply = self._recv(wid)
            except _WorkerDead:
                if tolerate_dead:
                    continue
                raise
            part = self._part_slices[wid]
            for name, values in reply[1].items():
                column = self._columns[name]
                if isinstance(column, array):
                    column[part] = array(column.typecode, values)
                else:
                    for i, vid in enumerate(range(n)[part]):
                        column[vid] = values[i]


class _Worker:
    """One worker process: computes its hash partition, stages outgoing
    messages as per-(destination, tag) slabs in its shared-memory segment
    (folding combined tags into per-(dst, tag) slots instead), and rebuilds
    its inbox from the other workers' slabs after the barrier.

    Constructed in the parent *before* fork, so every heavy structure (the
    graph CSR, property columns, the generated vertex function and its
    environment) is inherited copy-on-write — nothing is pickled.  A
    recovery re-fork reuses the same instance: the replacement process
    inherits the parent's *restored* columns the same way."""

    def __init__(self, wid: int, engine: MPEngine, segments):
        self.wid = wid
        self.engine = engine
        self.segments = segments
        self._current_vertex = -1

    # -- vertex-side ctx API (called by generated code) -----------------

    def send(self, dst: int, msg: tuple) -> None:
        tag = msg[0]
        combiner = self._combiners.get(tag) if self._combiners else None
        if combiner is not None:
            self._fold(dst, tag, msg, combiner, 1)
            return
        stage = self._stage[self._worker_of[dst]][tag]
        stage.dsts.append(dst)
        stage.senders.append(self._current_vertex)
        stage.counts.append(1)
        stage.payload += self._pack[tag](msg)
        self._meter(tag, 1, 1 if self._worker_of[dst] != self.wid else 0)

    def send_nbrs(self, vid: int, msg: tuple) -> None:
        tag = msg[0]
        if self._combiners and tag in self._combiners:
            graph = self.engine.graph
            targets = graph.out_targets[
                graph.out_offsets[vid] : graph.out_offsets[vid + 1]
            ]
            if targets:
                combiner = self._combiners[tag]
                for dst in targets:
                    self._fold(dst, tag, msg, combiner, 0)
                c = self._counters
                c["sent"] += len(targets)
                c["staged"] += self._sizes[tag] * len(targets)
            return
        offsets = self._grp_off[vid]
        deg = offsets[-1] - offsets[0]
        if deg == 0:
            return
        record = self._pack[tag](msg)
        grp_tgt = self._grp_tgt
        for dest in range(self._w):
            a = offsets[dest]
            b = offsets[dest + 1]
            if b > a:
                stage = self._stage[dest][tag]
                stage.dsts.frombytes(grp_tgt[a:b].tobytes())
                stage.senders.append(vid)
                stage.counts.append(b - a)
                stage.payload += record * (b - a)
        own = offsets[self.wid + 1] - offsets[self.wid]
        self._meter(tag, deg, deg - own)

    def send_list(self, dsts: list, msg: tuple) -> None:
        if not dsts:
            return
        tag = msg[0]
        if self._combiners and tag in self._combiners:
            combiner = self._combiners[tag]
            for dst in dsts:
                self._fold(dst, tag, msg, combiner, 0)
            c = self._counters
            c["sent"] += len(dsts)
            c["staged"] += self._sizes[tag] * len(dsts)
            return
        record = self._pack[tag](msg)
        vid = self._current_vertex
        worker_of = self._worker_of
        cross = 0
        for dst in dsts:
            dest = worker_of[dst]
            if dest != self.wid:
                cross += 1
            stage = self._stage[dest][tag]
            stage.dsts.append(dst)
            stage.senders.append(vid)
            stage.counts.append(1)
            stage.payload += record
        self._meter(tag, len(dsts), cross)

    def _fold(self, dst: int, tag: int, msg: tuple, combiner, meter: int) -> None:
        """Combiner send: fold into this worker's (dst, tag) slot, stamped
        with the vid of the slot's first send (the parent's merge key).
        Only the sender's combine work is metered per send — delivered
        traffic is metered at the parent's flush, on the folded payload."""
        if meter:
            c = self._counters
            c["sent"] += 1
            c["staged"] += self._sizes[tag]
        key = (dst, tag)
        slot = self._combined.get(key)
        if slot is not None:
            self._combined[key] = (slot[0], combiner(slot[1], msg))
        else:
            self._combined[key] = (self._current_vertex, msg)

    def put_global(self, name: str, op, value) -> None:
        self._puts.append((name, op, self._current_vertex, value))

    def vote_to_halt(self, vid: int) -> None:
        # The fork-inherited bitset is private to this process: the vote
        # reaches the parent as this partition's slice in the next
        # exchange reply, where the authoritative copy folds it in.
        if self._voted is None:
            raise RuntimeError(VOTING_DISABLED_ERROR)
        self._voted[vid] = 1

    def get_global(self, name: str):
        return self.engine.globals.broadcast[name]

    @property
    def num_nodes(self) -> int:
        return self.engine.graph.num_nodes

    def _meter(self, tag: int, count: int, cross: int) -> None:
        size = self._sizes[tag]
        c = self._counters
        c["messages"] += count
        c["sent"] += count
        c["bytes"] += size * count
        c["staged"] += size * count
        if cross:
            c["net_messages"] += cross
            c["net_bytes"] += size * cross

    # -- process body ---------------------------------------------------

    def _init(self) -> None:
        engine = self.engine
        graph = engine.graph
        n = graph.num_nodes
        self._w = engine.num_workers
        # Per-process registry (built post-fork when the parent meters):
        # snapshots ship back — and reset — with every exchange reply, so
        # each barrier merge carries exactly one superstep's increments.
        # Instruments are re-resolved per bump (the reset drops handles);
        # at once-per-superstep frequency that lookup is noise.
        self._mreg = None
        parent_reg = engine.metrics_registry
        if parent_reg is not None and parent_reg.enabled:
            from ...obs.metrics import MetricsRegistry

            self._mreg = MetricsRegistry()
        self._worker_of = engine._worker_of
        self._combiners = engine._combiners
        codec = engine._codec
        self._pack = codec.pack
        self._unpack = codec.unpack
        self._sizes = codec.sizes
        self._tag_ids = codec.tag_ids
        self._part_slice = engine._part_slices[self.wid]
        self._own_vids = list(range(n)[self._part_slice])
        # tcp transport: keep the fork-inherited copy of our own listener,
        # close the siblings' (their owners hold the live fds — a stray
        # inherited copy here would keep a "closed" listener accepting).
        self._tcp = None
        if engine.transport_mode == "tcp":
            from .tcp import TcpSlabTransport

            for wid, sock in enumerate(engine._listeners):
                if wid != self.wid and sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
            self._tcp = TcpSlabTransport(
                self.wid,
                engine._listeners[self.wid],
                engine._ports,
                engine._epochs,
                self._mreg,
            )
            # Workers must abandon a dead exchange *before* the parent's
            # own deadline expires on them, so the socket loop gets half
            # the budget — the reply (with the failure report) then lands
            # inside the parent's window.
            self._tcp_deadline = engine._exchange_deadline * 0.5
            self._tcp_outgoing = {
                d: [] for d in range(self._w) if d != self.wid
            }
        self._puts: list = []
        self._counters = self._fresh_counters()
        self._inbox: dict[int, list] = {}
        self._combined: dict = {}
        # Voting: fork-inherited copy of the parent's bitset (or None).
        self._voted = engine._voted
        # Memory budgets: per-delivery receive accounting (payload +
        # envelope, the MemPlan's charge model), reported in the exchange
        # reply and charged parent-side.
        self._mem_overhead = (
            engine.mem.plan.message_overhead_bytes
            if engine.mem is not None
            else None
        )
        self._recv_bytes = 0
        self._stage = [
            {tag: _TagStage() for tag in self._tag_ids} for _ in range(self._w)
        ]
        # Group every vertex's out-neighbor slice by destination worker
        # (stable), so a neighbor broadcast stages one contiguous run per
        # destination.  One vectorized pass over the whole CSR.
        tgt = np.asarray(graph.out_targets, dtype=np.int32)
        if isinstance(self._worker_of, bytes):
            owner = np.frombuffer(self._worker_of, dtype=np.uint8)
        else:
            owner = np.asarray(self._worker_of, dtype=np.int64)
        nbr_owner = owner[tgt].astype(np.int64)
        degrees = np.diff(np.asarray(graph.out_offsets, dtype=np.int64))
        src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        order = np.lexsort((nbr_owner, src))
        self._grp_tgt = tgt[order]
        counts = np.bincount(src * self._w + nbr_owner, minlength=n * self._w)
        counts = counts.reshape(n, self._w)
        grp_off = np.empty((n, self._w + 1), dtype=np.int64)
        grp_off[:, 0] = np.asarray(graph.out_offsets[:-1], dtype=np.int64)
        np.cumsum(counts, axis=1, out=grp_off[:, 1:])
        grp_off[:, 1:] += grp_off[:, :1]
        self._grp_off = grp_off.tolist()

    @staticmethod
    def _fresh_counters() -> dict:
        return dict(
            messages=0,
            sent=0,
            bytes=0,
            net_messages=0,
            net_bytes=0,
            staged=0,
            computed=0,
            seconds=0.0,
        )

    def main(self, conn) -> None:
        try:
            self._init()
            engine = self.engine
            compute = engine._vertex_compute
            broadcast = engine.globals.broadcast
            empty = _EMPTY
            while True:
                cmd = conn.recv()
                kind = cmd[0]
                if kind == "step":
                    broadcast.clear()
                    broadcast.update(cmd[1])
                    if len(cmd) > 2 and cmd[2]:
                        # Injected hang: sleep past the parent's exchange
                        # deadline — it detects the miss and recovers (we
                        # get terminated mid-nap by the re-fork).
                        time.sleep(cmd[2])
                    inbox = self._inbox
                    self._inbox = {}
                    t0 = time.perf_counter()
                    voted = self._voted
                    if voted is None:
                        for vid in self._own_vids:
                            self._current_vertex = vid
                            compute(self, vid, inbox.get(vid, empty))
                        computed = len(self._own_vids)
                    else:
                        computed = 0
                        for vid in self._own_vids:
                            if voted[vid]:
                                continue
                            self._current_vertex = vid
                            compute(self, vid, inbox.get(vid, empty))
                            computed += 1
                    self._current_vertex = -1
                    c = self._counters
                    c["computed"] = computed
                    c["seconds"] = time.perf_counter() - t0
                    if self._mreg is not None:
                        wid = str(self.wid)
                        self._mreg.histogram(
                            "mp.worker_step_seconds", worker=wid
                        ).observe(c["seconds"])
                        self._mreg.counter(
                            "mp.worker_staged_bytes", worker=wid
                        ).inc(c["staged"])
                    directory, inline = self._write_slabs()
                    slots = [
                        (birth, dst, tag, msg)
                        for (dst, tag), (birth, msg) in self._combined.items()
                    ]
                    self._combined.clear()
                    conn.send(
                        ("stat", directory, inline, c, self._puts, slots)
                    )
                    self._counters = self._fresh_counters()
                    self._puts = []
                elif kind == "exchange":
                    t0 = time.perf_counter()
                    self._recv_bytes = 0
                    report = None
                    if self._tcp is not None:
                        report = self._exchange_tcp(
                            cmd[1], cmd[2], cmd[4] if len(cmd) > 4 else None
                        )
                    else:
                        self._read_slabs(cmd[1], cmd[2])
                    voted = self._voted
                    if report:
                        # A peer failed: abandon the whole exchange —
                        # discard the partial inbox, skip the combined
                        # parts and the vote clears (the parent re-seeds
                        # this worker after recovery) and report the
                        # classified causes so the parent can fold blame.
                        self._inbox = {}
                        votes = (
                            bytes(voted[self._part_slice])
                            if voted is not None
                            else None
                        )
                        route_s = time.perf_counter() - t0
                        snap = (
                            self._mreg.snapshot(reset=True)
                            if self._mreg is not None
                            else None
                        )
                        conn.send(("ready", route_s, snap, 0, votes, report))
                        continue
                    inbox = self._inbox
                    ovh = self._mem_overhead
                    sizes = self._sizes
                    for dst, msg in cmd[3][self.wid]:
                        if ovh is not None:
                            self._recv_bytes += sizes[msg[0]] + ovh
                        bucket = inbox.get(dst)
                        if bucket is None:
                            inbox[dst] = [msg]
                        else:
                            bucket.append(msg)
                    votes = None
                    if voted is not None:
                        # Ship this partition's slice *before* the delivery
                        # clears: the parent's fold then matches the
                        # simulator's end-of-phase bitset (checkpoints and
                        # traces included).  The local copy clears now —
                        # delivered messages wake their receivers next step.
                        votes = bytes(voted[self._part_slice])
                        for dst in inbox:
                            voted[dst] = 0
                    route_s = time.perf_counter() - t0
                    snap = None
                    if self._mreg is not None:
                        self._mreg.histogram(
                            "mp.worker_route_seconds", worker=str(self.wid)
                        ).observe(route_s)
                        snap = self._mreg.snapshot(reset=True)
                    conn.send(("ready", route_s, snap, self._recv_bytes, votes))
                elif kind == "snapshot":
                    conn.send(("columns", self._gather()))
                elif kind == "seed":
                    # Recovery re-fork / post-abandon re-seed: install this
                    # partition's slice of the in-flight messages as the
                    # pending inbox.  The seeded messages are deliveries,
                    # so clear their receivers' votes — a no-op for a
                    # fresh fork (the child inherited the parent's
                    # already-cleared bitset), the missing wake-up for a
                    # live worker that abandoned its exchange.
                    self._inbox = cmd[1]
                    if self._voted is not None:
                        for dst in self._inbox:
                            self._voted[dst] = 0
                    conn.send(("ready",))
                elif kind == "finish":
                    conn.send(("columns", self._gather()))
                    return
                else:
                    raise RuntimeError(f"unknown command {kind!r}")
        except BaseException:
            try:
                conn.send(("error", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                pass
        finally:
            conn.close()

    def _write_slabs(self):
        """Flush the staged per-(destination, tag) slabs into this worker's
        shared-memory segment; anything past its capacity travels inline
        over the pipe instead (correctness never depends on the size).

        In tcp mode the cross-worker parts are *additionally* queued as
        socket frames: the segments stay authoritative for the parent
        (checkpoint decode, makespan, delivery counts — the structural
        parity guarantee), while the receivers build their inboxes from
        the frames."""
        seg = self.segments[self.wid]
        buf = seg.buf
        capacity = seg.size
        offset = 0
        directory = []
        inline = []
        tcp_out = self._tcp_outgoing if self._tcp is not None else None
        for dest in range(self._w):
            stages = self._stage[dest]
            for tag in self._tag_ids:
                stage = stages[tag]
                count = len(stage.dsts)
                if count == 0:
                    continue
                dst_bytes = stage.dsts.tobytes()
                sender_bytes = np.repeat(
                    np.asarray(stage.senders, dtype=np.int32),
                    np.asarray(stage.counts, dtype=np.int64),
                ).tobytes()
                payload = bytes(stage.payload)
                if tcp_out is not None and dest != self.wid:
                    tcp_out[dest].append(
                        (tag, count, dst_bytes, sender_bytes, payload)
                    )
                total = len(dst_bytes) + len(sender_bytes) + len(payload)
                if offset + total <= capacity:
                    buf[offset : offset + len(dst_bytes)] = dst_bytes
                    mid = offset + len(dst_bytes)
                    buf[mid : mid + len(sender_bytes)] = sender_bytes
                    pay = mid + len(sender_bytes)
                    buf[pay : pay + len(payload)] = payload
                    directory.append((dest, tag, count, offset, len(payload)))
                    offset += total
                else:
                    inline.append((dest, tag, count, dst_bytes, sender_bytes, payload))
                self._stage[dest][tag] = _TagStage()
        return directory, inline

    def _exchange_tcp(self, directories, inlines, net) -> dict | None:
        """Run the socket leg of the exchange; ``None`` on success, else
        the ``{peer: cause}`` failure report.

        The directories every worker shipped through the parent double as
        the receive manifest: each (dest==us) entry from another source
        is exactly one expected data frame, so completion needs no extra
        control messages.  An armed network fault fires here — a netsplit
        closes our listener before the loop (peers' connects then fail
        with ECONNREFUSED at the kernel), a slowlink stalls us past our
        peers' socket deadline."""
        tcp = self._tcp
        fault = None
        if net is not None:
            tcp.update_peers(net["ports"], net["epochs"])
            fault = net.get("fault")
        if fault == "netsplit":
            tcp.close_listener()
        elif fault is not None:  # ("slowlink", seconds)
            time.sleep(fault[1])
        wid = self.wid
        expected: dict[int, int] = {}
        for source, directory in enumerate(directories):
            if source == wid:
                continue
            frames = sum(1 for entry in directory if entry[0] == wid)
            if frames:
                expected[source] = expected.get(source, 0) + frames
        for source, entries in enumerate(inlines):
            if source == wid:
                continue
            frames = sum(1 for entry in entries if entry[0] == wid)
            if frames:
                expected[source] = expected.get(source, 0) + frames
        outgoing = {d: parts for d, parts in self._tcp_outgoing.items() if parts}
        self._tcp_outgoing = {d: [] for d in range(self._w) if d != wid}
        parts, report = tcp.exchange(outgoing, expected, self._tcp_deadline)
        if report:
            return report
        self._read_slabs_tcp(directories, inlines, parts)
        return None

    def _read_slabs_tcp(self, directories, inlines, tcp_parts) -> None:
        """The tcp-mode inbox build: our own slabs from our segment (a
        worker's messages to itself never touch the network), every other
        source's from its received socket frames — the same per-(source,
        tag) parts, so the identical stable sender sort reconstructs the
        simulator's per-receiver order."""
        wid = self.wid
        ovh = self._mem_overhead
        sizes = self._sizes
        per_tag: dict[int, list] = {tag: [] for tag in self._tag_ids}
        seg_buf = self.segments[wid].buf
        for dest, tag, count, offset, payload_len in directories[wid]:
            if dest != wid:
                continue
            if ovh is not None:
                self._recv_bytes += count * (sizes[tag] + ovh)
            mid = offset + 4 * count
            pay = mid + 4 * count
            per_tag[tag].append(
                (
                    np.frombuffer(bytes(seg_buf[offset:mid]), dtype=np.int32),
                    np.frombuffer(bytes(seg_buf[mid:pay]), dtype=np.int32),
                    bytes(seg_buf[pay : pay + payload_len]),
                    count,
                )
            )
        for dest, tag, count, dst_bytes, sender_bytes, payload in inlines[wid]:
            if dest != wid:
                continue
            if ovh is not None:
                self._recv_bytes += count * (sizes[tag] + ovh)
            per_tag[tag].append(
                (
                    np.frombuffer(dst_bytes, dtype=np.int32),
                    np.frombuffer(sender_bytes, dtype=np.int32),
                    payload,
                    count,
                )
            )
        for _source, frames in sorted(tcp_parts.items()):
            for tag, count, dst_bytes, sender_bytes, payload in frames:
                if ovh is not None:
                    self._recv_bytes += count * (sizes[tag] + ovh)
                per_tag[tag].append(
                    (
                        np.frombuffer(dst_bytes, dtype=np.int32),
                        np.frombuffer(sender_bytes, dtype=np.int32),
                        payload,
                        count,
                    )
                )
        self._merge_parts(per_tag)

    def _read_slabs(self, directories, inlines) -> None:
        """Build next superstep's inbox from every worker's slabs destined
        here, merged per tag by sender id (stable) — the simulator's exact
        per-receiver order."""
        wid = self.wid
        ovh = self._mem_overhead
        sizes = self._sizes
        per_tag: dict[int, list] = {tag: [] for tag in self._tag_ids}
        for source, directory in enumerate(directories):
            seg_buf = self.segments[source].buf
            for dest, tag, count, offset, payload_len in directory:
                if dest != wid:
                    continue
                if ovh is not None:
                    self._recv_bytes += count * (sizes[tag] + ovh)
                mid = offset + 4 * count
                pay = mid + 4 * count
                dst = np.frombuffer(bytes(seg_buf[offset:mid]), dtype=np.int32)
                snd = np.frombuffer(bytes(seg_buf[mid:pay]), dtype=np.int32)
                payload = bytes(seg_buf[pay : pay + payload_len])
                per_tag[tag].append((dst, snd, payload, count))
        for source, entries in enumerate(inlines):
            for dest, tag, count, dst_bytes, sender_bytes, payload in entries:
                if dest != wid:
                    continue
                if ovh is not None:
                    self._recv_bytes += count * (sizes[tag] + ovh)
                per_tag[tag].append(
                    (
                        np.frombuffer(dst_bytes, dtype=np.int32),
                        np.frombuffer(sender_bytes, dtype=np.int32),
                        payload,
                        count,
                    )
                )
        self._merge_parts(per_tag)

    def _merge_parts(self, per_tag: dict[int, list]) -> None:
        inbox = self._inbox
        for tag in self._tag_ids:
            parts = per_tag[tag]
            if not parts:
                continue
            if len(parts) == 1:
                dst_all, snd_all, payload, count = parts[0]
                records = self._unpack[tag](payload, count)
            else:
                dst_all = np.concatenate([p[0] for p in parts])
                snd_all = np.concatenate([p[1] for p in parts])
                records = []
                for _dst, _snd, payload, count in parts:
                    records.extend(self._unpack[tag](payload, count))
            # Two stable sorts: first by sender (reconstructing the
            # simulator's global send order), then by receiver (grouping
            # bucket fills into list slices instead of per-record appends).
            by_sender = np.argsort(snd_all, kind="stable")
            order = by_sender[np.argsort(dst_all[by_sender], kind="stable")]
            sorted_dsts = dst_all[order]
            sorted_recs = [records[i] for i in order.tolist()]
            cuts = np.flatnonzero(sorted_dsts[1:] != sorted_dsts[:-1]) + 1
            starts = [0, *cuts.tolist()]
            ends = [*cuts.tolist(), len(sorted_recs)]
            for dst, a, b in zip(sorted_dsts[starts].tolist(), starts, ends):
                bucket = inbox.get(dst)
                if bucket is None:
                    inbox[dst] = sorted_recs[a:b]
                else:
                    bucket.extend(sorted_recs[a:b])

    def _gather(self) -> dict:
        engine = self.engine
        part = self._part_slice
        out = {}
        for name, column in engine._columns.items():
            if isinstance(column, array):
                out[name] = column[part].tolist()
            else:
                out[name] = [column[v] for v in self._own_vids]
        return out


class MPBackend(ExecutionBackend):
    name = "mp"
    supports = {
        "ft": True,
        "net": False,
        "mem": True,
        "supervisor": True,
        "tracer": True,
        "combiners": True,
        "voting": True,
        "track_makespan": True,
        "range_partitioning": True,
    }

    def build_columns(self, schema, graph, fields, args):
        return build_typed_columns(schema, fields)

    def create_engine(
        self,
        graph: Graph,
        *,
        master_compute: Callable,
        message_size: Callable[[tuple], int],
        schema,
        engine_opts: dict,
    ) -> MPEngine:
        return MPEngine(
            graph,
            schema=schema,
            master_compute=master_compute,
            message_size=message_size,
            **engine_opts,
        )

    def column_values(self, column) -> list:
        return column.tolist() if isinstance(column, array) else column
