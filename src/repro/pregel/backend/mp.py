"""Multiprocessing backend: real worker processes + shared-memory slabs.

The simulator *models* ``num_workers`` machines inside one process; this
backend makes them real: one forked OS process per worker, each computing
its hash partition of the vertices every superstep, exchanging the
columnar backend's typed message slabs through ``multiprocessing.shared_memory``
segments, and synchronizing at the same batched-routing barrier — here an
actual parent-coordinated barrier rather than a simulated one.

Determinism (the whole point of the parity contract) is preserved by
order-reconstructing merges at the parent barrier:

* every slab record carries its **sender id**; a receiving worker merges
  the incoming per-source slabs with a stable sort on sender, which
  reconstructs the simulator's per-receiver message order exactly (global
  send order = ascending sender id, since workers scan their partitions in
  ascending order and partitions interleave);
* vertex **global-object puts** ship to the parent as ``(vid, value)``
  streams and are re-folded sequentially in ascending-vid order, so even
  non-associative float reductions (a PageRank error sum) come out
  bit-identical to the single-process fold;
* **combiners** fold per-process at the sender (each worker keeps one slot
  per ``(dst, tag)``, stamped with the vid of the slot's *first* send);
  the parent merges all workers' slots with a stable sort on that birth
  vid, which reconstructs the simulator's combiner-table insertion order
  (one vid belongs to one worker, so ties stay in per-worker — i.e.
  program — order), then meters and routes the folded payloads exactly
  like the simulator's barrier flush;
* **fault tolerance** checkpoints from the parent: ``checkpoint_state()``
  first pulls every worker's live partition columns back into the parent's
  columns (so the registered ``ColumnState`` sees fresh data), and the
  in-flight message set is the parent's own decode of the last exchange's
  slabs.  Recovery restores parent-side state — confined replay runs *in
  the parent* over the restored columns with sends/puts suppressed — and
  then **re-forks** the affected worker processes from the parent, which
  inherit the recovered columns copy-on-write and are re-seeded with their
  partition's in-flight inbox;
* **tracing** buffers per-process counters (computed, seconds, staged
  bytes) in each worker's barrier reply; the parent merges them by
  worker id into the same deterministic superstep records the simulator
  emits, so ``deterministic_jsonl`` projects identically across backends.

The backend still refuses — with :class:`BackendUnsupported` — features
whose semantics it cannot reproduce across process boundaries:
vote-to-halt, the simulated transport, supervision, memory budgets,
makespan tracking, and non-hash partitioning.
:func:`composition_refusals` exposes the refusal list so the CLI can
validate a composition *before* loading a graph, with identical messages.
"""

from __future__ import annotations

import random
import time
import traceback
from array import array
from typing import Any, Callable

import numpy as np

from ..globalmap import GlobalObjectMap
from ..graph import Graph
from ..runtime import PregelEngine, RunMetrics
from .base import BackendUnsupported, ExecutionBackend
from .codec import MessageCodec
from .columnar import build_typed_columns

_EMPTY: tuple = ()

#: absolute ceiling on one worker's auto-sized shared-memory segment; a
#: superstep whose slabs outgrow it spills through the inline-pipe
#: overflow path, which is correctness-neutral (just slower).
_SLAB_CEILING = 256 << 20


def mp_available() -> bool:
    """True when the platform can run this backend (fork + shared memory).

    Importability alone is not enough: hosts without a usable ``/dev/shm``
    import ``shared_memory`` fine and then fail at segment creation, mid
    superstep.  Probe with a tiny create/unlink round-trip so the failure
    becomes an up-front :class:`BackendUnsupported` refusal instead.
    """
    try:
        import multiprocessing
        from multiprocessing import shared_memory

        if "fork" not in multiprocessing.get_all_start_methods():
            return False
        probe = shared_memory.SharedMemory(create=True, size=16)
        probe.close()
        probe.unlink()
        return True
    except (ImportError, OSError):
        return False


def clamp_slab_bytes(requested: int, plan=None) -> int:
    """Cap an auto-sized per-worker slab reservation.

    Unbounded, the ``traffic * record`` heuristic can reserve multi-GB
    segments on dense graphs.  The cap is the tightest configured
    per-worker budget of a PR 5 :class:`~repro.pregel.mem.MemPlan` when
    one is given, else the absolute ceiling; the floor stays at 1 MiB (a
    smaller segment is all directory, no slab).  Capacity never affects
    results — overflow travels inline over the pipes.
    """
    cap = _SLAB_CEILING
    if plan is not None and getattr(plan, "limited", False):
        finite = [budget for _worker, budget in plan.worker_budgets]
        if plan.budget_bytes:
            finite.append(plan.budget_bytes)
        if finite:
            cap = min(cap, min(finite))
    return max(1 << 20, min(requested, cap))


def composition_refusals(
    *,
    use_voting: bool = False,
    combiners=None,
    ft=None,
    transport=None,
    supervisor=None,
    mem=None,
    tracer=None,
    track_makespan: bool = False,
    partitioning: str = "hash",
) -> list[str]:
    """Refusal messages for running a composition on the mp backend.

    Empty means the composition is supported.  Shared by
    :class:`MPEngine` construction and the CLI's pre-load validation, so
    a refused flag combination fails with the identical message whether
    it is caught in milliseconds (CLI, before the graph loads) or at
    engine construction.  ``combiners``, ``ft``, and ``tracer`` are
    accepted for signature stability: those compositions are supported.
    """
    del combiners, ft, tracer  # lifted compositions — no longer refused
    refusals = []

    def refuse(feature: str, hint: str) -> None:
        refusals.append(
            f"the mp backend does not support {feature}: {hint} "
            "(run with --backend sim or columnar)"
        )

    if use_voting:
        refuse("vote_to_halt", "generated programs are master-driven")
    if transport is not None:
        refuse("the simulated transport", "real pipes carry the slabs")
    if supervisor is not None:
        refuse("supervision", "worker processes have no heartbeat probe")
    if mem is not None:
        refuse("memory budgets", "per-process accounting is not wired up")
    if track_makespan:
        refuse("track_makespan", "wall time of real workers replaces it")
    if partitioning != "hash":
        refuse(f"'{partitioning}' partitioning", "workers own hash partitions")
    return refusals


class _TagStage:
    """Outgoing messages for one (destination worker, tag): a destination
    array, sender run-lengths, and the packed payload slab."""

    __slots__ = ("dsts", "senders", "counts", "payload")

    def __init__(self):
        self.dsts = array("i")
        self.senders: list[int] = []
        self.counts: list[int] = []
        self.payload = bytearray()


class MPEngine:
    """Parent-side coordinator: runs the master, merges global puts and
    combiner slots, drives the worker barrier, and owns checkpointing.
    API-compatible with PregelEngine where the generated master, the
    fault-tolerance manager, and the compiled-program wiring need it."""

    def __init__(
        self,
        graph: Graph,
        *,
        schema,
        vertex_compute: Callable | None = None,
        master_compute: Callable | None = None,
        message_size: Callable[[tuple], int] | None = None,
        num_workers: int = 4,
        seed: int = 17,
        max_supersteps: int = 1_000_000,
        use_voting: bool = False,
        record_per_superstep: bool = False,
        combiners: dict | None = None,
        partitioning: str = "hash",
        track_makespan: bool = False,
        ft=None,
        scheduling: str = "frontier",
        frontier_threshold: float = 0.25,
        tracer=None,
        transport=None,
        supervisor=None,
        mem=None,
        metrics_registry=None,
        mp_slab_bytes: int | None = None,
    ):
        refusals = composition_refusals(
            use_voting=use_voting,
            combiners=combiners,
            ft=ft,
            transport=transport,
            supervisor=supervisor,
            mem=mem,
            tracer=tracer,
            track_makespan=track_makespan,
            partitioning=partitioning,
        )
        if refusals:
            raise BackendUnsupported(refusals[0])
        if scheduling not in ("frontier", "dense"):
            raise ValueError(
                f"unknown scheduling '{scheduling}' (expected 'frontier' or 'dense')"
            )
        if schema is None:
            raise BackendUnsupported(
                "the mp backend needs a program schema (compiled programs only)"
            )
        if not mp_available():
            raise BackendUnsupported(
                "the mp backend needs fork start-method and "
                "multiprocessing.shared_memory, unavailable on this platform"
            )
        self.graph = graph
        self.schema = schema
        self.scheduling = scheduling
        self.num_workers = max(1, num_workers)
        self.rng = random.Random(seed)
        self.globals = GlobalObjectMap()
        self.metrics = RunMetrics(backend="mp")
        self.metrics.worker_sent = [0] * self.num_workers
        self.superstep = 0
        self.result: Any = None
        self.partitioning = "hash"
        self._halt = False
        self._vertex_compute = vertex_compute
        self._master_compute = master_compute
        self._message_size = message_size
        self._max_supersteps = max_supersteps
        self._record_per_superstep = record_per_superstep
        self._combiners = combiners or {}
        self._codec = MessageCodec(schema)
        w = self.num_workers
        self._worker_of = bytes(v % w for v in range(graph.num_nodes)) if w <= 256 else [
            v % w for v in range(graph.num_nodes)
        ]
        self._columns: dict[str, Any] = {}
        self.mem = None
        self.tracer = tracer
        # Metrics registry: the parent owns the authoritative registry;
        # each worker process builds its own post-fork and ships snapshots
        # back in its barrier replies, merged parent-side (counters sum,
        # histograms bucket-sum, gauges max) — set before ft.attach() so
        # the FT manager picks up its instruments.
        self.metrics_registry = metrics_registry
        self._mreg = (
            metrics_registry
            if metrics_registry is not None and metrics_registry.enabled
            else None
        )
        self.ft = ft
        self._voted = None  # master-driven: no vote_to_halt (FT replay reads this)
        self._ft_replaying = False
        self._current_vertex = -1
        #: in-flight messages (sent last superstep, delivered to the live
        #: worker inboxes) as the parent's own decode — checkpoint payloads
        #: and confined-recovery logs read this through outbox_view().
        self._inflight: dict[int, list] = {}
        self._refork_all = False
        self._refork_workers: set[int] = set()
        # live process plumbing (populated by run(), mutated by _refork)
        self._mpctx = None
        self._segments: list = []
        self._conns: list = []
        self._procs: list = []
        self._workers: list[_Worker] = []
        if ft is not None:
            ft.attach(self)
        if mp_slab_bytes is None:
            per_record = 8 + self.schema.max_message_size()
            traffic = (graph.num_edges * 2) // w + graph.num_nodes
            mp_slab_bytes = clamp_slab_bytes(traffic * per_record)
        self._slab_bytes = mp_slab_bytes

    # -- master-side API (GeneratedMaster's ctx) ------------------------

    def get_agg(self, name: str, default: Any = None) -> Any:
        return self.globals.get_aggregated(name, default)

    def put_broadcast(self, name: str, value: Any) -> None:
        self.globals.put_broadcast(name, value)
        self.metrics.broadcast_values += 1

    def halt(self, result: Any = None) -> None:
        self._halt = True
        if result is not None:
            self.result = result

    def set_result(self, value: Any) -> None:
        self.result = value

    def pick_random_node(self) -> int:
        return self.rng.randrange(self.graph.num_nodes)

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    # -- vertex-side ctx API (confined-recovery replay only) -------------
    #
    # Normal supersteps run the vertex phase in the worker processes; the
    # parent executes generated vertex code only while replaying a failed
    # partition over its restored columns, where every send and put was
    # already delivered during the original execution and is suppressed.

    def send(self, dst: int, msg: tuple) -> None:
        if not self._ft_replaying:
            raise RuntimeError("mp parent runs vertex code only during FT replay")

    def send_nbrs(self, vid: int, msg: tuple) -> None:
        if not self._ft_replaying:
            raise RuntimeError("mp parent runs vertex code only during FT replay")

    def send_list(self, dsts: list, msg: tuple) -> None:
        if not self._ft_replaying:
            raise RuntimeError("mp parent runs vertex code only during FT replay")

    def put_global(self, name: str, op, value) -> None:
        if not self._ft_replaying:
            raise RuntimeError("mp parent runs vertex code only during FT replay")

    def get_global(self, name: str):
        return self.globals.broadcast[name]

    # -- checkpoint / restore (FaultTolerance manager hooks) -------------

    def outbox_view(self) -> dict[int, list]:
        """The in-flight ``{dst: msgs}`` map (parent-side slab decode)."""
        return self._inflight

    def checkpoint_state(self) -> dict:
        """Snapshot at a superstep boundary, sim-shaped.

        The workers own the live partition columns, so the snapshot first
        pulls them back into the parent's columns — the FT manager
        serializes the registered ``ColumnState`` (over those same column
        objects) right after this returns, so it sees fresh data.
        """
        self._sync_columns()
        metrics = self.metrics
        return {
            "superstep": self.superstep,
            "outbox": dict(self._inflight),
            "frontier": None,
            "voted": None,
            "rng": self.rng.getstate(),
            "result": self.result,
            "halt": self._halt,
            "broadcast": dict(self.globals.broadcast),
            "aggregated": dict(self.globals.aggregated),
            "metrics": {
                name: getattr(metrics, name)
                for name in PregelEngine._CHECKPOINTED_METRICS
            },
            "per_superstep_messages": list(metrics.per_superstep_messages),
            "worker_sent": list(metrics.worker_sent),
        }

    def restore_state(self, state: dict, vertices: list[int] | None = None) -> None:
        """Restore a checkpoint payload.

        ``vertices`` selects confined recovery: the manager restores the
        failed partition's columns and replays it in the parent, so the
        engine only needs to remember which worker must be re-forked from
        the recovered parent state.  ``None`` is a full rollback: master
        state, metrics ledger, and the in-flight set rewind to the
        boundary, and *every* worker is re-forked from the restored
        columns before the replay resumes.
        """
        if vertices is not None:
            self._refork_workers.add(self._worker_of[vertices[0]])
            return
        self.superstep = state["superstep"]
        self._inflight = dict(state["outbox"])
        self.rng.setstate(state["rng"])
        self.result = state["result"]
        self._halt = state["halt"]
        self.globals.broadcast.clear()
        self.globals.broadcast.update(state["broadcast"])
        self.globals.aggregated = dict(state["aggregated"])
        metrics = self.metrics
        for name, value in state["metrics"].items():
            setattr(metrics, name, value)
        saved_per_superstep = state["per_superstep_messages"]
        if len(saved_per_superstep) > state["superstep"]:
            raise ValueError(
                f"checkpoint at superstep {state['superstep']} carries "
                f"{len(saved_per_superstep)} per-superstep entries — a "
                "checkpoint can never have more entries than completed "
                "supersteps"
            )
        metrics.per_superstep_messages[:] = saved_per_superstep
        if self._record_per_superstep and len(saved_per_superstep) < state["superstep"]:
            metrics.per_superstep_messages.extend(
                [0] * (state["superstep"] - len(saved_per_superstep))
            )
        metrics.worker_sent[:] = state["worker_sent"]
        self._refork_all = True
        # Rollback replay re-runs the dropped supersteps through the
        # re-forked workers; the tracer drops their records so a recovered
        # stream stays identical to a failure-free one.
        if self.tracer is not None:
            self.tracer.on_rollback(self.superstep)

    # -- execution ------------------------------------------------------

    def run(self) -> RunMetrics:
        import multiprocessing
        from multiprocessing import shared_memory

        if self._vertex_compute is None:
            raise RuntimeError("no vertex program attached")
        tracer = self.tracer
        traced = tracer is not None and tracer.enabled
        if traced:
            tracer.event(
                "run.begin",
                cat="engine",
                det={
                    "num_workers": self.num_workers,
                    "num_nodes": self.graph.num_nodes,
                    "num_edges": self.graph.num_edges,
                    "use_voting": False,
                    "partitioning": self.partitioning,
                },
                info={
                    "scheduling": self.scheduling,
                    "max_supersteps": self._max_supersteps,
                },
            )
        start = time.perf_counter()
        self._mpctx = ctx = multiprocessing.get_context("fork")
        w = self.num_workers
        halt_reason = "max_supersteps"
        try:
            for _ in range(w):
                self._segments.append(
                    shared_memory.SharedMemory(create=True, size=self._slab_bytes)
                )
            self._workers = [
                _Worker(wid, self, self._segments) for wid in range(w)
            ]
            for wid in range(w):
                self._spawn_worker(wid, fresh=True)
            halt_reason = self._coordinate()
            self._gather_columns()
            for proc in self._procs:
                proc.join(timeout=30)
        finally:
            for proc in self._procs:
                if proc.is_alive():
                    proc.terminate()
            for conn in self._conns:
                conn.close()
            for seg in self._segments:
                seg.close()
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass
        m = self.metrics
        m.supersteps = self.superstep
        m.wall_seconds = time.perf_counter() - start
        m.result = self.result
        m.halt_reason = halt_reason
        if self._mreg is not None:
            self._mreg.counter("pregel.runs", det=True, halt_reason=halt_reason).inc()
            self._mreg.histogram("pregel.run_seconds").observe(m.wall_seconds)
            self._mreg.gauge("pregel.num_workers").set_max(self.num_workers)
        if traced:
            tracer.event(
                "run.end",
                cat="engine",
                det={
                    "supersteps": m.supersteps,
                    "messages": m.messages,
                    "message_bytes": m.message_bytes,
                    "net_messages": m.net_messages,
                    "net_bytes": m.net_bytes,
                    "broadcast_values": m.broadcast_values,
                    "worker_sent": list(m.worker_sent),
                    "halt_reason": m.halt_reason,
                    "result": m.result,
                },
                info={"wall_seconds": m.wall_seconds},
            )
        return m

    def _spawn_worker(self, wid: int, *, fresh: bool) -> None:
        """Fork worker ``wid`` from the parent's current state.

        ``fresh=False`` replaces a terminated worker during recovery: the
        new process copy-on-write-inherits the parent's restored/replayed
        columns, and its inbox is re-seeded with its partition's slice of
        the in-flight messages (the healthy workers still hold theirs)."""
        ctx = self._mpctx
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=self._workers[wid].main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        if fresh:
            self._conns.append(parent_conn)
            self._procs.append(proc)
        else:
            self._conns[wid] = parent_conn
            self._procs[wid] = proc
            worker_of = self._worker_of
            part = {
                dst: list(msgs)
                for dst, msgs in self._inflight.items()
                if worker_of[dst] == wid
            }
            parent_conn.send(("seed", part))

    def _refork(self) -> None:
        wids = (
            range(self.num_workers) if self._refork_all
            else sorted(self._refork_workers)
        )
        for wid in wids:
            proc = self._procs[wid]
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=10)
            self._conns[wid].close()
            self._spawn_worker(wid, fresh=False)
        for wid in wids:
            self._recv(self._conns[wid])  # ("ready",) after the seed
        self._refork_all = False
        self._refork_workers.clear()

    def _recv(self, conn):
        try:
            reply = conn.recv()
        except EOFError:
            raise RuntimeError("mp worker process died unexpectedly") from None
        if reply[0] == "error":
            raise RuntimeError(f"mp worker failed:\n{reply[1]}")
        return reply

    def _coordinate(self) -> str:
        m = self.metrics
        ft = self.ft
        tracer = self.tracer
        traced = tracer is not None and tracer.enabled
        mreg = self._mreg
        metered = mreg is not None
        instr = traced or metered
        if metered:
            m_steps = mreg.counter("pregel.supersteps", det=True)
            m_messages = mreg.counter("pregel.messages", det=True)
            m_msg_bytes = mreg.counter("pregel.message_bytes", det=True)
            m_net_messages = mreg.counter("pregel.net_messages", det=True)
            m_net_bytes = mreg.counter("pregel.net_bytes", det=True)
            m_broadcasts = mreg.counter("pregel.broadcasts", det=True)
            m_step_s = mreg.histogram("pregel.superstep_seconds")
            m_master_s = mreg.histogram("pregel.phase_seconds", phase="master")
            m_exchange_s = mreg.histogram("pregel.phase_seconds", phase="exchange")
        worker_of = self._worker_of
        sizes = self._codec.sizes
        w = self.num_workers
        while self.superstep < self._max_supersteps:
            # Fault-tolerance boundary: checkpoint if due (pulling fresh
            # columns from the workers), then inject any scheduled crash.
            # Recovery restores/replays parent-side state and flags the
            # affected workers, which are re-forked from it here — before
            # the master runs, exactly the simulator's ordering.
            if ft is not None:
                ft.on_superstep_start()
                if self._refork_all or self._refork_workers:
                    self._refork()
            if instr:
                # Snapshot the ledger *after* any recovery so the superstep
                # record meters exactly this superstep's deltas.
                t_step0 = time.perf_counter()
                s_messages = m.messages
                s_message_bytes = m.message_bytes
                s_net_messages = m.net_messages
                s_net_bytes = m.net_bytes
                s_broadcasts = m.broadcast_values
                if traced:
                    step_ts = tracer.now()
                    s_worker_sent = list(m.worker_sent)
            # Master phase: sees globals aggregated from the previous
            # superstep — exactly the simulator's ordering.
            if self._master_compute is not None:
                self._master_compute(self)
                if self._halt:
                    return "master_halt"
            if ft is not None:
                ft.on_master_done()
            if metered:
                m_master_s.observe(time.perf_counter() - t_step0)
            bcast = dict(self.globals.broadcast)
            for conn in self._conns:
                conn.send(("step", bcast))
            replies = [self._recv(conn) for conn in self._conns]
            step_messages = 0
            step_net = 0
            all_puts: list = []
            all_slots: list = []
            worker_computed = []
            worker_seconds = []
            worker_bytes = []
            for wid, (_, _dir, _inline, counters, puts, slots) in enumerate(replies):
                m.messages += counters["messages"]
                m.message_bytes += counters["bytes"]
                m.net_messages += counters["net_messages"]
                m.net_bytes += counters["net_bytes"]
                m.worker_sent[wid] += counters["sent"]
                step_messages += counters["messages"]
                step_net += counters["net_messages"]
                worker_computed.append(counters["computed"])
                worker_seconds.append(counters["seconds"])
                worker_bytes.append(counters["staged"])
                all_puts.extend(puts)
                all_slots.extend(slots)
            if ft is not None:
                # The simulator meters one (argument-free) delivery account
                # per cross-worker send during the phase; the parent makes
                # the same number of calls, so the FT manager's seeded
                # retry counters come out identical.
                account = ft.account_delivery
                for _ in range(step_net):
                    account()
            # Combiner barrier flush: a stable sort on the birth vid of
            # each per-worker slot reconstructs the simulator's combiner
            # table insertion order (ties = one vertex's sends, already in
            # program order within its worker's slot list).  Metering at
            # flush, on the folded payload — the message that travels.
            combined_parts: list[list] = [[] for _ in range(w)]
            if all_slots:
                all_slots.sort(key=lambda s: s[0])
                for birth, dst, tag, msg in all_slots:
                    size = sizes[tag]
                    m.messages += 1
                    m.message_bytes += size
                    dest = worker_of[dst]
                    if worker_of[birth] != dest:
                        m.net_messages += 1
                        m.net_bytes += size
                        if ft is not None:
                            ft.account_delivery()
                    combined_parts[dest].append((dst, msg))
                step_messages += len(all_slots)
            if self._record_per_superstep:
                m.per_superstep_messages.append(step_messages)
            # Re-fold vertex puts in ascending-vid order: bit-identical to
            # the simulator's sequential fold (float sums included).
            all_puts.sort(key=lambda p: p[2])
            put_reduce = self.globals.put_reduce
            for name, op, _vid, value in all_puts:
                put_reduce(name, op, value)
            directories = [r[1] for r in replies]
            inlines = [r[2] for r in replies]
            if instr:
                t_exchange = time.perf_counter()
            for conn in self._conns:
                conn.send(("exchange", directories, inlines, combined_parts))
            # The exchange barrier: each worker replies ("ready",
            # route_seconds, registry_snapshot | None) — this is where the
            # per-worker registries merge into the parent's.
            worker_route_seconds = []
            for conn in self._conns:
                ready = self._recv(conn)
                worker_route_seconds.append(ready[1] if len(ready) > 1 else 0.0)
                if metered and len(ready) > 2 and ready[2]:
                    mreg.merge_snapshot(ready[2])
            if metered:
                m_exchange_s.observe(time.perf_counter() - t_exchange)
            if ft is not None:
                # Decode this superstep's outbox from the slabs while the
                # segments still hold them: checkpoint payloads and the
                # confined-recovery logs both read it via outbox_view().
                self._inflight = self._decode_outbox(directories, inlines)
                for dst, msg in (pair for part in combined_parts for pair in part):
                    bucket = self._inflight.get(dst)
                    if bucket is None:
                        self._inflight[dst] = [msg]
                    else:
                        bucket.append(msg)
                ft.on_superstep_end()
            self.globals.end_superstep()
            self.superstep += 1
            if metered:
                m_steps.inc()
                m_messages.inc(m.messages - s_messages)
                m_msg_bytes.inc(m.message_bytes - s_message_bytes)
                m_net_messages.inc(m.net_messages - s_net_messages)
                m_net_bytes.inc(m.net_bytes - s_net_bytes)
                m_broadcasts.inc(m.broadcast_values - s_broadcasts)
                m_step_s.observe(time.perf_counter() - t_step0)
            if traced:
                tracer.event(
                    "superstep",
                    cat="engine",
                    ts=step_ts,
                    det={
                        "step": self.superstep - 1,
                        "active": sum(worker_computed),
                        "halted": 0,
                        "messages": m.messages - s_messages,
                        "message_bytes": m.message_bytes - s_message_bytes,
                        "net_messages": m.net_messages - s_net_messages,
                        "net_bytes": m.net_bytes - s_net_bytes,
                        "broadcasts": m.broadcast_values - s_broadcasts,
                        "worker_computed": worker_computed,
                        "worker_sent": [
                            now - then
                            for now, then in zip(m.worker_sent, s_worker_sent)
                        ],
                        "worker_bytes": worker_bytes,
                    },
                    info={
                        "mode": "dense",
                        "frontier": -1,
                        "worker_seconds": worker_seconds,
                        # Real-process identities + per-worker exchange
                        # (route) timings: `gm-pregel profile` ranks
                        # stragglers by actual OS process.  Info-only —
                        # pids differ run to run by construction.
                        "worker_pids": [proc.pid for proc in self._procs],
                        "worker_route_seconds": worker_route_seconds,
                    },
                )
        return "max_supersteps"

    def _decode_outbox(self, directories, inlines) -> dict[int, list]:
        """Parent-side decode of every worker's slabs into one sim-shaped
        ``{dst: msgs}`` map (all destinations, not just one worker's).

        Per-tag stable sender sort reconstructs global send order per
        receiver; receive loops are tag-filtered, so grouping a receiver's
        messages by tag is invisible — the confined replay feeds these
        lists straight to the generated receive code."""
        codec = self._codec
        per_tag: dict[int, list] = {tag: [] for tag in codec.tag_ids}
        for source, directory in enumerate(directories):
            seg_buf = self._segments[source].buf
            for _dest, tag, count, offset, payload_len in directory:
                mid = offset + 4 * count
                pay = mid + 4 * count
                per_tag[tag].append(
                    (
                        np.frombuffer(bytes(seg_buf[offset:mid]), dtype=np.int32),
                        np.frombuffer(bytes(seg_buf[mid:pay]), dtype=np.int32),
                        bytes(seg_buf[pay : pay + payload_len]),
                        count,
                    )
                )
        for entries in inlines:
            for _dest, tag, count, dst_bytes, sender_bytes, payload in entries:
                per_tag[tag].append(
                    (
                        np.frombuffer(dst_bytes, dtype=np.int32),
                        np.frombuffer(sender_bytes, dtype=np.int32),
                        payload,
                        count,
                    )
                )
        outbox: dict[int, list] = {}
        for tag in codec.tag_ids:
            parts = per_tag[tag]
            if not parts:
                continue
            if len(parts) == 1:
                dst_all, snd_all, payload, count = parts[0]
                records = codec.unpack[tag](payload, count)
            else:
                dst_all = np.concatenate([p[0] for p in parts])
                snd_all = np.concatenate([p[1] for p in parts])
                records = []
                for _dst, _snd, payload, count in parts:
                    records.extend(codec.unpack[tag](payload, count))
            by_sender = np.argsort(snd_all, kind="stable")
            order = by_sender[np.argsort(dst_all[by_sender], kind="stable")]
            sorted_dsts = dst_all[order]
            sorted_recs = [records[i] for i in order.tolist()]
            cuts = np.flatnonzero(sorted_dsts[1:] != sorted_dsts[:-1]) + 1
            starts = [0, *cuts.tolist()]
            ends = [*cuts.tolist(), len(sorted_recs)]
            for dst, a, b in zip(sorted_dsts[starts].tolist(), starts, ends):
                bucket = outbox.get(dst)
                if bucket is None:
                    outbox[dst] = sorted_recs[a:b]
                else:
                    bucket.extend(sorted_recs[a:b])
        return outbox

    def _sync_columns(self) -> None:
        """Pull every worker's live partition back into the parent columns."""
        if not self._conns:
            return  # workers not forked yet: the columns hold initial state
        for conn in self._conns:
            conn.send(("snapshot",))
        self._scatter_columns()

    def _gather_columns(self) -> None:
        """Final column pull at end of run (workers exit afterwards)."""
        for conn in self._conns:
            conn.send(("finish",))
        self._scatter_columns()

    def _scatter_columns(self) -> None:
        n = self.graph.num_nodes
        w = self.num_workers
        for wid, conn in enumerate(self._conns):
            reply = self._recv(conn)
            for name, values in reply[1].items():
                column = self._columns[name]
                if isinstance(column, array):
                    column[wid::w] = array(column.typecode, values)
                else:
                    for i, vid in enumerate(range(wid, n, w)):
                        column[vid] = values[i]


class _Worker:
    """One worker process: computes its hash partition, stages outgoing
    messages as per-(destination, tag) slabs in its shared-memory segment
    (folding combined tags into per-(dst, tag) slots instead), and rebuilds
    its inbox from the other workers' slabs after the barrier.

    Constructed in the parent *before* fork, so every heavy structure (the
    graph CSR, property columns, the generated vertex function and its
    environment) is inherited copy-on-write — nothing is pickled.  A
    recovery re-fork reuses the same instance: the replacement process
    inherits the parent's *restored* columns the same way."""

    def __init__(self, wid: int, engine: MPEngine, segments):
        self.wid = wid
        self.engine = engine
        self.segments = segments
        self._current_vertex = -1

    # -- vertex-side ctx API (called by generated code) -----------------

    def send(self, dst: int, msg: tuple) -> None:
        tag = msg[0]
        combiner = self._combiners.get(tag) if self._combiners else None
        if combiner is not None:
            self._fold(dst, tag, msg, combiner, 1)
            return
        stage = self._stage[self._worker_of[dst]][tag]
        stage.dsts.append(dst)
        stage.senders.append(self._current_vertex)
        stage.counts.append(1)
        stage.payload += self._pack[tag](msg)
        self._meter(tag, 1, 1 if self._worker_of[dst] != self.wid else 0)

    def send_nbrs(self, vid: int, msg: tuple) -> None:
        tag = msg[0]
        if self._combiners and tag in self._combiners:
            graph = self.engine.graph
            targets = graph.out_targets[
                graph.out_offsets[vid] : graph.out_offsets[vid + 1]
            ]
            if targets:
                combiner = self._combiners[tag]
                for dst in targets:
                    self._fold(dst, tag, msg, combiner, 0)
                c = self._counters
                c["sent"] += len(targets)
                c["staged"] += self._sizes[tag] * len(targets)
            return
        offsets = self._grp_off[vid]
        deg = offsets[-1] - offsets[0]
        if deg == 0:
            return
        record = self._pack[tag](msg)
        grp_tgt = self._grp_tgt
        for dest in range(self._w):
            a = offsets[dest]
            b = offsets[dest + 1]
            if b > a:
                stage = self._stage[dest][tag]
                stage.dsts.frombytes(grp_tgt[a:b].tobytes())
                stage.senders.append(vid)
                stage.counts.append(b - a)
                stage.payload += record * (b - a)
        own = offsets[self.wid + 1] - offsets[self.wid]
        self._meter(tag, deg, deg - own)

    def send_list(self, dsts: list, msg: tuple) -> None:
        if not dsts:
            return
        tag = msg[0]
        if self._combiners and tag in self._combiners:
            combiner = self._combiners[tag]
            for dst in dsts:
                self._fold(dst, tag, msg, combiner, 0)
            c = self._counters
            c["sent"] += len(dsts)
            c["staged"] += self._sizes[tag] * len(dsts)
            return
        record = self._pack[tag](msg)
        vid = self._current_vertex
        worker_of = self._worker_of
        cross = 0
        for dst in dsts:
            dest = worker_of[dst]
            if dest != self.wid:
                cross += 1
            stage = self._stage[dest][tag]
            stage.dsts.append(dst)
            stage.senders.append(vid)
            stage.counts.append(1)
            stage.payload += record
        self._meter(tag, len(dsts), cross)

    def _fold(self, dst: int, tag: int, msg: tuple, combiner, meter: int) -> None:
        """Combiner send: fold into this worker's (dst, tag) slot, stamped
        with the vid of the slot's first send (the parent's merge key).
        Only the sender's combine work is metered per send — delivered
        traffic is metered at the parent's flush, on the folded payload."""
        if meter:
            c = self._counters
            c["sent"] += 1
            c["staged"] += self._sizes[tag]
        key = (dst, tag)
        slot = self._combined.get(key)
        if slot is not None:
            self._combined[key] = (slot[0], combiner(slot[1], msg))
        else:
            self._combined[key] = (self._current_vertex, msg)

    def put_global(self, name: str, op, value) -> None:
        self._puts.append((name, op, self._current_vertex, value))

    def get_global(self, name: str):
        return self.engine.globals.broadcast[name]

    @property
    def num_nodes(self) -> int:
        return self.engine.graph.num_nodes

    def _meter(self, tag: int, count: int, cross: int) -> None:
        size = self._sizes[tag]
        c = self._counters
        c["messages"] += count
        c["sent"] += count
        c["bytes"] += size * count
        c["staged"] += size * count
        if cross:
            c["net_messages"] += cross
            c["net_bytes"] += size * cross

    # -- process body ---------------------------------------------------

    def _init(self) -> None:
        engine = self.engine
        graph = engine.graph
        n = graph.num_nodes
        self._w = engine.num_workers
        # Per-process registry (built post-fork when the parent meters):
        # snapshots ship back — and reset — with every exchange reply, so
        # each barrier merge carries exactly one superstep's increments.
        # Instruments are re-resolved per bump (the reset drops handles);
        # at once-per-superstep frequency that lookup is noise.
        self._mreg = None
        parent_reg = engine.metrics_registry
        if parent_reg is not None and parent_reg.enabled:
            from ...obs.metrics import MetricsRegistry

            self._mreg = MetricsRegistry()
        self._worker_of = engine._worker_of
        self._combiners = engine._combiners
        codec = engine._codec
        self._pack = codec.pack
        self._unpack = codec.unpack
        self._sizes = codec.sizes
        self._tag_ids = codec.tag_ids
        self._own_vids = list(range(self.wid, n, self._w))
        self._puts: list = []
        self._counters = self._fresh_counters()
        self._inbox: dict[int, list] = {}
        self._combined: dict = {}
        self._stage = [
            {tag: _TagStage() for tag in self._tag_ids} for _ in range(self._w)
        ]
        # Group every vertex's out-neighbor slice by destination worker
        # (stable), so a neighbor broadcast stages one contiguous run per
        # destination.  One vectorized pass over the whole CSR.
        tgt = np.asarray(graph.out_targets, dtype=np.int32)
        if isinstance(self._worker_of, bytes):
            owner = np.frombuffer(self._worker_of, dtype=np.uint8)
        else:
            owner = np.asarray(self._worker_of, dtype=np.int64)
        nbr_owner = owner[tgt].astype(np.int64)
        degrees = np.diff(np.asarray(graph.out_offsets, dtype=np.int64))
        src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        order = np.lexsort((nbr_owner, src))
        self._grp_tgt = tgt[order]
        counts = np.bincount(src * self._w + nbr_owner, minlength=n * self._w)
        counts = counts.reshape(n, self._w)
        grp_off = np.empty((n, self._w + 1), dtype=np.int64)
        grp_off[:, 0] = np.asarray(graph.out_offsets[:-1], dtype=np.int64)
        np.cumsum(counts, axis=1, out=grp_off[:, 1:])
        grp_off[:, 1:] += grp_off[:, :1]
        self._grp_off = grp_off.tolist()

    @staticmethod
    def _fresh_counters() -> dict:
        return dict(
            messages=0,
            sent=0,
            bytes=0,
            net_messages=0,
            net_bytes=0,
            staged=0,
            computed=0,
            seconds=0.0,
        )

    def main(self, conn) -> None:
        try:
            self._init()
            engine = self.engine
            compute = engine._vertex_compute
            broadcast = engine.globals.broadcast
            empty = _EMPTY
            while True:
                cmd = conn.recv()
                kind = cmd[0]
                if kind == "step":
                    broadcast.clear()
                    broadcast.update(cmd[1])
                    inbox = self._inbox
                    self._inbox = {}
                    t0 = time.perf_counter()
                    for vid in self._own_vids:
                        self._current_vertex = vid
                        compute(self, vid, inbox.get(vid, empty))
                    self._current_vertex = -1
                    c = self._counters
                    c["computed"] = len(self._own_vids)
                    c["seconds"] = time.perf_counter() - t0
                    if self._mreg is not None:
                        wid = str(self.wid)
                        self._mreg.histogram(
                            "mp.worker_step_seconds", worker=wid
                        ).observe(c["seconds"])
                        self._mreg.counter(
                            "mp.worker_staged_bytes", worker=wid
                        ).inc(c["staged"])
                    directory, inline = self._write_slabs()
                    slots = [
                        (birth, dst, tag, msg)
                        for (dst, tag), (birth, msg) in self._combined.items()
                    ]
                    self._combined.clear()
                    conn.send(
                        ("stat", directory, inline, c, self._puts, slots)
                    )
                    self._counters = self._fresh_counters()
                    self._puts = []
                elif kind == "exchange":
                    t0 = time.perf_counter()
                    self._read_slabs(cmd[1], cmd[2])
                    inbox = self._inbox
                    for dst, msg in cmd[3][self.wid]:
                        bucket = inbox.get(dst)
                        if bucket is None:
                            inbox[dst] = [msg]
                        else:
                            bucket.append(msg)
                    route_s = time.perf_counter() - t0
                    snap = None
                    if self._mreg is not None:
                        self._mreg.histogram(
                            "mp.worker_route_seconds", worker=str(self.wid)
                        ).observe(route_s)
                        snap = self._mreg.snapshot(reset=True)
                    conn.send(("ready", route_s, snap))
                elif kind == "snapshot":
                    conn.send(("columns", self._gather()))
                elif kind == "seed":
                    # Recovery re-fork: install this partition's slice of
                    # the in-flight messages as the pending inbox.
                    self._inbox = cmd[1]
                    conn.send(("ready",))
                elif kind == "finish":
                    conn.send(("columns", self._gather()))
                    return
                else:
                    raise RuntimeError(f"unknown command {kind!r}")
        except BaseException:
            try:
                conn.send(("error", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                pass
        finally:
            conn.close()

    def _write_slabs(self):
        """Flush the staged per-(destination, tag) slabs into this worker's
        shared-memory segment; anything past its capacity travels inline
        over the pipe instead (correctness never depends on the size)."""
        seg = self.segments[self.wid]
        buf = seg.buf
        capacity = seg.size
        offset = 0
        directory = []
        inline = []
        for dest in range(self._w):
            stages = self._stage[dest]
            for tag in self._tag_ids:
                stage = stages[tag]
                count = len(stage.dsts)
                if count == 0:
                    continue
                dst_bytes = stage.dsts.tobytes()
                sender_bytes = np.repeat(
                    np.asarray(stage.senders, dtype=np.int32),
                    np.asarray(stage.counts, dtype=np.int64),
                ).tobytes()
                payload = bytes(stage.payload)
                total = len(dst_bytes) + len(sender_bytes) + len(payload)
                if offset + total <= capacity:
                    buf[offset : offset + len(dst_bytes)] = dst_bytes
                    mid = offset + len(dst_bytes)
                    buf[mid : mid + len(sender_bytes)] = sender_bytes
                    pay = mid + len(sender_bytes)
                    buf[pay : pay + len(payload)] = payload
                    directory.append((dest, tag, count, offset, len(payload)))
                    offset += total
                else:
                    inline.append((dest, tag, count, dst_bytes, sender_bytes, payload))
                self._stage[dest][tag] = _TagStage()
        return directory, inline

    def _read_slabs(self, directories, inlines) -> None:
        """Build next superstep's inbox from every worker's slabs destined
        here, merged per tag by sender id (stable) — the simulator's exact
        per-receiver order."""
        wid = self.wid
        per_tag: dict[int, list] = {tag: [] for tag in self._tag_ids}
        for source, directory in enumerate(directories):
            seg_buf = self.segments[source].buf
            for dest, tag, count, offset, payload_len in directory:
                if dest != wid:
                    continue
                mid = offset + 4 * count
                pay = mid + 4 * count
                dst = np.frombuffer(bytes(seg_buf[offset:mid]), dtype=np.int32)
                snd = np.frombuffer(bytes(seg_buf[mid:pay]), dtype=np.int32)
                payload = bytes(seg_buf[pay : pay + payload_len])
                per_tag[tag].append((dst, snd, payload, count))
        for source, entries in enumerate(inlines):
            for dest, tag, count, dst_bytes, sender_bytes, payload in entries:
                if dest != wid:
                    continue
                per_tag[tag].append(
                    (
                        np.frombuffer(dst_bytes, dtype=np.int32),
                        np.frombuffer(sender_bytes, dtype=np.int32),
                        payload,
                        count,
                    )
                )
        inbox = self._inbox
        for tag in self._tag_ids:
            parts = per_tag[tag]
            if not parts:
                continue
            if len(parts) == 1:
                dst_all, snd_all, payload, count = parts[0]
                records = self._unpack[tag](payload, count)
            else:
                dst_all = np.concatenate([p[0] for p in parts])
                snd_all = np.concatenate([p[1] for p in parts])
                records = []
                for _dst, _snd, payload, count in parts:
                    records.extend(self._unpack[tag](payload, count))
            # Two stable sorts: first by sender (reconstructing the
            # simulator's global send order), then by receiver (grouping
            # bucket fills into list slices instead of per-record appends).
            by_sender = np.argsort(snd_all, kind="stable")
            order = by_sender[np.argsort(dst_all[by_sender], kind="stable")]
            sorted_dsts = dst_all[order]
            sorted_recs = [records[i] for i in order.tolist()]
            cuts = np.flatnonzero(sorted_dsts[1:] != sorted_dsts[:-1]) + 1
            starts = [0, *cuts.tolist()]
            ends = [*cuts.tolist(), len(sorted_recs)]
            for dst, a, b in zip(sorted_dsts[starts].tolist(), starts, ends):
                bucket = inbox.get(dst)
                if bucket is None:
                    inbox[dst] = sorted_recs[a:b]
                else:
                    bucket.extend(sorted_recs[a:b])

    def _gather(self) -> dict:
        engine = self.engine
        n = engine.graph.num_nodes
        w = self._w
        out = {}
        for name, column in engine._columns.items():
            if isinstance(column, array):
                out[name] = column[self.wid :: w].tolist()
            else:
                out[name] = [column[v] for v in range(self.wid, n, w)]
        return out


class MPBackend(ExecutionBackend):
    name = "mp"
    supports = {
        "ft": True,
        "net": False,
        "mem": False,
        "supervisor": False,
        "tracer": True,
        "combiners": True,
        "voting": False,
        "track_makespan": False,
        "range_partitioning": False,
    }

    def build_columns(self, schema, graph, fields, args):
        return build_typed_columns(schema, fields)

    def create_engine(
        self,
        graph: Graph,
        *,
        master_compute: Callable,
        message_size: Callable[[tuple], int],
        schema,
        engine_opts: dict,
    ) -> MPEngine:
        return MPEngine(
            graph,
            schema=schema,
            master_compute=master_compute,
            message_size=message_size,
            **engine_opts,
        )

    def column_values(self, column) -> list:
        return column.tolist() if isinstance(column, array) else column
