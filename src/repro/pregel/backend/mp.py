"""Multiprocessing backend: real worker processes + shared-memory slabs.

The simulator *models* ``num_workers`` machines inside one process; this
backend makes them real: one forked OS process per worker, each computing
its hash partition of the vertices every superstep, exchanging the
columnar backend's typed message slabs through ``multiprocessing.shared_memory``
segments, and synchronizing at the same batched-routing barrier — here an
actual parent-coordinated barrier rather than a simulated one.

Determinism (the whole point of the parity contract) is preserved by two
mechanisms:

* every slab record carries its **sender id**; a receiving worker merges
  the incoming per-source slabs with a stable sort on sender, which
  reconstructs the simulator's per-receiver message order exactly (global
  send order = ascending sender id, since workers scan their partitions in
  ascending order and partitions interleave);
* vertex **global-object puts** ship to the parent as ``(vid, value)``
  streams and are re-folded sequentially in ascending-vid order, so even
  non-associative float reductions (a PageRank error sum) come out
  bit-identical to the single-process fold.

The backend refuses — with :class:`BackendUnsupported` — every feature
whose semantics it cannot reproduce across process boundaries: fault
tolerance, the simulated transport, supervision, memory budgets, recording
tracers, combiners, vote-to-halt, range partitioning, and makespan
tracking.  Parity therefore holds on the full ``parity_key()`` against the
sim/columnar backends at equal worker counts, and on everything except the
per-worker ``worker_sent`` split across different worker counts.
"""

from __future__ import annotations

import random
import time
import traceback
from array import array
from typing import Any, Callable

import numpy as np

from ..globalmap import GlobalObjectMap
from ..graph import Graph
from ..runtime import RunMetrics
from .base import BackendUnsupported, ExecutionBackend
from .codec import MessageCodec
from .columnar import build_typed_columns

_EMPTY: tuple = ()


def mp_available() -> bool:
    """True when the platform can run this backend (fork + shared memory)."""
    try:
        import multiprocessing
        from multiprocessing import shared_memory  # noqa: F401

        return "fork" in multiprocessing.get_all_start_methods()
    except (ImportError, OSError):
        return False


def _reject(feature: str, hint: str) -> None:
    raise BackendUnsupported(
        f"the mp backend does not support {feature}: {hint} "
        "(run with --backend sim or columnar)"
    )


class _TagStage:
    """Outgoing messages for one (destination worker, tag): a destination
    array, sender run-lengths, and the packed payload slab."""

    __slots__ = ("dsts", "senders", "counts", "payload")

    def __init__(self):
        self.dsts = array("i")
        self.senders: list[int] = []
        self.counts: list[int] = []
        self.payload = bytearray()


class MPEngine:
    """Parent-side coordinator: runs the master, merges global puts, and
    drives the worker barrier.  API-compatible with PregelEngine where the
    generated master/compiled-program wiring needs it."""

    def __init__(
        self,
        graph: Graph,
        *,
        schema,
        vertex_compute: Callable | None = None,
        master_compute: Callable | None = None,
        message_size: Callable[[tuple], int] | None = None,
        num_workers: int = 4,
        seed: int = 17,
        max_supersteps: int = 1_000_000,
        use_voting: bool = False,
        record_per_superstep: bool = False,
        combiners: dict | None = None,
        partitioning: str = "hash",
        track_makespan: bool = False,
        ft=None,
        scheduling: str = "frontier",
        frontier_threshold: float = 0.25,
        tracer=None,
        transport=None,
        supervisor=None,
        mem=None,
        mp_slab_bytes: int | None = None,
    ):
        if use_voting:
            _reject("vote_to_halt", "generated programs are master-driven")
        if combiners:
            _reject("combiners", "sender-side folding is per-process state")
        if ft is not None:
            _reject("fault tolerance", "checkpoints cover one address space")
        if transport is not None:
            _reject("the simulated transport", "real pipes carry the slabs")
        if supervisor is not None:
            _reject("supervision", "worker processes have no heartbeat probe")
        if mem is not None:
            _reject("memory budgets", "per-process accounting is not wired up")
        if tracer is not None and tracer.enabled:
            _reject("recording tracers", "events would interleave across processes")
        if track_makespan:
            _reject("track_makespan", "wall time of real workers replaces it")
        if partitioning != "hash":
            _reject(f"'{partitioning}' partitioning", "workers own hash partitions")
        if scheduling not in ("frontier", "dense"):
            raise ValueError(
                f"unknown scheduling '{scheduling}' (expected 'frontier' or 'dense')"
            )
        if schema is None:
            raise BackendUnsupported(
                "the mp backend needs a program schema (compiled programs only)"
            )
        if not mp_available():
            raise BackendUnsupported(
                "the mp backend needs fork start-method and "
                "multiprocessing.shared_memory, unavailable on this platform"
            )
        self.graph = graph
        self.schema = schema
        self.scheduling = scheduling
        self.num_workers = max(1, num_workers)
        self.rng = random.Random(seed)
        self.globals = GlobalObjectMap()
        self.metrics = RunMetrics(backend="mp")
        self.metrics.worker_sent = [0] * self.num_workers
        self.superstep = 0
        self.result: Any = None
        self.partitioning = "hash"
        self._halt = False
        self._vertex_compute = vertex_compute
        self._master_compute = master_compute
        self._message_size = message_size
        self._max_supersteps = max_supersteps
        self._record_per_superstep = record_per_superstep
        self._codec = MessageCodec(schema)
        w = self.num_workers
        self._worker_of = bytes(v % w for v in range(graph.num_nodes)) if w <= 256 else [
            v % w for v in range(graph.num_nodes)
        ]
        self._columns: dict[str, Any] = {}
        self.ft = None
        self.tracer = None
        if mp_slab_bytes is None:
            per_record = 8 + self.schema.max_message_size()
            traffic = (graph.num_edges * 2) // w + graph.num_nodes
            mp_slab_bytes = max(1 << 20, traffic * per_record)
        self._slab_bytes = mp_slab_bytes

    # -- master-side API (GeneratedMaster's ctx) ------------------------

    def get_agg(self, name: str, default: Any = None) -> Any:
        return self.globals.get_aggregated(name, default)

    def put_broadcast(self, name: str, value: Any) -> None:
        self.globals.put_broadcast(name, value)
        self.metrics.broadcast_values += 1

    def halt(self, result: Any = None) -> None:
        self._halt = True
        if result is not None:
            self.result = result

    def set_result(self, value: Any) -> None:
        self.result = value

    def pick_random_node(self) -> int:
        return self.rng.randrange(self.graph.num_nodes)

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    # -- execution ------------------------------------------------------

    def run(self) -> RunMetrics:
        import multiprocessing
        from multiprocessing import shared_memory

        if self._vertex_compute is None:
            raise RuntimeError("no vertex program attached")
        start = time.perf_counter()
        ctx = multiprocessing.get_context("fork")
        w = self.num_workers
        segments = []
        conns = []
        procs = []
        halt_reason = "max_supersteps"
        try:
            for _ in range(w):
                segments.append(
                    shared_memory.SharedMemory(create=True, size=self._slab_bytes)
                )
            workers = [
                _Worker(wid, self, segments) for wid in range(w)
            ]
            for wid in range(w):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                conns.append(parent_conn)
                proc = ctx.Process(
                    target=workers[wid].main, args=(child_conn,), daemon=True
                )
                proc.start()
                child_conn.close()
                procs.append(proc)
            halt_reason = self._coordinate(conns)
            self._gather_columns(conns)
            for proc in procs:
                proc.join(timeout=30)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for conn in conns:
                conn.close()
            for seg in segments:
                seg.close()
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass
        m = self.metrics
        m.supersteps = self.superstep
        m.wall_seconds = time.perf_counter() - start
        m.result = self.result
        m.halt_reason = halt_reason
        return m

    def _recv(self, conn):
        try:
            reply = conn.recv()
        except EOFError:
            raise RuntimeError("mp worker process died unexpectedly") from None
        if reply[0] == "error":
            raise RuntimeError(f"mp worker failed:\n{reply[1]}")
        return reply

    def _coordinate(self, conns) -> str:
        m = self.metrics
        while self.superstep < self._max_supersteps:
            # Master phase: sees globals aggregated from the previous
            # superstep — exactly the simulator's ordering.
            if self._master_compute is not None:
                self._master_compute(self)
                if self._halt:
                    return "master_halt"
            bcast = dict(self.globals.broadcast)
            for conn in conns:
                conn.send(("step", bcast))
            replies = [self._recv(conn) for conn in conns]
            step_messages = 0
            all_puts: list = []
            for wid, (_, _dir, _inline, counters, puts) in enumerate(replies):
                m.messages += counters["messages"]
                m.message_bytes += counters["bytes"]
                m.net_messages += counters["net_messages"]
                m.net_bytes += counters["net_bytes"]
                m.worker_sent[wid] += counters["sent"]
                step_messages += counters["messages"]
                all_puts.extend(puts)
            if self._record_per_superstep:
                m.per_superstep_messages.append(step_messages)
            # Re-fold vertex puts in ascending-vid order: bit-identical to
            # the simulator's sequential fold (float sums included).
            all_puts.sort(key=lambda p: p[2])
            put_reduce = self.globals.put_reduce
            for name, op, _vid, value in all_puts:
                put_reduce(name, op, value)
            directories = [r[1] for r in replies]
            inlines = [r[2] for r in replies]
            for conn in conns:
                conn.send(("exchange", directories, inlines))
            for conn in conns:
                self._recv(conn)
            self.globals.end_superstep()
            self.superstep += 1
        return "max_supersteps"

    def _gather_columns(self, conns) -> None:
        """Pull each worker's partition of every property column back into
        the parent's columns, which RunResult outputs read."""
        for conn in conns:
            conn.send(("finish",))
        n = self.graph.num_nodes
        w = self.num_workers
        for wid, conn in enumerate(conns):
            reply = self._recv(conn)
            for name, values in reply[1].items():
                column = self._columns[name]
                if isinstance(column, array):
                    column[wid::w] = array(column.typecode, values)
                else:
                    for i, vid in enumerate(range(wid, n, w)):
                        column[vid] = values[i]


class _Worker:
    """One worker process: computes its hash partition, stages outgoing
    messages as per-(destination, tag) slabs in its shared-memory segment,
    and rebuilds its inbox from the other workers' slabs after the barrier.

    Constructed in the parent *before* fork, so every heavy structure (the
    graph CSR, property columns, the generated vertex function and its
    environment) is inherited copy-on-write — nothing is pickled."""

    def __init__(self, wid: int, engine: MPEngine, segments):
        self.wid = wid
        self.engine = engine
        self.segments = segments
        self._current_vertex = -1

    # -- vertex-side ctx API (called by generated code) -----------------

    def send(self, dst: int, msg: tuple) -> None:
        tag = msg[0]
        stage = self._stage[self._worker_of[dst]][tag]
        stage.dsts.append(dst)
        stage.senders.append(self._current_vertex)
        stage.counts.append(1)
        stage.payload += self._pack[tag](msg)
        self._meter(tag, 1, 1 if self._worker_of[dst] != self.wid else 0)

    def send_nbrs(self, vid: int, msg: tuple) -> None:
        offsets = self._grp_off[vid]
        deg = offsets[-1] - offsets[0]
        if deg == 0:
            return
        tag = msg[0]
        record = self._pack[tag](msg)
        grp_tgt = self._grp_tgt
        for dest in range(self._w):
            a = offsets[dest]
            b = offsets[dest + 1]
            if b > a:
                stage = self._stage[dest][tag]
                stage.dsts.frombytes(grp_tgt[a:b].tobytes())
                stage.senders.append(vid)
                stage.counts.append(b - a)
                stage.payload += record * (b - a)
        own = offsets[self.wid + 1] - offsets[self.wid]
        self._meter(tag, deg, deg - own)

    def send_list(self, dsts: list, msg: tuple) -> None:
        if not dsts:
            return
        tag = msg[0]
        record = self._pack[tag](msg)
        vid = self._current_vertex
        worker_of = self._worker_of
        cross = 0
        for dst in dsts:
            dest = worker_of[dst]
            if dest != self.wid:
                cross += 1
            stage = self._stage[dest][tag]
            stage.dsts.append(dst)
            stage.senders.append(vid)
            stage.counts.append(1)
            stage.payload += record
        self._meter(tag, len(dsts), cross)

    def put_global(self, name: str, op, value) -> None:
        self._puts.append((name, op, self._current_vertex, value))

    def get_global(self, name: str):
        return self.engine.globals.broadcast[name]

    @property
    def num_nodes(self) -> int:
        return self.engine.graph.num_nodes

    def _meter(self, tag: int, count: int, cross: int) -> None:
        size = self._sizes[tag]
        c = self._counters
        c["messages"] += count
        c["sent"] += count
        c["bytes"] += size * count
        if cross:
            c["net_messages"] += cross
            c["net_bytes"] += size * cross

    # -- process body ---------------------------------------------------

    def _init(self) -> None:
        engine = self.engine
        graph = engine.graph
        n = graph.num_nodes
        self._w = engine.num_workers
        self._worker_of = engine._worker_of
        codec = engine._codec
        self._pack = codec.pack
        self._unpack = codec.unpack
        self._sizes = codec.sizes
        self._tag_ids = codec.tag_ids
        self._own_vids = list(range(self.wid, n, self._w))
        self._puts: list = []
        self._counters = dict(messages=0, sent=0, bytes=0, net_messages=0, net_bytes=0)
        self._inbox: dict[int, list] = {}
        self._stage = [
            {tag: _TagStage() for tag in self._tag_ids} for _ in range(self._w)
        ]
        # Group every vertex's out-neighbor slice by destination worker
        # (stable), so a neighbor broadcast stages one contiguous run per
        # destination.  One vectorized pass over the whole CSR.
        tgt = np.asarray(graph.out_targets, dtype=np.int32)
        if isinstance(self._worker_of, bytes):
            owner = np.frombuffer(self._worker_of, dtype=np.uint8)
        else:
            owner = np.asarray(self._worker_of, dtype=np.int64)
        nbr_owner = owner[tgt].astype(np.int64)
        degrees = np.diff(np.asarray(graph.out_offsets, dtype=np.int64))
        src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        order = np.lexsort((nbr_owner, src))
        self._grp_tgt = tgt[order]
        counts = np.bincount(src * self._w + nbr_owner, minlength=n * self._w)
        counts = counts.reshape(n, self._w)
        grp_off = np.empty((n, self._w + 1), dtype=np.int64)
        grp_off[:, 0] = np.asarray(graph.out_offsets[:-1], dtype=np.int64)
        np.cumsum(counts, axis=1, out=grp_off[:, 1:])
        grp_off[:, 1:] += grp_off[:, :1]
        self._grp_off = grp_off.tolist()

    def main(self, conn) -> None:
        try:
            self._init()
            engine = self.engine
            compute = engine._vertex_compute
            broadcast = engine.globals.broadcast
            empty = _EMPTY
            while True:
                cmd = conn.recv()
                kind = cmd[0]
                if kind == "step":
                    broadcast.clear()
                    broadcast.update(cmd[1])
                    inbox = self._inbox
                    self._inbox = {}
                    for vid in self._own_vids:
                        self._current_vertex = vid
                        compute(self, vid, inbox.get(vid, empty))
                    self._current_vertex = -1
                    directory, inline = self._write_slabs()
                    conn.send(
                        ("stat", directory, inline, self._counters, self._puts)
                    )
                    self._counters = dict(
                        messages=0, sent=0, bytes=0, net_messages=0, net_bytes=0
                    )
                    self._puts = []
                elif kind == "exchange":
                    self._read_slabs(cmd[1], cmd[2])
                    conn.send(("ready",))
                elif kind == "finish":
                    conn.send(("columns", self._gather()))
                    return
                else:
                    raise RuntimeError(f"unknown command {kind!r}")
        except BaseException:
            try:
                conn.send(("error", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                pass
        finally:
            conn.close()

    def _write_slabs(self):
        """Flush the staged per-(destination, tag) slabs into this worker's
        shared-memory segment; anything past its capacity travels inline
        over the pipe instead (correctness never depends on the size)."""
        seg = self.segments[self.wid]
        buf = seg.buf
        capacity = seg.size
        offset = 0
        directory = []
        inline = []
        for dest in range(self._w):
            stages = self._stage[dest]
            for tag in self._tag_ids:
                stage = stages[tag]
                count = len(stage.dsts)
                if count == 0:
                    continue
                dst_bytes = stage.dsts.tobytes()
                sender_bytes = np.repeat(
                    np.asarray(stage.senders, dtype=np.int32),
                    np.asarray(stage.counts, dtype=np.int64),
                ).tobytes()
                payload = bytes(stage.payload)
                total = len(dst_bytes) + len(sender_bytes) + len(payload)
                if offset + total <= capacity:
                    buf[offset : offset + len(dst_bytes)] = dst_bytes
                    mid = offset + len(dst_bytes)
                    buf[mid : mid + len(sender_bytes)] = sender_bytes
                    pay = mid + len(sender_bytes)
                    buf[pay : pay + len(payload)] = payload
                    directory.append((dest, tag, count, offset, len(payload)))
                    offset += total
                else:
                    inline.append((dest, tag, count, dst_bytes, sender_bytes, payload))
                self._stage[dest][tag] = _TagStage()
        return directory, inline

    def _read_slabs(self, directories, inlines) -> None:
        """Build next superstep's inbox from every worker's slabs destined
        here, merged per tag by sender id (stable) — the simulator's exact
        per-receiver order."""
        wid = self.wid
        per_tag: dict[int, list] = {tag: [] for tag in self._tag_ids}
        for source, directory in enumerate(directories):
            seg_buf = self.segments[source].buf
            for dest, tag, count, offset, payload_len in directory:
                if dest != wid:
                    continue
                mid = offset + 4 * count
                pay = mid + 4 * count
                dst = np.frombuffer(bytes(seg_buf[offset:mid]), dtype=np.int32)
                snd = np.frombuffer(bytes(seg_buf[mid:pay]), dtype=np.int32)
                payload = bytes(seg_buf[pay : pay + payload_len])
                per_tag[tag].append((dst, snd, payload, count))
        for source, entries in enumerate(inlines):
            for dest, tag, count, dst_bytes, sender_bytes, payload in entries:
                if dest != wid:
                    continue
                per_tag[tag].append(
                    (
                        np.frombuffer(dst_bytes, dtype=np.int32),
                        np.frombuffer(sender_bytes, dtype=np.int32),
                        payload,
                        count,
                    )
                )
        inbox = self._inbox
        for tag in self._tag_ids:
            parts = per_tag[tag]
            if not parts:
                continue
            if len(parts) == 1:
                dst_all, snd_all, payload, count = parts[0]
                records = self._unpack[tag](payload, count)
            else:
                dst_all = np.concatenate([p[0] for p in parts])
                snd_all = np.concatenate([p[1] for p in parts])
                records = []
                for _dst, _snd, payload, count in parts:
                    records.extend(self._unpack[tag](payload, count))
            # Two stable sorts: first by sender (reconstructing the
            # simulator's global send order), then by receiver (grouping
            # bucket fills into list slices instead of per-record appends).
            by_sender = np.argsort(snd_all, kind="stable")
            order = by_sender[np.argsort(dst_all[by_sender], kind="stable")]
            sorted_dsts = dst_all[order]
            sorted_recs = [records[i] for i in order.tolist()]
            cuts = np.flatnonzero(sorted_dsts[1:] != sorted_dsts[:-1]) + 1
            starts = [0, *cuts.tolist()]
            ends = [*cuts.tolist(), len(sorted_recs)]
            for dst, a, b in zip(sorted_dsts[starts].tolist(), starts, ends):
                bucket = inbox.get(dst)
                if bucket is None:
                    inbox[dst] = sorted_recs[a:b]
                else:
                    bucket.extend(sorted_recs[a:b])

    def _gather(self) -> dict:
        engine = self.engine
        n = engine.graph.num_nodes
        w = self._w
        out = {}
        for name, column in engine._columns.items():
            if isinstance(column, array):
                out[name] = column[self.wid :: w].tolist()
            else:
                out[name] = [column[v] for v in range(self.wid, n, w)]
        return out


class MPBackend(ExecutionBackend):
    name = "mp"
    supports = {
        "ft": False,
        "net": False,
        "mem": False,
        "supervisor": False,
        "tracer": False,
        "combiners": False,
        "voting": False,
        "track_makespan": False,
        "range_partitioning": False,
    }

    def build_columns(self, schema, graph, fields, args):
        return build_typed_columns(schema, fields)

    def create_engine(
        self,
        graph: Graph,
        *,
        master_compute: Callable,
        message_size: Callable[[tuple], int],
        schema,
        engine_opts: dict,
    ) -> MPEngine:
        return MPEngine(
            graph,
            schema=schema,
            master_compute=master_compute,
            message_size=message_size,
            **engine_opts,
        )

    def column_values(self, column) -> list:
        return column.tolist() if isinstance(column, array) else column
