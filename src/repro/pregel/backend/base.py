"""The pluggable execution-backend interface.

A backend decides the *physical* execution of a compiled program — how
vertex properties are stored, how messages are represented in flight, and
which engine drives the superstep loop — while the logical model (the IR,
the generated vertex/master code, the metrics ledger) stays fixed.  Every
backend must be observationally identical on ``RunMetrics.parity_key()``
and on program outputs; they may only differ in wall time and memory.

``CompiledProgram.make_engine(backend=...)`` drives the three hooks in
order: ``build_columns`` converts the list-typed property columns into the
backend's storage, ``create_engine`` instantiates the engine, and
``column_values`` converts a column back into a plain list for outputs.
"""

from __future__ import annotations

from typing import Any, Callable

from ..graph import Graph


class BackendUnsupported(ValueError):
    """A feature composition the selected backend deliberately refuses.

    Backends that cannot honor a requested feature (fault tolerance on the
    multiprocessing backend, say) must raise this instead of silently
    computing something different — a clean usage error, never a silent
    wrong answer.
    """


class ExecutionBackend:
    """One physical execution strategy for compiled programs."""

    #: registry key and the value reported in ``RunMetrics.backend``.
    name: str = ""

    #: robustness features this backend honors (documentation + tests):
    #: feature name -> True (full support) / "fallback" (works, but the
    #: typed fast path is bypassed) / False (BackendUnsupported).
    supports: dict[str, Any] = {}

    def build_columns(
        self, schema, graph: Graph, fields: dict[str, list], args: dict
    ) -> dict[str, Any]:
        """Convert freshly-built list columns into backend storage."""
        return fields

    def create_engine(
        self,
        graph: Graph,
        *,
        master_compute: Callable,
        message_size: Callable[[tuple], int],
        schema,
        engine_opts: dict,
    ):
        """Instantiate this backend's engine (PregelEngine-compatible:
        ``.globals``, ``._vertex_compute``, ``.ft``, ``.metrics``,
        ``.run()``).  Raises :class:`BackendUnsupported` for feature
        compositions the backend refuses."""
        raise NotImplementedError

    def column_values(self, column) -> list:
        """A plain list view of one property column (for RunResult outputs)."""
        return column
