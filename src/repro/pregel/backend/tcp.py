"""Real TCP (loopback) slab exchange for the mp backend.

``--transport tcp`` replaces the shared-memory *cross-worker* data plane
with actual sockets: every worker owns a loopback listening socket (bound
in the parent before the fork so the full port map is known to every
process), and each exchange round moves the columnar message slabs
between workers as length-prefixed frames over real kernel TCP buffers.
Worker-local slabs and the parent's checkpoint decode keep using the
shared-memory segments — the sockets carry exactly the traffic that
would cross a network on a real cluster.

The protocol deliberately mirrors :mod:`repro.pregel.net`'s reliable
delivery discipline, applied to a real channel instead of the simulated
one:

* **per-destination sequence numbers** — every data frame a worker sends
  to a given peer carries a monotonically increasing sequence number for
  that (sender, destination) stream, stamped with the sender's fork
  *epoch* so a re-forked worker starts a fresh stream;
* **ack / bounded retransmit with exponential backoff** — the receiver
  acks every accepted frame on the same connection; an unacked frame is
  retransmitted after ``ack_base * 2**attempt`` seconds (metered in
  ``tcp.retransmits`` / ``tcp.backoff_units``, capped like the simulated
  transport's backoff shift) up to a bounded attempt count;
* **dedup + reorder accounting** — a per-(sender, epoch) seen-set drops
  duplicate deliveries (an ack raced a retransmit timer) and re-acks
  them (``tcp.dedup_hits``); sequence gaps are metered as
  ``tcp.reorders``.  The seen-set persists across supersteps, so a
  retransmission that straggles into the *next* exchange round is
  recognized and re-acked instead of polluting the new inbox;
* **checksum-discard-unacked** — every frame ends in a CRC32 over its
  header and body; a corrupt frame is dropped without an ack
  (``tcp.checksum_failures``) and the sender's retransmission recovers
  it, exactly the simulated channel's corruption contract.

Failure classification is the part simulation cannot exercise: a peer
whose listening socket is gone fails the connect with ECONNREFUSED
(``"refused"`` — a netsplit), a peer that died mid-connection surfaces
ECONNRESET / EPIPE (``"reset"``), and a peer that is merely too slow
exhausts the per-peer deadline (``"timeout"`` — a slowlink or a hang).
The worker abandons the exchange on the first classified failure,
discards the partial inbox, and reports ``{peer: cause}`` to the parent,
which folds the reports into a culprit and escalates through the
ordinary ``ft.recover_worker`` → capped-restart → ``unrecoverable``
degradation path.  Frame arrival order never reaches the algorithm: the
receiver hands complete per-(source, tag) slab parts to the same
stable-sender-sort merge the shared-memory path uses, so shm and tcp
runs are bit-identical on ``parity_key()`` and outputs by construction.
"""

from __future__ import annotations

import errno
import select
import socket
import struct
import time
import zlib

#: frame header: total_length, src wid, src epoch, seq, kind, tag, count
_HDR = struct.Struct("!IIIIIII")
_CRC = struct.Struct("!I")
_KIND_DATA = 0
_KIND_ACK = 1

#: selector tick — how often the exchange loop re-checks timers while
#: waiting for socket readiness.
_TICK = 0.02

#: retransmit timer base; attempt ``k`` waits ``_ACK_BASE * 2**k``.
_ACK_BASE = 0.05
#: cap on the metered backoff shift, mirroring the simulated transport.
_MAX_BACKOFF_SHIFT = 16
#: bounded retransmit: a frame unacked after this many resends fails the
#: peer with cause="timeout" instead of retrying forever.
_MAX_RETRANSMITS = 6
#: bounded reconnect: a connection refused/reset this many times fails
#: the peer with its connection-level cause.
_MAX_CONNECT_ATTEMPTS = 4

_LISTEN_BACKLOG = 64


def bind_listener() -> socket.socket:
    """Bind a fresh loopback listening socket on an ephemeral port.

    Called in the *parent* before (re)forking a worker so the port map is
    complete before any child runs; the child inherits the socket across
    the fork and the parent closes its own copy immediately after, so a
    worker-side ``close_listener()`` (the netsplit fault) really closes
    the kernel-level listener and peers see ECONNREFUSED."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.bind(("127.0.0.1", 0))
    sock.listen(_LISTEN_BACKLOG)
    return sock


def pack_frame(
    src: int, epoch: int, seq: int, kind: int, tag: int, count: int, body: bytes
) -> bytes:
    length = _HDR.size + len(body) + _CRC.size
    head = _HDR.pack(length, src, epoch, seq, kind, tag, count)
    crc = zlib.crc32(head[4:] + body) & 0xFFFFFFFF
    return head + body + _CRC.pack(crc)


def parse_frames(buf: bytearray) -> list:
    """Split complete frames off ``buf`` (mutated in place).

    Returns ``(crc_ok, src, epoch, seq, kind, tag, count, body)`` tuples;
    a partial frame tail stays in the buffer for the next read."""
    frames = []
    while len(buf) >= _HDR.size:
        length, src, epoch, seq, kind, tag, count = _HDR.unpack_from(buf, 0)
        if length < _HDR.size + _CRC.size or len(buf) < length:
            if length < _HDR.size + _CRC.size:
                # Unframeable garbage: drop the buffer, the senders'
                # retransmissions arrive on fresh connections.
                buf.clear()
            break
        raw = bytes(buf[:length])
        del buf[:length]
        (crc,) = _CRC.unpack_from(raw, length - _CRC.size)
        ok = (zlib.crc32(raw[4 : length - _CRC.size]) & 0xFFFFFFFF) == crc
        frames.append((ok, src, epoch, seq, kind, tag, count, raw[_HDR.size : -_CRC.size]))
    return frames


class _Link:
    """Sender-side state for one peer: a (re)connecting socket, the
    outbound byte queue, and the unacked-frame retransmit ledger."""

    __slots__ = (
        "peer", "sock", "state", "outbuf", "inbuf", "unacked",
        "connect_attempts", "retry_at", "last_cause",
    )

    def __init__(self, peer: int):
        self.peer = peer
        self.sock: socket.socket | None = None
        self.state = "idle"  # idle | connecting | open | failed
        self.outbuf = bytearray()
        self.inbuf = bytearray()
        #: seq -> [raw_frame, attempt, resend_at]
        self.unacked: dict[int, list] = {}
        self.connect_attempts = 0
        self.retry_at = 0.0
        self.last_cause: str | None = None

    def close(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None


class TcpSlabTransport:
    """One worker's end of the socket data plane (lives in the worker
    process; constructed post-fork from the inherited listening socket).

    ``exchange`` is the whole per-superstep protocol: connect to every
    peer with pending slabs, stream the data frames, collect acks, accept
    and ack the peers' inbound frames, and return the received slab parts
    — or a ``{peer: cause}`` failure report when a peer could not be
    reached inside the deadline."""

    def __init__(self, wid: int, listener, ports, epochs, mreg=None):
        self.wid = wid
        self._listener = listener
        if listener is not None:
            listener.setblocking(False)
        self._ports = list(ports)
        self._epochs = list(epochs)
        self.epoch = self._epochs[wid]
        self._mreg = mreg
        self._seq: dict[int, int] = {}
        #: (src, epoch) -> set of accepted seqs (dedup across exchanges)
        self._seen: dict[tuple[int, int], set] = {}
        self._next_expected: dict[tuple[int, int], int] = {}

    # -- metering -------------------------------------------------------

    def _inc(self, name: str, amount: int = 1, **labels) -> None:
        if self._mreg is not None:
            self._mreg.counter(name, **labels).inc(amount)

    # -- lifecycle ------------------------------------------------------

    def update_peers(self, ports, epochs) -> None:
        """Apply the parent's current port/epoch map (broadcast with every
        step command).  A bumped peer epoch means that worker was
        re-forked: its receive state is fresh, so our outbound sequence
        stream to it restarts and its stale dedup state is dropped."""
        for peer, (old, new) in enumerate(zip(self._epochs, epochs)):
            if new != old:
                self._seq.pop(peer, None)
                for key in [k for k in self._seen if k[0] == peer]:
                    del self._seen[key]
                    self._next_expected.pop(key, None)
        self._ports = list(ports)
        self._epochs = list(epochs)

    def close_listener(self) -> None:
        """Close the listening socket (the netsplit fault: peers'
        connects fail with ECONNREFUSED from here on)."""
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None

    def close(self) -> None:
        self.close_listener()

    # -- the exchange round ---------------------------------------------

    def exchange(self, outgoing: dict, expected: dict, deadline_s: float):
        """Run one slab-exchange round against every peer.

        ``outgoing`` maps peer wid -> list of slab parts
        ``(tag, count, dst_bytes, sender_bytes, payload)`` to deliver;
        ``expected`` maps peer wid -> number of data frames that peer's
        directory says it is sending here.  Returns ``(parts, report)``:
        ``parts`` maps source wid -> received slab parts (same tuple
        shape), ``report`` maps peer wid -> failure cause; a non-empty
        report means the exchange was abandoned and ``parts`` must be
        discarded by the caller."""
        now = time.monotonic()
        deadline = now + deadline_s
        links: dict[int, _Link] = {}
        for peer, frames in outgoing.items():
            if not frames:
                continue
            link = links[peer] = _Link(peer)
            for tag, count, dst_bytes, sender_bytes, payload in frames:
                seq = self._seq.get(peer, 0)
                self._seq[peer] = seq + 1
                raw = pack_frame(
                    self.wid, self.epoch, seq, _KIND_DATA, tag, count,
                    dst_bytes + sender_bytes + payload,
                )
                link.unacked[seq] = [raw, 0, 0.0]
        pending_recv = {p: n for p, n in expected.items() if n > 0}
        parts: dict[int, list] = {}
        inbound: list = []  # accepted connections: [sock, rbuf, outbuf]
        report: dict[int, str] = {}

        def fail(peer: int, cause: str) -> None:
            if peer not in report:
                report[peer] = cause
                self._inc("tcp.peer_failures", cause=cause)

        def start_connect(link: _Link, now: float) -> None:
            link.connect_attempts += 1
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setblocking(False)
            link.sock = sock
            link.state = "connecting"
            self._inc("tcp.connects")
            code = sock.connect_ex(("127.0.0.1", self._ports[link.peer]))
            if code not in (0, errno.EINPROGRESS, errno.EWOULDBLOCK):
                connect_failed(link, code, now)

        def connect_failed(link: _Link, code: int, now: float) -> None:
            link.close()
            link.last_cause = (
                "refused" if code == errno.ECONNREFUSED else "reset"
            )
            if link.connect_attempts >= _MAX_CONNECT_ATTEMPTS:
                link.state = "failed"
                fail(link.peer, link.last_cause)
            else:
                link.state = "idle"
                link.retry_at = now + _ACK_BASE * (1 << link.connect_attempts)
                self._inc("tcp.reconnects")

        def link_reset(link: _Link, now: float) -> None:
            # Mid-stream loss: re-queue every unacked frame on a fresh
            # connection (the peer's dedup set absorbs any overlap).
            link.close()
            link.outbuf.clear()
            link.last_cause = "reset"
            if link.connect_attempts >= _MAX_CONNECT_ATTEMPTS:
                link.state = "failed"
                fail(link.peer, "reset")
                return
            link.state = "idle"
            link.retry_at = now + _ACK_BASE * (1 << link.connect_attempts)
            self._inc("tcp.reconnects")

        def queue_unacked(link: _Link, now: float) -> None:
            for seq in sorted(link.unacked):
                raw, attempt, _at = link.unacked[seq]
                link.outbuf += raw
                link.unacked[seq][2] = now + _ACK_BASE * (1 << attempt)
                self._inc("tcp.frames_sent")
                self._inc("tcp.bytes_sent", len(raw))

        def handle_frame(frame, conn_outbuf: bytearray) -> None:
            ok, src, epoch, seq, kind, tag, count, body = frame
            if kind == _KIND_ACK:
                return  # acks never arrive on inbound connections
            if not ok:
                # Discard-unacked: the sender retransmits.
                self._inc("tcp.checksum_failures")
                return
            if not 0 <= src < len(self._epochs) or epoch != self._epochs[src]:
                # A dead incarnation's stragglers: a connection that sat in
                # our listen backlog across that peer's re-fork can replay
                # old-epoch frames whose dedup state was already reset.
                # The epoch stamp makes them droppable without an ack (the
                # sender is gone; nothing retransmits).
                self._inc("tcp.stale_frames")
                return
            self._inc("tcp.frames_received")
            self._inc("tcp.bytes_received", _HDR.size + len(body) + _CRC.size)
            key = (src, epoch)
            seen = self._seen.setdefault(key, set())
            ack = pack_frame(self.wid, self.epoch, seq, _KIND_ACK, 0, 0, b"")
            if seq in seen:
                self._inc("tcp.dedup_hits")
                conn_outbuf += ack  # re-ack: the original ack raced a timer
                return
            seen.add(seq)
            nxt = self._next_expected.get(key, 0)
            if seq != nxt:
                self._inc("tcp.reorders")
            self._next_expected[key] = max(nxt, seq + 1)
            conn_outbuf += ack
            expect = len(body) - count * 8
            if expect < 0 or src not in pending_recv and not parts.get(src):
                if src not in pending_recv:
                    return  # stale straggler from an unexpected source
            dst_bytes = body[: 4 * count]
            sender_bytes = body[4 * count : 8 * count]
            payload = body[8 * count :]
            parts.setdefault(src, []).append(
                (tag, count, dst_bytes, sender_bytes, payload)
            )
            if src in pending_recv:
                pending_recv[src] -= 1
                if pending_recv[src] <= 0:
                    del pending_recv[src]

        try:
            while True:
                now = time.monotonic()
                for link in links.values():
                    if link.state == "idle" and now >= link.retry_at:
                        start_connect(link, now)
                        if link.state == "open":
                            queue_unacked(link, now)
                # retransmit timers
                for link in links.values():
                    if link.state != "open":
                        continue
                    for seq, entry in list(link.unacked.items()):
                        raw, attempt, resend_at = entry
                        if now < resend_at:
                            continue
                        if attempt >= _MAX_RETRANSMITS:
                            link.last_cause = link.last_cause or "timeout"
                            link.state = "failed"
                            fail(link.peer, "timeout")
                            break
                        entry[1] = attempt + 1
                        entry[2] = now + _ACK_BASE * (
                            1 << min(attempt + 1, _MAX_BACKOFF_SHIFT)
                        )
                        link.outbuf += raw
                        self._inc("tcp.retransmits")
                        self._inc(
                            "tcp.backoff_units",
                            1 << min(attempt, _MAX_BACKOFF_SHIFT),
                        )
                if report:
                    return parts, report
                sending = [
                    l for l in links.values() if l.state in ("connecting", "open")
                ]
                done_send = all(
                    l.state == "open" and not l.unacked and not l.outbuf
                    for l in links.values()
                ) if links else True
                acks_flushed = all(len(entry[2]) == 0 for entry in inbound)
                if done_send and not pending_recv and acks_flushed:
                    return parts, {}
                if now >= deadline:
                    for peer in pending_recv:
                        fail(peer, "timeout")
                    for link in links.values():
                        if link.unacked or link.outbuf or link.state != "open":
                            fail(link.peer, link.last_cause or "timeout")
                    if not report:  # only unflushed acks remain: give up clean
                        return parts, {}
                    return parts, report
                rlist: list = [entry[0] for entry in inbound]
                if self._listener is not None:
                    rlist.append(self._listener)
                wlist: list = []
                for link in sending:
                    rlist.append(link.sock)
                    if link.state == "connecting" or link.outbuf:
                        wlist.append(link.sock)
                for entry in inbound:
                    if entry[2]:
                        wlist.append(entry[0])
                if not rlist and not wlist:
                    time.sleep(_TICK)
                    continue
                try:
                    readable, writable, _x = select.select(
                        rlist, wlist, [], _TICK
                    )
                except (OSError, ValueError):
                    # A socket died between ticks; drop closed entries.
                    inbound = [e for e in inbound if e[0].fileno() >= 0]
                    continue
                writable_set = set(writable)
                readable_set = set(readable)
                for link in list(links.values()):
                    sock = link.sock
                    if sock is None:
                        continue
                    if link.state == "connecting" and sock in writable_set:
                        code = sock.getsockopt(
                            socket.SOL_SOCKET, socket.SO_ERROR
                        )
                        if code:
                            connect_failed(link, code, now)
                            continue
                        link.state = "open"
                        queue_unacked(link, now)
                    if link.state == "open" and link.outbuf and sock in writable_set:
                        try:
                            sent = sock.send(link.outbuf)
                            del link.outbuf[:sent]
                        except (BlockingIOError, InterruptedError):
                            pass
                        except OSError:
                            link_reset(link, now)
                            continue
                    if link.state == "open" and sock in readable_set:
                        try:
                            data = sock.recv(65536)
                        except (BlockingIOError, InterruptedError):
                            data = None
                        except OSError:
                            link_reset(link, now)
                            continue
                        if data == b"":
                            link_reset(link, now)
                            continue
                        if data:
                            link.inbuf += data
                            for frame in parse_frames(link.inbuf):
                                ok, _src, _ep, seq, kind, _t, _c, _b = frame
                                if kind == _KIND_ACK and ok:
                                    link.unacked.pop(seq, None)
                                    self._inc("tcp.acks_received")
                if self._listener is not None and self._listener in readable_set:
                    while True:
                        try:
                            conn, _addr = self._listener.accept()
                        except (BlockingIOError, InterruptedError):
                            break
                        except OSError:
                            break
                        conn.setblocking(False)
                        inbound.append([conn, bytearray(), bytearray()])
                next_inbound = []
                for entry in inbound:
                    sock, rbuf, outbuf = entry
                    alive = True
                    if sock in readable_set:
                        try:
                            data = sock.recv(65536)
                        except (BlockingIOError, InterruptedError):
                            data = None
                        except OSError:
                            data, alive = b"", False
                        if data == b"":
                            alive = False
                        elif data:
                            rbuf += data
                            for frame in parse_frames(rbuf):
                                handle_frame(frame, outbuf)
                    if alive and outbuf and sock in writable_set:
                        try:
                            sent = sock.send(outbuf)
                            del outbuf[:sent]
                        except (BlockingIOError, InterruptedError):
                            pass
                        except OSError:
                            alive = False
                    if alive:
                        next_inbound.append(entry)
                    else:
                        try:
                            sock.close()
                        except OSError:
                            pass
                inbound = next_inbound
        finally:
            for link in links.values():
                link.close()
            for entry in inbound:
                try:
                    entry[0].close()
                except OSError:
                    pass
