"""The dict-based simulator backend — the default and the parity oracle.

Exactly the pre-backend execution path: list property columns, tuple
messages in per-destination-worker dict batches, one
:class:`~repro.pregel.runtime.PregelEngine` in-process.  Every robustness
subsystem (ft / net / mem / supervisor / tracing / combiners / voting)
composes here; the other backends are measured against this one.
"""

from __future__ import annotations

from typing import Callable

from ..graph import Graph
from ..runtime import PregelEngine
from .base import ExecutionBackend


class SimBackend(ExecutionBackend):
    name = "sim"
    supports = {
        "ft": True,
        "net": True,
        "mem": True,
        "supervisor": True,
        "tracer": True,
        "combiners": True,
        "voting": True,
        "track_makespan": True,
        "range_partitioning": True,
    }

    def create_engine(
        self,
        graph: Graph,
        *,
        master_compute: Callable,
        message_size: Callable[[tuple], int],
        schema,
        engine_opts: dict,
    ) -> PregelEngine:
        engine = PregelEngine(
            graph,
            vertex_compute=None,  # type: ignore[arg-type]
            master_compute=master_compute,
            message_size=message_size,
            **engine_opts,
        )
        engine.metrics.backend = self.name
        return engine
