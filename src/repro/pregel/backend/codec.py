"""Typed message codec: schema-driven struct packing for message slabs.

Messages in the simulator are Python tuples ``(tag, *payload)``.  The
columnar and multiprocessing backends put the same messages on a *wire*:
per-tag byte slabs of fixed-layout records (``struct`` packed, standard
sizes, little-endian) with a parallel destination-id array.  This module
builds, per message tag, the pack/unpack closures that translate between
the two representations **exactly** — the decoded tuples compare equal to
the tuples the simulator would have delivered:

* Float payloads travel as 8-byte doubles (CPython floats are doubles);
* integral payloads that may carry Green-Marl's INF use a reserved
  sentinel (``INT32_MAX``/``INT32_MIN``, or the 64-bit pair for Long) and
  are re-integerized on the way in, so an escalated double column's
  ``5.0`` arrives as the ``5`` the simulator sends;
* Bool payloads pack as one byte and decode to ``True``/``False``;
* tagged programs lead each record with the tag byte, so ``iter_unpack``
  yields the exact ``(tag, *payload)`` tuple with zero per-record work.
"""

from __future__ import annotations

import struct
from itertools import repeat

from ...pregelir.ir import INF_VALUE
from ...pregelir.schema import (
    INT32_MAX,
    INT32_MIN,
    INT64_MAX,
    INT64_MIN,
    ProgramSchema,
    SlotSchema,
    TagSchema,
)


def _encoder(slot: SlotSchema):
    """Value -> struct-packable value for one wire slot (None = identity)."""
    if not slot.inf_sentinel:
        return None
    lo, hi = (INT64_MIN, INT64_MAX) if slot.code == "q" else (INT32_MIN, INT32_MAX)

    def enc(v, _lo=lo, _hi=hi):
        if type(v) is int:
            iv = v
        elif v == INF_VALUE:
            return _hi
        elif v == -INF_VALUE:
            return _lo
        else:
            iv = int(v)  # escalated double column carrying an exact int
        if not _lo < iv < _hi:
            raise ValueError(
                f"cannot encode integral payload value {v!r}: "
                f"{_lo} and {_hi} are reserved for -INF/+INF"
            )
        return iv

    return enc


def _decoder(slot: SlotSchema):
    if not slot.inf_sentinel:
        return None
    lo, hi = (INT64_MIN, INT64_MAX) if slot.code == "q" else (INT32_MIN, INT32_MAX)

    def dec(v, _lo=lo, _hi=hi):
        if v == _hi:
            return INF_VALUE
        if v == _lo:
            return -INF_VALUE
        return v

    return dec


def _make_packer(st: struct.Struct, ts: TagSchema, tagged: bool):
    encoders = [_encoder(s) for s in ts.slots]
    if not ts.slots:
        empty = st.pack(ts.tag) if tagged else b""
        return lambda msg, _e=empty: _e
    if not any(encoders):
        if tagged:
            return lambda msg, _p=st.pack: _p(*msg)
        return lambda msg, _p=st.pack: _p(*msg[1:])

    def pack(msg, _p=st.pack, _encs=encoders, _tagged=tagged):
        vals = [
            e(v) if e is not None else v for e, v in zip(_encs, msg[1:])
        ]
        return _p(msg[0], *vals) if _tagged else _p(*vals)

    return pack


def _make_unpacker(st: struct.Struct, ts: TagSchema, tagged: bool):
    decoders = [_decoder(s) for s in ts.slots]
    tag = ts.tag
    if not ts.slots:
        if tagged:
            return lambda buf, n, _it=st.iter_unpack: list(_it(buf))
        return lambda buf, n, _t=(tag,): list(repeat(_t, n))
    if not any(decoders):
        if tagged:
            return lambda buf, n, _it=st.iter_unpack: list(_it(buf))
        return lambda buf, n, _it=st.iter_unpack, _t=(tag,): [
            _t + rec for rec in _it(buf)
        ]

    head = (tag,) if not tagged else ()

    def unpack(buf, n, _it=st.iter_unpack, _decs=decoders, _head=head, _tagged=tagged):
        out = []
        for rec in _it(buf):
            vals = rec[1:] if _tagged else rec
            body = tuple(
                d(v) if d is not None else v for d, v in zip(_decs, vals)
            )
            out.append((rec[0],) + body if _tagged else _head + body)
        return out

    return unpack


class MessageCodec:
    """Per-tag pack/unpack closures plus the wire sizes, from a schema."""

    def __init__(self, schema: ProgramSchema):
        self.schema = schema
        self.tag_ids: list[int] = sorted(schema.tags)
        self.sizes: dict[int, int] = {}
        self.pack: dict[int, object] = {}
        self.unpack: dict[int, object] = {}
        for tag in self.tag_ids:
            ts = schema.tags[tag]
            st = struct.Struct(ts.fmt)
            if ts.slots and st.size != ts.size:
                raise AssertionError(
                    f"schema size drift on tag {tag}: struct {st.size} "
                    f"vs schema {ts.size}"
                )
            self.sizes[tag] = ts.size
            self.pack[tag] = _make_packer(st, ts, schema.tagged)
            self.unpack[tag] = _make_unpacker(st, ts, schema.tagged)
