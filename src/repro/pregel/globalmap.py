"""The GPS global-objects map.

Vertices write to named global objects with an attached reduction (the
paper's ``Global.put("S", new IntSum(...))``); the runtime folds the puts
during the superstep and exposes the aggregated value to the master at the
*next* superstep.  The master's own puts are broadcast values visible to
every vertex within the same superstep (GPS runs ``master.compute()`` first).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class GlobalOp(enum.Enum):
    SUM = "sum"
    PRODUCT = "product"
    MIN = "min"
    MAX = "max"
    AND = "and"
    OR = "or"
    OVERWRITE = "overwrite"


def combine(op: GlobalOp, a: Any, b: Any) -> Any:
    if op is GlobalOp.SUM:
        return a + b
    if op is GlobalOp.PRODUCT:
        return a * b
    if op is GlobalOp.MIN:
        return b if b < a else a
    if op is GlobalOp.MAX:
        return b if b > a else a
    if op is GlobalOp.AND:
        return a and b
    if op is GlobalOp.OR:
        return a or b
    if op is GlobalOp.OVERWRITE:
        return b
    raise ValueError(f"unknown reduction {op}")


@dataclass
class GlobalObjectMap:
    """Three views of global state, advanced once per superstep:

    * ``broadcast`` — master → vertices, current superstep;
    * ``_pending`` — vertex puts being folded during the current superstep;
    * ``aggregated`` — last superstep's folded puts, readable by the master.
    """

    broadcast: dict[str, Any] = field(default_factory=dict)
    aggregated: dict[str, Any] = field(default_factory=dict)
    _pending: dict[str, Any] = field(default_factory=dict)
    _pending_ops: dict[str, GlobalOp] = field(default_factory=dict)

    # -- vertex side -----------------------------------------------------

    def get(self, name: str) -> Any:
        return self.broadcast[name]

    def put_reduce(self, name: str, op: GlobalOp, value: Any) -> None:
        if name in self._pending:
            if self._pending_ops[name] is not op:
                raise ValueError(
                    f"conflicting reductions on global '{name}': "
                    f"{self._pending_ops[name].value} vs {op.value}"
                )
            self._pending[name] = combine(op, self._pending[name], value)
        else:
            self._pending[name] = value
            self._pending_ops[name] = op

    # -- master side -----------------------------------------------------

    def get_aggregated(self, name: str, default: Any = None) -> Any:
        return self.aggregated.get(name, default)

    def has_aggregated(self, name: str) -> bool:
        return name in self.aggregated

    def put_broadcast(self, name: str, value: Any) -> None:
        self.broadcast[name] = value

    # -- engine side ----------------------------------------------------

    def end_superstep(self) -> None:
        self.aggregated = self._pending
        self._pending = {}
        self._pending_ops = {}
