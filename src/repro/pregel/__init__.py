"""Pregel/GPS runtime simulator: graph, BSP engine, global-objects map,
fault tolerance (checkpointing, crash injection, recovery)."""

from .ft import (
    Checkpointable,
    ColumnState,
    CrashEvent,
    FaultPlan,
    FaultTolerance,
    parse_crash,
)
from .globalmap import GlobalObjectMap, GlobalOp, combine
from .graph import Graph
from .runtime import PregelEngine, RunMetrics, default_message_size

__all__ = [
    "Checkpointable",
    "ColumnState",
    "CrashEvent",
    "FaultPlan",
    "FaultTolerance",
    "GlobalObjectMap",
    "GlobalOp",
    "Graph",
    "PregelEngine",
    "RunMetrics",
    "combine",
    "default_message_size",
    "parse_crash",
]
