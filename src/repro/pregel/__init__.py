"""Pregel/GPS runtime simulator: graph, BSP engine, global-objects map."""

from .globalmap import GlobalObjectMap, GlobalOp, combine
from .graph import Graph
from .runtime import PregelEngine, RunMetrics, default_message_size

__all__ = [
    "GlobalObjectMap",
    "GlobalOp",
    "Graph",
    "PregelEngine",
    "RunMetrics",
    "combine",
    "default_message_size",
]
