"""Pregel/GPS runtime simulator: graph, BSP engine, global-objects map,
fault tolerance (checkpointing, crash injection, recovery), simulated
unreliable transport with reliable exactly-once delivery, supervision
(heartbeat failure detection, automatic recovery, straggler quarantine),
and memory-pressure robustness (per-worker budgets, credit-based
backpressure, spill-to-disk, graceful out-of-memory degradation)."""

from .ft import (
    Checkpointable,
    ColumnState,
    CrashEvent,
    FaultPlan,
    FaultTolerance,
    parse_crash,
)
from .globalmap import GlobalObjectMap, GlobalOp, combine
from .graph import Graph
from .mem import (
    MemoryBudget,
    MemoryExhausted,
    MemoryManager,
    MemoryReport,
    MemPlan,
    parse_mem_budget,
)
from .net import (
    NetFaultPlan,
    SimulatedTransport,
    TransportError,
    parse_net_faults,
)
from .runtime import PregelEngine, RunMetrics, default_message_size
from .supervisor import (
    PhiAccrualDetector,
    Supervisor,
    SupervisorPlan,
    parse_heartbeat,
)

__all__ = [
    "Checkpointable",
    "ColumnState",
    "CrashEvent",
    "FaultPlan",
    "FaultTolerance",
    "GlobalObjectMap",
    "GlobalOp",
    "Graph",
    "MemPlan",
    "MemoryBudget",
    "MemoryExhausted",
    "MemoryManager",
    "MemoryReport",
    "NetFaultPlan",
    "PhiAccrualDetector",
    "PregelEngine",
    "RunMetrics",
    "SimulatedTransport",
    "Supervisor",
    "SupervisorPlan",
    "TransportError",
    "combine",
    "default_message_size",
    "parse_crash",
    "parse_heartbeat",
    "parse_mem_budget",
    "parse_net_faults",
]
