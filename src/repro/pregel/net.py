"""Simulated unreliable transport between workers, hidden behind a reliable
delivery protocol.

PR 1's transient-loss model (`FaultPlan.message_loss_rate`) *meters* an
at-least-once network but never actually loses, duplicates, or reorders a
message.  This module is the adversarial counterpart: a pluggable transport
the engine routes every barrier through, whose simulated channels inflict
**drop, duplicate, reorder, corrupt, and latency/jitter** faults on the
wire — and a sender/receiver protocol that hides all of it:

* every message bound for a destination worker is stamped with a **sequence
  number** from that worker's inbound stream (the simulator's stand-in for
  GPS's per-worker message buffers; sequencing the stream a receiver must
  reconstruct is what makes cross-sender arrival order deterministic);
* the sender retransmits unacknowledged messages with **exponential
  backoff** (metered in ``RunMetrics.net_backoff_units``) until every
  message is acknowledged, up to ``max_attempts`` per message;
* the receiver keeps a **dedup table** (sequence numbers already processed
  — duplicate arrivals, including retransmissions whose ack was lost, are
  counted and discarded), a **reorder buffer** (out-of-order arrivals are
  parked until the sequence gap closes), and a checksum (corrupt arrivals
  are detected, discarded, and left unacked so the sender retransmits).

The protocol therefore delivers **exactly once, in send order**, no matter
the fault mix — which is the property that keeps a run's outputs and
``RunMetrics.parity_key()`` bit-identical to a run over a perfect network
(asserted for all six algorithms by ``tests/test_net.py`` and the chaos
fuzz sweep).  What the faults *do* change is metered: per-fault counters
land in ``RunMetrics`` (``messages_dropped`` / ``messages_duplicated`` /
``messages_reordered`` / ``messages_corrupted`` / ``packets_retransmitted``
/ ``net_backoff_units``) and the transport's own ``stats`` ledger carries
simulated latency units and protocol round counts for the benchmarks.

With an all-zero fault plan the transport takes a **fast path** — sequence
accounting only, no per-message simulation — so a "reliable transport" run
stays within a few percent of direct routing (``benchmarks/bench_net.py``
enforces the ceiling in CI).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runtime import PregelEngine


class TransportError(RuntimeError):
    """A message exhausted ``max_attempts`` deliveries — the channel is so
    hostile the reliable protocol gave up (only reachable at extreme fault
    rates; raise ``max_attempts`` or lower the rates)."""


#: Retransmission backoff doubles per attempt but the metered units cap at
#: this shift, so a pathological channel cannot overflow the ledger.
_MAX_BACKOFF_SHIFT = 16


@dataclass(frozen=True)
class NetFaultPlan:
    """One run's channel-fault model, fixed up front (fully deterministic).

    Rates are per transmission attempt, independently sampled from the
    plan's own seeded RNG (the engine's random stream is never touched):

    * ``drop_rate`` — the attempt vanishes; the sender times out and
      retransmits with exponential backoff.  Also applied to acks, so a
      delivered-but-unacked message is retransmitted and deduplicated.
    * ``dup_rate`` — the attempt arrives twice; the receiver's dedup table
      discards the copy.
    * ``reorder_rate`` — arrivals within a protocol round are displaced;
      the receiver's reorder buffer restores sequence order.
    * ``corrupt_rate`` — the payload is damaged in flight; the checksum
      catches it, the arrival is discarded unacked, and the sender
      retransmits.
    * ``latency_units`` / ``jitter_units`` — simulated per-round channel
      latency (accumulated in the transport's ``stats``, never in results).
    """

    drop_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0
    latency_units: float = 1.0
    jitter_units: float = 0.0
    max_attempts: int = 100
    seed: int = 101

    def __post_init__(self):
        for name in ("drop_rate", "dup_rate", "reorder_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 0.9:
                raise ValueError(f"{name} must be in [0, 0.9], got {rate}")
        if self.latency_units < 0 or self.jitter_units < 0:
            raise ValueError("latency_units and jitter_units must be >= 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    @property
    def lossy(self) -> bool:
        """False means the fast path: no per-message channel simulation."""
        return (
            self.drop_rate > 0
            or self.dup_rate > 0
            or self.reorder_rate > 0
            or self.corrupt_rate > 0
        )


_SPEC_KEYS = {
    "drop": ("drop_rate", float),
    "dup": ("dup_rate", float),
    "reorder": ("reorder_rate", float),
    "corrupt": ("corrupt_rate", float),
    "latency": ("latency_units", float),
    "jitter": ("jitter_units", float),
    "max-attempts": ("max_attempts", int),
    "seed": ("seed", int),
}


def parse_net_faults(spec: str) -> NetFaultPlan:
    """Parse the CLI syntax, e.g. ``drop=0.05,dup=0.02,reorder=0.1,seed=7``.

    Keys: ``drop``, ``dup``, ``reorder``, ``corrupt`` (rates in [0, 0.9]),
    ``latency``, ``jitter`` (simulated units), ``max-attempts``, ``seed``.
    """
    kwargs: dict = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(
                f"invalid --net-faults entry '{item}': expected key=value "
                f"with keys {', '.join(sorted(_SPEC_KEYS))}"
            )
        key, text = item.split("=", 1)
        key = key.strip()
        if key not in _SPEC_KEYS:
            raise ValueError(
                f"unknown --net-faults key '{key}' "
                f"(expected one of {', '.join(sorted(_SPEC_KEYS))})"
            )
        field_name, caster = _SPEC_KEYS[key]
        try:
            kwargs[field_name] = caster(text.strip())
        except ValueError:
            raise ValueError(
                f"invalid --net-faults value for '{key}': '{text.strip()}'"
            ) from None
    return NetFaultPlan(**kwargs)


class SimulatedTransport:
    """Per-run transport: one inbound reliable stream per destination worker.

    Create one per execution (it is stateful: sequence counters, the RNG,
    the stats ledger) and hand it to the engine:
    ``program.run(graph, args, transport=SimulatedTransport(plan))``.  The
    engine routes every barrier's per-destination-worker message batches
    through :meth:`route_part`.
    """

    def __init__(self, plan: NetFaultPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._engine: "PregelEngine | None" = None
        self._mreg = None  # engine's metrics registry, picked up at attach()
        self._next_seq: list[int] = []
        #: protocol-level ledger (simulated latency, rounds, ack losses);
        #: result-relevant fault counters live in ``RunMetrics``.
        self.stats = {
            "messages_routed": 0,
            "protocol_rounds": 0,
            "latency_units": 0.0,
            "acks_lost": 0,
            "max_attempts_seen": 0,
            #: peak occupancy of the receiver's reorder buffer (messages
            #: parked waiting for a sequence gap to close) — the protocol's
            #: own memory footprint, charged against the worker's budget
            #: peak when the engine runs under one (metered, not enforced:
            #: protocol buffers cannot spill without breaking the ack
            #: contract).
            "reorder_buffer_peak": 0,
        }

    # -- wiring ----------------------------------------------------------

    def attach(self, engine: "PregelEngine") -> None:
        if self._engine is not None:
            raise RuntimeError("a SimulatedTransport drives exactly one run")
        self._engine = engine
        self._mreg = getattr(engine, "_mreg", None)
        self._next_seq = [0] * engine.num_workers

    # -- routing ---------------------------------------------------------

    def route_part(self, worker: int, part: dict[int, list]) -> dict[int, list]:
        """Deliver one barrier's batch for destination ``worker``.

        ``part`` maps destination vertex → message list in global send order
        (each receiver's messages all live in its owner's batch).  The
        reliable protocol reconstructs exactly that stream on the far side,
        so the returned map is content-identical to the input — the faults
        only cost retransmissions, backoff, and simulated latency, all of
        which are metered.
        """
        total = 0
        for msgs in part.values():
            total += len(msgs)
        self.stats["messages_routed"] += total
        seq_base = self._next_seq[worker]
        self._next_seq[worker] = seq_base + total
        if total == 0 or not self.plan.lossy:
            # Fast path: a perfect channel needs no simulation — sequence
            # accounting only, the caller's batch is delivered as-is.
            self.stats["latency_units"] += self.plan.latency_units if total else 0.0
            return part
        avg_bytes = 0.0
        if self._engine._mem_limited:
            size_of = self._engine.mem._size_of
            nbytes = 0
            for msgs in part.values():
                for msg in msgs:
                    nbytes += size_of(msg)
            avg_bytes = nbytes / total
        self._simulate_stream(total, worker, avg_bytes)
        # Exactly-once in-order delivery reconstructed the sent stream.
        return part

    # -- channel simulation ----------------------------------------------

    def _simulate_stream(self, n: int, worker: int = 0, avg_bytes: float = 0.0) -> None:
        """Push ``n`` sequenced messages through the unreliable channel until
        the receiver has processed — and the sender has seen acked — every
        one of them.  Mutates only the metrics/stats ledgers; the delivered
        content is the sequence-ordered input by protocol construction.
        ``avg_bytes`` (non-zero only under a memory budget) converts the
        reorder buffer's peak occupancy into a byte charge against
        ``worker``'s budget peak."""
        plan = self.plan
        rng = self._rng
        metrics = self._engine.metrics
        stats = self.stats
        mreg = self._mreg
        if mreg is not None:
            # Registry bumps happen once per routed stream from ledger
            # deltas — never inside the per-packet loop below.
            s_dropped = metrics.messages_dropped
            s_duplicated = metrics.messages_duplicated
            s_reordered = metrics.messages_reordered
            s_corrupted = metrics.messages_corrupted
            s_retransmitted = metrics.packets_retransmitted
            s_backoff = metrics.net_backoff_units
        drop = plan.drop_rate
        dup = plan.dup_rate
        reorder = plan.reorder_rate
        corrupt = plan.corrupt_rate
        max_attempts = plan.max_attempts
        random_ = rng.random

        attempts = [0] * n
        received = bytearray(n)  # dedup table: seqs the receiver processed
        acked = bytearray(n)     # sender side: retransmit until set
        expected = 0             # next in-order seq the receiver can consume
        parked = 0               # reorder-buffer occupancy (received > expected)
        parked_peak = 0
        unacked = n
        while unacked:
            stats["protocol_rounds"] += 1
            stats["latency_units"] += plan.latency_units + (
                random_() * plan.jitter_units if plan.jitter_units else 0.0
            )
            arrivals: list[tuple[int, bool]] = []
            for seq in range(n):
                if acked[seq]:
                    continue
                attempt = attempts[seq] = attempts[seq] + 1
                if attempt > max_attempts:
                    raise TransportError(
                        f"message seq={seq} undelivered after {max_attempts} "
                        "attempts — fault rates too hostile for the retry "
                        "budget (raise max_attempts or lower the rates)"
                    )
                if attempt > 1:
                    # Exponential backoff before every retransmission.
                    metrics.packets_retransmitted += 1
                    metrics.net_backoff_units += 1 << min(
                        attempt - 2, _MAX_BACKOFF_SHIFT
                    )
                if attempt > stats["max_attempts_seen"]:
                    stats["max_attempts_seen"] = attempt
                if random_() < drop:
                    metrics.messages_dropped += 1
                    continue
                arrivals.append((seq, random_() < corrupt))
                if dup and random_() < dup:
                    arrivals.append((seq, random_() < corrupt))
            if reorder and len(arrivals) > 1:
                # Channel reordering: displace arrivals toward the back.
                last = len(arrivals) - 1
                for i in range(last):
                    if random_() < reorder:
                        j = rng.randrange(i, last + 1)
                        arrivals[i], arrivals[j] = arrivals[j], arrivals[i]
            for seq, corrupted in arrivals:
                if corrupted:
                    # Checksum failure: discard, leave unacked → retransmit.
                    metrics.messages_corrupted += 1
                    continue
                if received[seq]:
                    # Dedup table hit: duplicate arrival (channel dup, or a
                    # retransmission whose ack was lost) is discarded.
                    metrics.messages_duplicated += 1
                else:
                    received[seq] = 1
                    if seq != expected:
                        # Parked in the reorder buffer until the gap closes.
                        metrics.messages_reordered += 1
                        parked += 1
                        if parked > parked_peak:
                            parked_peak = parked
                    else:
                        first = expected
                        while expected < n and received[expected]:
                            expected += 1
                        # The gap closed: every seq past the first consumed
                        # one was sitting in the reorder buffer.
                        parked -= expected - first - 1
                # Ack travels the faulty channel too; a lost ack keeps the
                # message pending, forcing a retransmit the dedup table eats.
                if drop and random_() < drop:
                    stats["acks_lost"] += 1
                elif not acked[seq]:
                    acked[seq] = 1
                    unacked -= 1
        assert expected == n, "protocol invariant: stream fully reconstructed"
        if mreg is not None:
            mreg.counter("net.messages_routed").inc(n)
            mreg.counter("net.dropped").inc(metrics.messages_dropped - s_dropped)
            mreg.counter("net.duplicated").inc(
                metrics.messages_duplicated - s_duplicated
            )
            mreg.counter("net.reordered").inc(
                metrics.messages_reordered - s_reordered
            )
            mreg.counter("net.corrupted").inc(
                metrics.messages_corrupted - s_corrupted
            )
            mreg.counter("net.retransmitted").inc(
                metrics.packets_retransmitted - s_retransmitted
            )
            mreg.counter("net.backoff_units").inc(
                metrics.net_backoff_units - s_backoff
            )
            mreg.gauge("net.reorder_buffer_peak").set_max(parked_peak)
        if parked_peak > stats["reorder_buffer_peak"]:
            stats["reorder_buffer_peak"] = parked_peak
        if avg_bytes and parked_peak:
            self._engine.mem.note_transport_buffer(
                worker, int(parked_peak * avg_bytes)
            )
