"""Self-healing supervision: heartbeats, failure detection, automatic recovery.

PR 1's fault tolerance recovers from crashes it is *told about* — a
pre-declared :class:`~repro.pregel.ft.CrashEvent` schedule drives recovery
directly.  Real Pregel/GPS masters are told nothing: they learn a worker is
gone because its heartbeats stop, and they must decide, recover, and keep a
restart budget on their own.  This module adds that layer to the simulator:

* **Simulated cluster clock** — each superstep every live worker "runs" for
  a simulated duration (1 unit per hosted partition, inflated for
  stragglers) and emits heartbeats every ``heartbeat_interval`` units; the
  barrier completes at the slowest live worker.
* **Failure model** — workers die *silently* (scripted
  ``silent_crashes=(CrashEvent(w, s), ...)`` and/or a seeded per-superstep
  ``crash_rate``): the supervisor is never told, it only sees the
  heartbeats stop.  Stragglers (scripted ``stragglers`` and/or a seeded
  ``straggle_rate``) run ``straggle_factor`` slower.
* **Phi-style/deadline failure detector** — per worker, suspicion grows
  with silence: ``phi = elapsed / (mean_interval · ln 10)`` (the phi-accrual
  formulation under exponential inter-arrivals) accrues until it crosses
  ``phi_threshold``, with ``deadline_timeout`` as the hard upper bound.
  The BSP barrier stalls on the dead worker, so detection resolves at the
  barrier where the crash happened — detection latency (simulated units) is
  the silence the detector needed, and every missed heartbeat is metered.
* **Escalation → automatic recovery** — a detected death triggers the
  *existing* recovery machinery (:meth:`FaultTolerance.recover_worker`,
  rollback or confined per the plan) for the partitions the dead worker
  hosted, and the worker is restarted.  Restarts are capped at
  ``max_restarts``.
* **Straggler quarantine** — a worker that blows ``barrier_timeout`` for
  ``straggle_strikes`` consecutive barriers is quarantined: its partitions
  are re-hosted onto the least-loaded live workers.  Hosting is *physical*
  placement only — the logical vertex→partition map (and with it every
  deterministic metered quantity) never changes, exactly as GPS re-assigns
  partition files without renumbering the partitions.
* **Graceful degradation** — when a detected failure finds the restart
  budget exhausted, the run is aborted with
  ``halt_reason="unrecoverable"`` and a structured partial-result
  :meth:`report` instead of an exception.

Because detection only ever *triggers* PR 1's bit-exact recovery (or aborts),
a supervised run that stays within its restart budget produces outputs and
``RunMetrics.parity_key()`` identical to the failure-free run — the
acceptance property ``tests/test_supervisor.py`` asserts for all six
algorithms under both recovery strategies.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .ft import CrashEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runtime import PregelEngine

_LN10 = math.log(10.0)


class PhiAccrualDetector:
    """Phi-accrual suspicion over heartbeat inter-arrival times.

    Under exponentially distributed inter-arrivals with the observed mean,
    ``phi(elapsed) = -log10 P(silence > elapsed) = elapsed / (mean · ln 10)``.
    A sliding window keeps the mean adaptive; it is seeded with the nominal
    interval so the detector is armed from the first superstep.
    """

    def __init__(self, expected_interval: float, window: int = 32):
        self._intervals: deque[float] = deque([expected_interval], maxlen=window)

    def observe(self, interval: float) -> None:
        self._intervals.append(interval)

    @property
    def mean_interval(self) -> float:
        return sum(self._intervals) / len(self._intervals)

    def phi(self, elapsed: float) -> float:
        return elapsed / (self.mean_interval * _LN10)

    def silence_for_phi(self, phi_threshold: float) -> float:
        """The silence (simulated units) at which suspicion crosses the
        threshold — how long the barrier must stall before detection."""
        return phi_threshold * self.mean_interval * _LN10


@dataclass(frozen=True)
class SupervisorPlan:
    """Everything about a run's supervision, fixed up front (deterministic).

    * ``heartbeat_interval`` — simulated units between worker heartbeats.
    * ``phi_threshold`` / ``deadline_timeout`` — the failure detector: a
      worker is declared dead when its silence drives phi past the
      threshold *or* exceeds the hard deadline (0 disables the deadline).
    * ``barrier_timeout`` / ``straggle_strikes`` — a worker slower than the
      barrier timeout for N consecutive barriers is quarantined.
    * ``max_restarts`` — detected failures beyond this budget abort the run
      with ``halt_reason="unrecoverable"`` (graceful degradation).
    * ``silent_crashes`` — scripted silent deaths (the supervisor is not
      told; it must detect them).  ``crash_rate`` adds seeded random deaths
      per live worker per superstep.
    * ``stragglers`` — workers that are always slow; ``straggle_rate`` adds
      seeded random slowness, both inflated by ``straggle_factor``.
    * ``seed`` — seeds the supervisor's own RNG, independent of the
      engine's and the transport's.
    """

    heartbeat_interval: float = 1.0
    phi_threshold: float = 4.0
    deadline_timeout: float = 5.0
    barrier_timeout: float = 6.0
    straggle_strikes: int = 3
    max_restarts: int = 3
    silent_crashes: tuple[CrashEvent, ...] = ()
    crash_rate: float = 0.0
    stragglers: tuple[int, ...] = ()
    straggle_rate: float = 0.0
    straggle_factor: float = 8.0
    seed: int = 43

    def __post_init__(self):
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if self.phi_threshold <= 0:
            raise ValueError("phi_threshold must be > 0")
        if self.deadline_timeout < 0 or self.barrier_timeout < 0:
            raise ValueError("timeouts must be >= 0")
        if self.straggle_strikes < 1:
            raise ValueError("straggle_strikes must be >= 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        for name in ("crash_rate", "straggle_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        if self.straggle_factor < 1.0:
            raise ValueError("straggle_factor must be >= 1.0")


_HB_KEYS = {
    "interval": ("heartbeat_interval", float),
    "phi": ("phi_threshold", float),
    "deadline": ("deadline_timeout", float),
    "barrier": ("barrier_timeout", float),
    "strikes": ("straggle_strikes", int),
    "crash-rate": ("crash_rate", float),
    "straggle-rate": ("straggle_rate", float),
    "straggle-factor": ("straggle_factor", float),
    "seed": ("seed", int),
}


def parse_heartbeat(spec: str, *, max_restarts: int = 3) -> SupervisorPlan:
    """Parse the CLI syntax, e.g.
    ``interval=1,deadline=4,crash=1@3+0@6,straggler=2,seed=5``.

    ``crash=W@S`` schedules silent worker deaths ("+"-separated for several),
    ``straggler=W`` marks always-slow workers; the remaining keys map onto
    :class:`SupervisorPlan` fields.  ``max_restarts`` comes from the
    dedicated ``--max-restarts`` flag.
    """
    from .ft import parse_crash

    kwargs: dict = {"max_restarts": max_restarts}
    crashes: list[CrashEvent] = []
    stragglers: list[int] = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(
                f"invalid --heartbeat entry '{item}': expected key=value with "
                f"keys crash, straggler, {', '.join(sorted(_HB_KEYS))}"
            )
        key, text = item.split("=", 1)
        key, text = key.strip(), text.strip()
        if key == "crash":
            crashes.extend(parse_crash(part) for part in text.split("+"))
        elif key == "straggler":
            try:
                stragglers.extend(int(part) for part in text.split("+"))
            except ValueError:
                raise ValueError(
                    f"invalid --heartbeat straggler list '{text}'"
                ) from None
        elif key in _HB_KEYS:
            field_name, caster = _HB_KEYS[key]
            try:
                kwargs[field_name] = caster(text)
            except ValueError:
                raise ValueError(
                    f"invalid --heartbeat value for '{key}': '{text}'"
                ) from None
        else:
            raise ValueError(
                f"unknown --heartbeat key '{key}' (expected crash, straggler, "
                f"{', '.join(sorted(_HB_KEYS))})"
            )
    return SupervisorPlan(
        silent_crashes=tuple(crashes), stragglers=tuple(stragglers), **kwargs
    )


class Supervisor:
    """Per-run supervision: clock, heartbeat monitor, detector, escalation.

    Create one per execution and hand it to the engine together with a
    :class:`~repro.pregel.ft.FaultTolerance` manager (the recovery machinery
    detection escalates into):
    ``program.run(graph, args, ft=FaultTolerance(plan), supervisor=Supervisor(splan))``.
    """

    def __init__(self, plan: SupervisorPlan):
        self.plan = plan
        self._engine: "PregelEngine | None" = None
        self._mreg = None  # engine's metrics registry, picked up at attach()
        self._rng = random.Random(plan.seed)
        self._started = False
        self._clock = 0.0
        self._real_epoch = 0.0  # wall-clock origin of real-liveness mode
        self._pending_crashes = sorted(plan.silent_crashes, key=lambda c: c.superstep)
        self._host_of: list[int] = []      # partition -> hosting worker
        self._last_heartbeat: list[float] = []
        self._detectors: list[PhiAccrualDetector] = []
        self._strikes: list[int] = []
        self._quarantined: set[int] = set()
        self.restarts_used = 0
        self.degraded = False
        self.oom: dict | None = None
        self._detections: list[dict] = []
        self._quarantines: list[dict] = []

    # -- wiring ----------------------------------------------------------

    def attach(self, engine: "PregelEngine") -> None:
        if self._engine is not None:
            raise RuntimeError("a Supervisor drives exactly one run")
        if engine.ft is None:
            raise ValueError(
                "supervision requires a FaultTolerance manager: detection "
                "escalates into its checkpoint recovery (pass ft=...)"
            )
        workers = engine.num_workers
        for crash in self._pending_crashes:
            if not 0 <= crash.worker < workers:
                raise ValueError(
                    f"--heartbeat schedules a crash of worker {crash.worker} "
                    f"but the engine has {workers} workers"
                )
        for worker in self.plan.stragglers:
            if not 0 <= worker < workers:
                raise ValueError(
                    f"--heartbeat marks straggler {worker} but the engine "
                    f"has {workers} workers"
                )
        self._engine = engine
        self._mreg = getattr(engine, "_mreg", None)
        # A recovery point must exist before anything can be detected dead.
        engine.ft.force_initial_checkpoint = True

    def _tracer(self):
        tracer = self._engine.tracer
        return tracer if tracer is not None and tracer.enabled else None

    def _hosted(self, worker: int) -> list[int]:
        return [p for p, host in enumerate(self._host_of) if host == worker]

    # -- engine hook ------------------------------------------------------

    def on_superstep_start(self) -> None:
        """Runs at every superstep boundary, before the FT manager's own
        hook: simulate the barrier that just completed (durations,
        heartbeats, silent deaths), detect, and escalate."""
        engine = self._engine
        if not self._started:
            self._started = True
            workers = engine.num_workers
            self._host_of = list(range(workers))
            self._last_heartbeat = [0.0] * workers
            self._detectors = [
                PhiAccrualDetector(self.plan.heartbeat_interval)
                for _ in range(workers)
            ]
            self._strikes = [0] * workers
            return
        plan = self.plan
        rng = self._rng
        workers = engine.num_workers

        # The barrier that just completed: per-worker simulated durations.
        slow = set(plan.stragglers)
        if plan.straggle_rate:
            slow.update(
                w for w in range(workers)
                if w not in self._quarantined and rng.random() < plan.straggle_rate
            )
        durations = [0.0] * workers
        for w in range(workers):
            hosted = sum(1 for host in self._host_of if host == w)
            if hosted:
                durations[w] = hosted * (
                    plan.straggle_factor if w in slow else 1.0
                )

        # Silent deaths during that barrier: scripted first, then random.
        crashed: list[int] = []
        while (
            self._pending_crashes
            and self._pending_crashes[0].superstep == engine.superstep
        ):
            crashed.append(self._pending_crashes.pop(0).worker)
        if plan.crash_rate:
            for w in range(workers):
                if w not in crashed and self._hosted(w) and rng.random() < plan.crash_rate:
                    crashed.append(w)

        barrier = max((durations[w] for w in range(workers) if w not in crashed), default=1.0)
        barrier = max(barrier, 1.0)
        self._clock += barrier

        # Live workers heartbeated through the barrier.
        interval = plan.heartbeat_interval
        for w in range(workers):
            if w not in crashed:
                gap = self._clock - self._last_heartbeat[w]
                beats = int(gap // interval)
                if beats:
                    self._detectors[w].observe(gap / beats)
                self._last_heartbeat[w] = self._clock

        # A dead worker stalls the BSP barrier; the master waits until the
        # detector fires.  Detection latency = the silence the phi/deadline
        # detector needed, measured from the victim's last heartbeat.
        tracer = self._tracer()
        for w in crashed:
            detector = self._detectors[w]
            silence = detector.silence_for_phi(plan.phi_threshold)
            if plan.deadline_timeout:
                silence = min(silence, plan.deadline_timeout)
            detected_at = max(self._clock, self._last_heartbeat[w] + silence)
            missed = int((detected_at - self._last_heartbeat[w]) // interval)
            engine.metrics.heartbeats_missed += missed
            if self._mreg is not None:
                self._mreg.counter("supervisor.detections").inc()
                self._mreg.counter("supervisor.heartbeats_missed").inc(missed)
            self._clock = max(self._clock, detected_at)
            detection = {
                "worker": w,
                "superstep": engine.superstep,
                "clock": self._clock,
                "silence": detected_at - self._last_heartbeat[w],
                "phi": detector.phi(detected_at - self._last_heartbeat[w]),
                "heartbeats_missed": missed,
            }
            if tracer is not None:
                tracer.event("supervisor.suspect", cat="supervisor", info=dict(detection))
            if self.restarts_used >= plan.max_restarts:
                # Retry budget exhausted: degrade to a partial result
                # instead of raising — the run halts at this barrier.
                self.degraded = True
                detection["action"] = "degraded"
                self._detections.append(detection)
                engine._abort_reason = "unrecoverable"
                if tracer is not None:
                    tracer.event(
                        "supervisor.degraded",
                        cat="supervisor",
                        info={
                            "worker": w,
                            "restarts_used": self.restarts_used,
                            "max_restarts": plan.max_restarts,
                            "superstep": engine.superstep,
                        },
                    )
                return
            self.restarts_used += 1
            engine.metrics.restarts += 1
            if self._mreg is not None:
                self._mreg.counter("supervisor.restarts").inc()
            detection["action"] = "restarted"
            self._detections.append(detection)
            engine.ft.recover_worker(w, partitions=self._hosted(w))
            self._last_heartbeat[w] = self._clock
            self._strikes[w] = 0
            if tracer is not None:
                tracer.event(
                    "supervisor.restart",
                    cat="supervisor",
                    info={
                        "worker": w,
                        "restarts_used": self.restarts_used,
                        "recovery": engine.ft.plan.recovery,
                    },
                )

        # Straggler quarantine: consecutive blown barriers re-host the
        # worker's partitions (physical placement only — the logical
        # partition map, and with it the metered ledger, is untouched).
        if plan.barrier_timeout:
            for w in range(workers):
                if w in self._quarantined or w in crashed or not durations[w]:
                    continue
                if durations[w] > plan.barrier_timeout:
                    self._strikes[w] += 1
                    if self._strikes[w] >= plan.straggle_strikes:
                        self._quarantine(w, tracer)
                else:
                    self._strikes[w] = 0

    # -- real-process liveness (mp backend) -------------------------------
    #
    # The simulated hook above models the cluster clock; the mp backend
    # has real worker processes, so the same detector runs on wall time:
    # every barrier reply is a liveness ping, and a reply that never
    # arrives (the parent's deadline-based exchange) is a detection.

    def start_liveness(self, now: float) -> None:
        """Arm the detector against real wall-clock heartbeats (mp): the
        workers were just forked, so every partition hosts on its own
        worker and every detector starts from the nominal interval."""
        engine = self._engine
        workers = engine.num_workers
        self._started = True
        self._real_epoch = now
        self._host_of = list(range(workers))
        self._last_heartbeat = [now] * workers
        self._detectors = [
            PhiAccrualDetector(self.plan.heartbeat_interval)
            for _ in range(workers)
        ]
        self._strikes = [0] * workers

    def observe_liveness(self, worker: int, now: float) -> None:
        """One real heartbeat: worker ``worker``'s barrier reply arrived."""
        gap = now - self._last_heartbeat[worker]
        if gap > 0:
            self._detectors[worker].observe(gap)
        self._last_heartbeat[worker] = now
        self._clock = now - self._real_epoch

    def draw_real_crashes(self) -> list[int]:
        """Seeded random silent deaths for one real superstep (mp): the
        ``crash_rate`` knob draws per live worker, exactly like the
        simulated model — but the death is a real SIGKILL."""
        plan = self.plan
        if not plan.crash_rate:
            return []
        return [
            w
            for w in range(self._engine.num_workers)
            if self._rng.random() < plan.crash_rate
        ]

    def on_worker_failure(self, worker: int, now: float, cause: str) -> bool:
        """A real worker process failed its exchange deadline (died or
        hung).  Escalate exactly like a simulated detection: meter the
        silence, recover through the FT manager — or, past the restart
        budget, degrade the run (returns False; the engine aborts with
        ``halt_reason="unrecoverable"``)."""
        engine = self._engine
        plan = self.plan
        self._clock = now - self._real_epoch
        detector = self._detectors[worker]
        silence = now - self._last_heartbeat[worker]
        missed = int(silence // plan.heartbeat_interval)
        engine.metrics.heartbeats_missed += missed
        if self._mreg is not None:
            self._mreg.counter("supervisor.detections").inc()
            self._mreg.counter("supervisor.heartbeats_missed").inc(missed)
        detection = {
            "worker": worker,
            "superstep": engine.superstep,
            "clock": self._clock,
            "silence": silence,
            "phi": detector.phi(silence),
            "heartbeats_missed": missed,
            "cause": cause,
        }
        tracer = self._tracer()
        if tracer is not None:
            tracer.event("supervisor.suspect", cat="supervisor", info=dict(detection))
        if self.restarts_used >= plan.max_restarts:
            self.degraded = True
            detection["action"] = "degraded"
            self._detections.append(detection)
            engine._abort_reason = "unrecoverable"
            if tracer is not None:
                tracer.event(
                    "supervisor.degraded",
                    cat="supervisor",
                    info={
                        "worker": worker,
                        "restarts_used": self.restarts_used,
                        "max_restarts": plan.max_restarts,
                        "superstep": engine.superstep,
                    },
                )
            return False
        self.restarts_used += 1
        engine.metrics.restarts += 1
        if self._mreg is not None:
            self._mreg.counter("supervisor.restarts", backend="mp").inc()
        detection["action"] = "restarted"
        self._detections.append(detection)
        engine.ft.recover_worker(worker, partitions=self._hosted(worker))
        self._last_heartbeat[worker] = now
        self._strikes[worker] = 0
        if tracer is not None:
            tracer.event(
                "supervisor.restart",
                cat="supervisor",
                info={
                    "worker": worker,
                    "restarts_used": self.restarts_used,
                    "recovery": engine.ft.plan.recovery,
                },
            )
        return True

    def on_oom(self, exc) -> None:
        """Memory exhaustion escalates like a silent crash: the worker that
        blew its budget is recorded as a detection and the run degrades —
        but the halt reason stays ``out_of_memory``, because the worker is
        not dead, it is unsatisfiable (no restart could ever fit it)."""
        engine = self._engine
        detection = {
            "worker": exc.worker,
            "superstep": exc.superstep,
            "clock": self._clock,
            "action": "out_of_memory",
            "phase": exc.phase,
            "needed_bytes": exc.needed,
            "budget_bytes": exc.budget,
        }
        self._detections.append(detection)
        self.degraded = True
        self.oom = dict(detection)
        tracer = self._tracer() if engine is not None else None
        if tracer is not None:
            tracer.event("supervisor.oom", cat="supervisor", info=dict(detection))

    def _quarantine(self, worker: int, tracer) -> None:
        targets = [
            w
            for w in range(self._engine.num_workers)
            if w != worker and w not in self._quarantined
        ]
        if not targets:
            return  # nobody left to take the work
        moved = self._hosted(worker)
        for p in moved:
            load = {w: sum(1 for h in self._host_of if h == w) for w in targets}
            self._host_of[p] = min(targets, key=lambda w: (load[w], w))
        self._quarantined.add(worker)
        self._engine.metrics.workers_quarantined += 1
        if self._mreg is not None:
            self._mreg.counter("supervisor.quarantines").inc()
        record = {
            "worker": worker,
            "superstep": self._engine.superstep,
            "clock": self._clock,
            "partitions_moved": moved,
        }
        self._quarantines.append(record)
        if tracer is not None:
            tracer.event("supervisor.quarantine", cat="supervisor", info=dict(record))

    # -- reporting --------------------------------------------------------

    def report(self) -> dict:
        """The structured supervision summary — on degradation this is the
        partial-result report the CLI prints instead of a traceback."""
        engine = self._engine
        if self.oom is not None:
            halt_reason = "out_of_memory"
        elif self.degraded:
            halt_reason = "unrecoverable"
        else:
            halt_reason = ""
        return {
            "degraded": self.degraded,
            "halt_reason": halt_reason,
            "restarts_used": self.restarts_used,
            "max_restarts": self.plan.max_restarts,
            "heartbeats_missed": engine.metrics.heartbeats_missed if engine else 0,
            "clock_units": self._clock,
            "completed_supersteps": engine.superstep if engine else 0,
            "oom": dict(self.oom) if self.oom else None,
            "detections": [dict(d) for d in self._detections],
            "quarantined_workers": sorted(self._quarantined),
            "quarantines": [dict(q) for q in self._quarantines],
            "partition_hosts": list(self._host_of),
        }
