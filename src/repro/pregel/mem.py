"""Per-worker memory accounting and flow control for the Pregel simulator.

Every real Pregel runtime bounds its buffers: GPS caps per-worker message
buffers, Giraph spills out-of-core and splits supersteps when even spilling
cannot fit.  The simulator so far assumed infinite memory — a high-degree
hub or a dense superstep could grow inboxes and outboxes without bound, and
resource exhaustion was the one failure class with no injection, no
accounting, and no degradation path.  This module adds that layer:

* **Byte-metered budgets** — every inbox, outbox, combiner table, and
  checkpoint buffer charges a per-worker :class:`MemoryBudget` (payload
  bytes under the engine's own ``message_size`` model, so the accounting
  matches the paper's network metering).  ``--mem-budget BYTES[@W]`` makes
  exhaustion a first-class, reproducible fault like ``--inject-fault``.
* **Credit-based backpressure** — at the delivery barrier a sender acquires
  credit against the *destination* worker's budget and routes its batch in
  bounded chunks; when the destination is over budget the chunk parks until
  an inbox spill frees credit, so routing completes under any budget that
  fits the largest single message.
* **Spill-to-disk** — an over-budget inbox spills its resident buckets as a
  sorted run (ascending destination id, one pickled ``(dst, msgs)`` record
  per vertex) to a temp file; the vertex phase, which visits vertices in
  ascending id order in every scheduling mode, merge-reads the runs with
  sequential cursors.  Spilled traffic is metered in
  ``RunMetrics.spilled_bytes`` / ``spill_files``.
* **Graceful degradation** — when the *outbox* cannot fit, the superstep is
  split Giraph-style: the staged sub-batch is flushed to a sorted run
  mid-phase (``superstep_splits``) and re-merged at the next barrier.  Only
  a budget that cannot hold a single vertex's materialized inbox (or the
  combiner table, or the checkpoint window) is unsatisfiable: the run then
  degrades to ``halt_reason="out_of_memory"`` with a structured
  :class:`MemoryReport` instead of raising.

Determinism: none of this machinery changes *what* is delivered or in what
per-receiver order — spilled runs replay each receiver's messages in send
order ahead of the still-resident tail, and the vertex phase materializes
exactly the list a budget-free run would have seen.  Outputs and
``RunMetrics.parity_key()`` are bit-identical under any completing budget;
the new counters live outside the parity key, like the transport's fault
counters.  The unlimited-budget fast path installs nothing (the engine
checks one flag per run), mirroring the tracer's zero-overhead contract.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runtime import PregelEngine

_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: effectively-unlimited sentinel for workers without a finite budget
_UNLIMITED = 1 << 62

#: flat-list chunk size for the streamed checkpoint encoder (values per
#: record); 256 floats pickle to ~2KB, inside the default 4KB window
_CKPT_LIST_CHUNK = 256

#: nesting depth to which the checkpoint encoder decomposes containers;
#: deep enough to reach payload -> engine -> outbox -> per-vertex buckets.
_CKPT_DEPTH = 4


class MemoryExhausted(RuntimeError):
    """A worker's budget cannot hold an irreducible allocation.

    Raised only when spilling and splitting cannot help: a single vertex's
    materialized inbox, one combiner table, or the checkpoint stream window
    exceeds the worker's whole budget.  The engine converts this into
    ``halt_reason="out_of_memory"`` — it never escapes ``run()``.
    """

    def __init__(self, worker: int, phase: str, needed: int, budget: int, superstep: int):
        super().__init__(
            f"worker {worker} out of memory in {phase} at superstep "
            f"{superstep}: needs {needed} bytes, budget is {budget}"
        )
        self.worker = worker
        self.phase = phase
        self.needed = needed
        self.budget = budget
        self.superstep = superstep


@dataclass(frozen=True)
class MemPlan:
    """Everything about a run's memory model, fixed up front (deterministic).

    * ``budget_bytes`` — the per-worker byte budget; 0 means unlimited.
    * ``worker_budgets`` — ``(worker, bytes)`` overrides for targeted
      exhaustion (the ``BYTES@W`` CLI form); workers without an override
      use ``budget_bytes`` (unlimited if that is 0).
    * ``spill_dir`` — parent directory for the run's private spill
      directory; ``None`` uses the system temp dir.  The private directory
      is always deleted when the run ends.
    * ``spill_watermark`` — fraction of the budget at which the outbox
      splits / the inbox spills, leaving headroom for the allocation that
      crossed it; the hard budget still gates irreducible allocations.
    * ``checkpoint_window_bytes`` — the in-memory buffer granularity of the
      streamed checkpoint writer (its charge against the budget).
    * ``message_overhead_bytes`` — envelope cost charged per message on top
      of the program's declared payload size.  The network meter counts
      payload only (a BFS token is 0 wire bytes), but a buffered message
      always occupies memory — the tuple, the list slot, the bookkeeping —
      so budgets charge payload + envelope.
    """

    budget_bytes: int = 0
    worker_budgets: tuple[tuple[int, int], ...] = ()
    spill_dir: str | None = None
    spill_watermark: float = 0.875
    checkpoint_window_bytes: int = 4096
    message_overhead_bytes: int = 16

    def __post_init__(self):
        if self.budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0 (0 = unlimited)")
        for worker, budget in self.worker_budgets:
            if worker < 0:
                raise ValueError(f"worker index must be >= 0, got {worker}")
            if budget <= 0:
                raise ValueError(
                    f"per-worker budget must be > 0, got {budget} for worker {worker}"
                )
        if not 0.0 < self.spill_watermark <= 1.0:
            raise ValueError("spill_watermark must be in (0, 1]")
        if self.checkpoint_window_bytes < 1:
            raise ValueError("checkpoint_window_bytes must be >= 1")
        if self.message_overhead_bytes < 0:
            raise ValueError("message_overhead_bytes must be >= 0")

    @property
    def limited(self) -> bool:
        return self.budget_bytes > 0 or bool(self.worker_budgets)


_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def _parse_bytes(text: str) -> int:
    raw = text.strip().lower()
    scale = 1
    if raw and raw[-1] in _SUFFIXES:
        scale = _SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(raw) * scale
    except ValueError:
        raise ValueError(
            f"invalid byte count '{text}': expected an integer with an "
            "optional k/m/g suffix, e.g. 65536 or 64k"
        ) from None
    if value <= 0:
        raise ValueError(f"byte count must be > 0, got '{text}'")
    return value


def parse_mem_budget(specs: Iterable[str]) -> MemPlan:
    """Parse the CLI syntax: each spec is ``BYTES`` (every worker) or
    ``BYTES@WORKER`` (one worker), bytes with an optional k/m/g suffix —
    e.g. ``--mem-budget 64k --mem-budget 4096@1``."""
    base = 0
    overrides: dict[int, int] = {}
    for spec in specs:
        text = spec.strip()
        if "@" in text:
            value_text, worker_text = text.split("@", 1)
            try:
                worker = int(worker_text)
            except ValueError:
                raise ValueError(
                    f"invalid worker index in '{spec}': expected BYTES@WORKER, e.g. 4096@1"
                ) from None
            if worker < 0:
                raise ValueError(f"worker index must be >= 0 in '{spec}'")
            if worker in overrides:
                raise ValueError(f"duplicate budget for worker {worker} in '{spec}'")
            overrides[worker] = _parse_bytes(value_text)
        else:
            if base:
                raise ValueError(
                    f"duplicate global budget '{spec}': pass one BYTES spec, "
                    "plus optional BYTES@WORKER overrides"
                )
            base = _parse_bytes(text)
    return MemPlan(budget_bytes=base, worker_budgets=tuple(sorted(overrides.items())))


class MemoryBudget:
    """One worker's byte ledger: resident inbox + staged outbox + the
    materialized inbox of the vertex currently computing, against a fixed
    budget with a soft spill watermark."""

    __slots__ = (
        "worker",
        "budget_bytes",
        "soft_bytes",
        "inbox_bytes",
        "outbox_bytes",
        "fetch_bytes",
        "peak_bytes",
    )

    def __init__(self, worker: int, budget_bytes: int, watermark: float):
        self.worker = worker
        self.budget_bytes = budget_bytes
        self.soft_bytes = (
            max(1, int(budget_bytes * watermark))
            if budget_bytes < _UNLIMITED
            else _UNLIMITED
        )
        self.inbox_bytes = 0
        self.outbox_bytes = 0
        self.fetch_bytes = 0
        self.peak_bytes = 0

    @property
    def limited(self) -> bool:
        return self.budget_bytes < _UNLIMITED

    def total(self) -> int:
        return self.inbox_bytes + self.outbox_bytes + self.fetch_bytes

    def note_peak(self) -> None:
        total = self.inbox_bytes + self.outbox_bytes + self.fetch_bytes
        if total > self.peak_bytes:
            self.peak_bytes = total


class _SpillRef:
    """Inbox-slot marker: this vertex's messages live (partly) in spill
    runs; ``tail`` holds whatever arrived after the last spill and is still
    resident.  The engine's vertex phase materializes the full list through
    :meth:`MemoryManager.fetch_messages` before calling compute."""

    __slots__ = ("tail",)

    def __init__(self):
        self.tail: list = []


class _RunReader:
    """Sequential cursor over one sorted spill run (ascending dst)."""

    __slots__ = ("path", "head", "_file")

    def __init__(self, path: str):
        self.path = path
        self._file = open(path, "rb")
        self.head: tuple[int, list] | None = None
        self.advance()

    def advance(self) -> None:
        try:
            self.head = pickle.load(self._file)
        except EOFError:
            self.head = None
            self._file.close()

    def close(self) -> None:
        if self.head is not None:
            self._file.close()
            self.head = None


@dataclass
class MemoryReport:
    """The structured memory summary of one run — what the CLI prints and
    an OOM degradation carries instead of a traceback."""

    budget_bytes: int
    worker_budgets: dict[int, int]
    peak_bytes: list[int] = field(default_factory=list)
    spilled_bytes: int = 0
    spill_files: int = 0
    outbox_parks: int = 0
    superstep_splits: int = 0
    checkpoint_peak_bytes: int = 0
    largest_message_bytes: int = 0
    largest_vertex_inbox_bytes: int = 0
    oom: dict | None = None

    def to_dict(self) -> dict:
        return {
            "budget_bytes": self.budget_bytes,
            "worker_budgets": dict(self.worker_budgets),
            "peak_bytes": list(self.peak_bytes),
            "spilled_bytes": self.spilled_bytes,
            "spill_files": self.spill_files,
            "outbox_parks": self.outbox_parks,
            "superstep_splits": self.superstep_splits,
            "checkpoint_peak_bytes": self.checkpoint_peak_bytes,
            "largest_message_bytes": self.largest_message_bytes,
            "largest_vertex_inbox_bytes": self.largest_vertex_inbox_bytes,
            "oom": dict(self.oom) if self.oom else None,
        }

    def summary(self) -> str:
        peak = max(self.peak_bytes) if self.peak_bytes else 0
        text = (
            f"memory: budget={self.budget_bytes or 'unlimited'} "
            f"peak={peak} spilled={self.spilled_bytes} "
            f"spill_files={self.spill_files} parks={self.outbox_parks} "
            f"splits={self.superstep_splits}"
        )
        if self.checkpoint_peak_bytes:
            text += f" ckpt_peak={self.checkpoint_peak_bytes}"
        if self.oom:
            text += (
                f" | OOM: worker={self.oom['worker']} phase={self.oom['phase']} "
                f"superstep={self.oom['superstep']} "
                f"needed={self.oom['needed_bytes']} "
                f"budget={self.oom['budget_bytes']}"
            )
        return text


class _CheckpointBlob:
    """Handle to one streamed on-disk checkpoint (replaces the in-memory
    pickled bytes when a budget is active)."""

    __slots__ = ("path", "size")

    def __init__(self, path: str, size: int):
        self.path = path
        self.size = size

    def load(self) -> dict:
        with open(self.path, "rb") as f:
            return _stream_decode(f)


class _WindowWriter:
    """File writer that buffers up to ``window`` bytes in memory, tracking
    the peak buffered size — the checkpoint stream's charge against the
    budget (a real worker serializes through a bounded buffer, not by
    materializing the whole blob)."""

    __slots__ = ("_file", "_window", "_buf", "peak", "written")

    def __init__(self, f, window: int):
        self._file = f
        self._window = window
        self._buf = bytearray()
        self.peak = 0
        self.written = 0

    def write(self, data) -> int:
        buf = self._buf
        buf += data
        size = len(buf)
        if size > self.peak:
            self.peak = size
        if size >= self._window:
            self._file.write(buf)
            self.written += size
            self._buf = bytearray()
        return len(data)

    def flush(self) -> None:
        if self._buf:
            self._file.write(self._buf)
            self.written += len(self._buf)
            self._buf = bytearray()


def _stream_encode(obj, dump, depth: int = _CKPT_DEPTH) -> None:
    """Write ``obj`` as a sequence of small pickled records so no single
    serialization buffers the whole payload: dicts decompose per key,
    lists of containers per element, and long flat lists per chunk, down
    to ``depth`` levels.  (A short list of per-vertex dicts can pickle to
    tens of KB — length alone is not a safe proxy for record size.)"""
    if depth and isinstance(obj, dict):
        dump(("D", len(obj)))
        for key, value in obj.items():
            dump(("k", key))
            _stream_encode(value, dump, depth - 1)
    elif depth and isinstance(obj, list) and any(
        isinstance(item, (dict, list)) and item for item in obj
    ):
        dump(("E", len(obj)))
        for item in obj:
            _stream_encode(item, dump, depth - 1)
    elif depth and isinstance(obj, list) and len(obj) > _CKPT_LIST_CHUNK:
        dump(("L", len(obj)))
        for start in range(0, len(obj), _CKPT_LIST_CHUNK):
            dump(("c", obj[start : start + _CKPT_LIST_CHUNK]))
    else:
        dump(("V", obj))


def _stream_decode(f) -> dict:
    def read():
        tag, value = pickle.load(f)
        if tag == "D":
            out: dict = {}
            for _ in range(value):
                _k, key = pickle.load(f)
                out[key] = read()
            return out
        if tag == "E":
            return [read() for _ in range(value)]
        if tag == "L":
            items: list = []
            while len(items) < value:
                _c, chunk = pickle.load(f)
                items.extend(chunk)
            return items
        return value

    return read()


class MemoryManager:
    """Per-run memory accounting, backpressure, spilling, and splitting.

    Create one per execution (it is stateful) and hand it to the engine:
    ``program.run(graph, args, mem=MemoryManager(MemPlan(budget_bytes=65536)))``.
    With an unlimited plan the manager installs nothing — the engine's hot
    loops are untouched (the <5% fast-path contract of bench_mem.py).
    """

    def __init__(self, plan: MemPlan):
        self.plan = plan
        self._engine: "PregelEngine | None" = None
        self._mreg = None  # engine's metrics registry, picked up at attach()
        self.budgets: list[MemoryBudget] = []
        self._dir: str | None = None
        self._seq = 0
        self._closed = False
        # Per-worker delivery/vertex-phase state (filled by attach()).
        self._resident: list[dict[int, int]] = []   # dst -> resident bytes
        self._in_runs: list[list[_RunReader]] = []  # consumed ascending in the vertex phase
        self._in_leftover: list[dict[int, list]] = []
        self._out_runs: list[list[str]] = []        # sorted runs awaiting the next barrier
        self._dense_inbox: dict[int, list] | None = None
        self._no_messages: tuple = ()
        self._ckpt_paths: list[str] = []
        self._oom: dict | None = None
        self._largest_message = 0
        self._largest_inbox = 0
        self._size_of = None  # set by attach(): payload + envelope overhead

    @property
    def limited(self) -> bool:
        return self.plan.limited

    # -- wiring ----------------------------------------------------------

    def attach(self, engine: "PregelEngine") -> None:
        if self._engine is not None:
            raise RuntimeError("a MemoryManager drives exactly one run")
        self._mreg = getattr(engine, "_mreg", None)
        workers = engine.num_workers
        overrides = dict(self.plan.worker_budgets)
        for worker in overrides:
            if worker >= workers:
                raise ValueError(
                    f"--mem-budget targets worker {worker} but the engine "
                    f"has {workers} workers"
                )
        base = self.plan.budget_bytes or _UNLIMITED
        self.budgets = [
            MemoryBudget(w, overrides.get(w, base), self.plan.spill_watermark)
            for w in range(workers)
        ]
        self._resident = [{} for _ in range(workers)]
        self._in_runs = [[] for _ in range(workers)]
        self._in_leftover = [{} for _ in range(workers)]
        self._out_runs = [[] for _ in range(workers)]
        # Budget charges = declared payload + per-message envelope: the
        # network meter counts payload only, but a buffered message always
        # occupies memory, so zero-wire-byte programs still meter.
        payload = engine._message_size
        overhead = self.plan.message_overhead_bytes
        if overhead:
            self._size_of = lambda msg: payload(msg) + overhead
        else:
            self._size_of = payload
        self._engine = engine

    def install(self) -> None:
        """Swap in the budgeted execution hooks (limited plans only; called
        by ``run()``, mirroring the tracer's install-on-demand pattern).

        ``_enqueue`` is shadowed with an instance attribute so both direct
        sends and combiner flushes charge the destination worker's outbox;
        the vertex function is wrapped so spilled inboxes are materialized
        before compute and resident buckets are released after it.
        """
        engine = self._engine
        from .runtime import _NO_MESSAGES

        self._no_messages = _NO_MESSAGES
        inner_compute = engine._vertex_compute
        fetch = self.fetch_messages
        release = self._release_vertex

        def budgeted_compute(ctx, vid, messages):
            if type(messages) is _SpillRef:
                messages = fetch(vid, messages)
            inner_compute(ctx, vid, messages)
            release(vid)

        inner_enqueue = engine._enqueue
        charge = self.charge_outbox

        def budgeted_enqueue(dst, msg):
            inner_enqueue(dst, msg)
            charge(dst, msg)

        engine._vertex_compute = budgeted_compute
        engine._enqueue = budgeted_enqueue  # type: ignore[method-assign]

    # -- observability ----------------------------------------------------

    def _tracer(self):
        """The engine's recording tracer, or None.  mem.* events carry no
        deterministic payload (``det=None``): a budgeted run's trace must
        project to the same deterministic stream as an unlimited one."""
        tracer = self._engine.tracer
        return tracer if tracer is not None and tracer.enabled else None

    def _event(self, name: str, **info) -> None:
        tracer = self._tracer()
        if tracer is not None:
            tracer.event(name, cat="mem", info=info)

    # -- spill files ------------------------------------------------------

    def _spill_path(self, kind: str, worker: int) -> str:
        if self._dir is None:
            if self.plan.spill_dir is not None:
                os.makedirs(self.plan.spill_dir, exist_ok=True)
            self._dir = tempfile.mkdtemp(
                prefix="gm-pregel-mem-", dir=self.plan.spill_dir
            )
        self._seq += 1
        return os.path.join(self._dir, f"{self._seq:06d}-{kind}-w{worker}.run")

    def _write_run(self, path: str, records: Iterable[tuple[int, list]]) -> int:
        count = 0
        with open(path, "wb") as f:
            for record in records:
                pickle.dump(record, f, _PROTOCOL)
                count += 1
        return count

    # -- outbox: charging and superstep splitting -------------------------

    def charge_outbox(self, dst: int, msg: tuple) -> None:
        """Charge one staged message to the destination worker's outbox;
        crossing the watermark splits the superstep (spills the staged
        sub-batch as a sorted run)."""
        engine = self._engine
        budget = self.budgets[engine._worker_of[dst]]
        size = self._size_of(msg)
        if size > self._largest_message:
            self._largest_message = size
        budget.outbox_bytes += size
        budget.note_peak()
        if budget.outbox_bytes + budget.inbox_bytes + budget.fetch_bytes > budget.soft_bytes:
            self._split_superstep(budget.worker)

    def _staged_part(self, worker: int) -> dict[int, list]:
        """The live staged outbox headed for ``worker`` (extracted from the
        flat dict in dense mode)."""
        engine = self._engine
        if engine._batched:
            return engine._out_parts[worker]
        outbox = engine._outbox
        worker_of = engine._worker_of
        part = {dst: outbox.pop(dst) for dst in list(outbox) if worker_of[dst] == worker}
        return part

    def _split_superstep(self, worker: int) -> bool:
        """Giraph-style degradation: flush the staged outbox sub-batch for
        ``worker`` to a sorted run mid-phase; the next barrier re-merges
        runs ahead of the residual in-memory batch, preserving every
        receiver's send order."""
        engine = self._engine
        part = self._staged_part(worker)
        if not part:
            return False
        budget = self.budgets[worker]
        spilled = budget.outbox_bytes
        records = len(part)
        path = self._spill_path("outbox", worker)
        self._write_run(path, sorted(part.items()))
        if engine._batched:
            part.clear()
        self._out_runs[worker].append(path)
        budget.outbox_bytes = 0
        metrics = engine.metrics
        metrics.superstep_splits += 1
        metrics.spill_files += 1
        metrics.spilled_bytes += spilled
        if self._mreg is not None:
            self._mreg.counter("mem.superstep_splits").inc()
            self._mreg.counter("mem.spill_files").inc()
            self._mreg.counter("mem.spilled_bytes").inc(spilled)
        self._event(
            "mem.split",
            worker=worker,
            superstep=engine.superstep,
            bytes=spilled,
            records=records,
        )
        return True

    # -- inbox: credit-chunked delivery and spilling ----------------------

    def _park(self, worker: int) -> None:
        """Delivery stalled on an over-budget destination: meter the park
        and spill the destination's resident inbox to free credit."""
        engine = self._engine
        engine.metrics.outbox_parks += 1
        if self._mreg is not None:
            self._mreg.counter("mem.outbox_parks").inc()
        self._event(
            "mem.park",
            worker=worker,
            superstep=engine.superstep,
            resident=self.budgets[worker].total(),
        )
        self._spill_inbox(worker)

    def _slot_get(self, dst: int):
        if self._dense_inbox is not None:
            return self._dense_inbox.get(dst)
        value = self._engine._inbox_slots[dst]
        return None if value is self._no_messages else value

    def _slot_set(self, dst: int, value) -> None:
        if self._dense_inbox is not None:
            self._dense_inbox[dst] = value
        else:
            self._engine._inbox_slots[dst] = value

    def _spill_inbox(self, worker: int) -> bool:
        """Spill the worker's resident (not-yet-consumed) inbox buckets as
        one sorted run, replacing each slot with a :class:`_SpillRef`."""
        resident = self._resident[worker]
        if not resident:
            return False
        engine = self._engine
        budget = self.budgets[worker]
        path = self._spill_path("inbox", worker)
        spilled = 0
        records = 0
        with open(path, "wb") as f:
            for dst in sorted(resident):
                value = self._slot_get(dst)
                if type(value) is _SpillRef:
                    if not value.tail:
                        continue
                    pickle.dump((dst, value.tail), f, _PROTOCOL)
                    value.tail = []
                else:
                    pickle.dump((dst, value), f, _PROTOCOL)
                    self._slot_set(dst, _SpillRef())
                spilled += resident[dst]
                records += 1
        if not records:
            os.unlink(path)
            resident.clear()
            return False
        resident.clear()
        budget.inbox_bytes = 0
        self._in_runs[worker].append(_RunReader(path))
        metrics = engine.metrics
        metrics.spill_files += 1
        metrics.spilled_bytes += spilled
        if self._mreg is not None:
            self._mreg.counter("mem.spill_files").inc()
            self._mreg.counter("mem.spilled_bytes").inc(spilled)
        self._event(
            "mem.spill",
            worker=worker,
            superstep=engine.superstep,
            bytes=spilled,
            records=records,
        )
        return True

    def _incoming_stream(
        self, worker: int, part: dict[int, list]
    ) -> Iterator[tuple[int, list, bool]]:
        """This barrier's traffic for ``worker``: the mid-phase split runs
        (in spill order — earlier sends first) then the residual in-memory
        batch, so each receiver sees its messages in send order.  The third
        element flags whether the bucket still carries a live outbox charge
        (split runs were discharged when they hit disk; live part buckets
        move their charge to the inbox as they deliver)."""
        runs = self._out_runs[worker]
        self._out_runs[worker] = []
        for path in runs:
            with open(path, "rb") as f:
                while True:
                    try:
                        dst, msgs = pickle.load(f)
                    except EOFError:
                        break
                    yield dst, msgs, False
            os.unlink(path)
        if part:
            for dst, msgs in part.items():
                yield dst, msgs, True

    def _deliver_worker(self, worker: int, part: dict[int, list], install) -> None:
        """Route one destination worker's traffic under credit control:
        chunks of at most the free budget (never less than one message) are
        handed over; an exhausted budget parks the stream behind an inbox
        spill.  The transport, when present, carries each chunk — faults
        cost retransmissions, never data."""
        engine = self._engine
        budget = self.budgets[worker]
        budget_bytes = budget.budget_bytes
        size_of = self._size_of
        transport = engine._transport
        for dst, msgs, charged in self._incoming_stream(worker, part):
            n = len(msgs)
            start = 0
            while start < n:
                free = budget_bytes - budget.total()
                if free <= 0:
                    self._park(worker)
                    free = budget_bytes - budget.total()
                taken = 0
                nbytes = 0
                while start + taken < n:
                    b = size_of(msgs[start + taken])
                    if taken and nbytes + b > free:
                        break
                    nbytes += b
                    taken += 1
                    if nbytes >= free:
                        break
                piece = msgs if taken == n and start == 0 else msgs[start : start + taken]
                if transport is not None:
                    piece = transport.route_part(worker, {dst: piece})[dst]
                install(dst, piece, nbytes)
                budget.inbox_bytes += nbytes
                if charged:
                    # Delivered: the bytes move from the staged-outbox charge
                    # to the inbox charge — one copy, counted once.
                    budget.outbox_bytes -= nbytes
                budget.note_peak()
                start += taken

    def _install_piece(self, worker: int, dst: int, piece: list, nbytes: int, receiving) -> None:
        resident = self._resident[worker]
        current = self._slot_get(dst)
        if current is None:
            # First piece for this receiver.  A whole-bucket piece aliases
            # the sender's staged list — safe because each receiver's last
            # traffic source is the in-memory batch (one bucket per dst),
            # so an aliased install is never extended afterwards; partial
            # pieces and run records are fresh lists owned here.
            self._slot_set(dst, piece)
            if receiving is not None:
                receiving(dst)
            total = resident[dst] = nbytes
        else:
            if type(current) is _SpillRef:
                current.tail.extend(piece)
            else:
                current.extend(piece)
            total = resident[dst] = resident.get(dst, 0) + nbytes
        # Resident bytes bound the receiver's inbox from below (spilled
        # vertices are re-measured exactly at fetch time), so the maximum
        # across both paths is the true largest single-vertex inbox — the
        # budget's satisfiability floor.
        if total > self._largest_inbox:
            self._largest_inbox = total

    def deliver_batched(self, incoming: list[dict[int, list]], receiving) -> None:
        """Budgeted replacement for the barrier's batched routing: same
        per-worker order, same per-receiver message order, plus credit
        control and spilling."""
        self._dense_inbox = None
        for worker, part in enumerate(incoming):
            if part or self._out_runs[worker]:
                install = lambda dst, piece, nbytes, w=worker: self._install_piece(
                    w, dst, piece, nbytes, receiving
                )
                self._deliver_worker(worker, part, install)
                part.clear()

    def deliver_dense(self, outbox: dict[int, list]) -> dict[int, list]:
        """Budgeted replacement for the dense barrier's inbox swap: group
        the flat outbox by destination worker (ascending, matching the
        transport's routing order) and credit-route each group."""
        merged: dict[int, list] = {}
        self._dense_inbox = merged
        engine = self._engine
        worker_of = engine._worker_of
        parts: dict[int, dict[int, list]] = {}
        for dst, msgs in outbox.items():
            wid = worker_of[dst]
            bucket = parts.get(wid)
            if bucket is None:
                parts[wid] = {dst: msgs}
            else:
                bucket[dst] = msgs
        for worker in range(engine.num_workers):
            part = parts.get(worker)
            if part or self._out_runs[worker]:
                install = lambda dst, piece, nbytes, w=worker: self._install_piece(
                    w, dst, piece, nbytes, None
                )
                self._deliver_worker(worker, part or {}, install)
        return merged

    # -- vertex phase: materializing spilled inboxes ----------------------

    def fetch_messages(self, vid: int, ref: _SpillRef) -> list:
        """Materialize one spilled vertex's full message list: run records
        (sequential cursors — the vertex phase visits ascending ids in
        every mode) in spill order, then the resident tail.  The list is
        charged against the owner's budget for the duration of compute;
        a vertex whose inbox alone exceeds the budget is unsatisfiable."""
        engine = self._engine
        worker = engine._worker_of[vid]
        budget = self.budgets[worker]
        leftover = self._in_leftover[worker]
        msgs: list = leftover.pop(vid, None) or []
        for reader in self._in_runs[worker]:
            head = reader.head
            while head is not None and head[0] <= vid:
                if head[0] == vid:
                    msgs.extend(head[1])
                else:
                    # Defensive: a record for an already-passed id (cannot
                    # happen in ascending phases) is parked, not lost.
                    leftover.setdefault(head[0], []).extend(head[1])
                reader.advance()
                head = reader.head
        msgs.extend(ref.tail)
        size_of = self._size_of
        nbytes = 0
        for msg in msgs:
            nbytes += size_of(msg)
        if nbytes > self._largest_inbox:
            self._largest_inbox = nbytes
        # The resident tail just moved into the materialized list: release
        # its inbox charge so it is not double-counted under fetch_bytes.
        released = self._resident[worker].pop(vid, 0)
        if released:
            budget.inbox_bytes -= released
        budget.fetch_bytes = nbytes
        if budget.total() > budget.budget_bytes:
            # Free everything that can move: split the staged outbox,
            # spill the other residents.  What remains is irreducible.
            self._split_superstep(worker)
            self._spill_inbox(worker)
            if budget.total() > budget.budget_bytes:
                budget.fetch_bytes = 0
                raise MemoryExhausted(
                    worker,
                    "vertex",
                    nbytes,
                    budget.budget_bytes,
                    engine.superstep,
                )
        budget.note_peak()
        return msgs

    def _release_vertex(self, vid: int) -> None:
        """After compute: drop the vertex's resident charge (its messages
        are consumed) and the fetch charge pinned on its worker."""
        worker = self._engine._worker_of[vid]
        budget = self.budgets[worker]
        released = self._resident[worker].pop(vid, 0)
        if released:
            budget.inbox_bytes -= released
        if budget.fetch_bytes:
            budget.fetch_bytes = 0

    # -- combiner table ---------------------------------------------------

    def check_combiner(self, combined: dict) -> None:
        """Charge each sender's combiner table before the barrier flush.
        The table cannot spill (folds mutate it in place all superstep), so
        a table exceeding its worker's budget is unsatisfiable."""
        engine = self._engine
        size_of = self._size_of
        per_worker: dict[int, int] = {}
        for (sender_worker, _dst, _tag), msg in combined.items():
            per_worker[sender_worker] = per_worker.get(sender_worker, 0) + size_of(msg)
        for worker, nbytes in per_worker.items():
            budget = self.budgets[worker]
            total = budget.total() + nbytes
            if total > budget.peak_bytes:
                budget.peak_bytes = total
            if nbytes > budget.budget_bytes:
                raise MemoryExhausted(
                    worker, "combine", nbytes, budget.budget_bytes, engine.superstep
                )

    def note_transport_buffer(self, worker: int, nbytes: int) -> None:
        """Charge a transport reorder buffer's peak occupancy against
        ``worker``'s budget peak.  Metered only — protocol buffers cannot
        spill without breaking the ack contract, so they never raise."""
        if nbytes <= 0:
            return
        budget = self.budgets[worker]
        total = budget.total() + nbytes
        if total > budget.peak_bytes:
            budget.peak_bytes = total

    def charge_exchange(
        self,
        inbox_bytes: list[int],
        delivered_bytes: list[int],
        superstep: int,
    ) -> None:
        """Parent-side ledger for the mp backend's exchange barrier.

        Each worker process reports its byte accounting in the barrier
        reply; the parent charges both the inbox it computed over this
        superstep (delivered at the *previous* barrier) and the batch it
        just installed — the same two buffers the simulator's ledger holds
        resident at its barrier.  The mp backend has no cooperative spill
        path (buffers live in worker processes), so the watermark never
        fires: crossing the hard budget raises :class:`MemoryExhausted`,
        which the engine degrades to ``halt_reason="out_of_memory"``."""
        for budget in self.budgets:
            w = budget.worker
            budget.inbox_bytes = inbox_bytes[w]
            budget.outbox_bytes = delivered_bytes[w]
            budget.note_peak()
            total = budget.total()
            if budget.limited and total > budget.budget_bytes:
                raise MemoryExhausted(
                    w, "exchange", total, budget.budget_bytes, superstep
                )

    # -- checkpoint streaming ---------------------------------------------

    def write_checkpoint(self, payload: dict) -> _CheckpointBlob:
        """Stream a checkpoint payload to disk through a bounded window
        instead of materializing one pickled blob: containers decompose
        into small records (dict entries, list chunks, per-vertex outbox
        buckets), so the in-memory cost is the window plus the largest
        single record — metered as ``checkpoint_peak_bytes`` and charged
        against the tightest worker budget."""
        engine = self._engine
        path = self._spill_path("ckpt", 0)
        with open(path, "wb") as f:
            writer = _WindowWriter(f, self.plan.checkpoint_window_bytes)
            _stream_encode(payload, lambda record: pickle.dump(record, writer, _PROTOCOL))
            writer.flush()
        metrics = engine.metrics
        if writer.peak > metrics.checkpoint_peak_bytes:
            metrics.checkpoint_peak_bytes = writer.peak
        if self._mreg is not None:
            self._mreg.gauge("mem.checkpoint_peak_bytes").set_max(writer.peak)
        tightest = min(self.budgets, key=lambda b: b.budget_bytes)
        if tightest.limited and writer.peak > tightest.budget_bytes:
            raise MemoryExhausted(
                tightest.worker,
                "checkpoint",
                writer.peak,
                tightest.budget_bytes,
                engine.superstep,
            )
        self._ckpt_paths.append(path)
        size = os.path.getsize(path)
        self._event(
            "mem.checkpoint",
            superstep=engine.superstep,
            bytes=size,
            peak=writer.peak,
        )
        return _CheckpointBlob(path, size)

    # -- barrier / recovery hooks -----------------------------------------

    def outbox_snapshot(self) -> dict[int, list]:
        """The in-flight ``{dst: msgs}`` map *including* split runs — the
        budgeted engine's ``outbox_view()``.  Runs are peek-read (delivery
        still consumes them later); the FT manager checkpoints and logs
        through this, so recovery sees the same traffic a budget-free run
        would have staged in memory."""
        engine = self._engine
        merged: dict[int, list] = {}
        for worker in range(engine.num_workers):
            for path in self._out_runs[worker]:
                with open(path, "rb") as f:
                    while True:
                        try:
                            dst, msgs = pickle.load(f)
                        except EOFError:
                            break
                        previous = merged.get(dst)
                        merged[dst] = msgs if previous is None else previous + msgs
        live = (
            engine._out_parts
            if engine._batched
            else [engine._outbox]
        )
        for part in live:
            for dst, msgs in part.items():
                previous = merged.get(dst)
                merged[dst] = msgs if previous is None else previous + msgs
        return merged

    def on_rollback(self) -> None:
        """Full-rollback restore: the engine just reinstalled the
        checkpoint's in-flight outbox in memory, so every live run file is
        stale — delete them and recharge the ledger from the restored
        staged batches (splitting again immediately if they exceed the
        watermark)."""
        engine = self._engine
        for worker in range(engine.num_workers):
            for reader in self._in_runs[worker]:
                path = reader.path
                reader.close()
                if os.path.exists(path):
                    os.unlink(path)
            self._in_runs[worker].clear()
            for path in self._out_runs[worker]:
                if os.path.exists(path):
                    os.unlink(path)
            self._out_runs[worker].clear()
            self._in_leftover[worker].clear()
            self._resident[worker].clear()
            budget = self.budgets[worker]
            budget.inbox_bytes = 0
            budget.outbox_bytes = 0
            budget.fetch_bytes = 0
        self._dense_inbox = None
        size_of = self._size_of
        worker_of = engine._worker_of
        parts = engine._out_parts if engine._batched else [engine._outbox]
        for part in parts:
            for dst, msgs in part.items():
                budget = self.budgets[worker_of[dst]]
                for msg in msgs:
                    budget.outbox_bytes += size_of(msg)
        for budget in self.budgets:
            budget.note_peak()
            if budget.total() > budget.soft_bytes:
                self._split_superstep(budget.worker)

    def on_superstep_end(self) -> None:
        """Barrier cleanup: the vertex phase consumed this superstep's
        inbox — drop its runs, leftovers, and resident charges.  Staged
        outbox charges (and split runs) carry over to the next barrier."""
        engine = self._engine
        for worker in range(engine.num_workers):
            for reader in self._in_runs[worker]:
                path = reader.path
                reader.close()
                if os.path.exists(path):
                    os.unlink(path)
            self._in_runs[worker].clear()
            self._in_leftover[worker].clear()
            self._resident[worker].clear()
            budget = self.budgets[worker]
            budget.inbox_bytes = 0
            budget.fetch_bytes = 0
        self._dense_inbox = None

    # -- lifecycle / reporting --------------------------------------------

    def record_oom(self, exc: MemoryExhausted) -> None:
        self._oom = {
            "worker": exc.worker,
            "phase": exc.phase,
            "needed_bytes": exc.needed,
            "budget_bytes": exc.budget,
            "superstep": exc.superstep,
        }
        self._event("mem.oom", **self._oom)

    def close(self) -> None:
        """Release every spill resource (idempotent; the engine calls this
        when ``run()`` ends, on any path).  Counters and the report stay
        readable afterwards."""
        if self._closed:
            return
        self._closed = True
        for runs in self._in_runs:
            for reader in runs:
                reader.close()
            runs.clear()
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None
        for runs in self._out_runs:
            runs.clear()
        self._ckpt_paths.clear()
        engine = self._engine
        if engine is not None and self.budgets:
            peak = max(budget.peak_bytes for budget in self.budgets)
            if peak > engine.metrics.mem_peak_bytes:
                engine.metrics.mem_peak_bytes = peak
            if self._mreg is not None:
                self._mreg.gauge("mem.peak_bytes").set_max(peak)

    def report(self) -> MemoryReport:
        """The structured :class:`MemoryReport` for this run."""
        metrics = self._engine.metrics if self._engine is not None else None
        return MemoryReport(
            budget_bytes=self.plan.budget_bytes,
            worker_budgets=dict(self.plan.worker_budgets),
            peak_bytes=[budget.peak_bytes for budget in self.budgets],
            spilled_bytes=metrics.spilled_bytes if metrics else 0,
            spill_files=metrics.spill_files if metrics else 0,
            outbox_parks=metrics.outbox_parks if metrics else 0,
            superstep_splits=metrics.superstep_splits if metrics else 0,
            checkpoint_peak_bytes=metrics.checkpoint_peak_bytes if metrics else 0,
            largest_message_bytes=self._largest_message,
            largest_vertex_inbox_bytes=self._largest_inbox,
            oom=dict(self._oom) if self._oom else None,
        )
