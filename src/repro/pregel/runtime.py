"""The Pregel/GPS bulk-synchronous execution engine.

A faithful single-process simulator of GPS (the open-source Pregel the paper
evaluates on):

* computation proceeds in *supersteps* separated by global barriers;
* ``master.compute()`` runs at the start of each superstep (GPS §2.1's
  extension), sees global objects aggregated from the previous superstep's
  vertex puts, and broadcasts values visible to vertices in the same
  superstep;
* every vertex executes ``vertex.compute()`` once per superstep; messages
  sent in superstep *i* are delivered in superstep *i + 1*;
* optional vote-to-halt semantics (used by hand-written Pregel programs; the
  compiler-generated programs drive termination from the master, exactly as
  the paper describes in §5.2).

The engine also meters what the paper measures: the number of timesteps, the
number of messages, and the network I/O they cause under a hash partitioning
of vertices across ``num_workers`` simulated machines.

Superstep scheduling
--------------------

Message-driven programs (BFS-like traversals, converging SSSP) leave most
vertices idle after the first few supersteps, yet a naive BSP loop still
visits every vertex every superstep — the dominant cost on large graphs.
The engine therefore supports two scheduling modes (GraphIt-style
sparse/dense direction switching, applied to the vertex iteration):

* ``scheduling="frontier"`` (the default) — track the *frontier* (vertices
  with incoming messages ∪ vertices that have not voted to halt) explicitly
  and iterate only it while it is sparse; when the frontier exceeds
  ``frontier_threshold × num_nodes`` the engine falls back to the dense
  scan, whose per-vertex cost is lower.  Messages are staged in per-worker
  batched outboxes (one per *destination* worker, as a real Pregel's
  outgoing buffers) and routed once at the barrier into a dense inbox
  index, replacing the per-send dict lookup.  Routing by destination worker
  preserves each receiver's message order exactly, so results and every
  metered quantity are bit-identical to the dense scan.
* ``scheduling="dense"`` — the classic loop over every vertex (skipping
  voted ones under ``use_voting``); the opt-out baseline the frontier mode
  is benchmarked and parity-tested against.

Engines without voting have no idle-vertex information (the compiler's
generated programs deliberately do not vote, §5.2), so the frontier mode
runs their vertex phase densely — batched routing still applies.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, Callable, Protocol

if TYPE_CHECKING:  # pragma: no cover
    from .ft import FaultTolerance
    from .mem import MemoryManager
    from .net import SimulatedTransport
    from .supervisor import Supervisor
    from ..obs.metrics import MetricsRegistry
    from ..obs.tracer import Tracer

from .globalmap import GlobalObjectMap, GlobalOp
from .graph import Graph
from .mem import MemoryExhausted

_NO_MESSAGES: tuple = ()

#: Shared by every backend's vertex ctx (the mp worker raises it from a
#: forked process), so a mis-composed program fails identically everywhere.
VOTING_DISABLED_ERROR = (
    "vote_to_halt() called on an engine constructed with "
    "use_voting=False: pass use_voting=True to PregelEngine, or "
    "drive termination from the master via halt()"
)


class VertexCompute(Protocol):
    def __call__(self, ctx: "PregelEngine", vid: int, messages: list) -> None: ...


class MasterCompute(Protocol):
    def __call__(self, ctx: "PregelEngine") -> None: ...


@dataclass
class RunMetrics:
    """What one Pregel execution cost — the quantities of Figure 6 / §5.2."""

    supersteps: int = 0
    messages: int = 0
    message_bytes: int = 0
    net_messages: int = 0        # messages crossing a worker boundary
    net_bytes: int = 0           # their payload bytes
    broadcast_values: int = 0    # master→vertex global-object broadcasts
    wall_seconds: float = 0.0
    result: Any = None
    halt_reason: str = ""
    #: which execution backend produced this ledger ("sim", "columnar",
    #: "mp"); descriptive only — deliberately outside parity_key(), which
    #: must be bit-identical *across* backends.
    backend: str = "sim"
    per_superstep_messages: list[int] = field(default_factory=list)
    #: send() calls per worker over the whole run (hash partitioning); the
    #: spread measures the load imbalance skewed graphs inflict on a real
    #: cluster, where superstep time = the slowest worker's time.  Unlike
    #: ``messages`` (delivered traffic), this counts every send *including*
    #: those folded into a combiner slot — the sender still does the combine
    #: work — so combiner runs report their true per-worker send load.
    worker_sent: list[int] = field(default_factory=list)
    #: simulated cluster time (with ``track_makespan=True``): per superstep,
    #: the *maximum* over workers of (vertices computed + messages sent +
    #: messages received), summed over supersteps.  A balanced run's makespan
    #: approaches total_work / num_workers; a skewed one is dominated by the
    #: hub-owning worker — the effect behind the paper's per-graph run times.
    makespan_units: int = 0
    ideal_units: float = 0.0
    # -- fault tolerance (repro.pregel.ft) ------------------------------
    #: checkpoints written / their total pickled payload bytes.
    checkpoints_taken: int = 0
    checkpoint_bytes: int = 0
    #: worker crashes injected and the supersteps of work they destroyed
    #: (distance from the crash back to the recovery checkpoint).
    faults_injected: int = 0
    lost_supersteps: int = 0
    #: vertex computations re-executed during recovery: rollback recovery
    #: replays every partition, confined recovery only the failed one.
    recovery_replay_work: int = 0
    #: transient-network accounting: cross-worker deliveries that needed a
    #: retry, and the exponential-backoff units those retries cost.
    messages_retried: int = 0
    retry_backoff_units: int = 0
    # -- simulated transport (repro.pregel.net) --------------------------
    #: channel faults inflicted on the wire and absorbed by the reliable
    #: delivery protocol: attempts dropped in flight, duplicate arrivals
    #: discarded by the dedup table, out-of-order arrivals parked in the
    #: reorder buffer, corrupt arrivals caught by the checksum.  None of
    #: these reach results — they cost retransmissions and backoff.
    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_reordered: int = 0
    messages_corrupted: int = 0
    packets_retransmitted: int = 0
    net_backoff_units: int = 0
    # -- supervision (repro.pregel.supervisor) ---------------------------
    #: heartbeats the failure detector missed before declaring workers
    #: dead, detector-driven restarts, and stragglers quarantined.
    heartbeats_missed: int = 0
    restarts: int = 0
    workers_quarantined: int = 0
    # -- memory accounting (repro.pregel.mem) -----------------------------
    #: bytes written to spill runs (inbox spills + superstep splits) and
    #: the number of run files; credit-exhausted delivery stalls (parks)
    #: and Giraph-style mid-phase outbox splits.  Like the transport's
    #: fault counters these describe *how* the run fit its budget, not what
    #: it computed — they stay outside parity_key().
    spilled_bytes: int = 0
    spill_files: int = 0
    outbox_parks: int = 0
    superstep_splits: int = 0
    #: peak resident bytes over all workers, and the streamed checkpoint
    #: writer's peak buffered bytes.
    mem_peak_bytes: int = 0
    checkpoint_peak_bytes: int = 0
    # -- codegen/backend provenance ---------------------------------------
    #: receive phases the columnar vectorizer actually installed bulk
    #: handlers for ("phase<id>" labels) — empty on sim/mp and whenever the
    #: slab fast path is inactive.  Backend provenance like ``backend``
    #: itself, so excluded from parity_key().
    vectorized_phases: list[str] = field(default_factory=list)

    def makespan_inflation(self) -> float:
        """makespan / perfectly-balanced makespan (1.0 = no imbalance)."""
        if self.ideal_units == 0:
            return 1.0
        return self.makespan_units / self.ideal_units

    def load_imbalance(self) -> float:
        """max/mean of per-worker sent messages (1.0 = perfectly balanced)."""
        sent = self.worker_sent
        if not sent or sum(sent) == 0:
            return 1.0
        mean = sum(sent) / len(sent)
        return max(sent) / mean

    def to_dict(self) -> dict:
        """The complete ledger as plain data — *every* dataclass field, so a
        machine-readable dump can never silently lag behind new counters
        (asserted against ``dataclasses.fields`` by the test suite).  List
        fields are copied; the caller owns the result."""
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, list) else value
        return out

    def parity_key(self) -> dict:
        """The deterministic quantities a recovered run must reproduce
        bit-identically against its failure-free twin (everything the paper
        measures except wall time, which recovery legitimately inflates)."""
        return {
            "supersteps": self.supersteps,
            "messages": self.messages,
            "message_bytes": self.message_bytes,
            "net_messages": self.net_messages,
            "net_bytes": self.net_bytes,
            "broadcast_values": self.broadcast_values,
            "worker_sent": list(self.worker_sent),
            "halt_reason": self.halt_reason,
            "result": self.result,
        }

    def summary(self) -> str:
        text = (
            f"supersteps={self.supersteps} messages={self.messages} "
            f"bytes={self.message_bytes} net_bytes={self.net_bytes} "
            f"halt={self.halt_reason or '?'} wall={self.wall_seconds:.3f}s "
            f"backend={self.backend}"
        )
        if self.vectorized_phases:
            text += f" vectorized=[{','.join(self.vectorized_phases)}]"
        if self.checkpoints_taken or self.faults_injected:
            text += (
                f" | ft: checkpoints={self.checkpoints_taken} "
                f"ckpt_bytes={self.checkpoint_bytes} faults={self.faults_injected} "
                f"lost_supersteps={self.lost_supersteps} "
                f"replay_work={self.recovery_replay_work}"
            )
        if self.messages_retried:
            text += (
                f" | net: retried={self.messages_retried} "
                f"backoff_units={self.retry_backoff_units}"
            )
        if (
            self.messages_dropped
            or self.messages_duplicated
            or self.messages_reordered
            or self.messages_corrupted
        ):
            text += (
                f" | transport: dropped={self.messages_dropped} "
                f"duplicated={self.messages_duplicated} "
                f"reordered={self.messages_reordered} "
                f"corrupted={self.messages_corrupted} "
                f"retransmitted={self.packets_retransmitted} "
                f"backoff_units={self.net_backoff_units}"
            )
        if self.heartbeats_missed or self.restarts or self.workers_quarantined:
            text += (
                f" | supervisor: heartbeats_missed={self.heartbeats_missed} "
                f"restarts={self.restarts} quarantined={self.workers_quarantined}"
            )
        if (
            self.spilled_bytes
            or self.spill_files
            or self.outbox_parks
            or self.superstep_splits
            or self.mem_peak_bytes
        ):
            text += (
                f" | mem: peak={self.mem_peak_bytes} "
                f"spilled={self.spilled_bytes} spill_files={self.spill_files} "
                f"parks={self.outbox_parks} splits={self.superstep_splits}"
            )
            if self.checkpoint_peak_bytes:
                text += f" ckpt_peak={self.checkpoint_peak_bytes}"
        return text


def default_message_size(msg: tuple) -> int:
    """Fallback sizing: 1 byte tag + 8 bytes per payload field."""
    return 1 + 8 * (len(msg) - 1)


class PregelEngine:
    """One Pregel job: a graph, a vertex program, and an optional master.

    The engine object itself is the context handed to both compute functions.
    """

    def __init__(
        self,
        graph: Graph,
        vertex_compute: VertexCompute,
        master_compute: MasterCompute | None = None,
        *,
        num_workers: int = 4,
        seed: int = 17,
        message_size: Callable[[tuple], int] = default_message_size,
        max_supersteps: int = 1_000_000,
        use_voting: bool = False,
        record_per_superstep: bool = False,
        combiners: dict[int, Callable[[tuple, tuple], tuple]] | None = None,
        partitioning: str = "hash",
        track_makespan: bool = False,
        ft: "FaultTolerance | None" = None,
        scheduling: str = "frontier",
        frontier_threshold: float = 0.25,
        tracer: "Tracer | None" = None,
        transport: "SimulatedTransport | None" = None,
        supervisor: "Supervisor | None" = None,
        mem: "MemoryManager | None" = None,
        metrics_registry: "MetricsRegistry | None" = None,
    ):
        self.graph = graph
        self._vertex_compute = vertex_compute
        self._master_compute = master_compute
        self.num_workers = max(1, num_workers)
        self.rng = random.Random(seed)
        self._message_size = message_size
        self._max_supersteps = max_supersteps
        self._use_voting = use_voting
        self._record_per_superstep = record_per_superstep

        self.globals = GlobalObjectMap()
        self.superstep = 0
        self.result: Any = None
        self.metrics = RunMetrics()
        # Metrics registry (repro.obs.metrics): cumulative counters/gauges/
        # histograms with the tracer's zero-cost discipline — ``None`` and a
        # disabled registry both collapse to ``_mreg = None`` and the hot
        # loops are untouched.  Set before the subsystem attach() calls below
        # so ft/transport/supervisor/mem can pick up their instruments.
        self.metrics_registry = metrics_registry
        self._mreg = (
            metrics_registry
            if metrics_registry is not None and metrics_registry.enabled
            else None
        )

        self._halt = False
        self._outbox: dict[int, list] = {}
        self._inbox: dict[int, list] = {}
        self._current_vertex = -1
        self._voted = bytearray(graph.num_nodes) if use_voting else None
        # Superstep scheduling (see module docstring).  Frontier mode stages
        # sends in per-destination-worker batches and routes them once at
        # the barrier; the frontier itself is maintained incrementally (the
        # survivors of the last frontier that did not vote, plus the new
        # inbox keys) with a dirty flag forcing a full voted-bitmap scan
        # after anything that invalidates it (start of run, dense fallback,
        # checkpoint restore).
        if scheduling not in ("frontier", "dense"):
            raise ValueError(
                f"unknown scheduling '{scheduling}' (expected 'frontier' or 'dense')"
            )
        if not 0.0 < frontier_threshold <= 1.0:
            raise ValueError("frontier_threshold must be in (0, 1]")
        self.scheduling = scheduling
        self._frontier_threshold = frontier_threshold
        self._batched = scheduling == "frontier"
        self._frontier: list[int] = []
        self._frontier_dirty = True
        if self._batched:
            # Per-destination-worker outboxes (a receiver's messages all live
            # in its owner's batch, so per-receiver order is the global send
            # order), double-buffered so delivery routing reuses the drained
            # dicts instead of reallocating every superstep.
            self._out_parts: list[dict[int, list]] = [{} for _ in range(self.num_workers)]
            self._in_parts: list[dict[int, list]] = [{} for _ in range(self.num_workers)]
            self._inbox_slots: list = [_NO_MESSAGES] * graph.num_nodes
            self._touched: list[int] = []
            self._enqueue = self._enqueue_batch  # type: ignore[method-assign]
        # Sender-side message combining (the Pregel paper's combiners): one
        # slot per (sender worker, destination, tag), folded on every send.
        self._combiners = combiners or {}
        self._combined: dict[tuple[int, int, int], tuple] = {}
        self.metrics.worker_sent = [0] * self.num_workers
        # Vertex -> worker placement.  'hash' is GPS's default (round-robin
        # by id); 'range' assigns contiguous id blocks, which keeps the
        # id-local edges of web crawls within one worker.
        self.partitioning = partitioning
        n, w = graph.num_nodes, self.num_workers
        if partitioning == "hash":
            self._worker_of = bytes(v % w for v in range(n)) if w <= 256 else [
                v % w for v in range(n)
            ]
        elif partitioning == "range":
            self._worker_of = bytes(min(v * w // max(1, n), w - 1) for v in range(n)) if w <= 256 else [
                min(v * w // max(1, n), w - 1) for v in range(n)
            ]
        else:
            raise ValueError(f"unknown partitioning '{partitioning}'")
        self._track_makespan = track_makespan
        # per-superstep work units per worker (compute + sends + receives)
        self._step_work: list[int] = [0] * self.num_workers
        # Fault tolerance (repro.pregel.ft): the manager checkpoints at
        # superstep boundaries, injects scheduled worker crashes, and drives
        # recovery.  ``_ft_replaying`` marks confined-recovery replay, during
        # which sends and global puts are suppressed (their effects already
        # reached the healthy workers in the original execution).
        self.ft = ft
        self._ft_replaying = False
        if ft is not None:
            ft.attach(self)
        # Simulated transport (repro.pregel.net): when present, every
        # barrier's per-destination-worker message batches are routed
        # through its reliable delivery protocol; None keeps the direct
        # in-memory hand-off (the untouched fast path).
        self._transport = transport
        if transport is not None:
            transport.attach(self)
        # Supervision (repro.pregel.supervisor): heartbeat failure
        # detection at every superstep boundary, escalating into the FT
        # manager's recovery — attach() enforces that pairing.  A detected
        # failure past the restart budget sets ``_abort_reason`` and the
        # run degrades to a partial result with that halt_reason.
        self._supervisor = supervisor
        self._abort_reason: str | None = None
        if supervisor is not None:
            supervisor.attach(self)
        # Memory accounting (repro.pregel.mem): with a limited plan every
        # inbox/outbox/combiner/checkpoint byte charges a per-worker budget
        # and delivery runs under credit control; an unlimited plan (or
        # mem=None) installs nothing — the hot loops check one flag per run.
        self.mem = mem
        self._mem_limited = False
        if mem is not None:
            mem.attach(self)
            self._mem_limited = mem.limited
        # Observability (repro.obs): ``tracer=None`` (or a disabled tracer)
        # leaves the hot loops untouched — instrumentation is installed by
        # run() only when the tracer records (see _install_tracing).
        self.tracer = tracer
        self._trace_worker_computed: list[int] = []
        self._trace_worker_seconds: list[float] = []
        self._trace_worker_bytes: list[int] = []

    # ------------------------------------------------------------------
    # Vertex-side API
    # ------------------------------------------------------------------

    def send(self, dst: int, msg: tuple) -> None:
        """Send ``msg`` to vertex ``dst``, delivered next superstep."""
        sender = self._current_vertex
        if sender < 0:
            raise RuntimeError(
                "send() called outside the vertex phase: messages must "
                "originate from a vertex; master code broadcasts through "
                "put_broadcast() instead"
            )
        if self._ft_replaying:
            # Confined-recovery replay: this message was already delivered
            # during the original execution of this superstep.
            return
        worker_of = self._worker_of
        sender_worker = worker_of[sender]
        m = self.metrics
        combiner = self._combiners.get(msg[0]) if self._combiners else None
        if combiner is not None:
            # Delivered traffic (messages / bytes / net) is metered at flush
            # time, on the *folded* payload — folds may change the payload,
            # so metering the first message here would drift from what is
            # actually delivered at the barrier.  The sender's combine work
            # is counted per send: every fold costs the sending worker.
            m.worker_sent[sender_worker] += 1
            if self._track_makespan:
                self._step_work[sender_worker] += 1
            key = (sender_worker, dst, msg[0])
            slot = self._combined.get(key)
            if slot is not None:
                self._combined[key] = combiner(slot, msg)
            else:
                self._combined[key] = msg
            return
        self._enqueue(dst, msg)
        size = self._message_size(msg)
        m.messages += 1
        m.message_bytes += size
        m.worker_sent[sender_worker] += 1
        if sender_worker != worker_of[dst]:
            m.net_messages += 1
            m.net_bytes += size
            if self.ft is not None:
                self.ft.account_delivery()
        if self._track_makespan:
            self._step_work[sender_worker] += 1
            self._step_work[worker_of[dst]] += 1

    def _enqueue(self, dst: int, msg: tuple) -> None:
        bucket = self._outbox.get(dst)
        if bucket is None:
            self._outbox[dst] = [msg]
        else:
            bucket.append(msg)

    def _enqueue_batch(self, dst: int, msg: tuple) -> None:
        # Frontier mode: stage in the destination worker's outbox batch.  A
        # receiver's messages all land in its owner's batch, so per-receiver
        # order is the global send order, as with _enqueue.
        part = self._out_parts[self._worker_of[dst]]
        bucket = part.get(dst)
        if bucket is None:
            part[dst] = [msg]
        else:
            bucket.append(msg)

    def outbox_view(self) -> dict[int, list]:
        """The in-flight messages as one ``{dst: msgs}`` map.

        Dense mode returns the live outbox dict; frontier mode merges the
        per-worker outbox batches (each destination appears in exactly one).
        The fault-tolerance manager checkpoints and logs through this view,
        so both schedulers share one checkpoint/log format.  Under a memory
        budget the view also re-merges any superstep-split spill runs, so
        checkpoints and confined-recovery logs see exactly the traffic a
        budget-free run would have staged in memory.
        """
        if self._mem_limited:
            return self.mem.outbox_snapshot()
        if not self._batched:
            return self._outbox
        merged: dict[int, list] = {}
        for part in self._out_parts:
            merged.update(part)
        return merged

    def _flush_combined(self) -> None:
        """Deliver the combiner slots at the barrier, metering the folded
        payloads — the messages that actually travel."""
        worker_of = self._worker_of
        m = self.metrics
        enqueue = self._enqueue
        size_of = self._message_size
        track = self._track_makespan
        ft = self.ft
        for (sender_worker, dst, _tag), msg in self._combined.items():
            enqueue(dst, msg)
            size = size_of(msg)
            m.messages += 1
            m.message_bytes += size
            if sender_worker != worker_of[dst]:
                m.net_messages += 1
                m.net_bytes += size
                if ft is not None:
                    ft.account_delivery()
            if track:
                self._step_work[worker_of[dst]] += 1
        self._combined.clear()

    def send_to_out_nbrs(self, vid: int, msg: tuple) -> None:
        graph = self.graph
        for dst in graph.out_targets[graph.out_offsets[vid] : graph.out_offsets[vid + 1]]:
            self.send(dst, msg)

    def send_nbrs(self, vid: int, msg: tuple) -> None:
        """Bulk send: ``msg`` to every out-neighbor of ``vid``.

        Generated code emits this for loop-invariant payloads so typed
        backends can stage one packed record per neighbor block; here it is
        the plain per-neighbor loop through ``self.send`` (which picks up
        the traced-send instance shadow when tracing is installed).
        """
        graph = self.graph
        send = self.send
        for dst in graph.out_targets[graph.out_offsets[vid] : graph.out_offsets[vid + 1]]:
            send(dst, msg)

    def send_list(self, dsts: list, msg: tuple) -> None:
        """Bulk send: ``msg`` to every vertex in ``dsts`` (in-neighbor
        sends through the Incoming-Neighbors prologue's ``_in_nbrs``)."""
        send = self.send
        for dst in dsts:
            send(dst, msg)

    def get_global(self, name: str) -> Any:
        return self.globals.broadcast[name]

    def put_global(self, name: str, op: GlobalOp, value: Any) -> None:
        if self._ft_replaying:
            # Confined-recovery replay: this put was already aggregated
            # during the original execution of this superstep.
            return
        self.globals.put_reduce(name, op, value)

    def vote_to_halt(self, vid: int) -> None:
        if self._voted is None:
            # Silently ignoring the vote would mask non-termination as
            # halt_reason="max_supersteps"; fail loudly instead.
            raise RuntimeError(VOTING_DISABLED_ERROR)
        self._voted[vid] = 1

    # ------------------------------------------------------------------
    # Master-side API
    # ------------------------------------------------------------------

    def get_agg(self, name: str, default: Any = None) -> Any:
        return self.globals.get_aggregated(name, default)

    def put_broadcast(self, name: str, value: Any) -> None:
        self.globals.put_broadcast(name, value)
        self.metrics.broadcast_values += 1

    def halt(self, result: Any = None) -> None:
        self._halt = True
        if result is not None:
            self.result = result

    def set_result(self, value: Any) -> None:
        self.result = value

    def pick_random_node(self) -> int:
        return self.rng.randrange(self.graph.num_nodes)

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    # ------------------------------------------------------------------
    # Checkpointing (repro.pregel.ft)
    # ------------------------------------------------------------------

    #: RunMetrics counters included in a checkpoint.  Rollback recovery
    #: restores them so a replayed run's ledger matches a failure-free one;
    #: the fault-tolerance counters themselves (checkpoints_taken, …) stay
    #: outside — they describe the faulted execution, not the computation.
    _CHECKPOINTED_METRICS = (
        "messages",
        "message_bytes",
        "net_messages",
        "net_bytes",
        "broadcast_values",
        "makespan_units",
        "ideal_units",
    )

    def checkpoint_state(self) -> dict:
        """Snapshot the engine at a superstep boundary (start of superstep,
        before ``master.compute()``): in-flight messages, voted bits, global
        objects, RNG state, and the metrics ledger.  The returned payload is
        plain picklable data; the fault-tolerance manager serializes it."""
        metrics = self.metrics
        # Only the outer map is copied: the bucket lists are never mutated
        # after staging (delivery swaps and reads, sends build new buckets),
        # and the FT manager serializes the payload immediately — copying
        # every message list here only doubled the checkpoint's transient
        # memory footprint.
        state = {
            "superstep": self.superstep,
            "outbox": dict(self.outbox_view()),
            # Frontier-mode scheduler state: the vertices computed in the
            # last superstep, from which the next frontier's un-voted half
            # derives.  None when unknown (dense scheduling, or before the
            # first sparse superstep) — a restore then recomputes it from
            # the voted bitmap, which is exact.
            "frontier": (
                list(self._frontier)
                if self._batched and not self._frontier_dirty
                else None
            ),
            "voted": bytes(self._voted) if self._voted is not None else None,
            "rng": self.rng.getstate(),
            "result": self.result,
            "halt": self._halt,
            "broadcast": dict(self.globals.broadcast),
            "aggregated": dict(self.globals.aggregated),
            "metrics": {name: getattr(metrics, name) for name in self._CHECKPOINTED_METRICS},
            "per_superstep_messages": list(metrics.per_superstep_messages),
            "worker_sent": list(metrics.worker_sent),
        }
        return state

    def restore_state(self, state: dict, vertices: list[int] | None = None) -> None:
        """Restore a checkpoint payload.

        ``vertices`` selects confined recovery: only the voted bits of the
        failed partition are restored (its in-flight inbox is rebuilt from
        logs by the manager, and the globals/metrics ledger lives on the
        master, which did not fail).  ``None`` is a full rollback: every
        engine structure — including the metrics counters — rewinds to the
        boundary, and live aliases (the broadcast dict generated code closes
        over, the voted bytearray) are mutated in place."""
        if vertices is not None:
            if self._voted is not None and state["voted"] is not None:
                saved = state["voted"]
                for v in vertices:
                    self._voted[v] = saved[v]
            # The partition's voted bits just rewound; force the scheduler to
            # rebuild the frontier from the bitmap at the next delivery.
            self._frontier_dirty = True
            return
        self.superstep = state["superstep"]
        # Install the checkpointed buckets without duplicating each message
        # list: a restored payload is freshly unpickled (FT) or engine
        # buckets are never mutated in place after staging (direct restore
        # of a captured state), so the per-bucket copies this used to make
        # doubled the restore's memory footprint for nothing.
        if self._batched:
            parts = self._out_parts
            for part in parts:
                part.clear()
            worker_of = self._worker_of
            for dst, msgs in state["outbox"].items():
                parts[worker_of[dst]][dst] = msgs
        else:
            self._outbox = dict(state["outbox"])
        saved_frontier = state.get("frontier")
        if self._batched and saved_frontier is not None:
            self._frontier = list(saved_frontier)
            self._frontier_dirty = False
        else:
            self._frontier_dirty = True
        if self._voted is not None and state["voted"] is not None:
            self._voted[:] = state["voted"]
        self.rng.setstate(state["rng"])
        self.result = state["result"]
        self._halt = state["halt"]
        self.globals.broadcast.clear()
        self.globals.broadcast.update(state["broadcast"])
        self.globals.aggregated = dict(state["aggregated"])
        metrics = self.metrics
        for name, value in state["metrics"].items():
            setattr(metrics, name, value)
        # The per-superstep record must stay in lockstep with ``superstep``:
        # one entry per completed superstep.  A checkpoint can legitimately
        # carry *fewer* entries (it was written by an engine that had
        # ``record_per_superstep`` off — pad the unknown early supersteps
        # with 0 so later appends land at the right index) but never more.
        saved_per_superstep = state["per_superstep_messages"]
        if len(saved_per_superstep) > state["superstep"]:
            raise ValueError(
                f"checkpoint at superstep {state['superstep']} carries "
                f"{len(saved_per_superstep)} per-superstep entries — a "
                "checkpoint can never have more entries than completed "
                "supersteps"
            )
        metrics.per_superstep_messages[:] = saved_per_superstep
        if self._record_per_superstep and len(saved_per_superstep) < state["superstep"]:
            metrics.per_superstep_messages.extend(
                [0] * (state["superstep"] - len(saved_per_superstep))
            )
        metrics.worker_sent[:] = state["worker_sent"]
        # Under a budget the live spill runs are stale now — the restored
        # in-flight outbox was just installed in memory; the manager drops
        # the run files and recharges the ledger from the installed batches.
        if self._mem_limited:
            self.mem.on_rollback()
        # Rollback recovery is about to replay the dropped supersteps: the
        # tracer must drop their records too, so a recovered run's stream
        # stays identical to a failure-free one.
        if self.tracer is not None:
            self.tracer.on_rollback(self.superstep)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _install_tracing(self) -> None:
        """Swap in the traced execution hooks (recording tracer only).

        The untraced hot path stays byte-identical: tracing wraps the vertex
        function (per-worker computed counts + compute seconds) and shadows
        ``send`` with an instance attribute (per-worker staged payload
        bytes), so the engine's loops and the per-send fast path carry zero
        extra branches when tracing is off.  Per-worker bytes are metered on
        the *staged* payload (pre-combiner-fold: the sends are identical
        under either scheduler, which keeps the quantity deterministic).
        Confined-recovery replay (``_ft_replaying``) is transparent to both
        wrappers — its work was already counted by the original execution.
        """
        workers = self.num_workers
        self._trace_worker_computed = [0] * workers
        self._trace_worker_seconds = [0.0] * workers
        self._trace_worker_bytes = [0] * workers
        inner = self._vertex_compute
        worker_of = self._worker_of
        computed = self._trace_worker_computed
        seconds = self._trace_worker_seconds
        staged_bytes = self._trace_worker_bytes
        size_of = self._message_size
        perf = time.perf_counter
        cls_send = PregelEngine.send

        def traced_compute(ctx, vid, messages):
            if self._ft_replaying:
                inner(ctx, vid, messages)
                return
            w = worker_of[vid]
            computed[w] += 1
            t0 = perf()
            inner(ctx, vid, messages)
            seconds[w] += perf() - t0

        def traced_send(dst, msg):
            sender = self._current_vertex
            if sender >= 0 and not self._ft_replaying:
                staged_bytes[worker_of[sender]] += size_of(msg)
            cls_send(self, dst, msg)

        self._vertex_compute = traced_compute
        self.send = traced_send  # type: ignore[method-assign]

    def run(self) -> RunMetrics:
        tracer = self.tracer
        traced = tracer is not None and tracer.enabled
        mem = self.mem
        mem_limited = self._mem_limited
        if traced:
            self._install_tracing()
        if mem_limited:
            # After tracing: the budgeted compute wrapper must see the
            # traced hooks so spilled-inbox materialization is timed too.
            mem.install()
        if traced:
            tracer.event(
                "run.begin",
                cat="engine",
                det={
                    "num_workers": self.num_workers,
                    "num_nodes": self.graph.num_nodes,
                    "num_edges": self.graph.num_edges,
                    "use_voting": self._use_voting,
                    "partitioning": self.partitioning,
                },
                info={
                    "scheduling": self.scheduling,
                    "frontier_threshold": self._frontier_threshold,
                    "max_supersteps": self._max_supersteps,
                },
            )
        start = time.perf_counter()
        graph = self.graph
        n = graph.num_nodes
        voted = self._voted
        ft = self.ft
        supervisor = self._supervisor
        transport = self._transport
        batched = self._batched
        threshold = max(1, int(self._frontier_threshold * n))
        halt_reason = "max_supersteps"
        oom: MemoryExhausted | None = None
        try:
            halt_reason = self._run_loop(
                halt_reason, tracer, traced, mem, mem_limited
            )
        except MemoryExhausted as exc:
            # Graceful degradation: an unsatisfiable budget ends the run
            # with a structured report, never an exception.  The supervisor
            # (when present) records the exhaustion like a detected death.
            oom = exc
            halt_reason = "out_of_memory"
            self._current_vertex = -1
        finally:
            if mem is not None:
                if oom is not None:
                    mem.record_oom(oom)
                mem.close()
        if oom is not None and supervisor is not None:
            supervisor.on_oom(oom)
        self.metrics.supersteps = self.superstep
        self.metrics.wall_seconds = time.perf_counter() - start
        self.metrics.result = self.result
        self.metrics.halt_reason = halt_reason
        if self._mreg is not None:
            self._mreg.counter("pregel.runs", det=True, halt_reason=halt_reason).inc()
            self._mreg.histogram("pregel.run_seconds").observe(
                self.metrics.wall_seconds
            )
            self._mreg.gauge("pregel.num_workers").set_max(self.num_workers)
        if traced:
            m = self.metrics
            tracer.event(
                "run.end",
                cat="engine",
                det={
                    "supersteps": m.supersteps,
                    "messages": m.messages,
                    "message_bytes": m.message_bytes,
                    "net_messages": m.net_messages,
                    "net_bytes": m.net_bytes,
                    "broadcast_values": m.broadcast_values,
                    "worker_sent": list(m.worker_sent),
                    "halt_reason": m.halt_reason,
                    "result": m.result,
                },
                info={"wall_seconds": m.wall_seconds},
            )
        return self.metrics

    def _deliver_batched(self, mem, mem_limited, transport) -> None:
        """Route the per-destination-worker outbox batches into the dense
        inbox index at the barrier (frontier mode's delivery step).  The
        drained dicts are reused as next superstep's outboxes (double
        buffering).  Execution backends override this hook to swap the
        staging representation (e.g. typed message slabs) while keeping the
        run loop — and the barrier it synchronizes at — unchanged."""
        incoming = self._out_parts
        self._out_parts = self._in_parts
        self._in_parts = incoming
        touched = self._touched
        touched.clear()
        slots = self._inbox_slots
        receiving = touched.append
        if mem_limited:
            # Credit-controlled routing: same worker order, same
            # per-receiver message order, bounded by the budget
            # (split runs re-merge ahead of the residual batch).
            mem.deliver_batched(incoming, receiving)
        elif transport is None:
            for part in incoming:
                if part:
                    for dst, msgs in part.items():
                        slots[dst] = msgs
                        receiving(dst)
                    part.clear()
        else:
            # Each destination worker's batch crosses the simulated
            # channel; the reliable protocol hands back the exact
            # sent stream (faults cost retransmissions, not data).
            for wid, part in enumerate(incoming):
                if part:
                    for dst, msgs in transport.route_part(wid, part).items():
                        slots[dst] = msgs
                        receiving(dst)
                    part.clear()

    def _run_loop(self, halt_reason, tracer, traced, mem, mem_limited) -> str:
        graph = self.graph
        n = graph.num_nodes
        voted = self._voted
        ft = self.ft
        supervisor = self._supervisor
        transport = self._transport
        batched = self._batched
        threshold = max(1, int(self._frontier_threshold * n))
        # Metering (repro.obs.metrics) shares the tracer's phase clocks:
        # ``instr`` gates the perf_counter reads, ``traced``/``metered``
        # gate what they feed.  Instrument handles are resolved once here
        # so the loop bumps plain attributes.
        mreg = self._mreg
        metered = mreg is not None
        instr = traced or metered
        if metered:
            m_steps = mreg.counter("pregel.supersteps", det=True)
            m_messages = mreg.counter("pregel.messages", det=True)
            m_msg_bytes = mreg.counter("pregel.message_bytes", det=True)
            m_net_messages = mreg.counter("pregel.net_messages", det=True)
            m_net_bytes = mreg.counter("pregel.net_bytes", det=True)
            m_broadcasts = mreg.counter("pregel.broadcasts", det=True)
            m_step_s = mreg.histogram("pregel.superstep_seconds")
            m_phase_s = {
                phase: mreg.histogram("pregel.phase_seconds", phase=phase)
                for phase in ("master", "route", "vertex", "combine", "barrier")
            }
            m_frontier = mreg.histogram("pregel.frontier_size")
        while self.superstep < self._max_supersteps:
            # Supervision boundary (before the FT hook: detection must see
            # the barrier the workers just crossed, and recovery needs the
            # checkpoint the FT hook's *previous* visits produced).  A
            # detected failure past the restart budget degrades the run.
            if supervisor is not None:
                supervisor.on_superstep_start()
                if self._abort_reason is not None:
                    halt_reason = self._abort_reason
                    break
            # Fault-tolerance boundary: checkpoint if due, then inject any
            # scheduled crash (recovery may rewind ``self.superstep``).
            if ft is not None:
                ft.on_superstep_start()
            if instr:
                # Snapshot the ledger *after* any recovery so the superstep
                # record meters exactly this superstep's deltas.
                _m = self.metrics
                t_step0 = t_phase = time.perf_counter()
                s_messages = _m.messages
                s_message_bytes = _m.message_bytes
                s_net_messages = _m.net_messages
                s_net_bytes = _m.net_bytes
                s_broadcasts = _m.broadcast_values
                if traced:
                    step_ts = tracer.now()
                    s_worker_sent = list(_m.worker_sent)
                    if transport is not None:
                        s_dropped = _m.messages_dropped
                        s_duplicated = _m.messages_duplicated
                        s_reordered = _m.messages_reordered
                        s_corrupted = _m.messages_corrupted
                        s_retransmitted = _m.packets_retransmitted
                    tw_computed = self._trace_worker_computed
                    tw_seconds = self._trace_worker_seconds
                    tw_bytes = self._trace_worker_bytes
                    for w in range(self.num_workers):
                        tw_computed[w] = 0
                        tw_seconds[w] = 0.0
                        tw_bytes[w] = 0

            # Master phase: sees globals aggregated from the previous superstep.
            if self._master_compute is not None:
                self._master_compute(self)
                if self._halt:
                    halt_reason = "master_halt"
                    break
            if ft is not None:
                ft.on_master_done()
            if instr:
                t_now = time.perf_counter()
                master_s, t_phase = t_now - t_phase, t_now

            # Deliver messages sent last superstep.  Frontier mode routes the
            # per-worker outbox batches once, here at the barrier, into the
            # dense inbox index (one slot per vertex); the drained dicts are
            # reused as next superstep's outboxes (double buffering).  Dense
            # mode keeps the classic dict swap.
            if batched:
                self._deliver_batched(mem, mem_limited, transport)
                touched = self._touched
            elif mem_limited:
                staged = self._outbox
                self._outbox = {}
                self._inbox = inbox = mem.deliver_dense(staged)
            else:
                self._inbox, self._outbox = self._outbox, {}
                inbox = self._inbox
                if transport is not None and inbox:
                    # Dense mode stages one flat outbox; group it into
                    # per-destination-worker batches (ascending worker id,
                    # matching frontier mode's routing order) and route
                    # each across the simulated channel.
                    worker_of_ = self._worker_of
                    parts: dict[int, dict[int, list]] = {}
                    for dst, msgs in inbox.items():
                        wid = worker_of_[dst]
                        bucket = parts.get(wid)
                        if bucket is None:
                            parts[wid] = {dst: msgs}
                        else:
                            bucket[dst] = msgs
                    merged: dict[int, list] = {}
                    for wid in sorted(parts):
                        merged.update(transport.route_part(wid, parts[wid]))
                    self._inbox = inbox = merged

            # Scheduling: build this superstep's frontier (frontier mode
            # with voting), or just run the voting halt check (dense mode).
            # ``frontier is None`` means a dense vertex phase.
            frontier = None
            if voted is not None:
                if batched:
                    for dst in touched:
                        voted[dst] = 0
                    if self._frontier_dirty:
                        unvoted = [v for v in range(n) if not voted[v]]
                    else:
                        unvoted = [v for v in self._frontier if not voted[v]]
                    if touched:
                        active = set(unvoted)
                        active.update(touched)
                    else:
                        active = unvoted  # already deduped and ascending
                    if self.superstep > 0 and not active:
                        halt_reason = "all_halted"
                        break
                    if len(active) < threshold:
                        # Sparse superstep: every member is un-voted (message
                        # receivers were just woken), so the vertex loop needs
                        # no voted check.  Ascending order matches the dense
                        # scan, keeping message order — and thus results —
                        # bit-identical.
                        frontier = (
                            sorted(active) if isinstance(active, set) else active
                        )
                        self._frontier = frontier
                        self._frontier_dirty = False
                    else:
                        self._frontier_dirty = True
                else:
                    for dst in inbox:
                        voted[dst] = 0
                    if self.superstep > 0 and not inbox and all(voted):
                        halt_reason = "all_halted"
                        break

            if instr:
                t_now = time.perf_counter()
                route_s, t_phase = t_now - t_phase, t_now
                if traced and transport is not None:
                    # Info-only (like ft.*): faulted traces must project to
                    # the same deterministic stream as failure-free ones.
                    _m = self.metrics
                    tracer.event(
                        "net.route",
                        cat="net",
                        info={
                            "step": self.superstep,
                            "dropped": _m.messages_dropped - s_dropped,
                            "duplicated": _m.messages_duplicated - s_duplicated,
                            "reordered": _m.messages_reordered - s_reordered,
                            "corrupted": _m.messages_corrupted - s_corrupted,
                            "retransmitted": _m.packets_retransmitted - s_retransmitted,
                            "route_s": route_s,
                        },
                    )

            before = self.metrics.messages
            compute = self._vertex_compute
            track = self._track_makespan
            step_work = self._step_work
            worker_of = self._worker_of
            if batched:
                # The dense inbox index was filled at delivery; touched slots
                # are reset after the phase.
                slots = self._inbox_slots
                if frontier is not None:
                    for vid in frontier:
                        self._current_vertex = vid
                        if track:
                            step_work[worker_of[vid]] += 1
                        compute(self, vid, slots[vid])
                elif voted is None:
                    for vid in range(n):
                        self._current_vertex = vid
                        if track:
                            step_work[worker_of[vid]] += 1
                        compute(self, vid, slots[vid])
                else:
                    for vid in range(n):
                        if voted[vid]:
                            continue
                        self._current_vertex = vid
                        if track:
                            step_work[worker_of[vid]] += 1
                        compute(self, vid, slots[vid])
                for dst in touched:
                    slots[dst] = _NO_MESSAGES
            elif voted is None:
                for vid in range(n):
                    self._current_vertex = vid
                    if track:
                        step_work[worker_of[vid]] += 1
                    compute(self, vid, inbox.get(vid, _NO_MESSAGES))
            else:
                for vid in range(n):
                    if voted[vid]:
                        continue
                    self._current_vertex = vid
                    if track:
                        step_work[worker_of[vid]] += 1
                    compute(self, vid, inbox.get(vid, _NO_MESSAGES))
            self._current_vertex = -1  # leaving the vertex phase
            if instr:
                t_now = time.perf_counter()
                vertex_s, t_phase = t_now - t_phase, t_now

            # Barrier: flush combiner slots (metering the folded payloads),
            # then account the superstep.
            if self._combined:
                if mem_limited:
                    # The combiner table lived on the senders all superstep
                    # and cannot spill; charge it before the flush (which
                    # stages — and budget-charges — the folded payloads).
                    mem.check_combiner(self._combined)
                self._flush_combined()
            if instr:
                t_now = time.perf_counter()
                combine_s, t_phase = t_now - t_phase, t_now
            if self._record_per_superstep:
                self.metrics.per_superstep_messages.append(self.metrics.messages - before)
            if track:
                self.metrics.makespan_units += max(step_work)
                self.metrics.ideal_units += sum(step_work) / self.num_workers
                for w in range(self.num_workers):
                    step_work[w] = 0

            if ft is not None:
                ft.on_superstep_end()
            if mem_limited:
                # The vertex phase consumed this superstep's inbox: release
                # its charges and drop its spill runs.
                mem.on_superstep_end()
            self.globals.end_superstep()
            self.superstep += 1
            if instr:
                m = self.metrics
                t_now = time.perf_counter()
                barrier_s = t_now - t_phase
                if metered:
                    m_steps.inc()
                    m_messages.inc(m.messages - s_messages)
                    m_msg_bytes.inc(m.message_bytes - s_message_bytes)
                    m_net_messages.inc(m.net_messages - s_net_messages)
                    m_net_bytes.inc(m.net_bytes - s_net_bytes)
                    m_broadcasts.inc(m.broadcast_values - s_broadcasts)
                    m_step_s.observe(t_now - t_step0)
                    m_phase_s["master"].observe(master_s)
                    m_phase_s["route"].observe(route_s)
                    m_phase_s["vertex"].observe(vertex_s)
                    m_phase_s["combine"].observe(combine_s)
                    m_phase_s["barrier"].observe(barrier_s)
                    if frontier is not None:
                        m_frontier.observe(len(frontier))
            if traced:
                tracer.event(
                    "superstep",
                    cat="engine",
                    ts=step_ts,
                    det={
                        "step": self.superstep - 1,
                        "active": sum(tw_computed),
                        "halted": int(sum(voted)) if voted is not None else 0,
                        "messages": m.messages - s_messages,
                        "message_bytes": m.message_bytes - s_message_bytes,
                        "net_messages": m.net_messages - s_net_messages,
                        "net_bytes": m.net_bytes - s_net_bytes,
                        "broadcasts": m.broadcast_values - s_broadcasts,
                        "worker_computed": list(tw_computed),
                        "worker_sent": [
                            now - then
                            for now, then in zip(m.worker_sent, s_worker_sent)
                        ],
                        "worker_bytes": list(tw_bytes),
                    },
                    info={
                        "mode": "sparse" if frontier is not None else "dense",
                        "frontier": len(frontier) if frontier is not None else -1,
                        "master_s": master_s,
                        "route_s": route_s,
                        "vertex_s": vertex_s,
                        "combine_s": combine_s,
                        "barrier_s": barrier_s,
                        "worker_seconds": list(tw_seconds),
                    },
                )

        return halt_reason
