"""Experiment harness: runs the paper's evaluation (§5) on the simulator.

The central entry points map one-to-one onto the paper's artifacts:

* :func:`figure6_experiments` — for each (algorithm, graph) pair, run the
  compiler-generated program and the hand-written Pregel baseline on the same
  input and collect run time, timesteps, messages and network I/O.  The
  normalized run-time column reproduces Figure 6; the timestep/byte columns
  reproduce §5.2's parity claim.
* :func:`default_args` — the per-algorithm parameters used throughout the
  evaluation (PageRank: 10 iterations, as in the paper's fixed-iteration
  runs; BC: K=4 random roots).
* :func:`fault_ablation` — the fault-tolerance study (beyond the paper):
  checkpoint-interval sweep under an injected worker crash, verifying that
  every recovered run is bit-identical to the failure-free baseline and
  measuring the checkpoint-overhead / lost-work tradeoff.
* :func:`traced_run` / :func:`tracer_overhead` — observability hooks: run
  any benchmark workload with a ``repro.obs`` tracer attached (every
  harness entry point also forwards ``tracer=`` through its engine options),
  and measure what a *disabled* tracer costs on the Figure 6 PageRank run
  (the overhead budget CI enforces).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

from ..algorithms.manual import MANUAL_PROGRAMS
from ..algorithms.sources import ALGORITHMS
from ..compiler import CompilationResult, compile_algorithm
from ..graphgen.registry import applicable_graphs, load_graph
from ..pregel.ft import CrashEvent, FaultPlan, FaultTolerance
from ..pregel.graph import Graph
from ..pregel.runtime import RunMetrics


def default_args(algorithm: str, graph: Graph) -> dict:
    """The evaluation parameters for each algorithm (paper §5)."""
    if algorithm == "pagerank":
        return {"e": 1e-9, "d": 0.85, "max_iter": 10}
    if algorithm == "avg_teen_cnt":
        return {"K": 30}
    if algorithm == "conductance":
        return {"num": 1}
    if algorithm == "sssp":
        return {"root": 0}
    if algorithm == "bfs":
        return {"root": 0}
    if algorithm == "bc_approx":
        return {"K": 4}
    return {}


@dataclass
class Measurement:
    wall_seconds: float
    supersteps: int
    messages: int
    message_bytes: int
    net_bytes: int

    @staticmethod
    def from_metrics(metrics: RunMetrics) -> "Measurement":
        return Measurement(
            metrics.wall_seconds,
            metrics.supersteps,
            metrics.messages,
            metrics.message_bytes,
            metrics.net_bytes,
        )


@dataclass
class PairResult:
    """One Figure 6 bar: generated vs manual on one (algorithm, graph)."""

    algorithm: str
    graph: str
    generated: Measurement
    manual: Measurement | None

    @property
    def normalized_runtime(self) -> float | None:
        if self.manual is None or self.manual.wall_seconds == 0:
            return None
        return self.generated.wall_seconds / self.manual.wall_seconds

    @property
    def timestep_delta(self) -> int | None:
        if self.manual is None:
            return None
        return self.generated.supersteps - self.manual.supersteps

    @property
    def message_parity(self) -> bool | None:
        if self.manual is None:
            return None
        return self.generated.messages == self.manual.messages


def _best_of(fn, repeats: int) -> Measurement:
    measurements = []
    for _ in range(max(1, repeats)):
        result = fn()
        measurements.append(Measurement.from_metrics(result.metrics))
    best = min(m.wall_seconds for m in measurements)
    sample = measurements[0]
    return Measurement(
        best, sample.supersteps, sample.messages, sample.message_bytes, sample.net_bytes
    )


def run_pair(
    algorithm: str,
    graph: Graph,
    graph_key: str = "",
    args: dict | None = None,
    *,
    repeats: int = 1,
    compiled: CompilationResult | None = None,
    **engine_opts,
) -> PairResult:
    """Run the generated program and (when one exists) the manual baseline."""
    if args is None:
        args = default_args(algorithm, graph)
    if compiled is None:
        compiled = compile_algorithm(algorithm, emit_java=False)
    generated = _best_of(lambda: compiled.program.run(graph, args, **engine_opts), repeats)
    manual = None
    baseline = MANUAL_PROGRAMS.get(algorithm)
    if baseline is not None:
        manual = _best_of(lambda: baseline.run(graph, args, **engine_opts), repeats)
    return PairResult(algorithm, graph_key, generated, manual)


#: Figure 6 covers the five algorithms with manual baselines; BC is reported
#: separately (the paper had no manual BC to compare against).
FIGURE6_ALGORITHMS = tuple(a for a in ALGORITHMS if a in MANUAL_PROGRAMS)


def figure6_experiments(
    scale: float = 1.0, *, repeats: int = 3, seed: int = 1, **engine_opts
) -> list[PairResult]:
    """All (algorithm, graph) pairs of Figure 6 at the given workload scale."""
    graphs = {}
    results: list[PairResult] = []
    for algorithm in FIGURE6_ALGORITHMS:
        compiled = compile_algorithm(algorithm, emit_java=False)
        for key in applicable_graphs(algorithm):
            if key not in graphs:
                graphs[key] = load_graph(key, scale, seed)
            graph = graphs[key]
            results.append(
                run_pair(
                    algorithm,
                    graph,
                    key,
                    repeats=repeats,
                    compiled=compiled,
                    **engine_opts,
                )
            )
    return results


@dataclass
class FaultAblationRow:
    """One cell of the checkpoint-interval sweep: a run with an injected
    worker crash, recovered with the given strategy."""

    checkpoint_every: int
    recovery: str
    metrics: RunMetrics
    #: outputs + deterministic metrics bit-identical to the fault-free run
    identical: bool


def fault_ablation(
    algorithm: str = "pagerank",
    graph_key: str = "twitter",
    *,
    scale: float = 0.5,
    seed: int = 1,
    intervals: tuple[int, ...] = (1, 2, 3, 5),
    crash: CrashEvent = CrashEvent(worker=1, superstep=5),
    recoveries: tuple[str, ...] = ("rollback", "confined"),
    num_workers: int = 4,
    args: dict | None = None,
) -> tuple[RunMetrics, list[FaultAblationRow]]:
    """Sweep the checkpoint interval under a fixed injected crash.

    Short intervals pay more checkpoint overhead (checkpoints taken × bytes)
    but lose less work on failure (lost supersteps, replay work); long
    intervals invert the tradeoff — the classic checkpointing dial.  Every
    faulted run is compared bit-for-bit against the failure-free baseline.
    """
    graph = load_graph(graph_key, scale, seed)
    if args is None:
        args = default_args(algorithm, graph)
    compiled = compile_algorithm(algorithm, emit_java=False)
    baseline = compiled.program.run(graph, args, num_workers=num_workers)
    rows: list[FaultAblationRow] = []
    for every in intervals:
        for recovery in recoveries:
            plan = FaultPlan(checkpoint_every=every, crashes=(crash,), recovery=recovery)
            run = compiled.program.run(
                graph, args, num_workers=num_workers, ft=FaultTolerance(plan)
            )
            identical = (
                run.outputs == baseline.outputs
                and run.metrics.parity_key() == baseline.metrics.parity_key()
            )
            rows.append(FaultAblationRow(every, recovery, run.metrics, identical))
    return baseline.metrics, rows


@dataclass
class SchedulerParityRow:
    """One cell of the scheduler parity matrix: a frontier-scheduled run
    compared bit-for-bit against its dense-scheduled twin."""

    algorithm: str
    variant: str  # "generated" | "manual"
    graph: str
    recovery: str | None  # fault-injected recovery strategy, None = fault-free
    identical: bool


def scheduler_parity(
    *,
    scale: float = 0.25,
    seed: int = 1,
    num_workers: int = 4,
    crash: CrashEvent = CrashEvent(worker=1, superstep=3),
    checkpoint_every: int = 2,
) -> list[SchedulerParityRow]:
    """The tentpole correctness claim, as a matrix: frontier scheduling is
    bit-identical (``parity_key()`` and outputs) to the dense scan for every
    algorithm, generated and manual, plus one fault-injected recovery run per
    strategy on a voting workload (manual SSSP — the program whose frontier
    state a checkpoint must actually carry)."""
    rows: list[SchedulerParityRow] = []
    graphs: dict[str, Graph] = {}

    def _graph(key: str) -> Graph:
        if key not in graphs:
            graphs[key] = load_graph(key, scale, seed)
        return graphs[key]

    def _compare(run_fn, key: str) -> bool:
        dense = run_fn(_graph(key), scheduling="dense")
        frontier = run_fn(_graph(key), scheduling="frontier")
        return (
            frontier.outputs == dense.outputs
            and frontier.metrics.parity_key() == dense.metrics.parity_key()
        )

    for algorithm in ALGORITHMS:
        key = applicable_graphs(algorithm)[0]
        compiled = compile_algorithm(algorithm, emit_java=False)
        args = default_args(algorithm, _graph(key))

        def _generated(graph, **opts):
            return compiled.program.run(graph, args, num_workers=num_workers, **opts)

        rows.append(
            SchedulerParityRow(
                algorithm, "generated", key, None, _compare(_generated, key)
            )
        )
        baseline = MANUAL_PROGRAMS.get(algorithm)
        if baseline is not None:

            def _manual(graph, **opts):
                return baseline.run(graph, args, num_workers=num_workers, **opts)

            rows.append(
                SchedulerParityRow(
                    algorithm, "manual", key, None, _compare(_manual, key)
                )
            )

    # Fault-injected runs: a frontier-scheduled run that crashes and recovers
    # must still match the dense fault-free baseline bit-for-bit.
    key = applicable_graphs("sssp")[0]
    sssp = MANUAL_PROGRAMS["sssp"]
    args = default_args("sssp", _graph(key))
    dense = sssp.run(_graph(key), args, num_workers=num_workers, scheduling="dense")
    for recovery in ("rollback", "confined"):
        plan = FaultPlan(
            checkpoint_every=checkpoint_every, crashes=(crash,), recovery=recovery
        )
        faulted = sssp.run(
            _graph(key),
            args,
            num_workers=num_workers,
            scheduling="frontier",
            ft=FaultTolerance(plan),
        )
        identical = (
            faulted.outputs == dense.outputs
            and faulted.metrics.parity_key() == dense.metrics.parity_key()
        )
        rows.append(SchedulerParityRow("sssp", "manual", key, recovery, identical))
    return rows


@dataclass
class SchedulerSweepRow:
    """One graph of the dense-vs-frontier BFS wall-clock sweep."""

    graph: str
    num_nodes: int
    num_edges: int
    supersteps: int
    messages: int
    reached: int
    dense_seconds: float
    frontier_seconds: float
    identical: bool

    @property
    def speedup(self) -> float:
        return self.dense_seconds / self.frontier_seconds if self.frontier_seconds else 0.0


def max_out_degree_root(graph: Graph) -> int:
    """A deterministic BFS root that is never a sink: the vertex with the
    most out-edges (ties to the lowest id)."""
    off = graph.out_offsets
    return max(range(graph.num_nodes), key=lambda v: (off[v + 1] - off[v], -v))


def deep_bfs_root(graph: Graph, candidates: int = 16) -> int:
    """A deterministic BFS root inside the graph's largest reachable region.

    On sparse directed random graphs a high out-degree vertex can still sit
    in a tiny component, which would make a scheduler benchmark traverse
    nothing.  Probe the ``candidates`` highest-out-degree vertices with a
    plain sequential BFS and pick the one reaching the most vertices
    (deepest traversal breaks ties, then lowest id)."""
    off, tgt = graph.out_offsets, graph.out_targets
    n = graph.num_nodes
    by_degree = sorted(range(n), key=lambda v: (off[v + 1] - off[v], -v), reverse=True)
    best = (-1, -1, 0)  # (reached, depth, -root)
    for root in by_degree[: max(1, candidates)]:
        seen = bytearray(n)
        seen[root] = 1
        frontier = [root]
        depth = reached = 0
        while frontier:
            nxt = []
            for v in frontier:
                for w in tgt[off[v] : off[v + 1]]:
                    if not seen[w]:
                        seen[w] = 1
                        nxt.append(w)
            reached += len(frontier)
            frontier = nxt
            depth += 1
        key = (reached, depth, -root)
        if key > best:
            best = key
    return -best[2]


def bfs_scheduler_sweep(
    graphs: list[tuple[str, Graph, int]],
    *,
    repeats: int = 3,
    num_workers: int = 4,
) -> list[SchedulerSweepRow]:
    """Dense vs frontier wall clock for manual BFS on each (name, graph,
    root), best of ``repeats``, verifying output + parity_key equality."""
    from ..algorithms.manual import ManualBFS

    bfs = ManualBFS()
    rows: list[SchedulerSweepRow] = []
    for name, graph, root in graphs:
        runs = {}
        for scheduling in ("dense", "frontier"):
            best = None
            for _ in range(max(1, repeats)):
                run = bfs.run(
                    graph, {"root": root}, num_workers=num_workers, scheduling=scheduling
                )
                if best is None or run.metrics.wall_seconds < best.metrics.wall_seconds:
                    best = run
            runs[scheduling] = best
        dense, frontier = runs["dense"], runs["frontier"]
        identical = (
            frontier.outputs == dense.outputs
            and frontier.metrics.parity_key() == dense.metrics.parity_key()
        )
        rows.append(
            SchedulerSweepRow(
                graph=name,
                num_nodes=graph.num_nodes,
                num_edges=graph.num_edges,
                supersteps=frontier.metrics.supersteps,
                messages=frontier.metrics.messages,
                reached=sum(1 for lvl in frontier.outputs["level"] if lvl >= 0),
                dense_seconds=dense.metrics.wall_seconds,
                frontier_seconds=frontier.metrics.wall_seconds,
                identical=identical,
            )
        )
    return rows


def bc_experiments(scale: float = 1.0, *, repeats: int = 1, seed: int = 1) -> list[PairResult]:
    """Generated-only BC runs (the paper's 'compiler handles what manual
    implementation could not' result)."""
    compiled = compile_algorithm("bc_approx", emit_java=False)
    results = []
    for key in applicable_graphs("bc_approx"):
        graph = load_graph(key, scale, seed)
        generated = _best_of(
            lambda: compiled.program.run(graph, default_args("bc_approx", graph)),
            repeats,
        )
        results.append(PairResult("bc_approx", key, generated, None))
    return results


def traced_run(
    algorithm: str,
    graph_key: str = "twitter",
    scale: float = 0.25,
    *,
    seed: int = 1,
    args: dict | None = None,
    **engine_opts,
):
    """Run one bundled algorithm with a recording tracer attached to both the
    compiler and the engine.  Returns ``(run, tracer)`` — the ``RunResult``
    and the :class:`repro.obs.Tracer` holding the full event stream (compiler
    passes, per-superstep records, FT lifecycle if a plan was passed)."""
    from ..obs import Tracer

    tracer = Tracer()
    compiled = compile_algorithm(algorithm, emit_java=False, tracer=tracer)
    graph = load_graph(graph_key, scale, seed)
    if args is None:
        args = default_args(algorithm, graph)
    run = compiled.program.run(graph, args, tracer=tracer, **engine_opts)
    return run, tracer


def tracer_overhead(
    algorithm: str = "pagerank",
    graph_key: str = "twitter",
    scale: float = 0.25,
    *,
    repeats: int = 5,
    seed: int = 1,
) -> dict:
    """Measure what a *disabled* tracer costs on a Figure 6 workload.

    Runs the algorithm ``repeats`` times with ``tracer=None`` and ``repeats``
    times with a :class:`repro.obs.NullTracer`, interleaved so drift hits both
    arms equally, and compares best-of wall times.  The two paths are meant
    to be identical (the engine installs its metering wrappers only for a
    *recording* tracer), so the ratio is a noise-bounded regression check —
    CI asserts it stays under the ISSUE's 5% budget.
    """
    from ..obs import NULL_TRACER

    compiled = compile_algorithm(algorithm, emit_java=False)
    graph = load_graph(graph_key, scale, seed)
    args = default_args(algorithm, graph)
    plain: list[float] = []
    nulled: list[float] = []
    for _ in range(max(1, repeats)):
        plain.append(compiled.program.run(graph, args).metrics.wall_seconds)
        nulled.append(compiled.program.run(graph, args, tracer=NULL_TRACER).metrics.wall_seconds)
    best_plain = min(plain)
    best_null = min(nulled)
    return {
        "algorithm": algorithm,
        "graph": graph_key,
        "best_plain_seconds": best_plain,
        "best_null_tracer_seconds": best_null,
        "overhead_ratio": best_null / best_plain if best_plain else 1.0,
    }


def metrics_overhead(
    algorithm: str = "pagerank",
    graph_key: str = "twitter",
    scale: float = 0.25,
    *,
    repeats: int = 5,
    seed: int = 1,
) -> dict:
    """Measure what a *disabled* metrics registry costs on a Figure 6
    workload — the registry twin of :func:`tracer_overhead`.

    Interleaves ``metrics_registry=None`` runs with ``NULL_REGISTRY`` runs
    and compares best-of wall times; the engine treats both identically
    (no metering handles are created), so the ratio is a noise-bounded
    check that the zero-cost-when-disabled contract holds (<5% in CI).
    """
    from ..obs import NULL_REGISTRY

    compiled = compile_algorithm(algorithm, emit_java=False)
    graph = load_graph(graph_key, scale, seed)
    args = default_args(algorithm, graph)
    plain: list[float] = []
    nulled: list[float] = []
    for _ in range(max(1, repeats)):
        plain.append(compiled.program.run(graph, args).metrics.wall_seconds)
        nulled.append(
            compiled.program.run(
                graph, args, metrics_registry=NULL_REGISTRY
            ).metrics.wall_seconds
        )
    best_plain = min(plain)
    best_null = min(nulled)
    return {
        "algorithm": algorithm,
        "graph": graph_key,
        "best_plain_seconds": best_plain,
        "best_null_registry_seconds": best_null,
        "overhead_ratio": best_null / best_plain if best_plain else 1.0,
    }
