"""Chaos harness: randomized fault-plan matrices over the transport and
supervision layers.

The seeded-fuzz workhorse behind ``tests/test_chaos_fuzz.py`` and the CI
``chaos`` job: each case draws a fault mix (drop × dup × reorder × corrupt ×
silent crash) from its own seeded RNG, runs an algorithm under it, and
checks the exactly-once/parity invariants against a clean baseline of the
same workload — outputs and ``parity_key()`` bit-identical, fault counters
consistent with the mix that was drawn.  The matrix sweep aggregates cases
into a report; :func:`transport_overhead` and :func:`recovery_latency_sweep`
are the measurement halves ``benchmarks/bench_net.py`` builds on.
"""

from __future__ import annotations

import random
import statistics
import time
from dataclasses import dataclass, field

from ..compiler import compile_algorithm
from ..graphgen.registry import applicable_graphs, load_graph
from ..pregel.ft import CrashEvent, FaultPlan, FaultTolerance, RealFault
from ..pregel.net import NetFaultPlan, SimulatedTransport
from ..pregel.supervisor import Supervisor, SupervisorPlan
from .harness import default_args

#: message-driven algorithms exercise the transport hardest; conductance
#: and avg_teen_cnt are near-stateless two-step jobs, so the fuzz matrix
#: rotates through the interesting four.
CHAOS_ALGORITHMS = ("pagerank", "sssp", "bipartite_matching", "bc_approx")


@dataclass(frozen=True)
class ChaosCase:
    """One drawn fault mix: a transport plan plus (optionally) a silent
    crash the supervisor must detect and (optionally) a per-worker memory
    budget forcing spill/backpressure under the same faults."""

    seed: int
    algorithm: str
    recovery: str
    net_plan: NetFaultPlan
    crash: CrashEvent | None
    mem_budget: int | None = None

    def describe(self) -> str:
        p = self.net_plan
        crash = (
            f"crash={self.crash.worker}@{self.crash.superstep}"
            if self.crash
            else "crash=none"
        )
        mem = f"mem={self.mem_budget}" if self.mem_budget else "mem=unlimited"
        return (
            f"seed={self.seed} {self.algorithm}/{self.recovery} "
            f"drop={p.drop_rate:.2f} dup={p.dup_rate:.2f} "
            f"reorder={p.reorder_rate:.2f} corrupt={p.corrupt_rate:.2f} "
            f"{crash} {mem}"
        )


@dataclass
class ChaosResult:
    case: ChaosCase
    identical: bool
    detected: bool
    messages_dropped: int
    messages_duplicated: int
    messages_reordered: int
    messages_corrupted: int
    heartbeats_missed: int
    restarts: int
    spilled_bytes: int = 0
    superstep_splits: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.identical and not self.violations


def draw_case(
    seed: int,
    *,
    algorithms: tuple[str, ...] = CHAOS_ALGORITHMS,
    max_rate: float = 0.3,
) -> ChaosCase:
    """Deterministically expand one fuzz seed into a fault mix.

    Every axis of the loss × dup × reorder × crash matrix is sampled
    independently (each fault type is present with probability 1/2, with a
    rate up to ``max_rate``), so the sweep covers single-fault corners and
    hostile combinations alike.
    """
    rng = random.Random(seed)
    algorithm = algorithms[seed % len(algorithms)]
    recovery = ("rollback", "confined")[(seed // len(algorithms)) % 2]
    rate = lambda: round(rng.uniform(0.02, max_rate), 3) if rng.random() < 0.5 else 0.0
    net_plan = NetFaultPlan(
        drop_rate=rate(),
        dup_rate=rate(),
        reorder_rate=rate(),
        corrupt_rate=rate(),
        seed=rng.randrange(1 << 30),
    )
    crash = None
    if rng.random() < 0.5:
        # Silent death at an early-to-mid superstep on a random worker; the
        # exact superstep is clamped to the run's length by run_case.
        crash = CrashEvent(worker=rng.randrange(4), superstep=2 + rng.randrange(6))
    mem_budget = None
    if rng.random() < 0.4:
        # Tight-but-satisfiable budget (64K–512K): forces spilling and
        # superstep splits on these workloads without tripping OOM, so the
        # parity invariant keeps holding under the memory axis too.
        mem_budget = 1 << rng.randrange(16, 20)
    return ChaosCase(seed, algorithm, recovery, net_plan, crash, mem_budget)


def run_case(
    case: ChaosCase,
    *,
    scale: float = 0.25,
    workers: int = 4,
    checkpoint_every: int = 2,
) -> ChaosResult:
    """Run one case against its clean baseline and check every invariant."""
    graph = load_graph(applicable_graphs(case.algorithm)[0], scale)
    program = compile_algorithm(case.algorithm, emit_java=False).program
    args = default_args(case.algorithm, graph)
    baseline = program.run(graph, args, num_workers=workers)

    crash = case.crash
    if crash is not None:
        # Clamp the scripted death inside the run so it always fires.
        step = max(1, min(crash.superstep, baseline.metrics.supersteps - 1))
        crash = CrashEvent(worker=crash.worker % workers, superstep=step)
    transport = SimulatedTransport(case.net_plan)
    supervisor = Supervisor(
        SupervisorPlan(silent_crashes=(crash,) if crash else (), seed=case.seed)
    )
    mem = None
    if case.mem_budget:
        from ..pregel.mem import MemoryManager, MemPlan

        mem = MemoryManager(MemPlan(budget_bytes=case.mem_budget))
    run = program.run(
        graph,
        args,
        num_workers=workers,
        ft=FaultTolerance(
            FaultPlan(checkpoint_every=checkpoint_every, recovery=case.recovery)
        ),
        transport=transport,
        supervisor=supervisor,
        mem=mem,
    )

    m = run.metrics
    violations: list[str] = []
    plan = case.net_plan
    # Exactly-once invariants.  A drawn fault type must actually have been
    # exercised, and a counter may only fire when some drawn fault explains
    # it — dedup hits also come from retransmissions whose *ack* dropped,
    # and the reorder buffer also absorbs the gaps drops/corruption tear
    # into the stream, so those counters key on the union of their causes.
    # Data never leaking into results is the `identical` check.
    if plan.drop_rate == 0.0 and m.messages_dropped:
        violations.append(f"drop_rate=0 but metered {m.messages_dropped}")
    if plan.corrupt_rate == 0.0 and m.messages_corrupted:
        violations.append(f"corrupt_rate=0 but metered {m.messages_corrupted}")
    if plan.dup_rate == plan.drop_rate == 0.0 and m.messages_duplicated:
        violations.append(f"no dup/drop drawn but metered {m.messages_duplicated}")
    if (
        plan.reorder_rate == plan.drop_rate == plan.corrupt_rate == 0.0
        and m.messages_reordered
    ):
        violations.append(f"no reorder/drop/corrupt drawn but metered {m.messages_reordered}")
    for rate_name, counter in (
        ("drop_rate", m.messages_dropped),
        ("dup_rate", m.messages_duplicated),
        ("reorder_rate", m.messages_reordered),
        ("corrupt_rate", m.messages_corrupted),
    ):
        if getattr(plan, rate_name) >= 0.05 and m.messages > 1000 and counter == 0:
            violations.append(f"{rate_name}={getattr(plan, rate_name)} never fired")
    if plan.drop_rate > 0 and m.packets_retransmitted == 0 and m.messages_dropped > 0:
        violations.append("drops without retransmissions")
    if crash is not None and m.restarts == 0 and m.halt_reason != "unrecoverable":
        violations.append("scripted silent crash never detected")
    if crash is None and m.restarts != 0:
        violations.append("restart without a scripted crash")
    # Memory-budget invariants: without a budget the mem counters must stay
    # zero; with one the run must still complete (the drawn budgets are
    # satisfiable for these workloads) and never exceed out-of-memory.
    if case.mem_budget is None and (
        m.spilled_bytes or m.outbox_parks or m.superstep_splits or m.mem_peak_bytes
    ):
        violations.append("mem counters fired without a budget")
    if case.mem_budget is not None and m.halt_reason == "out_of_memory":
        violations.append(f"satisfiable budget {case.mem_budget} hit OOM")

    identical = (
        run.outputs == baseline.outputs
        and m.parity_key() == baseline.metrics.parity_key()
    )
    return ChaosResult(
        case=case,
        identical=identical,
        detected=m.restarts > 0,
        messages_dropped=m.messages_dropped,
        messages_duplicated=m.messages_duplicated,
        messages_reordered=m.messages_reordered,
        messages_corrupted=m.messages_corrupted,
        heartbeats_missed=m.heartbeats_missed,
        restarts=m.restarts,
        spilled_bytes=m.spilled_bytes,
        superstep_splits=m.superstep_splits,
        violations=violations,
    )


def chaos_matrix(
    seeds: range | list[int],
    *,
    scale: float = 0.25,
    workers: int = 4,
) -> list[ChaosResult]:
    """The full sweep: one :func:`run_case` per seed."""
    return [run_case(draw_case(seed), scale=scale, workers=workers) for seed in seeds]


def chaos_report(results: list[ChaosResult]) -> str:
    lines = [
        "chaos fuzz matrix: randomized loss x dup x reorder x crash",
        f"cases: {len(results)}  "
        f"parity-identical: {sum(r.identical for r in results)}  "
        f"crash-detected: {sum(r.detected for r in results)}  "
        f"violations: {sum(len(r.violations) for r in results)}",
        "",
    ]
    for r in results:
        status = "ok " if r.ok else "FAIL"
        lines.append(
            f"  [{status}] {r.case.describe()} -> "
            f"dropped={r.messages_dropped} dup={r.messages_duplicated} "
            f"reordered={r.messages_reordered} corrupted={r.messages_corrupted} "
            f"hb_missed={r.heartbeats_missed} restarts={r.restarts} "
            f"spilled={r.spilled_bytes} splits={r.superstep_splits}"
            + (f"  !! {'; '.join(r.violations)}" if r.violations else "")
        )
    return "\n".join(lines)


# -- measurement helpers (benchmarks/bench_net.py) -----------------------


def transport_overhead(
    scale: float = 0.5, *, workers: int = 4, repeats: int = 5
) -> dict:
    """Wall-time of the reliable-transport *fast path* (an all-zero fault
    plan) relative to direct in-memory routing, best-of-``repeats``
    interleaved — the ≤5% ceiling CI enforces."""
    graph = load_graph("twitter", scale)
    program = compile_algorithm("pagerank", emit_java=False).program
    args = default_args("pagerank", graph)
    program.run(graph, args, num_workers=workers)  # untimed warmup
    direct_best = transport_best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        base = program.run(graph, args, num_workers=workers)
        direct_best = min(direct_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run = program.run(
            graph,
            args,
            num_workers=workers,
            transport=SimulatedTransport(NetFaultPlan()),
        )
        transport_best = min(transport_best, time.perf_counter() - t0)
        assert run.outputs == base.outputs
        assert run.metrics.parity_key() == base.metrics.parity_key()
    return {
        "direct_s": direct_best,
        "transport_s": transport_best,
        "overhead_ratio": transport_best / direct_best,
    }


@dataclass
class RecoveryLatencyRow:
    """One point of the recovery-latency-vs-fault-rate curve."""

    drop_rate: float
    recovery: str
    identical: bool
    detection_silence_units: float
    recovery_clock_units: float
    wall_seconds: float
    retransmitted: int
    backoff_units: int


def recovery_latency_sweep(
    drop_rates: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.3),
    *,
    scale: float = 0.25,
    workers: int = 4,
    repeats: int = 3,
) -> list[RecoveryLatencyRow]:
    """Detection + recovery latency for a heartbeat-detected crash as the
    channel degrades: the simulated clock cost of the supervision cycle
    (silence until the detector fires) and the wall cost of running the
    protocol at each drop rate, for both recovery strategies."""
    graph = load_graph("twitter", scale)
    program = compile_algorithm("pagerank", emit_java=False).program
    args = default_args("pagerank", graph)
    baseline = program.run(graph, args, num_workers=workers)
    crash_step = max(1, baseline.metrics.supersteps - 2)
    rows: list[RecoveryLatencyRow] = []
    for recovery in ("rollback", "confined"):
        for rate in drop_rates:
            walls = []
            for _ in range(repeats):
                transport = (
                    SimulatedTransport(NetFaultPlan(drop_rate=rate, seed=11))
                    if rate
                    else None
                )
                supervisor = Supervisor(
                    SupervisorPlan(silent_crashes=(CrashEvent(1, crash_step),))
                )
                t0 = time.perf_counter()
                run = program.run(
                    graph,
                    args,
                    num_workers=workers,
                    ft=FaultTolerance(FaultPlan(checkpoint_every=2, recovery=recovery)),
                    transport=transport,
                    supervisor=supervisor,
                )
                walls.append(time.perf_counter() - t0)
            report = supervisor.report()
            detection = report["detections"][0] if report["detections"] else {}
            rows.append(
                RecoveryLatencyRow(
                    drop_rate=rate,
                    recovery=recovery,
                    identical=(
                        run.outputs == baseline.outputs
                        and run.metrics.parity_key() == baseline.metrics.parity_key()
                    ),
                    detection_silence_units=detection.get("silence", 0.0),
                    recovery_clock_units=report["clock_units"],
                    wall_seconds=statistics.median(walls),
                    retransmitted=run.metrics.packets_retransmitted,
                    backoff_units=run.metrics.net_backoff_units,
                )
            )
    return rows


@dataclass
class MPKillRow:
    """One point of the real-process fault sweep on the mp backend."""

    kind: str  # "kill" | "hang" | "netsplit" | "slowlink"
    recovery: str
    deadline_s: float
    identical: bool
    restarts: int
    wall_seconds: float
    overhead_s: float
    transport: str = "shm"


def mp_kill_sweep(
    kinds: tuple[str, ...] = ("kill", "hang"),
    *,
    scale: float = 0.12,
    workers: int = 2,
    deadline_s: float = 1.5,
    transport: str = "shm",
) -> list[MPKillRow]:
    """Real faults against live mp worker processes: the parent's
    deadline-based barrier detects the failure, re-forks the worker from
    the latest checkpoint, and the run must finish bit-identical to the
    failure-free mp baseline on the same transport.  ``kill`` / ``hang``
    are process faults on either transport; under ``transport="tcp"``
    the sweep also accepts the network kinds — ``netsplit`` (the
    victim's listening socket closes mid-exchange, peers see a real
    ECONNREFUSED) and ``slowlink`` (the victim stalls past its peers'
    deadline).  The wall overhead is the real price of detection +
    re-fork + replay (for ``hang``/``slowlink`` the floor is the
    exchange deadline itself).  Returns ``[]`` when the platform cannot
    run the mp backend."""
    from ..pregel.backend.mp import mp_available

    if not mp_available():
        return []
    graph = load_graph("twitter", scale)
    program = compile_algorithm("pagerank", emit_java=False).program
    args = default_args("pagerank", graph)
    t0 = time.perf_counter()
    baseline = program.run(
        graph, args, backend="mp", num_workers=workers,
        transport_mode=transport,
    )
    base_wall = time.perf_counter() - t0
    crash_step = max(1, baseline.metrics.supersteps - 2)
    rows: list[MPKillRow] = []
    for recovery in ("rollback", "confined"):
        for kind in kinds:
            ft = FaultTolerance(FaultPlan(checkpoint_every=2, recovery=recovery))
            t0 = time.perf_counter()
            run = program.run(
                graph,
                args,
                backend="mp",
                num_workers=workers,
                ft=ft,
                real_faults=(RealFault(kind, 1, crash_step),),
                exchange_deadline=deadline_s,
                transport_mode=transport,
            )
            wall = time.perf_counter() - t0
            rows.append(
                MPKillRow(
                    kind=kind,
                    recovery=recovery,
                    deadline_s=deadline_s,
                    identical=(
                        run.outputs == baseline.outputs
                        and run.metrics.parity_key() == baseline.metrics.parity_key()
                    ),
                    restarts=run.metrics.restarts,
                    wall_seconds=wall,
                    overhead_s=wall - base_wall,
                    transport=transport,
                )
            )
    return rows


@dataclass
class MPTransportRow:
    """One (algorithm, transport) point of the slab-exchange comparison."""

    algorithm: str
    transport: str  # "shm" | "tcp"
    wall_seconds: list  # raw per-repeat samples (min-of-N at read time)
    identical: bool  # parity vs the shm run of the same algorithm
    supersteps: int
    messages: int
    message_bytes: int
    net_messages: int
    net_bytes: int

    @property
    def best_wall(self) -> float:
        return min(self.wall_seconds)

    @property
    def throughput_mbs(self) -> float:
        """Cross-worker slab throughput, MB of net payload per second."""
        return self.net_bytes / self.best_wall / 1e6


def mp_transport_sweep(
    algorithms: tuple[str, ...] = ("pagerank", "sssp"),
    *,
    scale: float = 0.12,
    workers: int = 2,
    repeats: int = 3,
) -> list[MPTransportRow]:
    """shm vs tcp slab exchange on the same workload: both transports
    must be bit-identical on ``parity_key()`` + outputs (the tcp rows
    are checked against their shm twins), and the wall columns price
    what real loopback sockets cost over shared-memory segments.
    Returns ``[]`` when the platform cannot run the mp backend."""
    from ..pregel.backend.mp import mp_available

    if not mp_available():
        return []
    graph = load_graph("twitter", scale)
    rows: list[MPTransportRow] = []
    for alg in algorithms:
        program = compile_algorithm(alg, emit_java=False).program
        args = default_args(alg, graph)
        runs = {}
        for transport in ("shm", "tcp"):
            walls = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                run = program.run(
                    graph, args, backend="mp", num_workers=workers,
                    transport_mode=transport,
                )
                walls.append(time.perf_counter() - t0)
            runs[transport] = run
            m = run.metrics
            oracle = runs["shm"]
            rows.append(
                MPTransportRow(
                    algorithm=alg,
                    transport=transport,
                    wall_seconds=walls,
                    identical=(
                        run.outputs == oracle.outputs
                        and m.parity_key() == oracle.metrics.parity_key()
                    ),
                    supersteps=m.supersteps,
                    messages=m.messages,
                    message_bytes=m.message_bytes,
                    net_messages=m.net_messages,
                    net_bytes=m.net_bytes,
                )
            )
    return rows
