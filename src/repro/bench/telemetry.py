"""Machine-readable benchmark telemetry: ``BENCH_<name>.json`` artifacts.

Every benchmark that measures wall time can emit a schema-versioned JSON
document describing *what ran* (git sha, backend, workers, cpu count,
graph signature) and *what was measured* (per-run wall-time samples,
deterministic count totals, metrics-registry snapshots with histogram
summaries).  The artifacts are the repo's performance trajectory: CI
uploads them from every run and ``gm-pregel compare BASELINE CURRENT``
turns two of them into a regression verdict.

Comparison is noise-aware: wall times compare *min-of-N* (the repeats are
recorded individually, never pre-aggregated) against a ratio threshold,
while deterministic counts (supersteps, messages, bytes) compare exactly
by default — the workload generators are seed-stable, so any drift there
is a semantic change, not noise.  Per-metric thresholds loosen individual
counts when a change legitimately trades messages for bytes.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..pregel.runtime import RunMetrics

#: Version of the BENCH_*.json document layout.  Bump on breaking changes;
#: ``compare`` refuses to compare documents of different versions.
SCHEMA_VERSION = 1

#: The deterministic count totals every run record carries (all drawn from
#: ``RunMetrics.parity_key()`` quantities, so cross-backend identical).
COUNT_FIELDS = ("supersteps", "messages", "message_bytes", "net_messages", "net_bytes")


class TelemetryError(ValueError):
    """A malformed telemetry document (bad JSON, wrong schema, missing
    required fields).  The CLI maps this to exit code 2."""


def git_sha() -> str:
    """The current commit sha, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def collect_meta() -> dict:
    """The environment block shared by every run in one document."""
    return {
        "git_sha": git_sha(),
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": sys.platform,
        "created_unix": int(time.time()),
    }


def graph_signature(graph, key: str = "", scale: float | None = None, seed: int | None = None) -> dict:
    """A cheap structural fingerprint of the input graph.

    ``degree_checksum`` folds the whole out-offset array, so two graphs
    with the same node/edge counts but different topology (a generator
    change, a different seed) still get distinct signatures.
    """
    sig = {
        "key": key,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "degree_checksum": sum(graph.out_offsets) % (1 << 32),
    }
    if scale is not None:
        sig["scale"] = scale
    if seed is not None:
        sig["seed"] = seed
    return sig


def _percentile_from_buckets(buckets: list, count: int, q: float) -> float:
    """Upper-bound estimate of the q-quantile from log-bucket counts."""
    target = q * count
    cumulative = 0
    bound = 0.0
    for bound, bucket_count in buckets:
        cumulative += bucket_count
        if cumulative >= target:
            return float(bound)
    return float(bound)


def hist_summary(row: dict) -> dict:
    """Summarize one snapshot histogram row: count/sum/min/max plus
    p50/p90/p99 upper-bound estimates from the log buckets."""
    count = row.get("count", 0)
    out = {"count": count, "sum": row.get("sum", 0.0)}
    if not count:
        return out
    out["min"] = row["min"]
    out["max"] = row["max"]
    buckets = row.get("buckets", [])
    for name, q in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
        out[name] = _percentile_from_buckets(buckets, count, q)
    return out


def snapshot_histogram_summaries(snap: dict) -> dict:
    """``{family{label=value,...}: hist_summary}`` for every histogram
    series in a :meth:`MetricsRegistry.snapshot` dict."""
    out = {}
    for name, family in snap.items():
        if family.get("kind") != "histogram":
            continue
        for row in family["series"]:
            labels = row.get("labels") or {}
            suffix = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            key = f"{name}{{{suffix}}}" if suffix else name
            out[key] = hist_summary(row)
    return out


def run_record(
    name: str,
    *,
    backend: str,
    workers: int,
    wall_seconds: list,
    metrics: "RunMetrics | None" = None,
    counts: dict | None = None,
    snapshot: dict | None = None,
    graph: dict | None = None,
    extra: dict | None = None,
) -> dict:
    """One run entry for a BENCH document.

    ``wall_seconds`` is the raw per-repeat sample list (min-of-N happens at
    compare time, so the noise floor stays inspectable).  ``counts`` defaults
    to the :data:`COUNT_FIELDS` slice of ``metrics``; ``snapshot`` is an
    optional metrics-registry snapshot, stored verbatim plus histogram
    summaries for human/CI consumption.
    """
    if counts is None:
        counts = {}
        if metrics is not None:
            counts = {f: getattr(metrics, f) for f in COUNT_FIELDS}
    record = {
        "name": name,
        "backend": backend,
        "workers": workers,
        "wall_seconds": [float(s) for s in wall_seconds],
        "counts": counts,
    }
    if graph is not None:
        record["graph"] = graph
    if snapshot is not None:
        record["metrics"] = snapshot
        record["histograms"] = snapshot_histogram_summaries(snapshot)
    if extra:
        record["extra"] = extra
    return record


def bench_document(bench: str, runs: list, meta: dict | None = None) -> dict:
    doc = {
        "schema_version": SCHEMA_VERSION,
        "bench": bench,
        "meta": collect_meta(),
        "runs": list(runs),
    }
    if meta:
        doc["meta"].update(meta)
    validate(doc)
    return doc


def write_bench(bench: str, runs: list, out_dir=".", meta: dict | None = None) -> Path:
    """Write ``BENCH_<bench>.json`` under ``out_dir`` and return its path."""
    doc = bench_document(bench, runs, meta)
    path = Path(out_dir) / f"BENCH_{bench}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def validate(doc) -> None:
    """Raise :class:`TelemetryError` unless ``doc`` is a well-formed BENCH
    document of the current schema version."""
    if not isinstance(doc, dict):
        raise TelemetryError("telemetry document is not a JSON object")
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise TelemetryError(
            f"unsupported schema_version {version!r} (expected {SCHEMA_VERSION})"
        )
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        raise TelemetryError("missing 'bench' name")
    runs = doc.get("runs")
    if not isinstance(runs, list):
        raise TelemetryError("missing 'runs' list")
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            raise TelemetryError(f"runs[{i}] is not an object")
        for required in ("name", "backend", "wall_seconds", "counts"):
            if required not in run:
                raise TelemetryError(f"runs[{i}] is missing '{required}'")
        if not isinstance(run["wall_seconds"], list):
            raise TelemetryError(f"runs[{i}].wall_seconds is not a list")
        if not isinstance(run["counts"], dict):
            raise TelemetryError(f"runs[{i}].counts is not an object")


def load_bench(path) -> dict:
    """Load and validate a BENCH_*.json document."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise TelemetryError(f"{path}: {exc.strerror or exc}") from None
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TelemetryError(f"{path}: invalid JSON ({exc})") from None
    try:
        validate(doc)
    except TelemetryError as exc:
        raise TelemetryError(f"{path}: {exc}") from None
    return doc


# -- regression compare ---------------------------------------------------


@dataclass
class CompareIssue:
    """One finding of a baseline/current comparison."""

    run: str
    metric: str  # "wall_seconds" or a counts key, or "presence"
    kind: str  # "regression" | "improvement" | "note"
    detail: str


@dataclass
class CompareResult:
    """The verdict of :func:`compare`: regressions mean a non-zero exit."""

    issues: list = field(default_factory=list)
    runs_compared: int = 0

    @property
    def regressions(self) -> list:
        return [i for i in self.issues if i.kind == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [f"compared {self.runs_compared} run(s)"]
        for issue in self.issues:
            marker = {"regression": "REGRESSION", "improvement": "improved"}.get(
                issue.kind, "note"
            )
            lines.append(f"  [{marker}] {issue.run}: {issue.metric}: {issue.detail}")
        lines.append(
            f"result: {len(self.regressions)} regression(s)"
            if self.regressions
            else "result: no regressions"
        )
        return "\n".join(lines)


def compare(
    baseline: dict,
    current: dict,
    *,
    wall_threshold: float = 1.15,
    thresholds: dict | None = None,
    counts_only: bool = False,
) -> CompareResult:
    """Compare two BENCH documents run-by-run (matched on run ``name``).

    * wall time — ``min(current samples) > min(baseline samples) *
      wall_threshold`` is a regression; a symmetric improvement is noted.
      Skipped entirely under ``counts_only`` (cross-host CI, where absolute
      wall times are not comparable).
    * counts — exact equality by default; a per-metric entry in
      ``thresholds`` (e.g. ``{"messages": 1.10}``) instead allows growth up
      to that ratio.  Counts appearing only on one side are notes.
    * a baseline run missing from current is a regression (coverage loss);
      a new current run is a note.
    """
    validate(baseline)
    validate(current)
    if baseline.get("bench") != current.get("bench"):
        raise TelemetryError(
            f"bench mismatch: baseline is {baseline.get('bench')!r}, "
            f"current is {current.get('bench')!r}"
        )
    thresholds = thresholds or {}
    result = CompareResult()
    current_runs = {run["name"]: run for run in current["runs"]}
    baseline_names = set()
    for base in baseline["runs"]:
        name = base["name"]
        baseline_names.add(name)
        cur = current_runs.get(name)
        if cur is None:
            result.issues.append(
                CompareIssue(name, "presence", "regression", "run missing from current")
            )
            continue
        result.runs_compared += 1
        for metric, base_value in base["counts"].items():
            if metric not in cur["counts"]:
                result.issues.append(
                    CompareIssue(name, metric, "note", "count missing from current")
                )
                continue
            cur_value = cur["counts"][metric]
            allowed = thresholds.get(metric)
            if allowed is None:
                if cur_value != base_value:
                    result.issues.append(
                        CompareIssue(
                            name,
                            metric,
                            "regression",
                            f"{base_value} -> {cur_value} (exact match required)",
                        )
                    )
            elif base_value and cur_value > base_value * allowed:
                result.issues.append(
                    CompareIssue(
                        name,
                        metric,
                        "regression",
                        f"{base_value} -> {cur_value} "
                        f"({cur_value / base_value:.3f}x > {allowed:.3f}x allowed)",
                    )
                )
        if counts_only:
            continue
        base_samples = [s for s in base["wall_seconds"] if s > 0]
        cur_samples = [s for s in cur["wall_seconds"] if s > 0]
        if not base_samples or not cur_samples:
            result.issues.append(
                CompareIssue(name, "wall_seconds", "note", "no wall-time samples")
            )
            continue
        base_best = min(base_samples)
        cur_best = min(cur_samples)
        ratio = cur_best / base_best if base_best else math.inf
        detail = (
            f"min-of-{len(cur_samples)} {cur_best:.4f}s vs "
            f"min-of-{len(base_samples)} {base_best:.4f}s ({ratio:.3f}x, "
            f"threshold {wall_threshold:.2f}x)"
        )
        if ratio > wall_threshold:
            result.issues.append(
                CompareIssue(name, "wall_seconds", "regression", detail)
            )
        elif ratio < 1.0 / wall_threshold:
            result.issues.append(
                CompareIssue(name, "wall_seconds", "improvement", detail)
            )
    for name in current_runs:
        if name not in baseline_names:
            result.issues.append(
                CompareIssue(name, "presence", "note", "new run (no baseline)")
            )
    return result
