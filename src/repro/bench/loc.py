"""Lines-of-code accounting for Table 2.

The paper compares the Green-Marl source size against the native GPS (Java)
implementation of each algorithm.  We count:

* the bundled ``.gm`` sources (comments and blank lines excluded, as the
  paper's counts clearly do);
* our generated GPS-style Java as the Java-side artifact — the paper reports
  that generated and manual implementations are structurally equivalent, so
  generated LoC is the faithful stand-in for the manual column;
* the paper's published numbers, for side-by-side comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.sources import ALGORITHMS, DISPLAY_NAMES, load_source
from ..compiler import compile_algorithm

#: Table 2 as printed in the paper.
PAPER_TABLE2: dict[str, tuple[int, int | None]] = {
    "avg_teen_cnt": (13, 130),
    "pagerank": (19, 110),
    "conductance": (12, 149),
    "sssp": (29, 105),
    "bipartite_matching": (47, 225),
    "bc_approx": (25, None),  # N/A: manual Pregel BC was not implemented
}


def count_loc(text: str, *, line_comment: str = "//") -> int:
    """Non-blank, non-comment lines (block comments stripped naively)."""
    count = 0
    in_block = False
    for raw in text.splitlines():
        line = raw.strip()
        if in_block:
            if "*/" in line:
                in_block = False
                line = line.split("*/", 1)[1].strip()
            else:
                continue
        if line.startswith("/*"):
            if "*/" not in line:
                in_block = True
            continue
        if not line or line.startswith(line_comment):
            continue
        count += 1
    return count


@dataclass
class LocRow:
    algorithm: str
    display: str
    green_marl: int
    generated_java: int
    paper_green_marl: int
    paper_gps: int | None


def table2_rows() -> list[LocRow]:
    rows = []
    for name in ALGORITHMS:
        gm_loc = count_loc(load_source(name))
        compiled = compile_algorithm(name)
        java_loc = count_loc(compiled.java_source)
        paper_gm, paper_gps = PAPER_TABLE2[name]
        rows.append(
            LocRow(name, DISPLAY_NAMES[name], gm_loc, java_loc, paper_gm, paper_gps)
        )
    return rows
