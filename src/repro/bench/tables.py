"""Plain-text table rendering for the benchmark reports."""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table (markdown-ish, pipe-separated)."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        line = " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        lines.append(line.rstrip())
        if idx == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    if value is None:
        return "N/A"
    return str(value)


def render_check_matrix(
    row_names: Sequence[str], col_names: Sequence[str], marks: dict[str, dict[str, bool]]
) -> str:
    """Render a Table 3-style check matrix: rows = rules, cols = algorithms."""
    headers = ["Transformation"] + list(col_names)
    rows = []
    for rule in row_names:
        rows.append(
            [rule] + ["x" if marks[col].get(rule, False) else "" for col in col_names]
        )
    return render_table(headers, rows)
