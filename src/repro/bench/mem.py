"""Memory-budget benchmarks: fast-path ceiling + min-budget/spill sweep.

Two jobs, wired into the CI ``chaos`` job via ``benchmarks/bench_mem.py``:

* :func:`mem_overhead` is the ISSUE's ≤5% ceiling: attaching a
  *metered-but-unlimited* :class:`~repro.pregel.MemoryManager` must stay
  within 5% of running with ``mem=None``, measured best-of-N interleaved.
  An unlimited manager never installs its hooks, so the engine's hot loops
  pay exactly one flag check — this measures that claim.
* :func:`min_budget_sweep` binary-searches the smallest completing budget
  for PageRank and BFS on the skewed hub graph (the memory-pressure
  adversary), then measures spill volume and wall-clock slowdown at
  multiples of that minimum — every point bit-identical to the unlimited
  baseline.  The table lands in ``benchmarks/reports/mem_budget.txt``
  (quoted by EXPERIMENTS.md).
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass

from ..algorithms.manual import MANUAL_PROGRAMS, ManualBFS
from ..graphgen import attach_standard_props, skewed
from ..pregel import MemPlan, MemoryManager
from .harness import default_args, max_out_degree_root

#: The sweep's workloads: the per-edge flooder and the frontier algorithm.
MEM_SWEEP_ALGORITHMS = ("pagerank", "bfs")

#: Budgets measured, as multiples of the binary-searched minimum.
MEM_SWEEP_MULTIPLES = (1.0, 1.5, 2.0, 4.0)


def _sweep_program(algorithm: str):
    return ManualBFS() if algorithm == "bfs" else MANUAL_PROGRAMS[algorithm]


def _skewed_graph(scale: float):
    """The adversary workload: power-law degrees plus a forced full-degree
    hub, so one vertex's inbox dominates the budget floor."""
    num_nodes = max(200, int(3200 * scale))
    graph = skewed(num_nodes, 8, seed=7)
    attach_standard_props(graph, seed=2)
    return graph


def mem_overhead(
    scale: float = 0.5, *, workers: int = 4, repeats: int = 7
) -> dict:
    """Wall-time with a metered-but-unlimited MemoryManager attached,
    relative to ``mem=None``, best-of-``repeats`` interleaved — the ≤5%
    fast-path ceiling CI enforces."""
    graph = _skewed_graph(scale)
    program = MANUAL_PROGRAMS["pagerank"]
    args = default_args("pagerank", graph)
    # Untimed warmups, one per path, so neither side pays first-run costs.
    program.run(graph, args, num_workers=workers)
    program.run(graph, args, num_workers=workers, mem=MemoryManager(MemPlan()))
    # CPU time, not wall clock: the simulator is single-threaded, and a ±5%
    # assertion on a ~100ms workload drowns in container scheduling jitter.
    direct_best = metered_best = float("inf")
    for _ in range(repeats):
        gc.collect()  # don't bill one side for the other's garbage
        t0 = time.process_time()
        base = program.run(graph, args, num_workers=workers)
        direct_best = min(direct_best, time.process_time() - t0)
        mem = MemoryManager(MemPlan())  # one manager per run, unlimited
        gc.collect()
        t0 = time.process_time()
        run = program.run(graph, args, num_workers=workers, mem=mem)
        metered_best = min(metered_best, time.process_time() - t0)
        assert run.outputs == base.outputs
        assert run.metrics.parity_key() == base.metrics.parity_key()
    return {
        "direct_s": direct_best,
        "metered_s": metered_best,
        "overhead_ratio": metered_best / direct_best,
    }


@dataclass
class MemSweepRow:
    """One point of the budget-vs-spill-overhead curve."""

    algorithm: str
    label: str
    budget_bytes: int
    min_budget_bytes: int
    unlimited_peak_bytes: int
    identical: bool
    spilled_bytes: int
    spill_files: int
    superstep_splits: int
    outbox_parks: int
    wall_seconds: float
    slowdown: float


def min_budget_sweep(
    scale: float = 0.5, *, workers: int = 4, repeats: int = 3
) -> list[MemSweepRow]:
    """Minimum completing budget and spill overhead at multiples of it,
    for each sweep algorithm on the skewed hub graph."""
    graph = _skewed_graph(scale)
    rows: list[MemSweepRow] = []
    for algorithm in MEM_SWEEP_ALGORITHMS:
        program = _sweep_program(algorithm)
        args = default_args(algorithm, graph)
        if algorithm == "bfs":
            args = {"root": max_out_degree_root(graph)}
        baseline = program.run(graph, args, num_workers=workers)

        def budgeted(budget: int):
            mem = MemoryManager(MemPlan(budget_bytes=budget))
            return program.run(graph, args, num_workers=workers, mem=mem)

        peak = budgeted(1 << 30).metrics.mem_peak_bytes
        lo, hi = 1, peak
        while lo < hi:
            mid = (lo + hi) // 2
            run = budgeted(mid)
            if run.metrics.halt_reason != "out_of_memory":
                hi = mid
            else:
                lo = mid + 1
        minimum = hi

        # CPU time, like mem_overhead: the slowdown column should survive
        # container scheduling jitter (spill cost is dominated by pickling).
        unlimited_best = float("inf")
        for _ in range(repeats):
            gc.collect()
            t0 = time.process_time()
            program.run(graph, args, num_workers=workers)
            unlimited_best = min(unlimited_best, time.process_time() - t0)

        for mult in MEM_SWEEP_MULTIPLES:
            budget = max(minimum, int(minimum * mult))
            best = float("inf")
            run = None
            for _ in range(repeats):
                gc.collect()
                t0 = time.process_time()
                run = budgeted(budget)
                best = min(best, time.process_time() - t0)
            m = run.metrics
            rows.append(
                MemSweepRow(
                    algorithm=algorithm,
                    label=f"{mult:g}x min",
                    budget_bytes=budget,
                    min_budget_bytes=minimum,
                    unlimited_peak_bytes=peak,
                    identical=(
                        run.outputs == baseline.outputs
                        and m.parity_key() == baseline.metrics.parity_key()
                    ),
                    spilled_bytes=m.spilled_bytes,
                    spill_files=m.spill_files,
                    superstep_splits=m.superstep_splits,
                    outbox_parks=m.outbox_parks,
                    wall_seconds=best,
                    slowdown=best / unlimited_best,
                )
            )
    return rows


def mem_report_artifact(
    scale: float = 0.5, *, workers: int = 4, budget_divisor: int = 3
) -> dict:
    """Run PageRank on the skewed graph at a third of its observed peak and
    return the structured :class:`~repro.pregel.MemoryReport` dict — the CI
    memory-report artifact."""
    graph = _skewed_graph(scale)
    program = MANUAL_PROGRAMS["pagerank"]
    args = default_args("pagerank", graph)
    probe = MemoryManager(MemPlan(budget_bytes=1 << 30))
    peak = program.run(
        graph, args, num_workers=workers, mem=probe
    ).metrics.mem_peak_bytes
    # Stay above the satisfiability floor (the hub's inbox must fit).
    floor = probe.report().largest_vertex_inbox_bytes
    budget = max(1, peak // budget_divisor, 2 * floor)
    mem = MemoryManager(MemPlan(budget_bytes=budget))
    run = program.run(graph, args, num_workers=workers, mem=mem)
    report = mem.report().to_dict()
    report["halt_reason"] = run.metrics.halt_reason
    return report
