"""Benchmark harness: experiment runners, LoC accounting, table rendering."""

from .harness import (
    FIGURE6_ALGORITHMS,
    FaultAblationRow,
    Measurement,
    PairResult,
    bc_experiments,
    default_args,
    fault_ablation,
    figure6_experiments,
    run_pair,
)
from .loc import PAPER_TABLE2, LocRow, count_loc, table2_rows
from .tables import render_check_matrix, render_table

__all__ = [
    "FIGURE6_ALGORITHMS",
    "FaultAblationRow",
    "Measurement",
    "PAPER_TABLE2",
    "PairResult",
    "LocRow",
    "bc_experiments",
    "count_loc",
    "default_args",
    "fault_ablation",
    "figure6_experiments",
    "render_check_matrix",
    "render_table",
    "run_pair",
    "table2_rows",
]
