"""Benchmark harness: experiment runners, LoC accounting, table rendering."""

from .harness import (
    FIGURE6_ALGORITHMS,
    FaultAblationRow,
    Measurement,
    PairResult,
    SchedulerParityRow,
    SchedulerSweepRow,
    bc_experiments,
    bfs_scheduler_sweep,
    deep_bfs_root,
    default_args,
    fault_ablation,
    figure6_experiments,
    max_out_degree_root,
    run_pair,
    scheduler_parity,
    traced_run,
    tracer_overhead,
)
from .loc import PAPER_TABLE2, LocRow, count_loc, table2_rows
from .tables import render_check_matrix, render_table

__all__ = [
    "FIGURE6_ALGORITHMS",
    "FaultAblationRow",
    "Measurement",
    "PAPER_TABLE2",
    "PairResult",
    "LocRow",
    "SchedulerParityRow",
    "SchedulerSweepRow",
    "bc_experiments",
    "bfs_scheduler_sweep",
    "count_loc",
    "deep_bfs_root",
    "default_args",
    "fault_ablation",
    "figure6_experiments",
    "max_out_degree_root",
    "render_check_matrix",
    "render_table",
    "run_pair",
    "scheduler_parity",
    "table2_rows",
    "traced_run",
    "tracer_overhead",
]
