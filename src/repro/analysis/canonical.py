"""Pregel-canonical form checker (§3.2).

A Green-Marl program is *Pregel-canonical* when it consists only of the
patterns of §3.1, so the translator can map it to a Pregel program directly.
This module verifies the five conditions of §3.2 (plus the bookkeeping
conditions implied by the translation rules) and reports precise violations;
the compilation pipeline raises :class:`NotPregelCanonicalError` when any
remain after the §4.1 transformations have run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.ast import (
    Assign,
    Bfs,
    Block,
    DeferredAssign,
    Expr,
    Foreach,
    Ident,
    If,
    IterKind,
    MethodCall,
    Procedure,
    PropAccess,
    ReduceAssign,
    ReduceExpr,
    Return,
    Stmt,
    VarDecl,
    While,
    walk,
)
from ..lang.errors import Span
from ..analysis.access import AccessKind, expr_reads
from ..analysis.loops import classify_inner_loop


@dataclass(frozen=True)
class Violation:
    message: str
    span: Span

    def __str__(self) -> str:
        return f"{self.span}: {self.message}"


class CanonicalChecker:
    def __init__(self, proc: Procedure):
        self._proc = proc
        self.violations: list[Violation] = []

    def _flag(self, message: str, span: Span) -> None:
        self.violations.append(Violation(message, span))

    # -- entry ------------------------------------------------------------------

    def check(self) -> list[Violation]:
        self._check_sequential_block(self._proc.body)
        for node in walk(self._proc.body):
            if isinstance(node, ReduceExpr):
                self._flag(
                    "reduction expression survived normalization (internal error)",
                    node.span,
                )
            if isinstance(node, Bfs):
                self._flag("InBFS survived BFS lowering (internal error)", node.span)
            if isinstance(node, Foreach) and node.source.kind in (
                IterKind.UP_NBRS,
                IterKind.DOWN_NBRS,
            ):
                self._flag(
                    "UpNbrs/DownNbrs iteration outside a BFS context", node.span
                )
        return self.violations

    # -- sequential phase --------------------------------------------------------

    def _check_sequential_block(self, block: Block) -> None:
        for stmt in block.stmts:
            if isinstance(stmt, Foreach):
                if not stmt.parallel:
                    self._flag(
                        "sequential For loops over graph elements cannot be "
                        "translated to Pregel",
                        stmt.span,
                    )
                    continue
                if stmt.source.kind is not IterKind.NODES:
                    self._flag(
                        "a top-level parallel loop must iterate over G.Nodes",
                        stmt.span,
                    )
                    continue
                self._check_vertex_loop(stmt)
            elif isinstance(stmt, If):
                self._check_sequential_expr(stmt.cond)
                self._check_sequential_block(stmt.then)
                if stmt.other is not None:
                    self._check_sequential_block(stmt.other)
            elif isinstance(stmt, While):
                self._check_sequential_expr(stmt.cond)
                self._check_sequential_block(stmt.body)
            elif isinstance(stmt, (Assign, ReduceAssign, DeferredAssign)):
                if isinstance(stmt.target, PropAccess):
                    self._flag(
                        "property write in a sequential phase (Random Access rule "
                        "did not fire — is the target a graph or edge?)",
                        stmt.span,
                    )
                self._check_sequential_expr(stmt.expr)
            elif isinstance(stmt, VarDecl):
                if stmt.init is not None:
                    self._check_sequential_expr(stmt.init)
            elif isinstance(stmt, Return):
                if stmt.expr is not None:
                    self._check_sequential_expr(stmt.expr)
            elif isinstance(stmt, Block):
                self._check_sequential_block(stmt)
            else:
                self._flag(
                    f"{type(stmt).__name__} is not allowed in a sequential phase",
                    stmt.span,
                )

    def _check_sequential_expr(self, expr: Expr) -> None:
        for access in expr_reads(expr):
            if access.kind in (AccessKind.PROP, AccessKind.EDGE_PROP):
                self._flag(
                    f"random read of '{access}' in a sequential phase "
                    "(§3.2: random reading of vertex properties is not allowed)",
                    expr.span,
                )
            if access.kind is AccessKind.METHOD and access.member in (
                "Degree",
                "InDegree",
                "OutDegree",
                "NumNbrs",
            ):
                self._flag(
                    f"degree query '{access}' in a sequential phase requires "
                    "random access",
                    expr.span,
                )

    # -- vertex-parallel phase ---------------------------------------------------

    def _check_vertex_loop(self, outer: Foreach) -> None:
        if outer.filter is not None:
            self._check_vertex_expr(outer.filter, outer, inner=None)
        self._check_vertex_block(outer.body, outer)

    def _check_vertex_block(self, block: Block, outer: Foreach) -> None:
        for stmt in block.stmts:
            if isinstance(stmt, Foreach):
                self._check_inner_loop(outer, stmt)
            elif isinstance(stmt, If):
                self._check_vertex_expr(stmt.cond, outer, inner=None)
                self._check_vertex_block(stmt.then, outer)
                if stmt.other is not None:
                    self._check_vertex_block(stmt.other, outer)
            elif isinstance(stmt, (Assign, ReduceAssign, DeferredAssign)):
                self._check_vertex_write(stmt, outer)
                self._check_vertex_expr(stmt.expr, outer, inner=None)
            elif isinstance(stmt, VarDecl):
                if stmt.init is not None:
                    self._check_vertex_expr(stmt.init, outer, inner=None)
            elif isinstance(stmt, Return):
                self._flag(
                    "Return inside a parallel loop is not allowed (§3.2)", stmt.span
                )
            elif isinstance(stmt, While):
                self._flag(
                    "While inside a parallel loop cannot be translated", stmt.span
                )
            elif isinstance(stmt, Block):
                self._check_vertex_block(stmt, outer)
            else:
                self._flag(
                    f"{type(stmt).__name__} not allowed in a vertex-parallel phase",
                    stmt.span,
                )

    def _check_vertex_write(self, stmt: Stmt, outer: Foreach) -> None:
        assert isinstance(stmt, (Assign, ReduceAssign, DeferredAssign))
        target = stmt.target
        if isinstance(target, PropAccess) and isinstance(target.target, Ident):
            if (
                target.target.type is not None
                and target.target.type.is_edge()
            ):
                self._flag("edge properties are read-only", stmt.span)

    def _check_vertex_expr(self, expr: Expr, outer: Foreach, inner: Foreach | None) -> None:
        """Reads at the vertex level may touch the iterators' own properties
        and scalars; reading another vertex's property is a random read."""
        allowed = {outer.iterator}
        if inner is not None:
            allowed.add(inner.iterator)
        for access in expr_reads(expr):
            if access.kind is AccessKind.PROP and access.var not in allowed:
                self._flag(
                    f"random read of '{access}' in a vertex-parallel phase "
                    "(§3.2: random reading is not allowed)",
                    expr.span,
                )

    def _check_inner_loop(self, outer: Foreach, inner: Foreach) -> None:
        if inner.source.kind is IterKind.NODES:
            self._flag(
                "the inner loop of a doubly-nested parallel loop must iterate "
                "over the outer iterator's neighbors (§3.2)",
                inner.span,
            )
            return
        driver = inner.source.driver
        if not (isinstance(driver, Ident) and driver.name == outer.iterator):
            self._flag(
                "inner loop must iterate over the outer iterator's neighborhood",
                inner.span,
            )
            return
        report = classify_inner_loop(outer, inner)
        if report.is_pull:
            targets = report.outer_prop_writes + report.outer_scalar_writes
            self._flag(
                f"message pulling: inner loop modifies outer-scoped {sorted(set(targets))} "
                "(§3.2: neighbors may not modify the iterating vertex's values)",
                inner.span,
            )
        if report.random_writes:
            self._flag(
                "random writes inside an inner neighborhood loop are not "
                "translatable; move them to the vertex level",
                inner.span,
            )
        self._check_edge_usage(outer, inner)
        if inner.filter is not None:
            self._check_vertex_expr(inner.filter, outer, inner)
        for node in walk(inner.body):
            if isinstance(node, Expr):
                pass  # reads checked via statements below
        for stmt in inner.body.stmts:
            if isinstance(stmt, (Assign, ReduceAssign, DeferredAssign)):
                self._check_vertex_expr(stmt.expr, outer, inner)

    def _check_edge_usage(self, outer: Foreach, inner: Foreach) -> None:
        """Edge properties may only be accessed through the source vertex —
        i.e. via ``t.ToEdge()`` where t iterates *out*-neighbors (§3.1)."""
        for node in walk(inner.body):
            if isinstance(node, MethodCall) and node.name == "ToEdge":
                target = node.target
                valid_iterator = (
                    isinstance(target, Ident) and target.name == inner.iterator
                )
                if not valid_iterator:
                    self._flag(
                        "ToEdge() may only be called on the inner neighborhood "
                        "iterator",
                        node.span,
                    )
                elif inner.source.kind is not IterKind.NBRS:
                    self._flag(
                        "edge properties are only accessible while iterating "
                        "outgoing neighbors (the edge belongs to its source "
                        "vertex, §3.1)",
                        node.span,
                    )


def check_canonical(proc: Procedure) -> list[Violation]:
    """All §3.2 violations in ``proc`` (empty = Pregel-canonical)."""
    return CanonicalChecker(proc).check()
