"""Loop-nest classification.

Given an outer vertex-parallel loop and a nested neighborhood loop, this
module decides whether the inner loop is a *push* (writes its own iterator's
properties — directly translatable as Neighborhood Communication, §3.1) or a
*pull* (updates outer-loop-scoped state — requiring Dissection and
Edge-Flipping, §4.1), and inventories the global reductions it performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.ast import (
    Assign,
    Block,
    DeferredAssign,
    Foreach,
    If,
    IterKind,
    ReduceAssign,
    Stmt,
    VarDecl,
)
from ..lang.errors import Span, TransformError
from .access import Access, AccessKind, declared_names, lvalue_access, stmt_reads


@dataclass
class InnerLoopReport:
    """Write-set classification of one inner neighborhood loop."""

    loop: Foreach
    #: writes to ``t.prop`` where t is the inner iterator (push form)
    inner_prop_writes: list[str] = field(default_factory=list)
    #: writes to ``n.prop`` where n is the outer iterator (pull form)
    outer_prop_writes: list[str] = field(default_factory=list)
    #: reduce-writes to scalars declared in the outer loop body (pull form)
    outer_scalar_writes: list[str] = field(default_factory=list)
    #: reduce-writes to procedure-level scalars (global-object reductions)
    global_scalar_writes: list[str] = field(default_factory=list)
    #: writes through node variables that are neither iterator (random writes)
    random_writes: list[str] = field(default_factory=list)
    #: scalar names declared inside the inner loop body itself
    local_names: set[str] = field(default_factory=set)

    @property
    def is_pull(self) -> bool:
        return bool(self.outer_prop_writes or self.outer_scalar_writes)

    @property
    def is_push(self) -> bool:
        return bool(self.inner_prop_writes)

    @property
    def is_mixed(self) -> bool:
        return self.is_pull and self.is_push


def find_inner_loops(outer: Foreach) -> list[Foreach]:
    """Neighborhood loops nested directly in ``outer`` (descending through If
    arms but not through further loops)."""
    found: list[Foreach] = []
    _find_inner_loops(outer.body, found)
    return found


def _find_inner_loops(block: Block, found: list[Foreach]) -> None:
    for stmt in block.stmts:
        if isinstance(stmt, Foreach):
            found.append(stmt)
        elif isinstance(stmt, If):
            _find_inner_loops(stmt.then, found)
            if stmt.other is not None:
                _find_inner_loops(stmt.other, found)
        elif isinstance(stmt, Block):
            _find_inner_loops(stmt, found)


def classify_inner_loop(outer: Foreach, inner: Foreach) -> InnerLoopReport:
    """Classify every write of ``inner``'s body relative to the nest scopes."""
    if inner.source.kind is IterKind.NODES:
        raise TransformError(
            "nested parallel iteration over all nodes is not Pregel-compatible",
            inner.span,
        )
    report = InnerLoopReport(inner)
    report.local_names = declared_names(inner.body)
    outer_locals = declared_names(outer.body)
    _classify_block(inner.body, outer, inner, outer_locals, report)
    return report


def _classify_block(
    block: Block,
    outer: Foreach,
    inner: Foreach,
    outer_locals: set[str],
    report: InnerLoopReport,
) -> None:
    for stmt in block.stmts:
        if isinstance(stmt, (Assign, ReduceAssign, DeferredAssign)):
            _classify_write(stmt, outer, inner, outer_locals, report)
        elif isinstance(stmt, If):
            _classify_block(stmt.then, outer, inner, outer_locals, report)
            if stmt.other is not None:
                _classify_block(stmt.other, outer, inner, outer_locals, report)
        elif isinstance(stmt, VarDecl):
            pass
        elif isinstance(stmt, Block):
            _classify_block(stmt, outer, inner, outer_locals, report)
        elif isinstance(stmt, Foreach):
            raise TransformError(
                "parallel loops may be nested at most two levels deep (§3.2)",
                stmt.span,
            )
        else:
            raise TransformError(
                f"{type(stmt).__name__} is not allowed inside a neighborhood loop",
                stmt.span,
            )


def _classify_write(
    stmt: Stmt,
    outer: Foreach,
    inner: Foreach,
    outer_locals: set[str],
    report: InnerLoopReport,
) -> None:
    assert isinstance(stmt, (Assign, ReduceAssign, DeferredAssign))
    access = lvalue_access(stmt.target)
    if access.kind in (AccessKind.PROP,):
        if access.var == inner.iterator:
            report.inner_prop_writes.append(access.member or "")
        elif access.var == outer.iterator:
            report.outer_prop_writes.append(access.member or "")
        else:
            report.random_writes.append(access.var)
    elif access.kind is AccessKind.EDGE_PROP:
        raise TransformError(
            "writing edge properties inside neighborhood loops is not supported",
            stmt.span,
        )
    else:  # scalar
        name = access.var
        if name in report.local_names:
            return
        if isinstance(stmt, Assign):
            raise TransformError(
                f"plain assignment to non-local scalar '{name}' inside a parallel "
                "loop is a race; use a reduction assignment",
                stmt.span,
            )
        if name in outer_locals:
            report.outer_scalar_writes.append(name)
        else:
            report.global_scalar_writes.append(name)


def loop_reads_iterator_prop(loop: Foreach, iterator: str) -> bool:
    """Whether any statement or filter of ``loop`` reads a property through
    ``iterator`` (used for message-payload necessity checks)."""
    reads = stmt_reads(loop)
    return any(
        a.kind in (AccessKind.PROP, AccessKind.METHOD) and a.var == iterator for a in reads
    )


def filter_mentions(filter_reads: list[Access], name: str) -> bool:
    return any(a.var == name for a in filter_reads)


def span_of(stmt: Stmt) -> Span:
    return stmt.span
