"""Read/write-set analysis over Green-Marl ASTs.

This is the dataflow machinery behind the paper's translation rules: deciding
which variables are *outer-loop scoped* (and hence become message payload),
which inner-loop statements *modify* outer-scoped state (and hence require the
Edge-Flipping / Dissection transformations), and which scalars are reduced
into global objects.

Accesses are name-based descriptors; the passes re-run the type checker after
each rewrite, so expression ``type`` annotations are always available (needed
to distinguish edge-property from node-property reads).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..lang.ast import (
    Assign,
    Bfs,
    Block,
    DeferredAssign,
    Expr,
    Foreach,
    Ident,
    If,
    MethodCall,
    PropAccess,
    ReduceAssign,
    ReduceExpr,
    Return,
    Stmt,
    VarDecl,
    While,
)


class AccessKind(enum.Enum):
    SCALAR = "scalar"        # bare identifier value (incl. node variables)
    PROP = "prop"            # var.prop, var of Node type
    EDGE_PROP = "edge_prop"  # var.prop, var of Edge type
    METHOD = "method"        # var.Method(), e.g. w.Degree()


@dataclass(frozen=True, slots=True)
class Access:
    kind: AccessKind
    var: str
    member: str | None = None

    def __str__(self) -> str:
        if self.kind is AccessKind.SCALAR:
            return self.var
        suffix = "()" if self.kind is AccessKind.METHOD else ""
        return f"{self.var}.{self.member}{suffix}"


def expr_reads(expr: Expr) -> list[Access]:
    """All value reads performed by ``expr``, in evaluation order."""
    out: list[Access] = []
    _expr_reads(expr, out)
    return out


def _expr_reads(expr: Expr, out: list[Access]) -> None:
    from ..lang.ast import Binary, Cast, Ternary, Unary  # local to avoid cycle noise

    if isinstance(expr, Ident):
        out.append(Access(AccessKind.SCALAR, expr.name))
    elif isinstance(expr, PropAccess):
        if isinstance(expr.target, Ident):
            target_type = expr.target.type
            if target_type is not None and target_type.is_edge():
                out.append(Access(AccessKind.EDGE_PROP, expr.target.name, expr.prop))
            else:
                out.append(Access(AccessKind.PROP, expr.target.name, expr.prop))
        else:
            _expr_reads(expr.target, out)
    elif isinstance(expr, MethodCall):
        if isinstance(expr.target, Ident):
            out.append(Access(AccessKind.METHOD, expr.target.name, expr.name))
        else:
            _expr_reads(expr.target, out)
        for arg in expr.args:
            _expr_reads(arg, out)
    elif isinstance(expr, Unary):
        _expr_reads(expr.operand, out)
    elif isinstance(expr, Binary):
        _expr_reads(expr.lhs, out)
        _expr_reads(expr.rhs, out)
    elif isinstance(expr, Ternary):
        _expr_reads(expr.cond, out)
        _expr_reads(expr.then, out)
        _expr_reads(expr.other, out)
    elif isinstance(expr, Cast):
        _expr_reads(expr.operand, out)
    elif isinstance(expr, ReduceExpr):
        _expr_reads(expr.source.driver, out)
        if expr.filter is not None:
            _expr_reads(expr.filter, out)
        if expr.body is not None:
            _expr_reads(expr.body, out)
    # literals: nothing


def lvalue_access(target: Expr) -> Access:
    """The access descriptor for an assignment target."""
    if isinstance(target, Ident):
        return Access(AccessKind.SCALAR, target.name)
    if isinstance(target, PropAccess) and isinstance(target.target, Ident):
        target_type = target.target.type
        if target_type is not None and target_type.is_edge():
            return Access(AccessKind.EDGE_PROP, target.target.name, target.prop)
        return Access(AccessKind.PROP, target.target.name, target.prop)
    raise ValueError(f"unsupported assignment target {type(target).__name__}")


def stmt_writes(stmt: Stmt, *, recursive: bool = True) -> list[Access]:
    """All writes performed by ``stmt`` (including nested statements when
    ``recursive``)."""
    out: list[Access] = []
    _stmt_writes(stmt, out, recursive)
    return out


def _stmt_writes(stmt: Stmt, out: list[Access], recursive: bool) -> None:
    if isinstance(stmt, VarDecl):
        if stmt.init is not None:
            for name in stmt.names:
                out.append(Access(AccessKind.SCALAR, name))
    elif isinstance(stmt, (Assign, ReduceAssign, DeferredAssign)):
        out.append(lvalue_access(stmt.target))
    elif recursive:
        if isinstance(stmt, Block):
            for s in stmt.stmts:
                _stmt_writes(s, out, recursive)
        elif isinstance(stmt, If):
            _stmt_writes(stmt.then, out, recursive)
            if stmt.other is not None:
                _stmt_writes(stmt.other, out, recursive)
        elif isinstance(stmt, (While, Foreach)):
            _stmt_writes(stmt.body, out, recursive)
        elif isinstance(stmt, Bfs):
            _stmt_writes(stmt.body, out, recursive)
            if stmt.reverse_body is not None:
                _stmt_writes(stmt.reverse_body, out, recursive)


def stmt_reads(stmt: Stmt, *, recursive: bool = True) -> list[Access]:
    """All value reads performed by ``stmt``.

    Reduce-assignments read their own target (read-modify-write); plain and
    deferred assignments do not.
    """
    out: list[Access] = []
    _stmt_reads(stmt, out, recursive)
    return out


def _stmt_reads(stmt: Stmt, out: list[Access], recursive: bool) -> None:
    if isinstance(stmt, VarDecl):
        if stmt.init is not None:
            _expr_reads(stmt.init, out)
    elif isinstance(stmt, Assign):
        _lvalue_target_reads(stmt.target, out)
        _expr_reads(stmt.expr, out)
    elif isinstance(stmt, ReduceAssign):
        out.append(lvalue_access(stmt.target))
        _lvalue_target_reads(stmt.target, out)
        _expr_reads(stmt.expr, out)
    elif isinstance(stmt, DeferredAssign):
        _lvalue_target_reads(stmt.target, out)
        _expr_reads(stmt.expr, out)
    elif isinstance(stmt, Return):
        if stmt.expr is not None:
            _expr_reads(stmt.expr, out)
    elif isinstance(stmt, If):
        _expr_reads(stmt.cond, out)
        if recursive:
            _stmt_reads(stmt.then, out, recursive)
            if stmt.other is not None:
                _stmt_reads(stmt.other, out, recursive)
    elif isinstance(stmt, While):
        _expr_reads(stmt.cond, out)
        if recursive:
            _stmt_reads(stmt.body, out, recursive)
    elif isinstance(stmt, Foreach):
        _expr_reads(stmt.source.driver, out)
        if stmt.filter is not None:
            _expr_reads(stmt.filter, out)
        if recursive:
            _stmt_reads(stmt.body, out, recursive)
    elif isinstance(stmt, Bfs):
        _expr_reads(stmt.source.driver, out)
        _expr_reads(stmt.root, out)
        for filt in (stmt.filter, stmt.reverse_filter):
            if filt is not None:
                _expr_reads(filt, out)
        if recursive:
            _stmt_reads(stmt.body, out, recursive)
            if stmt.reverse_body is not None:
                _stmt_reads(stmt.reverse_body, out, recursive)
    elif isinstance(stmt, Block):
        if recursive:
            for s in stmt.stmts:
                _stmt_reads(s, out, recursive)


def _lvalue_target_reads(target: Expr, out: list[Access]) -> None:
    """Writing ``v.prop`` reads the handle ``v`` (it determines the write's
    destination — crucial for random-write detection)."""
    if isinstance(target, PropAccess) and isinstance(target.target, Ident):
        out.append(Access(AccessKind.SCALAR, target.target.name))


def declared_names(block: Block) -> set[str]:
    """Names declared directly in ``block`` (descending through If arms but
    not into loop bodies, which open their own scopes)."""
    names: set[str] = set()
    _declared_names(block, names)
    return names


def _declared_names(block: Block, names: set[str]) -> None:
    for stmt in block.stmts:
        if isinstance(stmt, VarDecl):
            names.update(stmt.names)
        elif isinstance(stmt, If):
            _declared_names(stmt.then, names)
            if stmt.other is not None:
                _declared_names(stmt.other, names)
        elif isinstance(stmt, Block):
            _declared_names(stmt, names)
