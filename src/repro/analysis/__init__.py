"""Semantic analyses: access sets, loop classification, canonical check."""

from .canonical import Violation, check_canonical

__all__ = ["Violation", "check_canonical"]
