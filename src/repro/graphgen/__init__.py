"""Workload generators and the Table 1 graph registry."""

from .generators import (
    attach_standard_props,
    bipartite,
    skewed,
    twitter_like,
    uniform_random,
    web_like,
)
from .io import GraphFormatError, load_edge_list, save_edge_list
from .registry import TABLE1, GraphSpec, applicable_graphs, load_graph

__all__ = [
    "TABLE1",
    "GraphFormatError",
    "GraphSpec",
    "applicable_graphs",
    "attach_standard_props",
    "bipartite",
    "load_edge_list",
    "load_graph",
    "save_edge_list",
    "skewed",
    "twitter_like",
    "uniform_random",
    "web_like",
]
