"""Edge-list I/O: the interchange format for graphs and their properties.

Format (whitespace-separated, ``#`` comments):

    # nodes: N
    src dst [edge-prop values...]

Node properties are stored in sidecar files (``<base>.prop.<name>``), one
value per line in vertex order.
"""

from __future__ import annotations

from pathlib import Path

from ..pregel.graph import Graph


def save_edge_list(graph: Graph, path: str | Path, *, edge_props: list[str] | None = None) -> None:
    path = Path(path)
    names = edge_props if edge_props is not None else sorted(graph.edge_props)
    with path.open("w") as fh:
        fh.write(f"# nodes: {graph.num_nodes}\n")
        if names:
            fh.write(f"# edge-props: {' '.join(names)}\n")
        for v in graph.nodes():
            for pos in graph.out_edge_range(v):
                row = [str(v), str(graph.out_targets[pos])]
                row.extend(str(graph.edge_props[name][pos]) for name in names)
                fh.write(" ".join(row) + "\n")
    for name, values in graph.node_props.items():
        side = path.with_suffix(path.suffix + f".prop.{name}")
        with side.open("w") as fh:
            fh.writelines(f"{_fmt(v)}\n" for v in values)


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    return str(value)


def load_edge_list(path: str | Path) -> Graph:
    path = Path(path)
    num_nodes: int | None = None
    prop_names: list[str] = []
    edges: list[tuple[int, int]] = []
    prop_values: list[list[float]] = []
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.startswith("nodes:"):
                    num_nodes = int(body.split(":", 1)[1])
                elif body.startswith("edge-props:"):
                    prop_names = body.split(":", 1)[1].split()
                continue
            parts = line.split()
            src, dst = int(parts[0]), int(parts[1])
            edges.append((src, dst))
            prop_values.append([_parse(x) for x in parts[2:]])
    if num_nodes is None:
        num_nodes = 1 + max((max(s, d) for s, d in edges), default=-1)
    edge_props = {
        name: [row[i] for row in prop_values] for i, name in enumerate(prop_names)
    }
    graph = Graph.from_edges(num_nodes, edges, edge_props=edge_props or None)
    for side in path.parent.glob(path.name + ".prop.*"):
        name = side.name.rsplit(".prop.", 1)[1]
        values = [_parse(line.strip()) for line in side.read_text().splitlines() if line.strip()]
        graph.add_node_prop(name, values)
    return graph


def _parse(text: str):
    try:
        return int(text)
    except ValueError:
        return float(text)
