"""Edge-list I/O: the interchange format for graphs and their properties.

Format (whitespace-separated, ``#`` comments):

    # nodes: N
    src dst [edge-prop values...]

Node properties are stored in sidecar files (``<base>.prop.<name>``), one
value per line in vertex order.
"""

from __future__ import annotations

from pathlib import Path

from ..pregel.graph import Graph


class GraphFormatError(ValueError):
    """A graph file (or its property sidecar) is malformed.

    Always carries *where*: ``path`` and, when the defect is on a specific
    line, the 1-based ``lineno`` — so a bad byte in a million-edge file is a
    one-line diagnosis, not a bare ``ValueError`` from deep inside parsing.
    """

    def __init__(self, path: Path, message: str, lineno: int | None = None):
        self.path = Path(path)
        self.lineno = lineno
        where = f"{self.path}:{lineno}" if lineno is not None else str(self.path)
        super().__init__(f"{where}: {message}")


def save_edge_list(graph: Graph, path: str | Path, *, edge_props: list[str] | None = None) -> None:
    path = Path(path)
    names = edge_props if edge_props is not None else sorted(graph.edge_props)
    with path.open("w") as fh:
        fh.write(f"# nodes: {graph.num_nodes}\n")
        if names:
            fh.write(f"# edge-props: {' '.join(names)}\n")
        for v in graph.nodes():
            for pos in graph.out_edge_range(v):
                row = [str(v), str(graph.out_targets[pos])]
                row.extend(str(graph.edge_props[name][pos]) for name in names)
                fh.write(" ".join(row) + "\n")
    for name, values in graph.node_props.items():
        side = path.with_suffix(path.suffix + f".prop.{name}")
        with side.open("w") as fh:
            fh.writelines(f"{_fmt(v)}\n" for v in values)


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    return str(value)


def load_edge_list(path: str | Path) -> Graph:
    """Load an edge-list graph, raising :class:`GraphFormatError` (with the
    offending line number) on any malformed input: bad headers, non-integer
    or negative vertex ids, edges dangling past the declared node count,
    edge-property rows of the wrong width, and broken sidecar files."""
    path = Path(path)
    num_nodes: int | None = None
    prop_names: list[str] = []
    edges: list[tuple[int, int]] = []
    prop_values: list[list[float]] = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.startswith("nodes:"):
                    text = body.split(":", 1)[1].strip()
                    try:
                        num_nodes = int(text)
                    except ValueError:
                        raise GraphFormatError(
                            path, f"invalid node count '{text}' in header", lineno
                        ) from None
                    if num_nodes < 0:
                        raise GraphFormatError(
                            path, f"negative node count {num_nodes} in header", lineno
                        )
                elif body.startswith("edge-props:"):
                    prop_names = body.split(":", 1)[1].split()
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    path,
                    f"edge line needs 'src dst', got {len(parts)} token(s): '{line}'",
                    lineno,
                )
            try:
                src, dst = int(parts[0]), int(parts[1])
            except ValueError:
                raise GraphFormatError(
                    path, f"non-integer vertex id in edge '{parts[0]} {parts[1]}'", lineno
                ) from None
            if src < 0 or dst < 0:
                raise GraphFormatError(
                    path, f"negative vertex id in edge {src} -> {dst}", lineno
                )
            if num_nodes is not None and (src >= num_nodes or dst >= num_nodes):
                raise GraphFormatError(
                    path,
                    f"dangling edge {src} -> {dst}: header declares "
                    f"{num_nodes} nodes (valid ids 0..{num_nodes - 1})",
                    lineno,
                )
            if prop_names and len(parts) - 2 != len(prop_names):
                raise GraphFormatError(
                    path,
                    f"edge {src} -> {dst} carries {len(parts) - 2} property "
                    f"value(s) but the header declares {len(prop_names)} "
                    f"({' '.join(prop_names)})",
                    lineno,
                )
            edges.append((src, dst))
            try:
                prop_values.append([_parse(x) for x in parts[2:]])
            except ValueError:
                raise GraphFormatError(
                    path, f"non-numeric edge-property value on edge {src} -> {dst}", lineno
                ) from None
    if num_nodes is None:
        num_nodes = 1 + max((max(s, d) for s, d in edges), default=-1)
    edge_props = {
        name: [row[i] for row in prop_values] for i, name in enumerate(prop_names)
    }
    graph = Graph.from_edges(num_nodes, edges, edge_props=edge_props or None)
    for side in path.parent.glob(path.name + ".prop.*"):
        name = side.name.rsplit(".prop.", 1)[1]
        values = []
        for lineno, raw in enumerate(side.read_text().splitlines(), start=1):
            text = raw.strip()
            if not text:
                continue
            try:
                values.append(_parse(text))
            except ValueError:
                raise GraphFormatError(
                    side, f"non-numeric value '{text}' in node property '{name}'", lineno
                ) from None
        if len(values) != num_nodes:
            raise GraphFormatError(
                side,
                f"node property '{name}' has {len(values)} value(s) for a "
                f"{num_nodes}-node graph",
            )
        graph.add_node_prop(name, values)
    return graph


def _parse(text: str):
    try:
        return int(text)
    except ValueError:
        return float(text)
