"""Table 1 registry: the paper's three input graphs at configurable scale.

``load_graph(key, scale)`` returns a ready-to-use graph with the standard
algorithm properties attached (``age``, ``member``, ``len``, and ``is_left``
for the bipartite input).  ``scale=1.0`` is the laptop-default size; the
paper's originals are listed for reference in :data:`TABLE1`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..pregel.graph import Graph
from .generators import attach_standard_props, bipartite, twitter_like, web_like


@dataclass(frozen=True)
class GraphSpec:
    key: str
    description: str
    paper_nodes: str
    paper_edges: str
    build: Callable[[float, int], Graph]

    def load(self, scale: float = 1.0, seed: int = 1) -> Graph:
        graph = self.build(scale, seed)
        attach_standard_props(graph)
        return graph


def _build_twitter(scale: float, seed: int) -> Graph:
    n = max(100, int(4000 * scale))
    return twitter_like(n, avg_degree=12, seed=seed)


def _build_bipartite(scale: float, seed: int) -> Graph:
    half = max(50, int(2000 * scale))
    return bipartite(half, half, num_edges=half * 12, seed=seed)


def _build_web(scale: float, seed: int) -> Graph:
    n = max(100, int(4000 * scale))
    return web_like(n, avg_degree=12, seed=seed)


#: The paper's Table 1, with our scaled analogues as factories.
TABLE1: dict[str, GraphSpec] = {
    "twitter": GraphSpec(
        "twitter",
        "Twitter follower network (RMAT analogue: power-law degree skew)",
        "42M",
        "1.5B",
        _build_twitter,
    ),
    "bipartite": GraphSpec(
        "bipartite",
        "Synthetic uniform-random bipartite graph",
        "75M",
        "1.5B",
        _build_bipartite,
    ),
    "sk-2005": GraphSpec(
        "sk-2005",
        "Web graph of the .sk domain (copying-model analogue: locality + skew)",
        "51M",
        "1.9B",
        _build_web,
    ),
}


def load_graph(key: str, scale: float = 1.0, seed: int = 1) -> Graph:
    spec = TABLE1.get(key)
    if spec is None:
        raise KeyError(f"unknown graph '{key}' (have: {', '.join(TABLE1)})")
    return spec.load(scale, seed)


#: Which algorithms run on which Table 1 graphs (bipartite matching requires
#: the two-sided input; everything else runs everywhere).
def applicable_graphs(algorithm: str) -> list[str]:
    if algorithm == "bipartite_matching":
        return ["bipartite"]
    return list(TABLE1)
