"""Synthetic graph generators — scaled-down analogues of Table 1's inputs.

The paper evaluates on three billion-edge graphs we cannot host:

* **Twitter** (42M nodes / 1.5B edges) — a follower network with a heavily
  skewed in/out-degree distribution → :func:`twitter_like`, an RMAT
  (Kronecker) generator, the standard model for social-network skew;
* **Bipartite** (75M / 1.5B, uniform random) → :func:`bipartite`, uniform
  random left→right edges;
* **sk-2005** (51M / 1.9B) — a web crawl with strong locality and very dense
  host-local clusters → :func:`web_like`, a copying/preferential-attachment
  model producing locality and skew.

Shape — degree skew, bipartiteness, locality — is what drives Pregel
behaviour (frontier growth, message volume, load imbalance); absolute scale
only multiplies it.  Every generator takes ``num_nodes`` / ``avg_degree`` so
experiments can sweep scale.
"""

from __future__ import annotations

import random

from ..pregel.graph import Graph


def uniform_random(num_nodes: int, num_edges: int, *, seed: int = 1) -> Graph:
    """Uniform random directed multigraph-free edge set (Erdős–Rényi G(n, m))."""
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    while len(edges) < num_edges:
        a = rng.randrange(num_nodes)
        b = rng.randrange(num_nodes)
        if a != b:
            edges.add((a, b))
    return Graph.from_edges(num_nodes, sorted(edges))


def twitter_like(
    num_nodes: int,
    avg_degree: int = 16,
    *,
    seed: int = 1,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> Graph:
    """RMAT/Kronecker generator with the classic (a, b, c, d) = (.57, .19,
    .19, .05) parameters, yielding the power-law degree skew of follower
    networks."""
    rng = random.Random(seed)
    scale = max(1, (num_nodes - 1).bit_length())
    size = 1 << scale
    target_edges = num_nodes * avg_degree
    edges: set[tuple[int, int]] = set()
    attempts = 0
    max_attempts = target_edges * 20
    while len(edges) < target_edges and attempts < max_attempts:
        attempts += 1
        src = dst = 0
        for _ in range(scale):
            r = rng.random()
            src <<= 1
            dst <<= 1
            if r < a:
                pass
            elif r < a + b:
                dst |= 1
            elif r < a + b + c:
                src |= 1
            else:
                src |= 1
                dst |= 1
        src %= num_nodes
        dst %= num_nodes
        if src != dst:
            edges.add((src, dst))
    return Graph.from_edges(num_nodes, sorted(edges))


def web_like(num_nodes: int, avg_degree: int = 16, *, seed: int = 1, locality: float = 0.8) -> Graph:
    """Copying-model web graph: each new page links to recent (local) pages
    with probability ``locality``, otherwise copies a link target of one of
    its local predecessors — producing host-like locality plus a skewed
    in-degree tail, the structure of crawls like sk-2005."""
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    # Link targets seen so far; sampling from this list is preferential
    # attachment (popular pages accumulate in-links, as in real crawls).
    targets: list[int] = [0]
    window = max(4, num_nodes // 50)
    for v in range(1, num_nodes):
        out_deg = max(1, int(rng.expovariate(1.0 / avg_degree)))
        for _ in range(out_deg):
            if rng.random() < locality:
                t = rng.randrange(max(0, v - window), v)
            else:
                t = targets[rng.randrange(len(targets))]
            if t != v and (v, t) not in edges:
                edges.add((v, t))
                targets.append(t)
                # web graphs are locally reciprocal: site navigation links
                if rng.random() < 0.25 and (t, v) not in edges:
                    edges.add((t, v))
    return Graph.from_edges(num_nodes, sorted(edges))


def bipartite(
    num_left: int, num_right: int, num_edges: int, *, seed: int = 1
) -> Graph:
    """Uniform random bipartite graph; edges run left→right, with the
    ``is_left`` node property attached (as the paper's matching input)."""
    rng = random.Random(seed)
    total = num_left + num_right
    edges: set[tuple[int, int]] = set()
    max_possible = num_left * num_right
    target = min(num_edges, max_possible)
    while len(edges) < target:
        a = rng.randrange(num_left)
        b = num_left + rng.randrange(num_right)
        edges.add((a, b))
    graph = Graph.from_edges(total, sorted(edges))
    graph.add_node_prop("is_left", [v < num_left for v in range(total)])
    return graph


def skewed(
    num_nodes: int,
    avg_degree: int = 16,
    *,
    seed: int = 1,
    exponent: float = 2.1,
    hub_degree: int | None = None,
) -> Graph:
    """Power-law graph with a configurable maximum-degree hub — the
    memory-pressure adversary.

    Out-degrees are drawn from a discrete power law ``P(d) ∝ d^-exponent``
    (the 2–2.5 range measured on real social/web graphs); targets are chosen
    by preferential attachment, so in-degree skews too.  Vertex 0 is then
    forced up to ``hub_degree`` in-edges (default ``num_nodes - 1``: every
    other vertex points at it).  On a message-per-edge algorithm the hub's
    inbox alone is ``hub_degree`` messages — the single-vertex allocation
    that decides whether a memory budget is satisfiable, which makes this
    generator the worst case for spill-to-disk and superstep splitting.
    """
    if num_nodes < 2:
        raise ValueError("skewed graph needs at least 2 nodes")
    if hub_degree is None:
        hub_degree = num_nodes - 1
    if not 1 <= hub_degree <= num_nodes - 1:
        raise ValueError(
            f"hub_degree must be in [1, {num_nodes - 1}], got {hub_degree}"
        )
    if exponent <= 1.0:
        raise ValueError("exponent must be > 1")
    rng = random.Random(seed)
    # Discrete bounded power law via inverse-transform sampling on the
    # normalized tail weights (bounded so one draw cannot eat the edge
    # budget; the hub is added explicitly below).
    max_deg = max(2, min(num_nodes - 1, avg_degree * 8))
    weights = [d ** -exponent for d in range(1, max_deg + 1)]
    total_w = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total_w
        cumulative.append(acc)
    # Scale draws so the expected degree matches avg_degree.
    mean_draw = sum((d + 1) * w for d, w in enumerate(weights)) / total_w
    boost = max(1.0, avg_degree / mean_draw)
    edges: set[tuple[int, int]] = set()
    targets: list[int] = [0]  # preferential-attachment pool
    for v in range(num_nodes):
        r = rng.random()
        deg = max_deg
        for d, edge_cum in enumerate(cumulative):
            if r <= edge_cum:
                deg = d + 1
                break
        deg = max(1, int(deg * boost))
        for _ in range(deg):
            if targets and rng.random() < 0.5:
                t = targets[rng.randrange(len(targets))]
            else:
                t = rng.randrange(num_nodes)
            if t != v and (v, t) not in edges:
                edges.add((v, t))
                targets.append(t)
    # Force the hub: the first hub_degree non-hub vertices all point at 0.
    hub_sources = [v for v in range(1, num_nodes)][:hub_degree]
    for v in hub_sources:
        edges.add((v, 0))
    return Graph.from_edges(num_nodes, sorted(edges))


def attach_standard_props(graph: Graph, *, seed: int = 2) -> Graph:
    """Attach the node/edge properties the six algorithms consume: ``age``
    (for AvgTeen), ``member`` (for conductance), and the ``len`` edge weight
    (for SSSP)."""
    rng = random.Random(seed)
    n = graph.num_nodes
    graph.add_node_prop("age", [rng.randrange(8, 70) for _ in range(n)])
    graph.add_node_prop("member", [int(rng.random() < 0.3) for _ in range(n)])
    graph.add_edge_prop_csr("len", [rng.randrange(1, 16) for _ in range(graph.num_edges)])
    return graph
