"""Observability benchmarks — traced run artifacts plus the overhead budgets.

Three jobs, all wired into CI:

* ``test_traced_pagerank_report`` runs one fully-traced PageRank workload
  (compiler passes + per-superstep records), writes the Chrome trace-event
  JSON and raw JSONL under ``benchmarks/reports/`` as build artifacts, and
  validates the exported files parse.
* ``test_disabled_tracer_overhead`` is the ISSUE's <5% budget: a *disabled*
  tracer (the ``NullTracer`` default) must not slow down the Figure 6
  PageRank run.  The untraced and null-traced code paths are identical —
  the engine installs metering wrappers only for a recording tracer — so
  this is a noise-bounded smoke, measured best-of-N interleaved.
* ``test_disabled_metrics_overhead`` is the same <5% contract for the
  metrics registry (``NullRegistry`` vs no registry), and emits
  ``BENCH_obs_overhead.json`` so the overhead trajectory is machine-readable.
"""

from __future__ import annotations

import json

from repro.bench import metrics_overhead, run_record, traced_run, tracer_overhead, write_bench
from repro.obs import deterministic_jsonl, timeline_report, to_jsonl, write_chrome_trace

from conftest import emit_report


def test_traced_pagerank_report(benchmark, scale, report_dir):
    benchmark.pedantic(lambda: _traced_pagerank_report(scale, report_dir), rounds=1, iterations=1)


def _traced_pagerank_report(scale, report_dir):
    run, tracer = traced_run("pagerank", "twitter", scale)
    assert run.metrics.supersteps > 0
    assert tracer.events, "a traced run must record events"

    chrome_path = report_dir / "trace_pagerank.json"
    write_chrome_trace(tracer.events, chrome_path)
    doc = json.loads(chrome_path.read_text())
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]

    jsonl_path = report_dir / "trace_pagerank.jsonl"
    jsonl_path.write_text(to_jsonl(tracer.events))
    lines = jsonl_path.read_text().splitlines()
    assert len(lines) == len(tracer.events)
    for line in lines:
        json.loads(line)
    # the deterministic projection is non-empty too (it's what parity tests diff)
    assert deterministic_jsonl(tracer.events).strip()

    names = {e.name for e in tracer.events}
    assert {"run.begin", "superstep", "run.end", "compile.pass", "compile.rules"} <= names

    emit_report(
        report_dir,
        "trace_pagerank_timeline",
        "Traced PageRank (twitter) — superstep timeline\n"
        + timeline_report(tracer.events)
        + f"\n\nartifacts: {chrome_path.name} (Chrome/Perfetto), {jsonl_path.name} (JSONL)",
    )


def test_disabled_tracer_overhead(benchmark, scale, report_dir):
    benchmark.pedantic(
        lambda: _disabled_tracer_overhead(scale, report_dir), rounds=1, iterations=1
    )


def _disabled_tracer_overhead(scale, report_dir):
    stats = tracer_overhead("pagerank", "twitter", scale, repeats=7)
    emit_report(
        report_dir,
        "tracer_overhead",
        "Disabled-tracer overhead on Figure 6 PageRank (best of 7, interleaved)\n"
        f"  tracer=None        : {stats['best_plain_seconds'] * 1e3:8.2f} ms\n"
        f"  tracer=NullTracer  : {stats['best_null_tracer_seconds'] * 1e3:8.2f} ms\n"
        f"  ratio              : {stats['overhead_ratio']:.4f}  (budget < 1.05)",
    )
    assert stats["overhead_ratio"] < 1.05, stats


def test_disabled_metrics_overhead(benchmark, scale, report_dir):
    benchmark.pedantic(
        lambda: _disabled_metrics_overhead(scale, report_dir), rounds=1, iterations=1
    )


def _disabled_metrics_overhead(scale, report_dir):
    stats = metrics_overhead("pagerank", "twitter", scale, repeats=7)
    emit_report(
        report_dir,
        "metrics_overhead",
        "Disabled-registry overhead on Figure 6 PageRank (best of 7, interleaved)\n"
        f"  registry=None         : {stats['best_plain_seconds'] * 1e3:8.2f} ms\n"
        f"  registry=NullRegistry : {stats['best_null_registry_seconds'] * 1e3:8.2f} ms\n"
        f"  ratio                 : {stats['overhead_ratio']:.4f}  (budget < 1.05)",
    )
    write_bench(
        "obs_overhead",
        [
            run_record(
                "pagerank_plain@sim",
                backend="sim",
                workers=4,
                wall_seconds=[stats["best_plain_seconds"]],
                counts={},
                extra={
                    "null_registry_seconds": stats["best_null_registry_seconds"],
                    "overhead_ratio": stats["overhead_ratio"],
                },
            )
        ],
        out_dir=report_dir,
    )
    assert stats["overhead_ratio"] < 1.05, stats
