"""Table 2 — lines of code: Green-Marl vs (generated) GPS Java.

The paper's point: the DSL programs are 5-10x shorter than their Pregel
implementations, and the compiler bridges the gap automatically.  We print
our counts next to the paper's and benchmark full compilation (parse →
canonical → translate → optimize → codegen) per algorithm.
"""

from __future__ import annotations

import pytest

from repro.algorithms.sources import ALGORITHMS, load_procedure
from repro.bench import render_table, table2_rows
from repro.compiler import compile_algorithm, compile_procedure

from conftest import emit_report


def test_table2_report(benchmark, report_dir):
    benchmark.pedantic(lambda: _table2_report(report_dir), rounds=1, iterations=1)


def _table2_report(report_dir):
    rows = table2_rows()
    table = render_table(
        ["Algorithm", "Green-Marl", "GM (paper)", "Generated Java", "Native GPS (paper)"],
        [
            [r.display, r.green_marl, r.paper_green_marl, r.generated_java, r.paper_gps]
            for r in rows
        ],
    )
    emit_report(report_dir, "table2_loc", "Table 2 (lines of code)\n" + table)
    for row in rows:
        # the headline shape: an order-of-magnitude difference per algorithm
        assert row.generated_java / row.green_marl >= 5, row.algorithm
        if row.paper_gps is not None:
            paper_ratio = row.paper_gps / row.paper_green_marl
            our_ratio = row.generated_java / row.green_marl
            # same ballpark as the paper's manual-code ratio
            assert 0.3 * paper_ratio <= our_ratio <= 4 * paper_ratio, row.algorithm


@pytest.mark.parametrize("name", ALGORITHMS)
def test_compile_time(benchmark, name):
    def compile_once():
        return compile_procedure(load_procedure(name))

    result = benchmark.pedantic(compile_once, rounds=3, iterations=1)
    assert result.java_source
