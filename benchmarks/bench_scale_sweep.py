"""Scale sweep — how the generated/manual comparison behaves as the workload
grows (the paper's billion-edge sizes are out of reach; this shows the ratio
is size-stable, which is what justifies the scaled reproduction).

For PageRank on the twitter analogue at increasing scales: messages grow
linearly in edges, supersteps stay constant, and the generated/manual
run-time ratio stays flat — so Figure 6's conclusions transfer across
scale."""

from __future__ import annotations

import pytest

from repro.bench import default_args, render_table, run_pair
from repro.graphgen import load_graph

from conftest import emit_report

SCALES = (0.125, 0.25, 0.5, 1.0)


def test_scale_sweep_report(benchmark, report_dir):
    benchmark.pedantic(lambda: _scale_sweep_report(report_dir), rounds=1, iterations=1)


def _scale_sweep_report(report_dir):
    rows = []
    ratios = []
    messages = []
    edges = []
    for scale in SCALES:
        graph = load_graph("twitter", scale)
        pair = run_pair("pagerank", graph, f"twitter@{scale}", repeats=3)
        rows.append(
            [
                scale,
                graph.num_nodes,
                graph.num_edges,
                pair.generated.supersteps,
                pair.generated.messages,
                pair.normalized_runtime,
            ]
        )
        ratios.append(pair.normalized_runtime)
        messages.append(pair.generated.messages)
        edges.append(graph.num_edges)
    table = render_table(
        ["Scale", "Nodes", "Edges", "Supersteps", "Messages", "gen/man runtime"],
        rows,
    )
    emit_report(report_dir, "scale_sweep", "PageRank scale sweep (twitter analogue)\n" + table)

    # messages scale linearly with edges (iterations are fixed)
    per_edge = [m / e for m, e in zip(messages, edges)]
    assert max(per_edge) - min(per_edge) < 0.01 * max(per_edge)
    # the normalized runtime is size-stable (no trend beyond noise)
    assert max(ratios) / min(ratios) < 2.0


@pytest.mark.parametrize("scale", SCALES)
def test_pagerank_at_scale(benchmark, scale):
    graph = load_graph("twitter", scale)
    from repro.compiler import compile_algorithm

    compiled = compile_algorithm("pagerank", emit_java=False)
    args = default_args("pagerank", graph)
    benchmark.pedantic(lambda: compiled.program.run(graph, args), rounds=2, iterations=1)
