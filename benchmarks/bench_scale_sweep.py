"""Scale sweep — how the generated/manual comparison behaves as the workload
grows (the paper's billion-edge sizes are out of reach; this shows the ratio
is size-stable, which is what justifies the scaled reproduction).

For PageRank on the twitter analogue at increasing scales: messages grow
linearly in edges, supersteps stay constant, and the generated/manual
run-time ratio stays flat — so Figure 6's conclusions transfer across
scale."""

from __future__ import annotations

import pytest

from repro.bench import default_args, render_table, run_pair
from repro.graphgen import load_graph

from conftest import bench_scale, emit_report

SCALES = (0.125, 0.25, 0.5, 1.0)


def test_scale_sweep_report(benchmark, report_dir):
    benchmark.pedantic(lambda: _scale_sweep_report(report_dir), rounds=1, iterations=1)


def _scale_sweep_report(report_dir):
    rows = []
    ratios = []
    messages = []
    edges = []
    for scale in SCALES:
        graph = load_graph("twitter", scale)
        pair = run_pair("pagerank", graph, f"twitter@{scale}", repeats=3)
        rows.append(
            [
                scale,
                graph.num_nodes,
                graph.num_edges,
                pair.generated.supersteps,
                pair.generated.messages,
                pair.normalized_runtime,
            ]
        )
        ratios.append(pair.normalized_runtime)
        messages.append(pair.generated.messages)
        edges.append(graph.num_edges)
    table = render_table(
        ["Scale", "Nodes", "Edges", "Supersteps", "Messages", "gen/man runtime"],
        rows,
    )
    emit_report(report_dir, "scale_sweep", "PageRank scale sweep (twitter analogue)\n" + table)

    # messages scale linearly with edges (iterations are fixed)
    per_edge = [m / e for m, e in zip(messages, edges)]
    assert max(per_edge) - min(per_edge) < 0.01 * max(per_edge)
    # the normalized runtime is size-stable (no trend beyond noise)
    assert max(ratios) / min(ratios) < 2.0


@pytest.mark.parametrize("scale", SCALES)
def test_pagerank_at_scale(benchmark, scale):
    graph = load_graph("twitter", scale)
    from repro.compiler import compile_algorithm

    compiled = compile_algorithm("pagerank", emit_java=False)
    args = default_args("pagerank", graph)
    benchmark.pedantic(lambda: compiled.program.run(graph, args), rounds=2, iterations=1)


# ---------------------------------------------------------------------------
# Backend sweep: execution backends x worker counts
# ---------------------------------------------------------------------------

REPEATS = 3


def test_backend_sweep_report(benchmark, report_dir):
    benchmark.pedantic(lambda: _backend_sweep_report(report_dir), rounds=1, iterations=1)


def _backend_sweep_report(report_dir):
    """PageRank on the largest stock graph (sk-2005 analogue) across
    execution backends and worker counts: same metered quantities
    everywhere (the parity contract), differing only in throughput.

    Interpreting the numbers: ``columnar`` must beat ``sim`` on
    messages/sec (typed slab staging vs per-message dict staging) on any
    machine.  ``mp`` runs real worker processes, so its wall-clock only
    beats the in-process backends when the machine has cores to run them
    on — on a single-core host the IPC machinery is pure overhead and the
    sweep reports that honestly rather than asserting a speedup the
    hardware cannot produce."""
    import os

    from repro.bench import graph_signature, run_record, write_bench
    from repro.compiler import compile_algorithm
    from repro.obs import MetricsRegistry
    from repro.pregel.backend.mp import mp_available

    scale = bench_scale()
    graph = load_graph("sk-2005", scale)
    compiled = compile_algorithm("pagerank", emit_java=False)
    args = default_args("pagerank", graph)

    configs = [("sim", 4), ("columnar", 4)]
    if mp_available():
        configs += [("mp", 1), ("mp", 2), ("mp", 4)]

    rows = []
    walls = {}
    rates = {}
    parity = {}
    records = []
    sig = graph_signature(graph, "sk-2005", scale)
    for backend, workers in configs:
        best = None
        metrics = None
        snapshot = None
        samples = []
        for _ in range(REPEATS):
            # A fresh registry per repeat: the best run's snapshot carries
            # the per-superstep wall-time histogram into the artifact.
            registry = MetricsRegistry()
            run = compiled.program.run(
                graph,
                dict(args),
                backend=backend,
                num_workers=workers,
                metrics_registry=registry,
            )
            samples.append(run.metrics.wall_seconds)
            if best is None or run.metrics.wall_seconds < best:
                best = run.metrics.wall_seconds
                metrics = run.metrics
                snapshot = registry.snapshot()
        vertices = graph.num_nodes * metrics.supersteps
        walls[(backend, workers)] = best
        rates[(backend, workers)] = metrics.messages / best
        key = metrics.parity_key()
        key.pop("worker_sent")
        key.pop("net_messages")
        key.pop("net_bytes")
        parity[(backend, workers)] = key
        records.append(
            run_record(
                f"pagerank@{backend}x{workers}",
                backend=backend,
                workers=workers,
                wall_seconds=samples,
                metrics=metrics,
                snapshot=snapshot,
                graph=sig,
            )
        )
        rows.append(
            [
                backend,
                workers,
                metrics.supersteps,
                metrics.messages,
                f"{best:.3f}",
                f"{vertices / best:,.0f}",
                f"{metrics.messages / best:,.0f}",
            ]
        )
    bench_path = write_bench("backend_sweep", records, out_dir=report_dir)
    # Schema-valid by construction (write_bench validates); also insist the
    # per-superstep wall-time distribution made it into every run record.
    for record in records:
        assert "pregel.superstep_seconds" in record["histograms"], record["name"]
        assert record["histograms"]["pregel.superstep_seconds"]["count"] > 0

    table = render_table(
        ["Backend", "Workers", "Supersteps", "Messages", "Wall s",
         "Vertices/s", "Messages/s"],
        rows,
    )
    cores = os.cpu_count() or 1
    note = (
        f"\nPageRank, sk-2005 analogue @ scale {scale} "
        f"({graph.num_nodes} nodes / {graph.num_edges} edges), "
        f"best of {REPEATS}, host cores: {cores}.\n"
        "All rows are parity-identical (same supersteps, messages, bytes,\n"
        "broadcasts, results); only throughput may differ.  The mp rows\n"
        "only beat the in-process backends when cores >= workers.\n"
        f"telemetry: {bench_path.name} (per-superstep wall-time histograms,\n"
        "wall samples, deterministic counts; feed two to `gm-pregel compare`)"
    )
    emit_report(report_dir, "backend_sweep", "Execution-backend sweep\n" + table + note)

    # The parity contract: identical partition-independent metered
    # quantities across every backend and worker count.
    keys = list(parity.values())
    assert all(k == keys[0] for k in keys[1:])
    # Columnar's typed staging must raise message throughput over the
    # dict simulator on any hardware.
    assert rates[("columnar", 4)] > rates[("sim", 4)]
    # Real parallel speedup needs real cores; assert only where the
    # hardware can deliver it.
    if mp_available() and cores >= 4:
        assert walls[("sim", 4)] / walls[("mp", 4)] > 1.5
