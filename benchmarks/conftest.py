"""Shared benchmark configuration.

``REPRO_BENCH_SCALE`` (default 0.5) scales every workload; the paper's graphs
are billion-edge, ours default to tens of thousands of edges — Figure 6's
claim is about *ratios*, which scale preserves.  Reports are also written to
``benchmarks/reports/`` so the regenerated tables survive output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

REPORT_DIR = Path(__file__).parent / "reports"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


def emit_report(report_dir: Path, name: str, text: str) -> None:
    (report_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
