"""Real-process and real-network chaos on the mp backend.

One job, wired into the CI ``chaos`` job, in three slices:

* **shm faults** — SIGKILL and hang real worker processes mid-run and
  measure what recovery actually costs in wall time.  Unlike
  ``bench_net.py``'s simulated sweep (where detection latency is a
  *simulated-clock* quantity), here the parent's deadline-based exchange
  barrier does the detecting against live OS processes, so the overhead
  column is real seconds: pipe-EOF detection is near-instant for
  ``kill``, while ``hang`` pays the exchange deadline before escalating.
* **tcp faults** — the same sweep over the real loopback-socket
  transport, extended with the network kinds: ``netsplit`` (the victim's
  listening socket closes mid-exchange, peers see a real ECONNREFUSED)
  and ``slowlink`` (the victim stalls past its peers' deadline).
* **transport throughput** — shm vs tcp on the same workloads, pricing
  what real kernel socket buffers cost over shared-memory segments.

Every faulted row must finish bit-identical to the failure-free baseline
on its own transport; every tcp throughput row must be bit-identical to
its shm twin.  The table lands in ``benchmarks/reports/mp_chaos.txt``
(quoted by EXPERIMENTS.md) and its machine-readable twin in
``BENCH_mp_chaos.json`` so ``gm-pregel compare --counts-only`` can gate
recovery behaviour (restart counts, parity flags, message counts)
against the committed baseline.

Skipped wholesale where the mp backend is unavailable (no fork
start-method or no ``multiprocessing.shared_memory``).
"""

from __future__ import annotations

import pytest

from repro.bench import mp_kill_sweep, mp_transport_sweep
from repro.bench.telemetry import run_record, write_bench
from repro.pregel.backend.mp import mp_available

from conftest import emit_report

pytestmark = pytest.mark.skipif(
    not mp_available(), reason="mp backend unavailable on this platform"
)

_DEADLINE_S = 1.5


def test_mp_chaos_report(benchmark, report_dir, scale):
    benchmark.pedantic(
        lambda: _mp_chaos_report(report_dir, scale), rounds=1, iterations=1
    )


def _fault_lines(rows, title):
    lines = [
        title,
        f"{'fault':>9} {'recovery':>9} {'deadline(s)':>11} "
        f"{'restarts':>8} {'wall(ms)':>9} {'overhead(ms)':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row.kind:>9} {row.recovery:>9} {row.deadline_s:>11.1f} "
            f"{row.restarts:>8} {row.wall_seconds * 1e3:>9.1f} "
            f"{row.overhead_s * 1e3:>12.1f}"
        )
    return lines


def _mp_chaos_report(report_dir, scale):
    kill_scale = min(scale, 0.12)
    shm_rows = mp_kill_sweep(deadline_s=_DEADLINE_S, scale=kill_scale)
    assert shm_rows, "mp_available() passed but the sweep returned no rows"
    tcp_rows = mp_kill_sweep(
        ("kill", "netsplit", "slowlink"),
        deadline_s=_DEADLINE_S,
        scale=kill_scale,
        transport="tcp",
    )
    transport_rows = mp_transport_sweep(scale=kill_scale)
    for rows in (shm_rows, tcp_rows, transport_rows):
        bad = [r for r in rows if not r.identical]
        assert not bad, bad

    lines = [
        "Real faults on the mp backend: detection + re-fork recovery",
        f"(PageRank/twitter scale={kill_scale}, 2 workers, checkpoint_every=2,",
        f" exchange deadline {_DEADLINE_S} s; every row bit-identical to the",
        " failure-free baseline on its own transport;",
        " overhead = faulted wall - baseline wall)",
        "",
    ]
    lines += _fault_lines(shm_rows, "shm transport (pipes + shared memory):")
    lines.append("")
    lines += _fault_lines(
        tcp_rows,
        "tcp transport (real loopback sockets; netsplit = listener closed"
        " mid-exchange, slowlink = stalled past the peers' deadline):",
    )
    lines += [
        "",
        "Transport throughput, shm vs tcp (same workload, bit-identical):",
        f"{'algorithm':>10} {'transport':>9} {'wall(ms)':>9} "
        f"{'net MB/s':>9} {'net_bytes':>10}",
    ]
    for row in transport_rows:
        lines.append(
            f"{row.algorithm:>10} {row.transport:>9} "
            f"{row.best_wall * 1e3:>9.1f} {row.throughput_mbs:>9.1f} "
            f"{row.net_bytes:>10}"
        )
    emit_report(report_dir, "mp_chaos", "\n".join(lines))

    # Machine-readable twin.  Counts are seed-stable, so the CI
    # counts-only gate pins recovery behaviour: restart counts, the
    # bit-identical flag of every faulted/tcp run, and the message
    # counts that must not drift between transports.
    records = []
    for row in shm_rows + tcp_rows:
        records.append(
            run_record(
                f"{row.transport}:{row.kind}:{row.recovery}",
                backend="mp",
                workers=2,
                wall_seconds=[row.wall_seconds],
                counts={
                    "restarts": row.restarts,
                    "identical": int(row.identical),
                },
            )
        )
    for row in transport_rows:
        records.append(
            run_record(
                f"{row.transport}:{row.algorithm}",
                backend="mp",
                workers=2,
                wall_seconds=row.wall_seconds,
                counts={
                    "supersteps": row.supersteps,
                    "messages": row.messages,
                    "message_bytes": row.message_bytes,
                    "net_messages": row.net_messages,
                    "net_bytes": row.net_bytes,
                    "identical": int(row.identical),
                },
            )
        )
    write_bench(
        "mp_chaos", records, out_dir=report_dir,
        meta={"scale": kill_scale, "deadline_s": _DEADLINE_S},
    )
