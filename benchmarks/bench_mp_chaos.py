"""Real-process chaos on the mp backend — kill/hang recovery latency.

One job, wired into the CI ``chaos`` job: SIGKILL and hang real worker
processes mid-run and measure what recovery actually costs in wall time.
Unlike ``bench_net.py``'s simulated sweep (where detection latency is a
*simulated-clock* quantity), here the parent's deadline-based exchange
barrier does the detecting against live OS processes, so the overhead
column is real seconds: pipe-EOF detection is near-instant for ``kill``,
while ``hang`` pays the exchange deadline before escalating.  Every row
must finish bit-identical to the failure-free mp baseline.  The table
lands in ``benchmarks/reports/mp_chaos.txt`` (quoted by EXPERIMENTS.md).

Skipped wholesale where the mp backend is unavailable (no fork
start-method or no ``multiprocessing.shared_memory``).
"""

from __future__ import annotations

import pytest

from repro.bench import mp_kill_sweep
from repro.pregel.backend.mp import mp_available

from conftest import emit_report

pytestmark = pytest.mark.skipif(
    not mp_available(), reason="mp backend unavailable on this platform"
)


def test_mp_kill_recovery(benchmark, report_dir):
    benchmark.pedantic(lambda: _mp_kill_recovery(report_dir), rounds=1, iterations=1)


def _mp_kill_recovery(report_dir):
    rows = mp_kill_sweep(deadline_s=1.5)
    assert rows, "mp_available() passed but the sweep returned no rows"
    assert all(row.identical for row in rows), [
        (row.kind, row.recovery) for row in rows if not row.identical
    ]
    lines = [
        "Real process faults on the mp backend: detection + re-fork recovery",
        "(PageRank/twitter scale=0.12, 2 workers, checkpoint_every=2,",
        " exchange deadline 1.5 s; every row bit-identical to the",
        " failure-free mp baseline; overhead = faulted wall - baseline wall)",
        "",
        f"{'fault':>5} {'recovery':>9} {'deadline(s)':>11} "
        f"{'restarts':>8} {'wall(ms)':>9} {'overhead(ms)':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row.kind:>5} {row.recovery:>9} {row.deadline_s:>11.1f} "
            f"{row.restarts:>8} {row.wall_seconds * 1e3:>9.1f} "
            f"{row.overhead_s * 1e3:>12.1f}"
        )
    emit_report(report_dir, "mp_chaos", "\n".join(lines))
