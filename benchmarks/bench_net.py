"""Transport and supervision benchmarks — overhead ceiling + recovery latency.

Three jobs, wired into the CI ``chaos`` job:

* ``test_reliable_transport_overhead`` is the ISSUE's ≤5% ceiling: routing
  every barrier through the reliable transport's *fast path* (an all-zero
  fault plan — sequence accounting only, no channel simulation) must stay
  within 5% of direct in-memory routing, measured best-of-N interleaved.
* ``test_recovery_latency_sweep`` measures the supervision cycle as the
  channel degrades: detection silence (simulated units until the
  phi/deadline detector declares the silently-crashed worker dead),
  retransmission cost, and wall time, per drop rate and recovery strategy —
  every point bit-identical to the failure-free baseline.  The table lands
  in ``benchmarks/reports/net_recovery.txt`` (quoted by EXPERIMENTS.md).
* ``test_chaos_matrix_smoke`` runs a reduced seeded-fuzz matrix (the full
  sweep lives in ``tests/test_chaos_fuzz.py`` behind ``@pytest.mark.slow``)
  and writes its report artifact.
"""

from __future__ import annotations

from repro.bench import (
    chaos_matrix,
    chaos_report,
    recovery_latency_sweep,
    transport_overhead,
)

from conftest import emit_report

CHAOS_SMOKE_SEEDS = range(12)


def test_reliable_transport_overhead(benchmark, scale, report_dir):
    benchmark.pedantic(
        lambda: _transport_overhead(scale, report_dir), rounds=1, iterations=1
    )


def _transport_overhead(scale, report_dir):
    stats = transport_overhead(scale, repeats=7)
    emit_report(
        report_dir,
        "net_overhead",
        "Reliable-transport fast path vs direct routing "
        "(PageRank/twitter, best of 7, interleaved)\n"
        f"  direct routing     : {stats['direct_s'] * 1e3:8.2f} ms\n"
        f"  reliable transport : {stats['transport_s'] * 1e3:8.2f} ms\n"
        f"  ratio              : {stats['overhead_ratio']:.4f}  (budget < 1.05)",
    )
    assert stats["overhead_ratio"] < 1.05, stats


def test_recovery_latency_sweep(benchmark, scale, report_dir):
    benchmark.pedantic(
        lambda: _recovery_latency(scale, report_dir), rounds=1, iterations=1
    )


def _recovery_latency(scale, report_dir):
    rows = recovery_latency_sweep(scale=scale, repeats=3)
    assert all(row.identical for row in rows), [
        (row.recovery, row.drop_rate) for row in rows if not row.identical
    ]
    lines = [
        "Heartbeat-detected crash: recovery latency vs channel drop rate",
        "(PageRank/twitter, silent crash of worker 1, checkpoint_every=2;",
        " every row bit-identical to the failure-free run)",
        "",
        f"{'recovery':>9} {'drop':>5} {'detect(units)':>13} "
        f"{'clock(units)':>12} {'wall(ms)':>9} {'retrans':>8} {'backoff':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.recovery:>9} {row.drop_rate:>5.2f} "
            f"{row.detection_silence_units:>13.2f} "
            f"{row.recovery_clock_units:>12.1f} "
            f"{row.wall_seconds * 1e3:>9.2f} "
            f"{row.retransmitted:>8} {row.backoff_units:>8}"
        )
    emit_report(report_dir, "net_recovery", "\n".join(lines))


def test_chaos_matrix_smoke(benchmark, scale, report_dir):
    benchmark.pedantic(
        lambda: _chaos_smoke(scale, report_dir), rounds=1, iterations=1
    )


def _chaos_smoke(scale, report_dir):
    results = chaos_matrix(CHAOS_SMOKE_SEEDS, scale=min(scale, 0.25))
    emit_report(report_dir, "chaos_matrix", chaos_report(results))
    assert all(r.ok for r in results), [
        (r.case.describe(), r.violations) for r in results if not r.ok
    ]
