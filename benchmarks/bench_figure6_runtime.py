"""Figure 6 — run time of compiler-generated Pregel programs normalized to
the manual implementations, plus the §5.2 parity table (timesteps, messages,
network I/O).

The paper's result: normalized run times between 0.92x and 1.35x, with the
generated programs taking the *same* timesteps and network I/O as the manual
ones.  We reproduce the same comparison on the simulator; the recorded
deviations (a one-superstep initialization phase; the incoming-neighbors
prologue for conductance) are explained in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    bc_experiments,
    default_args,
    figure6_experiments,
    render_table,
    run_pair,
    run_record,
    write_bench,
)
from repro.compiler import compile_algorithm
from repro.algorithms.manual import MANUAL_PROGRAMS
from repro.graphgen import applicable_graphs, load_graph

from conftest import bench_scale, emit_report

_GRAPHS: dict[str, object] = {}


def _graph(key: str, scale: float):
    if key not in _GRAPHS:
        _GRAPHS[key] = load_graph(key, scale)
    return _GRAPHS[key]


def test_figure6_report(benchmark, scale, report_dir):
    benchmark.pedantic(lambda: _figure6_report(scale, report_dir), rounds=1, iterations=1)


def _figure6_report(scale, report_dir):
    results = figure6_experiments(scale, repeats=3)
    rows = []
    for r in results:
        rows.append(
            [
                r.algorithm,
                r.graph,
                r.normalized_runtime,
                f"{r.generated.supersteps}/{r.manual.supersteps}",
                f"{r.generated.messages}/{r.manual.messages}",
                f"{r.generated.net_bytes}/{r.manual.net_bytes}",
                r.message_parity,
            ]
        )
    table = render_table(
        [
            "Algorithm",
            "Graph",
            "Runtime (gen/man)",
            "Timesteps g/m",
            "Messages g/m",
            "Net bytes g/m",
            "Msg parity",
        ],
        rows,
    )
    emit_report(report_dir, "figure6_runtime", "Figure 6 (normalized run time) + §5.2 parity\n" + table)

    # Machine-readable twin of the table: one record per (variant,
    # algorithm, graph); wall times are already best-of-3 (min-of-1 at
    # compare time is the same statistic), counts are seed-stable.
    records = []
    for r in results:
        for variant, m in (("gen", r.generated), ("man", r.manual)):
            if m is None:
                continue
            records.append(
                run_record(
                    f"{variant}:{r.algorithm}@{r.graph}",
                    backend="sim",
                    workers=4,
                    wall_seconds=[m.wall_seconds],
                    counts={
                        "supersteps": m.supersteps,
                        "messages": m.messages,
                        "message_bytes": m.message_bytes,
                        "net_bytes": m.net_bytes,
                    },
                )
            )
    write_bench("figure6", records, out_dir=report_dir, meta={"scale": scale})

    # The paper's envelope was [0.92, 1.35]; allow a wider band for the
    # simulator but insist on the same performance class.  Pairs whose manual
    # run is in the sub-millisecond range are excluded from the band: there
    # the ratio measures fixed per-superstep overhead, not the algorithm
    # (e.g. SSSP on the bipartite graph finishes in one hop).
    for r in results:
        assert r.normalized_runtime is not None
        if r.manual.wall_seconds > 0.005:
            assert 0.4 <= r.normalized_runtime <= 3.0, (
                r.algorithm,
                r.graph,
                r.normalized_runtime,
            )
    # exact message parity where the paper claims it
    for r in results:
        if r.algorithm in ("pagerank", "sssp", "avg_teen_cnt"):
            assert r.message_parity, (r.algorithm, r.graph)
            assert r.generated.net_bytes == r.manual.net_bytes


def test_bc_generated_only_report(benchmark, scale, report_dir):
    benchmark.pedantic(lambda: _bc_generated_only_report(scale, report_dir), rounds=1, iterations=1)


def _bc_generated_only_report(scale, report_dir):
    results = bc_experiments(scale, repeats=1)
    table = render_table(
        ["Graph", "Supersteps", "Messages", "Net bytes", "Wall (s)"],
        [
            [r.graph, r.generated.supersteps, r.generated.messages, r.generated.net_bytes,
             r.generated.wall_seconds]
            for r in results
        ],
    )
    emit_report(
        report_dir,
        "bc_generated",
        "Approximate BC, compiler-generated (no manual Pregel implementation exists)\n"
        + table,
    )
    for r in results:
        assert r.generated.supersteps > 0


def _pairs():
    scale = bench_scale()
    pairs = []
    for algorithm in ("pagerank", "avg_teen_cnt", "conductance", "sssp", "bipartite_matching"):
        for key in applicable_graphs(algorithm):
            pairs.append((algorithm, key))
    return pairs


@pytest.mark.parametrize("algorithm,graph_key", _pairs())
def test_generated_runtime(benchmark, algorithm, graph_key, scale):
    graph = _graph(graph_key, scale)
    compiled = compile_algorithm(algorithm, emit_java=False)
    args = default_args(algorithm, graph)
    benchmark.pedantic(
        lambda: compiled.program.run(graph, args), rounds=3, iterations=1
    )


@pytest.mark.parametrize("algorithm,graph_key", _pairs())
def test_manual_runtime(benchmark, algorithm, graph_key, scale):
    graph = _graph(graph_key, scale)
    baseline = MANUAL_PROGRAMS[algorithm]
    args = default_args(algorithm, graph)
    benchmark.pedantic(lambda: baseline.run(graph, args), rounds=3, iterations=1)


def test_bc_runtime(benchmark, scale):
    graph = _graph("twitter", scale)
    compiled = compile_algorithm("bc_approx", emit_java=False)
    benchmark.pedantic(
        lambda: compiled.program.run(graph, {"K": 4}), rounds=2, iterations=1
    )
