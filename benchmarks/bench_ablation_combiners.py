"""Ablation — message combiners and cluster-size scaling (extensions).

Two studies on the communication model:

* **Combiners**: the opt-in combiner inference folds reduction-shaped
  messages at the sender (PageRank's partial sums, CC's min-labels).  The
  bench shows the message/byte reduction and that results are preserved.
* **Worker sweep**: network I/O as a function of the simulated cluster size —
  with W workers a random graph sends ~(W-1)/W of its messages across the
  network, the reason the paper measures network I/O at all.
"""

from __future__ import annotations

import pytest

from repro.bench import default_args, render_table
from repro.compiler import compile_algorithm
from repro.graphgen import load_graph

from conftest import emit_report


def test_combiner_report(benchmark, scale, report_dir):
    benchmark.pedantic(lambda: _combiner_report(scale, report_dir), rounds=1, iterations=1)


def _combiner_report(scale, report_dir):
    graph = load_graph("twitter", scale)
    rows = []
    for name in ("pagerank", "connected_components"):
        compiled = compile_algorithm(name, emit_java=False)
        args = default_args(name, graph)
        plain = compiled.program.run(graph, args, num_workers=4)
        combined = compiled.program.run(graph, args, num_workers=4, use_combiners=True)
        rows.append(
            [
                name,
                plain.metrics.messages,
                combined.metrics.messages,
                f"{plain.metrics.messages / max(1, combined.metrics.messages):.2f}x",
                plain.metrics.net_bytes,
                combined.metrics.net_bytes,
            ]
        )
        assert combined.metrics.messages < plain.metrics.messages, name
    table = render_table(
        ["Algorithm", "msgs (plain)", "msgs (combined)", "reduction",
         "net bytes (plain)", "net bytes (combined)"],
        rows,
    )
    emit_report(
        report_dir,
        "ablation_combiners",
        "Ablation: sender-side message combining (4 workers)\n" + table,
    )


def test_worker_sweep_report(benchmark, scale, report_dir):
    benchmark.pedantic(lambda: _worker_sweep_report(scale, report_dir), rounds=1, iterations=1)


def _worker_sweep_report(scale, report_dir):
    graph = load_graph("twitter", scale)
    compiled = compile_algorithm("pagerank", emit_java=False)
    args = default_args("pagerank", graph)
    rows = []
    previous_net = -1
    for workers in (1, 2, 4, 8, 16):
        run = compiled.program.run(graph, args, num_workers=workers)
        frac = run.metrics.net_messages / max(1, run.metrics.messages)
        rows.append(
            [workers, run.metrics.messages, run.metrics.net_messages,
             f"{frac:.3f}", f"{1 - 1 / workers:.3f}"]
        )
        assert run.metrics.net_messages >= previous_net
        previous_net = run.metrics.net_messages
    table = render_table(
        ["Workers", "messages", "cross-worker", "measured frac", "expected (W-1)/W"],
        rows,
    )
    emit_report(
        report_dir,
        "ablation_workers",
        "Network I/O vs simulated cluster size (PageRank, twitter analogue)\n" + table,
    )


@pytest.mark.parametrize("use_combiners", (False, True))
def test_pagerank_combiner_runtime(benchmark, scale, use_combiners):
    graph = load_graph("twitter", scale)
    compiled = compile_algorithm("pagerank", emit_java=False)
    args = default_args("pagerank", graph)
    benchmark.pedantic(
        lambda: compiled.program.run(graph, args, use_combiners=use_combiners),
        rounds=3,
        iterations=1,
    )


def test_load_imbalance_report(benchmark, scale, report_dir):
    benchmark.pedantic(lambda: _load_imbalance_report(scale, report_dir), rounds=1, iterations=1)


def _load_imbalance_report(scale, report_dir):
    """Load imbalance under hash partitioning: the degree skew of the Twitter
    analogue concentrates traffic on the workers owning the hubs, while the
    uniform bipartite graph balances — the phenomenon that makes superstep
    makespan (and hence Figure 6's run times) graph-dependent on a real
    cluster."""
    rows = []
    measured = {}
    for key in ("twitter", "bipartite", "sk-2005"):
        graph = load_graph(key, scale)
        compiled = compile_algorithm("pagerank", emit_java=False)
        run = compiled.program.run(
            graph, default_args("pagerank", graph), num_workers=8, track_makespan=True
        )
        imbalance = run.metrics.load_imbalance()
        measured[key] = imbalance
        rows.append([key, run.metrics.messages, f"{imbalance:.2f}x",
                     f"{run.metrics.makespan_inflation():.2f}x",
                     max(run.metrics.worker_sent), min(run.metrics.worker_sent)])
    table = render_table(
        ["Graph", "messages", "send imbalance", "makespan inflation",
         "busiest worker", "idlest worker"],
        rows,
    )
    emit_report(
        report_dir,
        "ablation_imbalance",
        "Worker load imbalance, PageRank on 8 workers (hash partitioning)\n" + table,
    )
    assert measured["twitter"] > 1.5 * measured["bipartite"]


def test_partitioning_report(benchmark, scale, report_dir):
    benchmark.pedantic(lambda: _partitioning_report(scale, report_dir), rounds=1, iterations=1)


def _partitioning_report(scale, report_dir):
    """Hash vs range partitioning (GPS's own research axis): range placement
    keeps the web crawl's id-local edges inside one worker, cutting network
    I/O; on the RMAT social graph ids carry no locality, so the strategies
    tie."""
    rows = []
    saved = {}
    for key in ("twitter", "sk-2005"):
        graph = load_graph(key, scale)
        compiled = compile_algorithm("pagerank", emit_java=False)
        args = default_args("pagerank", graph)
        by = {}
        for strategy in ("hash", "range"):
            run = compiled.program.run(graph, args, num_workers=8, partitioning=strategy)
            by[strategy] = run.metrics
        rows.append(
            [
                key,
                by["hash"].net_messages,
                by["range"].net_messages,
                f"{by['hash'].net_messages / max(1, by['range'].net_messages):.2f}x",
            ]
        )
        saved[key] = by
    table = render_table(
        ["Graph", "net msgs (hash)", "net msgs (range)", "range saves"],
        rows,
    )
    emit_report(
        report_dir,
        "ablation_partitioning",
        "Hash vs range partitioning, PageRank on 8 workers\n" + table,
    )
    # the web analogue must benefit from range placement far more than RMAT
    web = saved["sk-2005"]
    twitter = saved["twitter"]
    web_gain = web["hash"].net_messages / max(1, web["range"].net_messages)
    twitter_gain = twitter["hash"].net_messages / max(1, twitter["range"].net_messages)
    assert web_gain > 1.5 * twitter_gain
