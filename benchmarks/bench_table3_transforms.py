"""Table 3 — compiler transformations applied per algorithm.

The compiler logs every §3.1/§4.1/§4.2 rule that fires; this bench prints the
check matrix in the paper's layout and verifies the §5.1 claims about the BC
compilation (multiple kernels, four message types).
"""

from __future__ import annotations

import pytest

from repro.algorithms.sources import ALGORITHMS
from repro.bench import render_check_matrix, render_table
from repro.compiler import compile_algorithm
from repro.transform.pipeline import TABLE3_ROWS

from conftest import emit_report

SHORT = {
    "avg_teen_cnt": "AvgTeen",
    "pagerank": "PageRank",
    "conductance": "Conduct",
    "sssp": "SSSP",
    "bipartite_matching": "Bipartite",
    "bc_approx": "BC",
}


def test_table3_report(benchmark, report_dir):
    benchmark.pedantic(lambda: _table3_report(report_dir), rounds=1, iterations=1)


def _table3_report(report_dir):
    marks = {
        SHORT[name]: compile_algorithm(name, emit_java=False).rule_row()
        for name in ALGORITHMS
    }
    table = render_check_matrix(TABLE3_ROWS, [SHORT[n] for n in ALGORITHMS], marks)
    emit_report(report_dir, "table3_transforms", "Table 3 (applied transformations)\n" + table)
    # basic steps fire for everything (paper: "commonly applied to all")
    for name in marks:
        assert marks[name]["State Machine Const."]
        assert marks[name]["Message Class Gen."]


def test_bc_structure_report(benchmark, report_dir):
    benchmark.pedantic(lambda: _bc_structure_report(report_dir), rounds=1, iterations=1)


def _bc_structure_report(report_dir):
    """§5.1: the generated BC 'consists of nine vertex-centric kernels and
    four different message types'."""
    unopt = compile_algorithm(
        "bc_approx", state_merging=False, intra_loop_merging=False, emit_java=False
    )
    opt = compile_algorithm("bc_approx", emit_java=False)
    lines = [
        "BC generated-program structure (paper §5.1: 9 kernels, 4 message types)",
        f"  message types:                {len(opt.ir.messages)}",
        f"  vertex kernels (unoptimized): {unopt.ir.vertex_phase_count()}",
        f"  vertex kernels (optimized):   {opt.ir.vertex_phase_count()}",
        f"  master fields:                {len(opt.ir.master_fields)}",
        f"  vertex fields:                {len(opt.ir.vertex_fields)}",
    ]
    emit_report(report_dir, "bc_structure", "\n".join(lines))
    assert len(opt.ir.messages) == 4
    assert unopt.ir.vertex_phase_count() >= 9


@pytest.mark.parametrize("name", ALGORITHMS)
def test_transform_pipeline_speed(benchmark, name):
    from repro.algorithms.sources import load_procedure
    from repro.transform import to_canonical

    benchmark.pedantic(
        lambda: to_canonical(load_procedure(name)), rounds=5, iterations=1
    )
