"""Ablation — the value of the §4.2 optimizations.

Not a paper table, but the design-choice study DESIGN.md calls for: how many
timesteps (and how much wall time) State Merging and Intra-Loop State Merging
save, per algorithm.  The paper motivates both with the per-superstep global
barrier cost; here the saving appears directly as the superstep count.
"""

from __future__ import annotations

import pytest

from repro.bench import default_args, render_table
from repro.compiler import compile_algorithm
from repro.graphgen import load_graph

from conftest import bench_scale, emit_report

CONFIGS = {
    "none": dict(state_merging=False, intra_loop_merging=False),
    "state": dict(state_merging=True, intra_loop_merging=False),
    "state+intra": dict(state_merging=True, intra_loop_merging=True),
}

ALGOS = ("avg_teen_cnt", "pagerank", "conductance", "sssp", "bc_approx")


def _run(algorithm: str, config: dict, graph):
    compiled = compile_algorithm(algorithm, emit_java=False, **config)
    args = default_args(algorithm, graph)
    return compiled.program.run(graph, args)


def test_ablation_report(benchmark, scale, report_dir):
    benchmark.pedantic(lambda: _ablation_report(scale, report_dir), rounds=1, iterations=1)


def _ablation_report(scale, report_dir):
    graph = load_graph("twitter", scale)
    rows = []
    saved = {}
    for algorithm in ALGOS:
        entry = [algorithm]
        steps = {}
        for label, config in CONFIGS.items():
            run = _run(algorithm, config, graph)
            steps[label] = run.metrics.supersteps
            entry.append(run.metrics.supersteps)
        rows.append(entry)
        saved[algorithm] = steps
    table = render_table(
        ["Algorithm", "no merging", "state merging", "+ intra-loop"], rows
    )
    emit_report(report_dir, "ablation_merging", "Ablation: timesteps vs §4.2 optimizations\n" + table)
    for algorithm, steps in saved.items():
        assert steps["state"] <= steps["none"]
        assert steps["state+intra"] <= steps["state"]
    # the iterative algorithms must benefit from intra-loop merging
    assert saved["pagerank"]["state+intra"] < saved["pagerank"]["state"]
    assert saved["sssp"]["state+intra"] < saved["sssp"]["state"]
    # and state merging alone must already collapse the init phases
    assert saved["avg_teen_cnt"]["state"] < saved["avg_teen_cnt"]["none"]


@pytest.mark.parametrize("label", list(CONFIGS))
@pytest.mark.parametrize("algorithm", ("pagerank", "sssp"))
def test_ablation_runtime(benchmark, algorithm, label, scale):
    graph = load_graph("twitter", scale)
    config = CONFIGS[label]
    compiled = compile_algorithm(algorithm, emit_java=False, **config)
    args = default_args(algorithm, graph)
    benchmark.pedantic(lambda: compiled.program.run(graph, args), rounds=3, iterations=1)


def test_voting_effect_report(benchmark, scale, report_dir):
    benchmark.pedantic(lambda: _voting_effect_report(scale, report_dir), rounds=1, iterations=1)


def _voting_effect_report(scale, report_dir):
    """Reproduce the §5.2 SSSP observation: the generated program (no
    vote-to-halt) keeps calling compute() on converged vertices, while the
    manual one sleeps them — visible as the tail where <2% of vertices are
    active."""
    from repro.algorithms.manual import MANUAL_PROGRAMS

    graph = load_graph("twitter", scale)
    gen = compile_algorithm("sssp", emit_java=False).program.run(
        graph, {"root": 0}, record_per_superstep=True
    )
    man = MANUAL_PROGRAMS["sssp"].run(graph, {"root": 0}, record_per_superstep=True)
    lines = [
        "SSSP vote-to-halt effect (paper §5.2: generated lacks voteToHalt)",
        f"  generated: supersteps={gen.metrics.supersteps} wall={gen.metrics.wall_seconds:.4f}s",
        f"  manual:    supersteps={man.metrics.supersteps} wall={man.metrics.wall_seconds:.4f}s"
        "  (inactive vertices skipped)",
        f"  per-superstep messages (generated): {gen.metrics.per_superstep_messages}",
    ]
    emit_report(report_dir, "sssp_voting", "\n".join(lines))
