"""Table 1 — input graph inventory.

Regenerates the paper's graph table with our scaled analogues, reporting the
structural statistics that matter for Pregel behaviour (degree skew for the
Twitter analogue, locality for the web analogue, two-sidedness for the
bipartite input), and benchmarks graph construction itself.
"""

from __future__ import annotations

import pytest

from repro.bench import render_table
from repro.graphgen import TABLE1, load_graph

from conftest import emit_report


def _stats(graph):
    degrees = sorted((graph.out_degree(v) for v in graph.nodes()), reverse=True)
    in_degrees = sorted((graph.in_degree(v) for v in graph.nodes()), reverse=True)
    avg = graph.num_edges / max(1, graph.num_nodes)
    return {
        "avg_deg": round(avg, 1),
        "max_out": degrees[0] if degrees else 0,
        "max_in": in_degrees[0] if in_degrees else 0,
    }


def test_table1_report(benchmark, scale, report_dir):
    benchmark.pedantic(lambda: _table1_report(scale, report_dir), rounds=1, iterations=1)


def _table1_report(scale, report_dir):
    rows = []
    for key, spec in TABLE1.items():
        graph = spec.load(scale)
        stats = _stats(graph)
        rows.append(
            [
                key,
                spec.description,
                f"{spec.paper_nodes}/{spec.paper_edges}",
                f"{graph.num_nodes}/{graph.num_edges}",
                stats["avg_deg"],
                stats["max_in"],
            ]
        )
    table = render_table(
        ["Name", "Description", "Paper N/E", "Ours N/E", "avg deg", "max in-deg"],
        rows,
    )
    emit_report(report_dir, "table1_graphs", "Table 1 (scaled analogues)\n" + table)
    # shape assertions: the analogues must reproduce the structural features
    twitter = TABLE1["twitter"].load(scale)
    bip = TABLE1["bipartite"].load(scale)
    assert max(twitter.in_degree(v) for v in twitter.nodes()) > 5 * (
        twitter.num_edges / twitter.num_nodes
    ), "twitter analogue must be skewed"
    assert all(bip.node_props["is_left"][a] for a, _ in bip.edges())


@pytest.mark.parametrize("key", list(TABLE1))
def test_generate_graph(benchmark, key, scale):
    benchmark.pedantic(lambda: load_graph(key, scale), rounds=3, iterations=1)
