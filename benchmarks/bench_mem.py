"""Memory-budget benchmarks — fast-path ceiling + min-budget/spill table.

Three jobs, wired into the CI ``chaos`` job:

* ``test_mem_fast_path_overhead`` is the ISSUE's ≤5% ceiling: attaching a
  metered-but-unlimited ``MemoryManager`` must stay within 5% of running
  with ``mem=None``, measured best-of-N interleaved.
* ``test_min_budget_sweep`` binary-searches the smallest completing budget
  for PageRank and BFS on the skewed hub graph, then measures spill volume
  and slowdown at multiples of that minimum — every point bit-identical to
  the unlimited baseline.  The table lands in
  ``benchmarks/reports/mem_budget.txt`` (quoted by EXPERIMENTS.md).
* ``test_mem_report_artifact`` runs PageRank at a third of its observed
  peak and writes the structured memory report CI uploads as an artifact.
"""

from __future__ import annotations

import json

from repro.bench import mem_overhead, mem_report_artifact, min_budget_sweep

from conftest import emit_report


def test_mem_fast_path_overhead(benchmark, scale, report_dir):
    benchmark.pedantic(
        lambda: _fast_path(scale, report_dir), rounds=1, iterations=1
    )


def _fast_path(scale, report_dir):
    stats = mem_overhead(scale, repeats=7)
    emit_report(
        report_dir,
        "mem_overhead",
        "Metered-but-unlimited MemoryManager vs mem=None "
        "(PageRank/skewed, best of 7, interleaved)\n"
        f"  mem=None           : {stats['direct_s'] * 1e3:8.2f} ms\n"
        f"  unlimited budget   : {stats['metered_s'] * 1e3:8.2f} ms\n"
        f"  ratio              : {stats['overhead_ratio']:.4f}  (budget < 1.05)",
    )
    assert stats["overhead_ratio"] < 1.05, stats


def test_min_budget_sweep(benchmark, scale, report_dir):
    benchmark.pedantic(
        lambda: _budget_sweep(scale, report_dir), rounds=1, iterations=1
    )


def _budget_sweep(scale, report_dir):
    rows = min_budget_sweep(scale=min(scale, 0.25), repeats=3)
    assert rows and all(row.identical for row in rows), [
        (row.algorithm, row.label) for row in rows if not row.identical
    ]
    lines = [
        "Minimum completing budget and spill overhead vs budget",
        "(skewed hub graph, 4 workers; budgets are multiples of the",
        " binary-searched minimum; every row bit-identical to unlimited)",
        "",
        f"{'algorithm':>9} {'budget':>9} {'min':>8} {'peak':>9} "
        f"{'spilled':>9} {'files':>5} {'splits':>6} {'parks':>6} "
        f"{'cpu(ms)':>9} {'slowdown':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.algorithm:>9} {row.budget_bytes:>9} "
            f"{row.min_budget_bytes:>8} {row.unlimited_peak_bytes:>9} "
            f"{row.spilled_bytes:>9} {row.spill_files:>5} "
            f"{row.superstep_splits:>6} {row.outbox_parks:>6} "
            f"{row.wall_seconds * 1e3:>9.2f} {row.slowdown:>8.2f}"
        )
    emit_report(report_dir, "mem_budget", "\n".join(lines))


def test_mem_report_artifact(benchmark, scale, report_dir):
    benchmark.pedantic(
        lambda: _mem_report(scale, report_dir), rounds=1, iterations=1
    )


def _mem_report(scale, report_dir):
    report = mem_report_artifact(min(scale, 0.25))
    assert report["halt_reason"] != "out_of_memory", report
    assert report["spilled_bytes"] > 0, report
    (report_dir / "mem_report.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    emit_report(report_dir, "mem_report", json.dumps(report, indent=2))
