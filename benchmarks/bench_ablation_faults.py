"""Ablation — fault tolerance: checkpoint overhead vs lost work (extension).

The classic checkpointing dial, measured on the simulator: a worker crash is
injected at a fixed superstep and the run recovers from its latest
checkpoint.  Short checkpoint intervals pay more overhead (checkpoints
taken × serialized bytes) but lose little work when the crash hits; long
intervals invert the tradeoff.  Every recovered run must be bit-identical to
the failure-free baseline — outputs *and* the deterministic metrics ledger —
which is the correctness claim the sweep certifies while it measures cost.

The second study compares the two recovery strategies on the same crash:
full rollback (every partition rewinds and replays) vs confined recovery
(GPS-style: only the failed worker's partition replays, fed from logged
outboxes), showing the replay-work reduction confinement buys.
"""

from __future__ import annotations

import time

from repro.bench import fault_ablation, render_table
from repro.pregel.ft import CrashEvent

from conftest import emit_report

CRASH = CrashEvent(worker=1, superstep=5)
INTERVALS = (1, 2, 3, 5)


def test_fault_ablation_report(benchmark, scale, report_dir):
    benchmark.pedantic(lambda: _fault_report(scale, report_dir), rounds=1, iterations=1)


def _fault_report(scale, report_dir):
    timed = {}

    def run():
        start = time.perf_counter()
        baseline, rows = fault_ablation(
            "pagerank",
            "twitter",
            scale=scale,
            intervals=INTERVALS,
            crash=CRASH,
            recoveries=("rollback", "confined"),
        )
        timed["wall"] = time.perf_counter() - start
        return baseline, rows

    baseline, rows = run()
    assert all(row.identical for row in rows), [
        (r.checkpoint_every, r.recovery) for r in rows if not r.identical
    ]

    table_rows = []
    for row in rows:
        m = row.metrics
        table_rows.append(
            [
                row.checkpoint_every,
                row.recovery,
                m.checkpoints_taken,
                m.checkpoint_bytes,
                m.lost_supersteps,
                m.recovery_replay_work,
                f"{m.wall_seconds:.3f}s",
                "yes" if row.identical else "NO",
            ]
        )
    table = render_table(
        ["ckpt every", "recovery", "checkpoints", "ckpt bytes",
         "lost supersteps", "replay work", "wall", "bit-identical"],
        table_rows,
    )

    # the tradeoff the sweep exists to show, stated in the report itself
    by_rollback = {r.checkpoint_every: r.metrics for r in rows if r.recovery == "rollback"}
    densest = by_rollback[min(INTERVALS)]
    sparsest = by_rollback[max(INTERVALS)]
    assert densest.checkpoints_taken > sparsest.checkpoints_taken
    for every, m in by_rollback.items():
        # checkpoints land at multiples of the interval, so a crash at
        # superstep S loses exactly S mod interval supersteps
        assert m.lost_supersteps == CRASH.superstep % every
    confined = [r.metrics for r in rows if r.recovery == "confined"]
    rollback = [r.metrics for r in rows if r.recovery == "rollback"]
    assert sum(m.recovery_replay_work for m in confined) < sum(
        m.recovery_replay_work for m in rollback
    )

    emit_report(
        report_dir,
        "ablation_faults",
        "Fault tolerance: checkpoint interval sweep under a worker crash\n"
        f"(PageRank, twitter analogue, 4 workers, crash: worker "
        f"{CRASH.worker} entering superstep {CRASH.superstep}; "
        f"failure-free baseline: {baseline.supersteps} supersteps, "
        f"{baseline.messages} messages; sweep wall time {timed['wall']:.2f}s)\n"
        + table
        + "\n\nEvery recovered run reproduced the failure-free outputs and\n"
        "metrics ledger bit-for-bit.  Denser checkpoints cost more overhead\n"
        "(checkpoints x bytes) and lose less work on failure (lost\n"
        "supersteps = crash superstep mod interval); confined recovery\n"
        "replays only the failed partition instead of the whole graph.",
    )


def test_checkpoint_overhead_runtime(benchmark, scale):
    """Wall-time cost of checkpointing alone (no crash), densest interval."""
    from repro.bench import default_args
    from repro.compiler import compile_algorithm
    from repro.graphgen import load_graph
    from repro.pregel.ft import FaultPlan, FaultTolerance

    graph = load_graph("twitter", scale)
    compiled = compile_algorithm("pagerank", emit_java=False)
    args = default_args("pagerank", graph)
    benchmark.pedantic(
        lambda: compiled.program.run(
            graph, args, num_workers=4, ft=FaultTolerance(FaultPlan(checkpoint_every=1))
        ),
        rounds=3,
        iterations=1,
    )
